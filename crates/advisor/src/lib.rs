//! Workload-driven self-tuning: the materialized-view advisor.
//!
//! The advisor closes the loop between workload telemetry and physical
//! design. It mines the query log's heaviest fingerprints (by bytes
//! shipped), scores each as a materialization candidate, and keeps the
//! best-scoring set installed under a configurable storage budget —
//! evicting views whose observed usefulness decays as the workload
//! shifts. Every decision is a pure function of the (deterministic,
//! order-independent) query-log aggregates and the advisor's own state,
//! so same-seed runs replay the exact recommendation sequence — which is
//! what E20's bit-identical-replay gate checks.
//!
//! The crate is deliberately **decision-only**: it never touches the
//! federation or the view manager itself. The embedding system (the
//! `eii` facade) feeds it [`Candidate`]s, executes the [`Proposal`]s it
//! returns (`define_incremental_matview` / `drop_view`), and reports
//! back what actually happened (`record_materialized` / `record_rejected`
//! / `record_evicted`). That keeps the action log an exact journal of
//! executed actions, not intentions, and keeps this crate free of any
//! dependency on the planner or executor.
//!
//! Scoring (documented in `docs/advisor.md`): a candidate's benefit is
//! the bytes the workload shipped for its fingerprint; its upkeep is the
//! estimated refresh cost. IVM-eligible views refresh by delta
//! propagation — O(delta), priced at a small fraction of the view's
//! rows — while fallback-only views pay a full recompute per refresh, so
//! they are priced at full row weight and (policy) never auto-installed.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Fraction of a view's rows an IVM refresh is expected to touch per
/// maintenance round — the delta-pricing knob in the score denominator.
const IVM_DELTA_FRACTION: f64 = 1.0 / 64.0;

/// Deterministic name for an advisor-installed view over a fingerprint.
pub fn view_name(fingerprint: u64) -> String {
    format!("adv_{fingerprint:016x}")
}

/// Tuning knobs for the advisor loop. Defaults are conservative; the
/// drift-test and E20 scenarios override them to force activity.
#[derive(Debug, Clone)]
pub struct AdvisorConfig {
    /// How many top-by-bytes fingerprints to consider per cycle.
    pub top_k: usize,
    /// Total rows the installed advisor views may hold, summed.
    pub storage_budget_rows: u64,
    /// Cap on concurrently installed advisor views.
    pub max_views: usize,
    /// Run an advisory cycle every N observed statements.
    pub advise_every: u64,
    /// A fingerprint needs at least this many executions to be a
    /// candidate (one-off queries never pay for materialization).
    pub min_count: u64,
    /// A fingerprint needs at least this many total bytes shipped.
    pub min_bytes: u64,
    /// Evict an installed view once its observed hit rate (hits per
    /// statement since install) falls below this...
    pub min_hit_rate: f64,
    /// ...but only after this many statements have elapsed since install
    /// (a grace window, so a fresh view is not evicted before the
    /// workload gets a chance to hit it).
    pub grace_statements: u64,
    /// Divergence factor handed to the executor's adaptive re-planning
    /// hook when the advisor is enabled.
    pub replan_factor: f64,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig {
            top_k: 8,
            storage_budget_rows: 10_000,
            max_views: 4,
            advise_every: 16,
            min_count: 3,
            min_bytes: 1,
            min_hit_rate: 0.05,
            grace_statements: 32,
            replan_factor: 4.0,
        }
    }
}

/// One workload fingerprint offered to the advisor as a materialization
/// candidate — a projection of the query log's [`FingerprintStats`]
/// (plus the storage estimate the embedder derives from observed rows).
///
/// [`FingerprintStats`]: eii_obs::FingerprintStats
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Normalized-plan fingerprint.
    pub fingerprint: u64,
    /// Representative SQL — what the embedder defines the view from.
    pub sql: String,
    /// Executions observed.
    pub count: u64,
    /// Total bytes shipped from sources for this fingerprint.
    pub total_bytes: u64,
    /// Estimated rows the materialized view would hold (mean observed
    /// result rows).
    pub rows: u64,
}

impl Candidate {
    /// Bytes-saved-per-refresh-cost score under delta pricing. Higher is
    /// better. `ivm` selects the refresh pricing: delta-fraction rows
    /// for incrementally maintainable views, full rows otherwise.
    pub fn score(&self, ivm: bool) -> f64 {
        let weight = if ivm { IVM_DELTA_FRACTION } else { 1.0 };
        self.total_bytes as f64 / (1.0 + self.rows as f64 * weight)
    }
}

/// What the advisor wants the embedding system to do this cycle.
#[derive(Debug, Clone, PartialEq)]
pub enum Proposal {
    /// Define `name` as an incrementally maintained live view over `sql`.
    Materialize {
        /// Deterministic view name ([`view_name`]).
        name: String,
        /// The candidate's fingerprint.
        fingerprint: u64,
        /// The SQL to define the view from.
        sql: String,
        /// The candidate's score at proposal time.
        score: f64,
        /// Storage this view is budgeted at, rows.
        rows: u64,
    },
    /// Drop `name`: its observed hit rate decayed below the floor.
    Evict {
        /// The installed view's name.
        name: String,
        /// The fingerprint it was installed for.
        fingerprint: u64,
        /// The hit rate that triggered the eviction.
        hit_rate: f64,
    },
}

/// One executed (not merely proposed) advisor action — the replayable
/// journal entry E20 compares across same-seed runs.
#[derive(Debug, Clone, PartialEq)]
pub enum AdvisorAction {
    /// A view was defined and materialized.
    Materialized {
        /// View name.
        name: String,
        /// Fingerprint it answers.
        fingerprint: u64,
        /// Score at install time.
        score: f64,
    },
    /// A proposed candidate was rejected at install time (e.g. its plan
    /// is not incrementally maintainable, so upkeep would be full
    /// recomputes). Rejected fingerprints are never re-proposed.
    Rejected {
        /// Fingerprint of the rejected candidate.
        fingerprint: u64,
        /// Why the embedder rejected it.
        reason: String,
    },
    /// An installed view was dropped for decayed usefulness.
    Evicted {
        /// View name.
        name: String,
        /// Fingerprint it answered.
        fingerprint: u64,
        /// Hit rate at eviction time.
        hit_rate: f64,
    },
}

impl AdvisorAction {
    /// One-line render used by reports and the replay digest.
    pub fn render(&self) -> String {
        match self {
            AdvisorAction::Materialized {
                name,
                fingerprint,
                score,
            } => format!("materialize {name} fp={fingerprint:016x} score={score:.1}"),
            AdvisorAction::Rejected {
                fingerprint,
                reason,
            } => format!("reject fp={fingerprint:016x} reason={reason}"),
            AdvisorAction::Evicted {
                name,
                fingerprint,
                hit_rate,
            } => format!("evict {name} fp={fingerprint:016x} hit_rate={hit_rate:.3}"),
        }
    }
}

/// Bookkeeping for one installed advisor view.
#[derive(Debug, Clone)]
pub struct InstalledView {
    /// View name ([`view_name`] of the fingerprint).
    pub name: String,
    /// Fingerprint the view answers.
    pub fingerprint: u64,
    /// Storage budgeted, rows.
    pub rows: u64,
    /// Statements observed since install.
    pub statements_since: u64,
    /// Statements since install that hit the view (matview rewrite or a
    /// cache entry it filled).
    pub hits: u64,
}

impl InstalledView {
    /// Hits per statement since install.
    pub fn hit_rate(&self) -> f64 {
        if self.statements_since == 0 {
            0.0
        } else {
            self.hits as f64 / self.statements_since as f64
        }
    }
}

#[derive(Debug, Default)]
struct State {
    /// Installed views keyed by fingerprint (BTreeMap: deterministic
    /// iteration for proposals and reports).
    installed: BTreeMap<u64, InstalledView>,
    /// Fingerprints never to propose again (install-time rejections and
    /// evicted views — re-installing an evicted view would thrash).
    blocked: BTreeMap<u64, String>,
    /// Journal of executed actions, in order.
    actions: Vec<AdvisorAction>,
    /// Statements observed (drives cycle cadence and grace windows).
    statements: u64,
    /// Statement count at the last cycle, to fire once per boundary.
    last_cycle_at: u64,
    /// Advisory cycles run.
    cycles: u64,
}

/// The matview advisor: deterministic decision state behind one mutex.
///
/// Thread-safe; the embedding system typically holds it in a `OnceLock`
/// and consults it from the statement-recording path.
#[derive(Debug)]
pub struct Advisor {
    config: AdvisorConfig,
    state: Mutex<State>,
}

impl Advisor {
    /// An advisor with the given knobs and empty state.
    pub fn new(config: AdvisorConfig) -> Self {
        Advisor {
            config,
            state: Mutex::new(State::default()),
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> &AdvisorConfig {
        &self.config
    }

    fn state(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().expect("advisor state poisoned")
    }

    /// Record one finished statement: `fingerprint` is its workload
    /// fingerprint, `hit` whether it was answered without shipping (a
    /// matview rewrite or a cache hit). Returns `true` when a cycle
    /// boundary was crossed and the embedder should run
    /// [`Advisor::propose`].
    pub fn observe_statement(&self, fingerprint: u64, hit: bool) -> bool {
        let mut s = self.state();
        s.statements += 1;
        for view in s.installed.values_mut() {
            view.statements_since += 1;
            if hit && view.fingerprint == fingerprint {
                view.hits += 1;
            }
        }
        s.statements.is_multiple_of(self.config.advise_every.max(1))
            && s.statements > s.last_cycle_at
    }

    /// Plan one advisory cycle over the log's current top candidates:
    /// evictions for decayed views first (freeing budget), then the
    /// best-scoring uninstalled candidates that fit the remaining
    /// storage budget and view cap. Pure decision — nothing is installed
    /// or dropped until the embedder executes the proposals and reports
    /// back.
    pub fn propose(&self, candidates: &[Candidate]) -> Vec<Proposal> {
        let mut s = self.state();
        s.cycles += 1;
        let statements = s.statements;
        s.last_cycle_at = statements;
        let mut proposals = Vec::new();

        // Evictions: past the grace window, below the hit-rate floor.
        let mut freed_rows = 0u64;
        let mut evicting = 0usize;
        for view in s.installed.values() {
            if view.statements_since >= self.config.grace_statements
                && view.hit_rate() < self.config.min_hit_rate
            {
                freed_rows += view.rows;
                evicting += 1;
                proposals.push(Proposal::Evict {
                    name: view.name.clone(),
                    fingerprint: view.fingerprint,
                    hit_rate: view.hit_rate(),
                });
            }
        }

        // Budget remaining after pending evictions land.
        let used_rows: u64 = s.installed.values().map(|v| v.rows).sum();
        let mut budget = self
            .config
            .storage_budget_rows
            .saturating_sub(used_rows.saturating_sub(freed_rows));
        let mut slots = self
            .config
            .max_views
            .saturating_sub(s.installed.len() - evicting);

        // Best-scoring fresh candidates, assuming IVM pricing; the
        // embedder rejects any that turn out fallback-only at install.
        let mut ranked: Vec<&Candidate> = candidates
            .iter()
            .filter(|c| {
                c.count >= self.config.min_count
                    && c.total_bytes >= self.config.min_bytes
                    && !s.installed.contains_key(&c.fingerprint)
                    && !s.blocked.contains_key(&c.fingerprint)
                    && !c.sql.is_empty()
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.score(true)
                .partial_cmp(&a.score(true))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.fingerprint.cmp(&b.fingerprint))
        });
        for c in ranked.into_iter().take(self.config.top_k) {
            if slots == 0 || c.rows > budget {
                continue;
            }
            slots -= 1;
            budget -= c.rows;
            proposals.push(Proposal::Materialize {
                name: view_name(c.fingerprint),
                fingerprint: c.fingerprint,
                sql: c.sql.clone(),
                score: c.score(true),
                rows: c.rows,
            });
        }
        proposals
    }

    /// The embedder installed a proposed view.
    pub fn record_materialized(&self, fingerprint: u64, name: &str, rows: u64, score: f64) {
        let mut s = self.state();
        s.installed.insert(
            fingerprint,
            InstalledView {
                name: name.to_string(),
                fingerprint,
                rows,
                statements_since: 0,
                hits: 0,
            },
        );
        s.actions.push(AdvisorAction::Materialized {
            name: name.to_string(),
            fingerprint,
            score,
        });
    }

    /// The embedder rejected a proposed view at install time; the
    /// fingerprint is never proposed again.
    pub fn record_rejected(&self, fingerprint: u64, reason: &str) {
        let mut s = self.state();
        s.blocked.insert(fingerprint, reason.to_string());
        s.actions.push(AdvisorAction::Rejected {
            fingerprint,
            reason: reason.to_string(),
        });
    }

    /// The embedder dropped a proposed eviction; the fingerprint is
    /// blocked from re-installation (re-materializing a view the
    /// workload abandoned would thrash the budget).
    pub fn record_evicted(&self, fingerprint: u64) {
        let mut s = self.state();
        let Some(view) = s.installed.remove(&fingerprint) else {
            return;
        };
        let hit_rate = view.hit_rate();
        s.blocked.insert(fingerprint, "evicted".to_string());
        s.actions.push(AdvisorAction::Evicted {
            name: view.name,
            fingerprint,
            hit_rate,
        });
    }

    /// Is `name` a view this advisor installed (and still holds)?
    pub fn owns_view(&self, name: &str) -> bool {
        self.state().installed.values().any(|v| v.name == name)
    }

    /// Currently installed views, fingerprint order.
    pub fn installed(&self) -> Vec<InstalledView> {
        self.state().installed.values().cloned().collect()
    }

    /// The executed-action journal, in order.
    pub fn actions(&self) -> Vec<AdvisorAction> {
        self.state().actions.clone()
    }

    /// Advisory cycles run so far.
    pub fn cycles(&self) -> u64 {
        self.state().cycles
    }

    /// Statements observed so far.
    pub fn statements(&self) -> u64 {
        self.state().statements
    }

    /// One-line-per-action replay digest — bit-identical across same-seed
    /// runs (E20's determinism gate).
    pub fn replay_digest(&self) -> String {
        self.state()
            .actions
            .iter()
            .map(AdvisorAction::render)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Human-readable report: knobs, installed set, and the action
    /// journal.
    pub fn report(&self) -> String {
        let s = self.state();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "advisor: statements={} cycles={} installed={} blocked={}",
            s.statements,
            s.cycles,
            s.installed.len(),
            s.blocked.len()
        );
        for v in s.installed.values() {
            let _ = writeln!(
                out,
                "  view {} fp={:016x} rows={} hit_rate={:.3} ({} hits / {} statements)",
                v.name,
                v.fingerprint,
                v.rows,
                v.hit_rate(),
                v.hits,
                v.statements_since
            );
        }
        for a in &s.actions {
            let _ = writeln!(out, "  action {}", a.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(fp: u64, bytes: u64, rows: u64) -> Candidate {
        Candidate {
            fingerprint: fp,
            sql: format!("SELECT {fp}"),
            count: 10,
            total_bytes: bytes,
            rows,
        }
    }

    #[test]
    fn proposes_best_scoring_candidates_under_budget() {
        let advisor = Advisor::new(AdvisorConfig {
            storage_budget_rows: 100,
            max_views: 2,
            ..AdvisorConfig::default()
        });
        let proposals = advisor.propose(&[
            candidate(1, 10_000, 40),
            candidate(2, 90_000, 60), // best score, fits
            candidate(3, 500, 10),
            candidate(4, 80_000, 900), // great bytes, blows the budget
        ]);
        let names: Vec<_> = proposals
            .iter()
            .map(|p| match p {
                Proposal::Materialize { fingerprint, .. } => *fingerprint,
                Proposal::Evict { .. } => panic!("nothing installed yet"),
            })
            .collect();
        assert_eq!(names, vec![2, 1], "ranked by score, budget-constrained");
    }

    #[test]
    fn rejected_and_evicted_fingerprints_never_return() {
        let advisor = Advisor::new(AdvisorConfig {
            grace_statements: 2,
            min_hit_rate: 0.9,
            advise_every: 1,
            ..AdvisorConfig::default()
        });
        advisor.record_rejected(7, "fallback-only");
        let proposals = advisor.propose(&[candidate(7, 1_000_000, 1)]);
        assert!(proposals.is_empty(), "rejected fingerprint re-proposed");

        advisor.record_materialized(9, &view_name(9), 10, 1.0);
        advisor.observe_statement(1, false);
        advisor.observe_statement(1, false);
        let proposals = advisor.propose(&[]);
        assert!(
            matches!(&proposals[..], [Proposal::Evict { fingerprint: 9, .. }]),
            "{proposals:?}"
        );
        advisor.record_evicted(9);
        let proposals = advisor.propose(&[candidate(9, 1_000_000, 1)]);
        assert!(proposals.is_empty(), "evicted fingerprint re-proposed");
    }

    #[test]
    fn hit_rate_tracks_statements_since_install() {
        let advisor = Advisor::new(AdvisorConfig::default());
        advisor.record_materialized(5, &view_name(5), 10, 1.0);
        advisor.observe_statement(5, true);
        advisor.observe_statement(6, false);
        advisor.observe_statement(5, true);
        let installed = advisor.installed();
        assert_eq!(installed.len(), 1);
        assert_eq!(installed[0].hits, 2);
        assert_eq!(installed[0].statements_since, 3);
        assert!((installed[0].hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn cycle_fires_on_cadence_once_per_boundary() {
        let advisor = Advisor::new(AdvisorConfig {
            advise_every: 3,
            ..AdvisorConfig::default()
        });
        assert!(!advisor.observe_statement(1, false));
        assert!(!advisor.observe_statement(1, false));
        assert!(advisor.observe_statement(1, false), "boundary at 3");
        advisor.propose(&[]);
        assert!(!advisor.observe_statement(1, false));
    }

    #[test]
    fn replay_digest_is_the_action_journal() {
        let advisor = Advisor::new(AdvisorConfig::default());
        advisor.record_materialized(0xab, &view_name(0xab), 10, 2.5);
        advisor.record_evicted(0xab);
        let digest = advisor.replay_digest();
        assert!(digest.contains("materialize adv_00000000000000ab"), "{digest}");
        assert!(digest.contains("evict adv_00000000000000ab"), "{digest}");
        let report = advisor.report();
        assert!(report.contains("cycles=0"), "{report}");
    }

    #[test]
    fn ivm_pricing_beats_full_recompute_pricing() {
        let c = candidate(1, 10_000, 640);
        assert!(c.score(true) > c.score(false));
    }
}
