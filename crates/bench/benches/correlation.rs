//! Criterion bench for E6: building the record-correlation join index and
//! joining through it, vs fuzzy-matching on the fly.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use eii::matview::{similarity, CorrelationIndex};
use eii::prelude::*;
use eii::row;

fn data(n: usize) -> (Batch, Batch) {
    let mut rng = StdRng::seed_from_u64(61);
    let adjs = ["acme", "atlas", "apex", "global", "united", "pioneer"];
    let nouns = ["corp", "industries", "systems"];
    let ls = Arc::new(Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("name", DataType::Str),
    ]));
    let rs = Arc::new(Schema::new(vec![
        Field::new("ref", DataType::Int),
        Field::new("company", DataType::Str),
    ]));
    let mut left = Vec::new();
    let mut right = Vec::new();
    for i in 0..n {
        let base = format!(
            "{} {} {}",
            adjs[rng.gen_range(0..adjs.len())],
            nouns[rng.gen_range(0..nouns.len())],
            i
        );
        left.push(row![i as i64, base.clone()]);
        right.push(row![(10_000 + i) as i64, format!("{} inc", base.to_uppercase())]);
    }
    (Batch::new(ls, left), Batch::new(rs, right))
}

fn bench_correlation(c: &mut Criterion) {
    let mut group = c.benchmark_group("correlation");
    for n in [100usize, 400] {
        let (left, right) = data(n);
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| {
                let ix =
                    CorrelationIndex::build(&left, "id", "name", &right, "ref", "company", 0.6)
                        .expect("build");
                std::hint::black_box(ix.len())
            })
        });
        let ix = CorrelationIndex::build(&left, "id", "name", &right, "ref", "company", 0.6)
            .expect("build");
        group.bench_with_input(BenchmarkId::new("indexed_join", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    ix.join(&left, "id", &right, "ref").expect("join").num_rows(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("fuzzy_nested_loop", n), &n, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for l in left.rows() {
                    for r in right.rows() {
                        if similarity(
                            l.get(1).as_str().unwrap_or(""),
                            r.get(1).as_str().unwrap_or(""),
                        ) >= 0.6
                        {
                            hits += 1;
                        }
                    }
                }
                std::hint::black_box(hits)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_correlation);
criterion_main!(benches);
