//! Microbenches of the engine's layers: SQL parsing, planning (with all
//! rewrites), and storage-engine primitives. These are the fixed overheads
//! every federated query pays before any byte crosses the network.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use eii::planner::{plan_query, PlannerConfig};
use eii::prelude::*;
use eii::row;
use eii::sql::parse_query;
use eii_bench::FedMark;

const SQL: &str = "SELECT c.region, COUNT(*) AS orders, SUM(o.total) AS revenue \
                   FROM crm.customers c JOIN sales.orders o ON c.customer_id = o.customer_id \
                   WHERE c.segment = 's1' AND o.total > 100 \
                   GROUP BY c.region HAVING revenue > 1000 ORDER BY revenue DESC LIMIT 5";

fn bench_parse(c: &mut Criterion) {
    c.bench_function("parse_complex_query", |b| {
        b.iter(|| std::hint::black_box(parse_query(SQL).expect("parse")))
    });
}

fn bench_plan(c: &mut Criterion) {
    let env = FedMark::build(1, 13).expect("fedmark");
    let query = parse_query(SQL).expect("parse");
    let config = PlannerConfig::optimized();
    c.bench_function("plan_federated_query", |b| {
        b.iter(|| {
            std::hint::black_box(
                plan_query(&query, env.system.catalog(), env.system.federation(), &config)
                    .expect("plan"),
            )
        })
    });
}

fn bench_storage(c: &mut Criterion) {
    let clock = SimClock::new();
    let db = Database::new("bench", clock);
    let t = db
        .create_table(
            TableDef::new(
                "t",
                Arc::new(Schema::new(vec![
                    Field::new("id", DataType::Int).not_null(),
                    Field::new("k", DataType::Int),
                    Field::new("s", DataType::Str),
                ])),
            )
            .with_primary_key(0),
        )
        .expect("create");
    {
        let mut t = t.write();
        t.create_hash_index(1);
        for i in 0..10_000i64 {
            t.insert(row![i, i % 100, format!("value {i}")]).expect("insert");
        }
    }
    let mut group = c.benchmark_group("storage");
    group.bench_function("pk_lookup", |b| {
        let t = t.read();
        b.iter(|| std::hint::black_box(t.get_by_pk(&Value::Int(4321)).is_some()))
    });
    group.bench_function("indexed_eq_lookup", |b| {
        let t = t.read();
        b.iter(|| std::hint::black_box(t.lookup_eq(1, &Value::Int(42)).len()))
    });
    group.bench_function("full_scan_filter", |b| {
        let t = t.read();
        b.iter(|| {
            std::hint::black_box(
                t.scan(|r| r.get(1) == &Value::Int(42)).len(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_parse, bench_plan, bench_storage);
criterion_main!(benches);
