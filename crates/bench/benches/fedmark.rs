//! Criterion bench for E9: wall-clock latency of each FedMark query at
//! scale factor 1 under the full optimizer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use eii_bench::FedMark;

fn bench_fedmark(c: &mut Criterion) {
    let env = FedMark::build(1, 31).expect("build fedmark");
    let mut group = c.benchmark_group("fedmark_sf1");
    for (id, _desc, sql) in FedMark::queries() {
        group.bench_with_input(BenchmarkId::from_parameter(id), &sql, |b, sql| {
            b.iter(|| {
                let out = env.system.execute(sql).expect("query");
                std::hint::black_box(out.rows().expect("rows").num_rows())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fedmark);
criterion_main!(benches);
