//! Criterion bench for E5: fetch cost of a live view vs a cached
//! materialized view.

use criterion::{criterion_group, criterion_main, Criterion};

use eii::matview::{MatViewManager, RefreshPolicy};
use eii_bench::FedMark;

const SQL: &str = "SELECT c.region, COUNT(*) AS n FROM crm.customers c \
                   JOIN sales.orders o ON c.customer_id = o.customer_id GROUP BY c.region";

fn bench_matview(c: &mut Criterion) {
    let env = FedMark::build(1, 51).expect("build fedmark");
    let views = MatViewManager::new(env.system.federation().clone(), env.clock.clone());
    views
        .define("live", SQL, env.system.catalog(), RefreshPolicy::Live)
        .expect("define");
    views
        .define("cached", SQL, env.system.catalog(), RefreshPolicy::Manual)
        .expect("define");
    views.refresh("cached").expect("warm the cache");

    let mut group = c.benchmark_group("matview_fetch");
    group.bench_function("live", |b| {
        b.iter(|| std::hint::black_box(views.fetch("live").expect("fetch").0.num_rows()))
    });
    group.bench_function("cached", |b| {
        b.iter(|| std::hint::black_box(views.fetch("cached").expect("fetch").0.num_rows()))
    });
    group.finish();
}

criterion_group!(benches, bench_matview);
criterion_main!(benches);
