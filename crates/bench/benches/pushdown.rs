//! Criterion bench for E3: the same selective cross-source join executed
//! under each optimization level (wall-clock view of the ablation ladder).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use eii::prelude::*;
use eii_bench::FedMark;

const SQL: &str = "SELECT c.name, o.total FROM crm.customers c \
                   JOIN sales.orders o ON c.customer_id = o.customer_id \
                   WHERE c.customer_id < 10";

fn bench_pushdown(c: &mut Criterion) {
    let mut group = c.benchmark_group("pushdown");
    for (label, config) in [
        ("naive", PlannerConfig::naive()),
        ("filters_only", PlannerConfig::filters_only()),
        ("optimized", PlannerConfig::optimized()),
    ] {
        let env = FedMark::build_with_config(1, 23, config).expect("build fedmark");
        group.bench_with_input(BenchmarkId::from_parameter(label), &env, |b, env| {
            b.iter(|| {
                let out = env.system.execute(SQL).expect("query");
                std::hint::black_box(out.rows().expect("rows").num_rows())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pushdown);
criterion_main!(benches);
