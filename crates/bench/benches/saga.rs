//! Criterion bench for E10: saga throughput (happy path and compensating
//! path) through the EAI engine.

use std::collections::HashMap;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use eii::eai::{MessageBroker, ProcessDef, ProcessEnv, SagaEngine, Step};
use eii::federation::UpdateOp;
use eii::prelude::*;
use eii::row;

fn setup() -> (Federation, SimClock) {
    let clock = SimClock::new();
    let hr = Database::new("hr", clock.clone());
    hr.create_table(
        TableDef::new(
            "employees",
            Arc::new(Schema::new(vec![
                Field::new("emp_id", DataType::Int).not_null(),
                Field::new("name", DataType::Str),
            ])),
        )
        .with_primary_key(0),
    )
    .expect("create table");
    let fed = Federation::new();
    fed.register(
        Arc::new(RelationalConnector::new(hr)),
        LinkProfile::lan(),
        WireFormat::Native,
    )
    .expect("register");
    (fed, clock)
}

fn onboarding(emp: i64, fail: bool) -> ProcessDef {
    ProcessDef::new("onboard")
        .step(
            Step::new("insert", move |env: &ProcessEnv<'_>| {
                env.federation.source("hr")?.update(&UpdateOp::Insert {
                    table: "employees".into(),
                    row: row![emp, "bench"],
                })?;
                Ok(())
            })
            .with_compensation(move |env| {
                env.federation.source("hr")?.update(&UpdateOp::DeleteByKey {
                    table: "employees".into(),
                    key: Value::Int(emp),
                })?;
                Ok(())
            }),
        )
        .step(Step::new("approve", move |_| {
            if fail {
                Err(EiiError::Process("denied".into()))
            } else {
                Ok(())
            }
        }))
        .step(
            Step::new("cleanup", move |env: &ProcessEnv<'_>| {
                env.federation.source("hr")?.update(&UpdateOp::DeleteByKey {
                    table: "employees".into(),
                    key: Value::Int(emp),
                })?;
                Ok(())
            }),
        )
}

fn bench_saga(c: &mut Criterion) {
    let (fed, clock) = setup();
    let broker = MessageBroker::new();
    let engine = SagaEngine::new(clock.clone());
    let mut group = c.benchmark_group("saga");
    group.bench_function("happy_path", |b| {
        b.iter(|| {
            let env = ProcessEnv::new(&fed, &broker, &clock, HashMap::new());
            let (outcome, _) = engine.run(&onboarding(1, false), &env).expect("saga");
            std::hint::black_box(outcome)
        })
    });
    group.bench_function("compensating_path", |b| {
        b.iter(|| {
            let env = ProcessEnv::new(&fed, &broker, &clock, HashMap::new());
            let (outcome, _) = engine.run(&onboarding(2, true), &env).expect("saga");
            std::hint::black_box(outcome)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_saga);
criterion_main!(benches);
