//! Criterion bench for E8: federated search latency, with and without ACL
//! filtering in the hot path.

use criterion::{criterion_group, criterion_main, Criterion};

use eii::search::{index_docstore, index_federation_table, EnterpriseSearch, SearchIndex};
use eii_bench::FedMark;

fn bench_search(c: &mut Criterion) {
    let env = FedMark::build(2, 71).expect("build fedmark");
    let mut index = SearchIndex::new();
    index_federation_table(&mut index, env.system.federation(), "crm.customers").expect("crm");
    index_federation_table(&mut index, env.system.federation(), "hr.employees").expect("hr");
    index_docstore(&mut index, "contracts", &env.contracts).expect("contracts");
    index_docstore(&mut index, "support", &env.tickets).expect("support");

    let open = EnterpriseSearch::new(index, env.system.catalog().clone());
    // A second service where half the sources are ACL-restricted.
    let restricted_catalog = env.system.catalog().clone();
    restricted_catalog.grant("hr", "hr-admin");
    restricted_catalog.grant("contracts", "legal");

    let mut group = c.benchmark_group("enterprise_search");
    group.bench_function("open_acl", |b| {
        b.iter(|| {
            let (hits, _) = open.search("acme renewal gold", "public", 20).expect("search");
            std::hint::black_box(hits.len())
        })
    });
    group.bench_function("filtered_acl", |b| {
        b.iter(|| {
            let (hits, _) = open
                .search("acme renewal gold", "intern", 20)
                .expect("search");
            std::hint::black_box(hits.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
