//! The experiment harness: regenerates every table of the reproduction's
//! evaluation (DESIGN.md §3, EXPERIMENTS.md).
//!
//! Usage:
//!   cargo run -p eii-bench --release --bin experiments -- all
//!   cargo run -p eii-bench --release --bin experiments -- e3 e9
//!   cargo run -p eii-bench --release --bin experiments -- --json e1
//!   cargo run -p eii-bench --release --bin experiments -- trajectory
//!
//! `trajectory` prints the compact cross-experiment summary table from
//! the `BENCH_E*.json` files the gate experiments (E13–E18) wrote.

use std::time::Instant;

use eii_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let requested: Vec<String> = args
        .into_iter()
        .filter(|a| a != "--json")
        .collect();
    let ids: Vec<String> = if requested.is_empty() || requested.iter().any(|a| a == "all") {
        experiments::ALL.iter().map(|s| s.to_string()).collect()
    } else {
        requested
    };

    let mut failures = 0;
    for id in &ids {
        if id == "trajectory" {
            println!("{}", eii_bench::summary::trajectory());
            continue;
        }
        let t0 = Instant::now();
        match experiments::run(id) {
            Ok(report) => {
                if json {
                    println!("{}", report.to_json());
                } else {
                    println!("{}", report.render());
                    println!("({} regenerated in {:.1?})\n", id.to_uppercase(), t0.elapsed());
                }
            }
            Err(e) => {
                eprintln!("{id}: FAILED: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
