//! Deterministic chaos harness: composable fault scenarios on the
//! simulated clock, plus the recovery trace E17 diffs across runs.
//!
//! A [`ChaosScenario`] bundles per-source [`FaultProfile`]s (latency
//! spikes, flapping outage windows, crash windows, breaker storms) and an
//! optional resilience posture. Applying the same scenario to two freshly
//! built environments and replaying the same workload must produce
//! bit-identical [`recovery_trace`]s — every fault roll, retry backoff,
//! breaker transition, and degradation decision rides the seeded RNGs and
//! the virtual clock, never the wall clock.

use eii::prelude::*;

/// A named, composable bundle of per-source faults.
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    pub name: String,
    /// Fault profile installed per source (merged when composed).
    pub faults: Vec<(String, FaultProfile)>,
    /// Sources hardened with retry/backoff and a circuit breaker.
    pub hardened: Vec<String>,
    /// Breaker settings for hardened sources. On a virtual clock that only
    /// moves when something waits, a long cooldown can outlive the whole
    /// run — chaos scenarios usually want it shorter than the default 1s.
    pub breaker: CircuitBreakerConfig,
}

impl ChaosScenario {
    /// An empty scenario (no faults, no hardening).
    pub fn new(name: &str) -> Self {
        ChaosScenario {
            name: name.to_string(),
            faults: Vec::new(),
            hardened: Vec::new(),
            breaker: CircuitBreakerConfig::default(),
        }
    }

    /// Override how long tripped breakers stay open before probing.
    pub fn breaker_cooldown(mut self, cooldown_ms: i64) -> Self {
        self.breaker.cooldown_ms = cooldown_ms;
        self
    }

    /// Add a fault profile for one source.
    pub fn fault(mut self, source: &str, profile: FaultProfile) -> Self {
        self.faults.push((source.to_string(), profile));
        self
    }

    /// Harden one source with standard retries and a circuit breaker.
    pub fn harden(mut self, source: &str) -> Self {
        self.hardened.push(source.to_string());
        self
    }

    /// Latency spikes: requests succeed but some stall `spike_ms`.
    pub fn latency_spikes(source: &str, prob: f64, spike_ms: i64, seed: u64) -> Self {
        ChaosScenario::new(&format!("spikes({source})"))
            .fault(source, FaultProfile::none().with_spikes(prob, spike_ms).with_seed(seed))
    }

    /// A flapping source: repeated outage windows of `down_ms` every
    /// `period_ms`, starting at `start_ms`.
    pub fn flapping(source: &str, start_ms: i64, period_ms: i64, down_ms: i64, windows: usize) -> Self {
        let mut profile = FaultProfile::none();
        for w in 0..windows as i64 {
            let s = start_ms + w * period_ms;
            profile = profile.with_outage(s, s + down_ms);
        }
        ChaosScenario::new(&format!("flap({source})")).fault(source, profile)
    }

    /// A crash window: the source dies hard for `[start_ms, end_ms)` —
    /// queries mid-stream over it fail until it comes back.
    pub fn crash(source: &str, start_ms: i64, end_ms: i64) -> Self {
        ChaosScenario::new(&format!("crash({source})"))
            .fault(source, FaultProfile::none().with_outage(start_ms, end_ms))
    }

    /// A breaker storm: a high fail rate on a hardened source, so the
    /// circuit breaker trips, fast-fails, and probes half-open.
    pub fn breaker_storm(source: &str, fail_prob: f64, seed: u64) -> Self {
        ChaosScenario::new(&format!("storm({source})"))
            .fault(source, FaultProfile::failing(fail_prob, seed))
            .harden(source)
    }

    /// Compose scenarios into one: faults hitting the same source merge
    /// (probabilities add and saturate, outage windows union, seeds mix),
    /// hardening unions.
    pub fn compose(name: &str, parts: &[ChaosScenario]) -> Self {
        let mut out = ChaosScenario::new(name);
        for part in parts {
            for (source, profile) in &part.faults {
                match out.faults.iter_mut().find(|(s, _)| s == source) {
                    Some((_, existing)) => *existing = merge(existing, profile),
                    None => out.faults.push((source.clone(), profile.clone())),
                }
            }
            for s in &part.hardened {
                if !out.hardened.contains(s) {
                    out.hardened.push(s.clone());
                }
            }
        }
        out
    }

    /// Install the scenario's faults and hardening on a system.
    pub fn apply(&self, system: &EiiSystem) -> Result<()> {
        for (source, profile) in &self.faults {
            system.federation().inject_faults(source, profile.clone())?;
        }
        for source in &self.hardened {
            system
                .federation()
                .harden(source, RetryPolicy::standard(), self.breaker)?;
        }
        Ok(())
    }
}

/// Merge two fault profiles targeting the same source.
fn merge(a: &FaultProfile, b: &FaultProfile) -> FaultProfile {
    let mut out = a.clone();
    out.fail_prob = (a.fail_prob + b.fail_prob).min(1.0);
    out.timeout_prob = (a.timeout_prob + b.timeout_prob).min(1.0);
    out.spike_prob = (a.spike_prob + b.spike_prob).min(1.0);
    out.spike_ms = a.spike_ms.max(b.spike_ms);
    out.deadline_ms = a.deadline_ms.max(b.deadline_ms);
    out.outages.extend(b.outages.iter().copied());
    out.seed = a.seed.wrapping_mul(31).wrapping_add(b.seed);
    out
}

/// Replay `queries` against a system under chaos, producing one
/// deterministic trace line per query: virtual timestamp, outcome, row
/// count, accounted latency, degradation, and retry totals. Two runs of
/// the same seed over freshly built environments must match byte for byte.
pub fn recovery_trace(system: &EiiSystem, queries: &[String]) -> Vec<String> {
    let mut trace = Vec::with_capacity(queries.len());
    for (i, sql) in queries.iter().enumerate() {
        let t0 = system.clock().now_ms();
        let line = match system.execute(sql) {
            Ok(out) => match out.query_result() {
                Ok(res) => format!(
                    "q{i:03} t={t0} ok rows={} sim={:.3} degraded={} retries={}",
                    res.batch.num_rows(),
                    res.cost.sim_ms,
                    res.degraded.len(),
                    system.federation().ledger().total().retries,
                ),
                Err(e) => format!("q{i:03} t={t0} err kind={}", e.kind()),
            },
            Err(e) => format!("q{i:03} t={t0} err kind={}", e.kind()),
        };
        trace.push(line);
    }
    trace
}

/// FNV-1a over the trace, for compact fingerprints in reports.
pub fn trace_fingerprint(trace: &[String]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for line in trace {
        for b in line.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= b'\n' as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composing_merges_same_source_faults_and_hardening() {
        let composed = ChaosScenario::compose(
            "mix",
            &[
                ChaosScenario::latency_spikes("crm", 0.2, 50, 7),
                ChaosScenario::crash("crm", 100, 200),
                ChaosScenario::breaker_storm("sales", 0.8, 9),
            ],
        );
        assert_eq!(composed.faults.len(), 2, "crm faults merged");
        let crm = &composed.faults.iter().find(|(s, _)| s == "crm").unwrap().1;
        assert_eq!(crm.spike_prob, 0.2);
        assert_eq!(crm.outages, vec![(100, 200)]);
        assert_eq!(composed.hardened, vec!["sales".to_string()]);
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let a = vec!["x".to_string(), "y".to_string()];
        let b = vec!["y".to_string(), "x".to_string()];
        assert_ne!(trace_fingerprint(&a), trace_fingerprint(&b));
        assert_eq!(trace_fingerprint(&a), trace_fingerprint(&a.clone()));
    }
}
