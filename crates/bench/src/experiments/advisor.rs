//! E20 — workload-driven self-tuning, measured: a skewed FedMark query
//! stream with **zero** hand-defined views, where the advisor alone mines
//! the query log, materializes the best candidates under its storage
//! budget as live incrementally-maintained views, and keeps them fresh
//! through a write stream. The gates are the self-tuning claims: bytes
//! shipped must drop at least [`MIN_REDUCTION`]x against the untuned
//! system, every answer must be identical, no human defines a view, and a
//! same-seed replay must be bit-identical — including the advisor's
//! recommendation sequence.

use eii::data::{EiiError, Result, Row};
use eii::prelude::*;
use eii::row;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fedmark::{sizes, FedMark};
use crate::report::{fmt_f, Report};
use crate::summary::BenchSummary;

/// Statements in the workload (queries + writes).
const STATEMENTS: usize = 120;
/// FedMark build seed and the workload's derived seed.
const SEED: u64 = 31;
/// Acceptance bar: the tuned run must ship at least this factor fewer
/// bytes than the untuned run over the same statement stream.
const MIN_REDUCTION: f64 = 2.0;

/// The skewed head of the workload: three IVM-eligible shapes (filter,
/// cross-source join, grouped join aggregate — no ORDER BY / DISTINCT /
/// LIMIT, which delta propagation cannot maintain) that soak up ~3/4 of
/// the statement stream. The advisor has to find these on its own.
const HOT: [&str; 3] = [
    "SELECT order_id, total FROM sales.orders WHERE status = 'open'",
    "SELECT c.name, o.total FROM crm.customers c \
     JOIN sales.orders o ON c.customer_id = o.customer_id \
     WHERE c.region = 'r1' AND o.total > 900",
    "SELECT c.region, COUNT(*) AS orders \
     FROM crm.customers c JOIN sales.orders o ON c.customer_id = o.customer_id \
     GROUP BY c.region",
];

struct Run {
    /// Sorted result rows per query statement, in stream order.
    answers: Vec<(usize, Vec<Row>)>,
    /// Per-query simulated latency.
    latencies: Vec<f64>,
    bytes: usize,
    /// Total simulated query time (the determinism signal alongside the
    /// byte ledger: a replay must land on the exact same value).
    sim_ms: f64,
    /// The advisor's executed-action journal (empty when untuned).
    digest: String,
    views_installed: usize,
    cycles: u64,
}

/// Drive the identical seeded statement stream against a fresh FedMark
/// build, with or without the advisor enabled. Nothing else differs.
fn run_config(tuned: bool) -> Result<Run> {
    let env = FedMark::build(1, SEED)?;
    if tuned {
        env.system.enable_advisor(AdvisorConfig {
            advise_every: 10,
            min_count: 3,
            ..AdvisorConfig::default()
        });
    }
    let (n_cust, n_ord, ..) = sizes(1);
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x20e5);
    let sales = env.system.federation().source("sales")?;
    let mut next_order = 1_000_000i64;
    let mut answers = Vec::new();
    let mut latencies = Vec::with_capacity(STATEMENTS);
    for i in 0..STATEMENTS {
        let pick = rng.gen_range(0..100);
        if pick < 10 {
            // A write: the installed views must stay fresh through it.
            sales.update(&UpdateOp::Insert {
                table: "orders".into(),
                row: row![
                    next_order,
                    rng.gen_range(0..n_cust),
                    (rng.gen_range(1..2000) as f64) / 2.0,
                    if rng.gen_bool(0.5) { "open" } else { "shipped" },
                    Value::Timestamp(rng.gen_range(0..1_000_000))
                ],
            })?;
            next_order += 1;
        } else {
            let sql = if pick < 85 {
                HOT[rng.gen_range(0..HOT.len())].to_string()
            } else {
                // The long tail: one-off point lookups whose fingerprints
                // never accumulate enough executions to be candidates.
                format!(
                    "SELECT name FROM crm.customers WHERE customer_id = {}",
                    rng.gen_range(0..n_cust)
                )
            };
            let out = env.system.execute(&sql)?;
            latencies.push(out.query_result()?.cost.sim_ms);
            let mut rows = out.rows()?.rows().to_vec();
            // Canonical row order: a view maintained by delta application
            // may serve rows in a different physical order.
            rows.sort();
            answers.push((i, rows));
        }
    }
    let _ = n_ord;
    let snap = env.system.metrics().snapshot();
    let views = env
        .system
        .matviews()
        .map_or(Vec::new(), |m| m.defs(env.clock.now_ms()));
    // Zero-admin gate: nothing in this experiment defines a view by hand,
    // so every servable view must be advisor-installed.
    for def in &views {
        if !def.name.starts_with("adv_") {
            return Err(EiiError::Execution(format!(
                "E20 found a non-advisor view: {}",
                def.name
            )));
        }
    }
    Ok(Run {
        answers,
        sim_ms: latencies.iter().sum(),
        latencies,
        bytes: env.system.federation().ledger().total().bytes,
        digest: env
            .system
            .advisor()
            .map_or(String::new(), |a| a.replay_digest()),
        views_installed: views.len(),
        cycles: snap.counter("advisor.cycles"),
    })
}

/// E20 — the advisor pays for itself. Errors (failing the harness and CI)
/// unless the tuned run ships `MIN_REDUCTION`x fewer bytes with
/// byte-identical answers, installs every view itself, and replays
/// bit-identically — recommendation sequence included.
pub fn e20_self_tuning() -> Result<Report> {
    let tuned = run_config(true)?;
    let untuned = run_config(false)?;
    let replay = run_config(true)?;

    let reduction = untuned.bytes as f64 / (tuned.bytes as f64).max(1.0);
    let mut report = Report::new(
        "e20",
        "workload-driven self-tuning: matview advisor on a skewed stream",
        "Halevy §7 — an EII deployment cannot assume a DBA who pre-defines \
         the right views; the system has to mine its own workload, \
         materialize what pays, and keep answers identical while doing it",
        &[
            "config",
            "statements",
            "bytes shipped",
            "views installed",
            "advisor cycles",
            "query sim ms",
        ],
    );
    for (name, run) in [("advisor", &tuned), ("untuned", &untuned)] {
        report.row(vec![
            name.to_string(),
            STATEMENTS.to_string(),
            run.bytes.to_string(),
            run.views_installed.to_string(),
            run.cycles.to_string(),
            format!("{:.1}", run.sim_ms),
        ]);
    }
    report.note(format!(
        "skewed workload: 3 hot shapes x ~75% of {STATEMENTS} statements + \
         one-off tail + ~10% writes; advisor ships {}x fewer bytes \
         (bar: {MIN_REDUCTION:.0}x) with zero hand-defined views",
        fmt_f(reduction),
    ));
    report.note(
        "every answer matches the untuned system row-for-row (canonical \
         order), and a same-seed replay reproduces the byte ledger, the \
         simulated latencies, and the advisor's recommendation sequence \
         exactly"
            .to_string(),
    );

    // CI regression gates.
    if reduction < MIN_REDUCTION {
        return Err(EiiError::Execution(format!(
            "advisor only cut bytes shipped by {reduction:.2}x — under the \
             {MIN_REDUCTION:.0}x bar ({} vs {} bytes)",
            tuned.bytes, untuned.bytes
        )));
    }
    if tuned.views_installed == 0 {
        return Err(EiiError::Execution(
            "advisor installed no views on a skewed workload".into(),
        ));
    }
    if tuned.answers != untuned.answers {
        return Err(EiiError::Execution(
            "self-tuning changed answers: tuned and untuned result streams \
             differ"
                .into(),
        ));
    }
    if replay.bytes != tuned.bytes
        || replay.sim_ms != tuned.sim_ms
        || replay.answers != tuned.answers
        || replay.digest != tuned.digest
    {
        return Err(EiiError::Execution(format!(
            "same-seed replay diverged: {} vs {} bytes, {:.3} vs {:.3} sim \
             ms, digests {}equal",
            replay.bytes,
            tuned.bytes,
            replay.sim_ms,
            tuned.sim_ms,
            if replay.digest == tuned.digest { "" } else { "un" },
        )));
    }

    BenchSummary::from_latencies("e20", &tuned.latencies, tuned.bytes)
        .with_extra("bytes_reduction", reduction)
        .with_extra("views_installed", tuned.views_installed as f64)
        .with_extra("advisor_cycles", tuned.cycles as f64)
        .with_extra("untuned_bytes", untuned.bytes as f64)
        .with_extra("sim_ms", tuned.sim_ms)
        .write()?;
    Ok(report)
}
