//! E15 — answering queries using views, measured: bytes shipped and
//! simulated latency for a repeated-query workload under four local-answer
//! configurations (nothing / materialized views / semantic result cache /
//! both), plus the crossover against always-federated execution.
//!
//! The repeated workload models the dashboard-style traffic EII hubs serve
//! in practice: the same query suite re-issued round after round. Matviews
//! cut the first round (single-scan subtrees answer locally); the cache
//! erases the repeats entirely.

use eii::data::{EiiError, Result};
use eii::prelude::*;

use crate::fedmark::FedMark;
use crate::report::{fmt_f, Report};
use crate::summary::BenchSummary;

/// Rounds of the full FedMark query suite per configuration; rounds after
/// the first are pure repeats, the cache's home turf.
const ROUNDS: usize = 4;
/// The acceptance bar: matview+cache must ship at most half the bytes of
/// plain federated execution on this workload.
const MIN_BYTES_FACTOR: f64 = 2.0;

/// Which local-answer machinery a configuration turns on.
#[derive(Clone, Copy)]
struct Config {
    name: &'static str,
    matviews: bool,
    cache: bool,
}

const CONFIGS: [Config; 4] = [
    Config {
        name: "federated",
        matviews: false,
        cache: false,
    },
    Config {
        name: "+matview",
        matviews: true,
        cache: false,
    },
    Config {
        name: "+cache",
        matviews: false,
        cache: true,
    },
    Config {
        name: "+matview+cache",
        matviews: true,
        cache: true,
    },
];

struct Run {
    bytes: usize,
    bytes_saved: usize,
    sim_total: f64,
    sim_round1: f64,
    sim_steady: f64,
    cache_hits: u64,
    matview_hits: u64,
    build_ms: f64,
    latencies: Vec<f64>,
}

/// Build a fresh FedMark environment under `cfg` and run the repeated
/// workload, collecting traffic and latency.
fn run_config(cfg: Config) -> Result<Run> {
    let env = FedMark::build(1, 23)?;
    let mut build_ms = 0.0;
    if cfg.matviews {
        // The two hottest scan targets in the suite: every Q1/Q2/Q3/Q5..Q11
        // touches customers; orders feeds the join-heavy queries over the
        // WAN link where shipped bytes hurt most.
        build_ms += env.system.define_matview(
            "mv_customers",
            "SELECT * FROM crm.customers",
            RefreshPolicy::Manual,
        )?;
        build_ms += env.system.define_matview(
            "mv_orders",
            "SELECT * FROM sales.orders",
            RefreshPolicy::Manual,
        )?;
    }
    if cfg.cache {
        env.system.install_result_cache(CacheConfig::default());
    }
    // Materialization itself ships rows; measure the workload from here so
    // `bytes` is what the queries cost and `build_ms` is the investment.
    env.system.federation().ledger().reset();

    let mut sim_total = 0.0;
    let mut sim_round1 = 0.0;
    let mut latencies = Vec::new();
    for round in 0..ROUNDS {
        for (_, _, sql) in FedMark::queries() {
            let out = env.system.execute(sql)?;
            let cost = out.query_result()?.cost;
            sim_total += cost.sim_ms;
            latencies.push(cost.sim_ms);
            if round == 0 {
                sim_round1 += cost.sim_ms;
            }
        }
    }
    let traffic = env.system.federation().ledger().total();
    let snap = env.system.metrics().snapshot();
    Ok(Run {
        bytes: traffic.bytes,
        bytes_saved: traffic.bytes_saved,
        sim_total,
        sim_round1,
        sim_steady: (sim_total - sim_round1) / (ROUNDS - 1) as f64,
        cache_hits: snap.counter("cache.hits"),
        matview_hits: snap.counter("matview.hits"),
        build_ms,
        latencies,
    })
}

/// E15 — local-answer ablation on the repeated FedMark workload. Errors
/// (failing the harness and CI) unless the cache strictly reduces shipped
/// bytes, matview+cache reaches the 2x reduction bar, and a disabled cache
/// leaves the simulation untouched.
pub fn e15_views_and_cache() -> Result<Report> {
    let runs: Vec<(Config, Run)> = CONFIGS
        .iter()
        .map(|&cfg| run_config(cfg).map(|r| (cfg, r)))
        .collect::<Result<_>>()?;

    let mut report = Report::new(
        "e15",
        "answering queries using views: matview rewrite + semantic cache",
        "Halevy §3 — rewriting queries onto materialized views and memoizing \
         whole results slashes the bytes a federation ships for repeated \
         workloads, without silently serving stale answers",
        &[
            "config",
            "bytes shipped",
            "bytes saved",
            "sim ms (total)",
            "sim ms (round 1)",
            "sim ms (steady round)",
            "cache hits",
            "matview hits",
        ],
    );
    for (cfg, r) in &runs {
        report.row(vec![
            cfg.name.to_string(),
            r.bytes.to_string(),
            r.bytes_saved.to_string(),
            fmt_f(r.sim_total),
            fmt_f(r.sim_round1),
            fmt_f(r.sim_steady),
            r.cache_hits.to_string(),
            r.matview_hits.to_string(),
        ]);
    }

    let federated = &runs[0].1;
    let matview = &runs[1].1;
    let cache = &runs[2].1;
    let both = &runs[3].1;

    // Crossover against always-federated: after how many rounds does the
    // matview investment (build cost + cheaper rounds) pay for itself?
    let per_round_gain = federated.sim_total / ROUNDS as f64 - both.sim_steady;
    let crossover = if per_round_gain > 0.0 {
        format!("{:.1} rounds", both.build_ms / per_round_gain)
    } else {
        "never".to_string()
    };
    report.note(format!(
        "{} queries x {ROUNDS} rounds at sf=1; matview build cost {:.1} sim ms; \
         crossover vs always-federated after {crossover}",
        FedMark::queries().len(),
        both.build_ms,
    ));
    report.note(format!(
        "bytes reduction: matview+cache ships {}x fewer bytes than federated \
         (bar: {MIN_BYTES_FACTOR:.0}x)",
        fmt_f(federated.bytes as f64 / both.bytes.max(1) as f64)
    ));

    // CI regression gates.
    if cache.bytes >= federated.bytes {
        return Err(EiiError::Execution(format!(
            "result cache did not reduce shipped bytes: {} (cached) vs {} \
             (federated)",
            cache.bytes, federated.bytes
        )));
    }
    if (federated.bytes as f64) < MIN_BYTES_FACTOR * both.bytes as f64 {
        return Err(EiiError::Execution(format!(
            "matview+cache shipped {} bytes vs {} federated — under the \
             {MIN_BYTES_FACTOR:.0}x reduction bar",
            both.bytes, federated.bytes
        )));
    }
    if matview.cache_hits != 0 || federated.cache_hits != 0 {
        return Err(EiiError::Execution(
            "cache hits recorded in a configuration with the cache disabled".into(),
        ));
    }
    // A disabled cache must not perturb the simulation, and the cache's
    // probe/fill path must be free in simulated time: round 1 (all misses)
    // matches the federated baseline exactly.
    if cache.sim_round1 != federated.sim_round1 {
        return Err(EiiError::Execution(format!(
            "cache probe/fill changed simulated time on a miss-only round: \
             {} vs {} ms",
            cache.sim_round1, federated.sim_round1
        )));
    }

    BenchSummary::from_latencies("e15", &both.latencies, both.bytes)
        .with_extra("cache_hits", both.cache_hits as f64)
        .with_extra("matview_hits", both.matview_hits as f64)
        .write()?;
    Ok(report)
}
