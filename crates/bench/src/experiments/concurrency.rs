//! E16 — concurrent multi-session throughput.
//!
//! Runs the FedMark Q1–Q10 suite through the admission-controlled
//! scheduler at increasing session counts and reports throughput plus
//! p50/p95 per-query latency on the deterministic virtual timeline
//! (simulated ms; the single-core CI box makes wall-clock parallelism
//! unobservable, so the scheduler assigns each completed job's simulated
//! cost to the least-loaded virtual worker slot). Gates, enforced here so
//! CI fails when they regress:
//!
//! - near-linear scaling: 16 sessions must finish the same workload at
//!   least 3x faster (virtual makespan) than 1 session;
//! - exact accounting: total ledger bytes and rows under concurrency must
//!   equal the serial run's, byte for byte.

use eii::data::{EiiError, Result};
use eii::prelude::AdmissionConfig;

use crate::fedmark::FedMark;
use crate::report::Report;
use crate::summary::BenchSummary;

/// Sessions per run; each session submits the whole Q1–Q10 suite.
const SESSIONS: [usize; 4] = [1, 4, 16, 64];
const SEED: u64 = 61;
/// CI gate: minimum virtual-timeline speedup at 16 sessions versus 1.
const MIN_SPEEDUP_AT_16: f64 = 3.0;

struct Run {
    makespan_ms: f64,
    serial_ms: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    completed: u64,
    bytes: usize,
    rows: usize,
}

/// One fresh environment, `sessions` workers admitted over it, every
/// session submitting the full suite.
fn run_concurrent(sessions: usize) -> Result<Run> {
    let env = FedMark::build(1, SEED)?;
    let scheduler = env.system.scheduler(
        AdmissionConfig::with_workers(sessions).with_source_permits(sessions.div_ceil(2).max(1)),
    );
    let mut tickets = Vec::new();
    for _ in 0..sessions {
        for (_, _, sql) in FedMark::queries() {
            tickets.push(scheduler.submit(sql, "public"));
        }
    }
    for t in tickets {
        t.join()?;
    }
    let stats = scheduler.finish();
    let total = env.system.federation().ledger().total();
    Ok(Run {
        makespan_ms: stats.makespan_ms,
        serial_ms: stats.serial_sim_ms,
        p50_ms: stats.latency_percentile(50.0),
        p95_ms: stats.latency_percentile(95.0),
        p99_ms: stats.latency_percentile(99.0),
        completed: stats.completed,
        bytes: total.bytes,
        rows: total.rows,
    })
}

/// Serial oracle: the same per-session workload executed inline, giving
/// the byte/row accounting concurrency must reproduce exactly (per
/// session, since each concurrent session ships the suite once).
fn run_serial_oracle() -> Result<(usize, usize)> {
    let env = FedMark::build(1, SEED)?;
    for (_, _, sql) in FedMark::queries() {
        env.system.execute(sql)?;
    }
    let total = env.system.federation().ledger().total();
    Ok((total.bytes, total.rows))
}

pub fn e16_concurrent_sessions() -> Result<Report> {
    let mut report = Report::new(
        "e16",
        "Concurrent multi-session throughput",
        "An admission-controlled worker pool over one shared Arc<EiiSystem> scales \
         near-linearly with session count while keeping byte accounting identical to serial",
        &[
            "sessions",
            "queries",
            "serial sim (ms)",
            "makespan (ms)",
            "speedup",
            "p50 (ms)",
            "p95 (ms)",
            "bytes",
        ],
    );

    let (serial_bytes, serial_rows) = run_serial_oracle()?;
    let mut speedup_at_16 = 0.0;
    for sessions in SESSIONS {
        let run = run_concurrent(sessions)?;
        let speedup = run.serial_ms / run.makespan_ms.max(f64::EPSILON);
        if sessions == 16 {
            speedup_at_16 = speedup;
            // Headline summary: throughput on the parallel virtual
            // timeline (completed jobs over makespan), not the serial sum.
            BenchSummary {
                id: "e16".to_string(),
                queries: run.completed as usize,
                throughput_qps: run.completed as f64
                    / (run.makespan_ms.max(f64::EPSILON) / 1000.0),
                p50_ms: run.p50_ms,
                p99_ms: run.p99_ms,
                bytes_shipped: run.bytes,
                extra: vec![("speedup".to_string(), speedup)],
            }
            .write()?;
        }

        // Gate (b): concurrency must not change what was shipped. Every
        // session runs the suite once, so totals are exact multiples of
        // the serial oracle's.
        if run.bytes != serial_bytes * sessions || run.rows != serial_rows * sessions {
            return Err(EiiError::Execution(format!(
                "E16 accounting drift at {sessions} sessions: {} bytes / {} rows \
                 concurrent vs {} / {} serial x{sessions}",
                run.bytes,
                run.rows,
                serial_bytes * sessions,
                serial_rows * sessions,
            )));
        }

        report.row(vec![
            sessions.to_string(),
            run.completed.to_string(),
            format!("{:.1}", run.serial_ms),
            format!("{:.1}", run.makespan_ms),
            format!("{speedup:.2}x"),
            format!("{:.2}", run.p50_ms),
            format!("{:.2}", run.p95_ms),
            run.bytes.to_string(),
        ]);
    }

    // Gate (a): the pool must actually spread work across sessions.
    if speedup_at_16 < MIN_SPEEDUP_AT_16 {
        return Err(EiiError::Execution(format!(
            "E16 scaling regression: {speedup_at_16:.2}x speedup at 16 sessions \
             (gate: >= {MIN_SPEEDUP_AT_16:.1}x)"
        )));
    }

    report.note(format!(
        "bytes identical to the serial oracle at every session count \
         ({serial_bytes} per session); speedup at 16 sessions: {speedup_at_16:.2}x \
         (gate >= {MIN_SPEEDUP_AT_16:.1}x)"
    ));
    report.note(
        "latencies and makespan are simulated ms on the scheduler's deterministic \
         virtual timeline (single-core CI cannot observe wall-clock parallelism)",
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_gates_hold() {
        let report = e16_concurrent_sessions().expect("E16 gates");
        assert_eq!(report.rows.len(), SESSIONS.len());
    }
}
