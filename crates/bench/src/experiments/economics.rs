//! Economics experiments: E1 (EII vs warehouse crossover), E2 (schema-
//! centric vs schema-less administration), E7 (mapping topologies).

use std::sync::Arc;

use eii::data::{DataType, Result};
use eii::prelude::*;
use eii::semantics::ontology::enterprise_ontology;
use eii::semantics::{
    measure_agility, AdminLedger, AdminOp, HubRegistry, MappingRegistry, PairwiseRegistry,
    SchemaChange, SourceSchema,
};
use eii::warehouse::{EtlJob, RefreshMode, Warehouse};

use crate::fedmark::FedMark;
use crate::report::{fmt_f, Report};

/// E1 — "the tradeoffs between the cost of building a warehouse, the cost
/// of a live query and the cost of accessing stale data" (Halevy §1).
///
/// One simulated day: the warehouse refreshes hourly; EII pays per query.
/// Sweep the daily query volume and report total cost and average data
/// staleness for both.
pub fn e1_eii_vs_warehouse() -> Result<Report> {
    let mut report = Report::new(
        "e1",
        "EII vs warehouse: total daily cost and staleness vs query volume",
        "Halevy §1 / Bitton §3 — EII wins at low volumes and for freshness; \
         the warehouse amortizes its refresh cost at high volumes",
        &[
            "queries/day",
            "EII cost (sim ms)",
            "WH cost (sim ms)",
            "cheaper",
            "EII staleness",
            "WH avg staleness (min)",
        ],
    );
    let sql = "SELECT c.region, COUNT(*) AS orders, SUM(o.total) AS revenue \
               FROM crm.customers c JOIN sales.orders o ON c.customer_id = o.customer_id \
               GROUP BY c.region";

    // Per-query live cost (measured once; queries are identical).
    let env = FedMark::build(1, 11)?;
    let live = env.system.execute(sql)?;
    let live_ms = live.query_result()?.cost.sim_ms;

    // Warehouse: hourly full refresh of the two tables the query needs.
    let mut wh = Warehouse::new("wh", env.system.federation().clone(), env.clock.clone());
    wh.add_job(EtlJob::copy("c", "crm.customers", "customers").with_key("customer_id"))?;
    wh.add_job(EtlJob::copy("o", "sales.orders", "orders").with_key("order_id"))?;
    let mut refresh_day_ms = 0.0;
    for _ in 0..24 {
        refresh_day_ms += wh.refresh_all(RefreshMode::Full)?;
    }
    let wh_sys = EiiSystem::new(env.clock.clone());
    wh_sys.add_source(
        Arc::new(RelationalConnector::new(wh.database().clone())),
        LinkProfile::local(),
        WireFormat::Native,
    )?;
    let wh_query = wh_sys.execute(&FedMark::warehouse_sql(sql))?;
    let wh_ms = wh_query.query_result()?.cost.sim_ms;

    for q in [1usize, 10, 50, 200, 1000, 5000] {
        let eii_total = live_ms * q as f64;
        let wh_total = refresh_day_ms + wh_ms * q as f64;
        report.row(vec![
            q.to_string(),
            fmt_f(eii_total),
            fmt_f(wh_total),
            if eii_total < wh_total { "EII" } else { "warehouse" }.to_string(),
            "0 (live)".to_string(),
            "30".to_string(), // hourly refresh -> 30 min expected staleness
        ]);
    }
    report.note(format!(
        "per-query live cost {:.1} ms; per-query warehouse cost {:.3} ms; daily refresh bill {:.0} ms",
        live_ms, wh_ms, refresh_day_ms
    ));
    report.note("crossover where q * (live - local) = daily refresh cost".to_string());
    Ok(report)
}

/// E2 — Ashish §2: schema-centric mediation costs grow with every source,
/// while the schema-less (NETMARK) approach only pays onboarding.
pub fn e2_schema_economics() -> Result<Report> {
    let mut report = Report::new(
        "e2",
        "administration effort vs number of integrated sources",
        "Ashish §2 — schema-centric approaches pay per-source mapping work; \
         schema-less integration approaches constant marginal cost",
        &[
            "sources",
            "pairwise effort",
            "mediated (hub) effort",
            "schema-less effort",
            "pairwise marginal",
            "hub marginal",
            "schema-less marginal",
        ],
    );
    let spellings: Vec<Vec<(&str, DataType)>> = vec![
        vec![("cust_id", DataType::Int), ("cust_nm", DataType::Str), ("reg", DataType::Str)],
        vec![("customerId", DataType::Int), ("customerName", DataType::Str), ("region", DataType::Str)],
        vec![("id", DataType::Int), ("name", DataType::Str), ("segment", DataType::Str)],
        vec![("CUST_NO", DataType::Int), ("NM", DataType::Str), ("REGION", DataType::Str)],
    ];
    let schema = |i: usize| SourceSchema {
        name: format!("sys{i}"),
        columns: spellings[i % spellings.len()]
            .iter()
            .map(|(n, t)| (n.to_string(), *t))
            .collect(),
    };

    let mut pairwise = PairwiseRegistry::new(AdminLedger::new());
    let mut hub = HubRegistry::new(enterprise_ontology(), AdminLedger::new());
    let schemaless = AdminLedger::new();
    let mut prev = (0.0, 0.0, 0.0);
    let checkpoints = [1usize, 2, 4, 8, 16, 32, 64];
    let mut next_idx = 0;
    for n in 1..=64usize {
        pairwise.register(schema(n - 1))?;
        hub.register(schema(n - 1))?;
        // Schema-less: drop the documents in; no schema, no mappings.
        schemaless.charge(AdminOp::SourceOnboarded, 1);
        if checkpoints.get(next_idx) == Some(&n) {
            next_idx += 1;
            let now = (
                pairwise.ledger().total_effort(),
                hub.ledger().total_effort(),
                schemaless.total_effort(),
            );
            report.row(vec![
                n.to_string(),
                fmt_f(now.0),
                fmt_f(now.1),
                fmt_f(now.2),
                fmt_f(now.0 - prev.0),
                fmt_f(now.1 - prev.1),
                fmt_f(now.2 - prev.2),
            ]);
            prev = now;
        }
    }
    report.note("marginal = effort added since the previous row".to_string());
    report.note(format!(
        "pairwise maintains {} mappings at N=64; the hub maintains {}",
        pairwise.mapping_count(),
        hub.mapping_count()
    ));
    Ok(report)
}

/// E7 — Pollock §6 / Rosenthal §7: mapping counts by topology and the
/// agility metric under a standard change script.
pub fn e7_mapping_topologies() -> Result<Report> {
    let mut report = Report::new(
        "e7",
        "mapping topologies and agility under schema evolution",
        "Rosenthal §7 — measure integration agility for predictable changes; \
         hub repairs O(1) mappings per change, pairwise O(N)",
        &[
            "schemas",
            "pairwise mappings",
            "hub mappings",
            "pw touched/change",
            "hub touched/change",
            "pw repair effort",
            "hub repair effort",
        ],
    );
    for n in [4usize, 8, 16, 32, 48] {
        let mut pairwise = PairwiseRegistry::new(AdminLedger::new());
        let mut hub = HubRegistry::new(enterprise_ontology(), AdminLedger::new());
        for i in 0..n {
            let s = SourceSchema::new(
                format!("sys{i}"),
                vec![
                    ("cust_id", DataType::Int),
                    ("cust_nm", DataType::Str),
                    ("region", DataType::Str),
                ],
            );
            pairwise.register(s.clone())?;
            hub.register(s)?;
        }
        let script = vec![
            (
                "sys0".to_string(),
                SchemaChange::RenameColumn {
                    from: "cust_nm".into(),
                    to: "customer_name".into(),
                },
            ),
            (
                "sys1".to_string(),
                SchemaChange::ChangeType {
                    name: "cust_id".into(),
                    data_type: DataType::Str,
                },
            ),
            (
                "sys2".to_string(),
                SchemaChange::RemoveColumn {
                    name: "region".into(),
                },
            ),
        ];
        let pw_mappings = pairwise.mapping_count();
        let hub_mappings = hub.mapping_count();
        let pw = measure_agility(&mut pairwise, &script)?;
        let hb = measure_agility(&mut hub, &script)?;
        report.row(vec![
            n.to_string(),
            pw_mappings.to_string(),
            hub_mappings.to_string(),
            fmt_f(pw.touched_per_change),
            fmt_f(hb.touched_per_change),
            fmt_f(pw.admin_effort),
            fmt_f(hb.admin_effort),
        ]);
    }
    report.note("script: one rename, one type change, one column removal".to_string());
    Ok(report)
}
