//! Query-engine experiments: E3 (pushdown ablation), E4 (views vs
//! hand-written plans), E9 (FedMark), E11 (dialect modeling), E12
//! (execution-time prediction).

use std::sync::Arc;

use eii::data::Result;
use eii::prelude::*;
use eii::row;
use eii::warehouse::{EtlJob, RefreshMode, Warehouse};

use crate::fedmark::{sizes, FedMark};
use crate::report::{fmt_f, Report};

fn measure(sys: &EiiSystem, sql: &str) -> Result<(usize, usize, f64)> {
    sys.federation().ledger().reset();
    let out = sys.execute(sql)?;
    let res = out.query_result()?;
    Ok((
        res.batch.num_rows(),
        sys.federation().ledger().total().bytes,
        res.cost.sim_ms,
    ))
}

/// E3 — Bitton §3's indictment of "pull out the relevant data from all the
/// data sources and process it entirely there": the optimization ladder
/// from naive-XML shipping to the full optimizer, across selectivities.
pub fn e3_pushdown_ablation() -> Result<Report> {
    let mut report = Report::new(
        "e3",
        "pushdown ablation: bytes shipped and time vs optimization level",
        "Bitton §3 — naive pull-everything (XML) is catastrophic; each \
         optimization (native wire, filter pushdown, projection+join \
         planning) cuts shipped volume",
        &[
            "selectivity",
            "config",
            "rows out",
            "bytes shipped",
            "sim ms",
            "vs naive-xml",
        ],
    );
    let (n_cust, ..) = sizes(1);
    for frac in [0.01f64, 0.10, 0.50] {
        let k = (n_cust as f64 * frac) as i64;
        let sql = format!(
            "SELECT c.name, o.total FROM crm.customers c \
             JOIN sales.orders o ON c.customer_id = o.customer_id \
             WHERE c.customer_id < {k}"
        );
        let mut baseline_bytes = 0usize;
        for (label, config, xml) in [
            ("naive + XML wire", PlannerConfig::naive(), true),
            ("naive", PlannerConfig::naive(), false),
            ("+ filter pushdown", PlannerConfig::filters_only(), false),
            ("full optimizer", PlannerConfig::optimized(), false),
        ] {
            let env = FedMark::build_with_config(1, 23, config)?;
            if xml {
                for s in ["crm", "sales"] {
                    env.system.federation().set_wire_format(s, WireFormat::Xml)?;
                }
            }
            let (rows, bytes, ms) = measure(&env.system, &sql)?;
            if label == "naive + XML wire" {
                baseline_bytes = bytes;
            }
            report.row(vec![
                format!("{:.0}%", frac * 100.0),
                label.to_string(),
                rows.to_string(),
                bytes.to_string(),
                fmt_f(ms),
                format!("{:.1}%", bytes as f64 / baseline_bytes as f64 * 100.0),
            ]);
        }
    }
    report.note("same result rows at every level; only the plan changes".to_string());
    Ok(report)
}

/// E4 — Carey §4: "constructing the EAI business process is like
/// hand-writing a distributed query plan ... let the system choose the
/// right query plan for each of the different employee queries."
///
/// The hand-coded integration fetches every backend fully and stitches at
/// the client (one fixed plan for all access paths); the EII view lets the
/// optimizer specialize per query.
pub fn e4_views_vs_handwritten() -> Result<Report> {
    let mut report = Report::new(
        "e4",
        "single view of employee: hand-written fixed plan vs optimizer",
        "Carey §4 — a fixed hand-written plan serves every access path at \
         full-scan cost; the planner specializes each query",
        &[
            "access path",
            "fixed-plan bytes",
            "fixed-plan ms",
            "optimizer bytes",
            "optimizer ms",
            "bytes saved",
        ],
    );
    let build = |config: PlannerConfig| -> Result<EiiSystem> {
        let clock = SimClock::new();
        let mk = |name: &str, cols: Vec<Field>, keycol: usize| -> Result<Database> {
            let db = Database::new(name, clock.clone());
            db.create_table(
                TableDef::new("t", Arc::new(Schema::new(cols))).with_primary_key(keycol),
            )?;
            Ok(db)
        };
        let hr = mk(
            "hr",
            vec![
                Field::new("emp_id", DataType::Int).not_null(),
                Field::new("name", DataType::Str),
                Field::new("department", DataType::Str),
            ],
            0,
        )?;
        let fac = mk(
            "facilities",
            vec![
                Field::new("office_id", DataType::Int).not_null(),
                Field::new("occupant", DataType::Int),
                Field::new("location", DataType::Str),
            ],
            0,
        )?;
        let it = mk(
            "it",
            vec![
                Field::new("asset_id", DataType::Int).not_null(),
                Field::new("owner", DataType::Int),
                Field::new("model", DataType::Str),
            ],
            0,
        )?;
        for i in 0..300i64 {
            hr.table("t")?
                .write()
                .insert(row![i, format!("emp {i}"), format!("dept{}", i % 6)])?;
            fac.table("t")?
                .write()
                .insert(row![i, i, format!("loc{}", i % 4)])?;
            it.table("t")?
                .write()
                .insert(row![i, i, format!("model{}", i % 9)])?;
        }
        let mut builder = EiiSystem::builder(clock).planner_config(config);
        for db in [hr, fac, it] {
            builder = builder.source(
                Arc::new(RelationalConnector::new(db)),
                LinkProfile::wan(),
                WireFormat::Native,
            );
        }
        let sys = builder.build_owned()?;
        sys.execute(
            "CREATE VIEW employee_view AS \
             SELECT e.emp_id, e.name, e.department, o.location, a.model \
             FROM hr.t e JOIN facilities.t o ON e.emp_id = o.occupant \
             JOIN it.t a ON e.emp_id = a.owner",
        )?;
        Ok(sys)
    };

    let patterns = [
        ("by employee id", "SELECT name FROM employee_view WHERE emp_id = 17"),
        ("by department", "SELECT name FROM employee_view WHERE department = 'dept2'"),
        ("by location", "SELECT name FROM employee_view WHERE location = 'loc1'"),
        ("by computer model", "SELECT name FROM employee_view WHERE model = 'model3'"),
    ];
    // The fixed plan: what the hand-coded EAI process does — pull all three
    // systems fully and stitch at the portal, for every access path alike.
    let fixed = build(PlannerConfig::naive())?;
    let optimizer = build(PlannerConfig::optimized())?;
    for (label, sql) in patterns {
        let (r1, fixed_bytes, fixed_ms) = measure(&fixed, sql)?;
        let (r2, opt_bytes, opt_ms) = measure(&optimizer, sql)?;
        assert_eq!(r1, r2, "plans must agree on {label}");
        report.row(vec![
            label.to_string(),
            fixed_bytes.to_string(),
            fmt_f(fixed_ms),
            opt_bytes.to_string(),
            fmt_f(opt_ms),
            format!(
                "{:.0}%",
                (1.0 - opt_bytes as f64 / fixed_bytes as f64) * 100.0
            ),
        ]);
    }
    report.note(
        "the fixed plan's cost is identical for every path; the optimizer's \
         scales with each predicate's selectivity"
            .to_string(),
    );
    Ok(report)
}

/// E9 — the FedMark suite: per-query latency and volume, EII vs warehouse,
/// across scale factors.
pub fn e9_fedmark() -> Result<Report> {
    let mut report = Report::new(
        "e9",
        "FedMark Q1-Q10: live EII vs hourly-refreshed warehouse",
        "Bitton §3 — a TPC-style benchmark for EII; the warehouse wins raw \
         latency once loaded, EII wins freshness and reaches sources the \
         warehouse cannot bulk-extract (Q8)",
        &[
            "sf",
            "query",
            "rows",
            "EII ms",
            "EII bytes",
            "WH ms",
            "EII/WH",
        ],
    );
    for sf in [1usize, 2, 5] {
        let env = FedMark::build(sf, 31)?;
        // Load the warehouse once.
        let mut wh = Warehouse::new("wh", env.system.federation().clone(), env.clock.clone());
        for (table, key) in FedMark::loadable_tables() {
            let target = table.split_once('.').expect("qualified").1;
            wh.add_job(EtlJob::copy(format!("j_{target}"), table, target).with_key(key))?;
        }
        wh.refresh_all(RefreshMode::Full)?;
        let wh_sys = EiiSystem::new(env.clock.clone());
        wh_sys.add_source(
            Arc::new(RelationalConnector::new(wh.database().clone())),
            LinkProfile::local(),
            WireFormat::Native,
        )?;

        for (id, _desc, sql) in FedMark::queries() {
            let (rows, bytes, eii_ms) = measure(&env.system, sql)?;
            let (wh_ms_text, ratio) = if id == "Q8" {
                ("n/a (access-limited)".to_string(), "-".to_string())
            } else {
                let wh_sql = FedMark::warehouse_sql(sql);
                let (wrows, _, wh_ms) = measure(&wh_sys, &wh_sql)?;
                assert_eq!(rows, wrows, "{id}: warehouse result diverges");
                (fmt_f(wh_ms), format!("{:.0}x", eii_ms / wh_ms.max(1e-9)))
            };
            report.row(vec![
                sf.to_string(),
                id.to_string(),
                rows.to_string(),
                fmt_f(eii_ms),
                bytes.to_string(),
                wh_ms_text,
                ratio,
            ]);
        }
    }
    report.note("warehouse numbers exclude its standing refresh cost (see E1)".to_string());
    Ok(report)
}

/// E11 — Draper §5: fine-grained dialect modeling "had a decisive impact on
/// our performance on every comparison we were ever able to make".
pub fn e11_dialect_ablation() -> Result<Report> {
    let mut report = Report::new(
        "e11",
        "dialect modeling: fine-grained vs lowest-common-denominator wrapper",
        "Draper §5 — modeling vendor quirks finely lets predicates push that \
         a generic wrapper must evaluate at the assembly site",
        &[
            "predicate shape",
            "fine bytes",
            "fine ms",
            "LCD bytes",
            "LCD ms",
            "LCD/fine bytes",
        ],
    );
    let queries = [
        ("equality", "SELECT name FROM crm.customers WHERE region = 'r1'"),
        (
            "range",
            "SELECT name FROM crm.customers WHERE customer_id > 50 AND customer_id < 80",
        ),
        ("LIKE", "SELECT name FROM crm.customers WHERE name LIKE 'acme%'"),
        (
            "IN list",
            "SELECT name FROM crm.customers WHERE region IN ('r1', 'r2', 'r3')",
        ),
        (
            "function",
            "SELECT name FROM crm.customers WHERE UPPER(segment) = 'S1'",
        ),
        (
            "disjunction",
            "SELECT name FROM crm.customers WHERE region = 'r1' OR segment = 's2'",
        ),
    ];
    let fine = FedMark::build(1, 37)?;
    let mut lcd_cfg = PlannerConfig::optimized();
    lcd_cfg.dialect_override = Some(eii::federation::Dialect::lowest_common_denominator());
    let lcd = FedMark::build_with_config(1, 37, lcd_cfg)?;
    for (label, sql) in queries {
        let (r1, fine_bytes, fine_ms) = measure(&fine.system, sql)?;
        let (r2, lcd_bytes, lcd_ms) = measure(&lcd.system, sql)?;
        assert_eq!(r1, r2, "{label}");
        report.row(vec![
            label.to_string(),
            fine_bytes.to_string(),
            fmt_f(fine_ms),
            lcd_bytes.to_string(),
            fmt_f(lcd_ms),
            format!("{:.1}x", lcd_bytes as f64 / fine_bytes as f64),
        ]);
    }
    report.note(
        "the LCD wrapper still pushes bare equality; everything else ships whole \
         tables"
            .to_string(),
    );
    Ok(report)
}

/// E12 — Sikka §8: "query optimization and query execution-time prediction
/// ... continue to be underserved issues". How well does our cost model
/// predict?
pub fn e12_prediction() -> Result<Report> {
    let mut report = Report::new(
        "e12",
        "execution-time prediction: predicted vs measured",
        "Sikka §8 — prediction should at least rank queries correctly even \
         when absolute numbers drift",
        &["query", "predicted ms", "measured ms", "ratio"],
    );
    let env = FedMark::build(2, 41)?;
    let mut predicted = Vec::new();
    let mut measured = Vec::new();
    for (id, _desc, sql) in FedMark::queries() {
        let est = env.system.predict(sql)?;
        let out = env.system.execute(sql)?;
        let actual = out.query_result()?.cost.sim_ms;
        predicted.push(est.sim_ms);
        measured.push(actual);
        report.row(vec![
            id.to_string(),
            fmt_f(est.sim_ms),
            fmt_f(actual),
            format!("{:.2}", est.sim_ms / actual.max(1e-9)),
        ]);
    }
    let rho = spearman(&predicted, &measured);
    report.note(format!(
        "Spearman rank correlation predicted-vs-measured: {rho:.2} (1.0 = perfect ordering)"
    ));
    Ok(report)
}

/// Spearman rank correlation of two equally-long samples.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    fn ranks(xs: &[f64]) -> Vec<f64> {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.sort_by(|&i, &j| xs[i].total_cmp(&xs[j]));
        let mut r = vec![0.0; xs.len()];
        for (rank, &i) in idx.iter().enumerate() {
            r[i] = rank as f64;
        }
        r
    }
    let (ra, rb) = (ranks(a), ranks(b));
    let n = a.len() as f64;
    if n < 2.0 {
        return 1.0;
    }
    let d2: f64 = ra
        .iter()
        .zip(&rb)
        .map(|(x, y)| (x - y) * (x - y))
        .sum();
    1.0 - 6.0 * d2 / (n * (n * n - 1.0))
}
