//! E19 — incremental view maintenance, measured: refresh cost under a
//! sustained write stream for a view set maintained by delta propagation
//! versus full recompute, plus freshness (IVM contents must equal a full
//! recompute after every churn round) and determinism (same-seed runs land
//! on bit-identical simulated clocks and view contents).
//!
//! The workload models the live-dashboard traffic ROADMAP calls IVM "the
//! single biggest unlock" for: a fixed view set (filter/project, cross-
//! source join, grouped aggregate) kept fresh while ~1% of the order book
//! churns per round. The gate is the paper's economic claim — refresh cost
//! must scale with the change, not the data.

use eii::data::{EiiError, Result, Row};
use eii::prelude::*;
use eii::row;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fedmark::{sizes, FedMark};
use crate::report::{fmt_f, Report};
use crate::summary::BenchSummary;

/// Churn rounds after the initial materialization.
const ROUNDS: usize = 20;
/// FedMark build seed and the write stream's derived seed.
const SEED: u64 = 29;
/// Acceptance bar: incremental refresh must be at least this much cheaper
/// than full recompute over the steady-state rounds.
const MIN_SPEEDUP: f64 = 10.0;

/// The maintained view set: one stateless pipeline, one cross-source
/// equi-join, one grouped aggregate with mergeable partials.
const VIEWS: [(&str, &str); 3] = [
    (
        "v_open_orders",
        "SELECT order_id, total FROM sales.orders WHERE status = 'open'",
    ),
    (
        "v_customer_orders",
        "SELECT c.name, o.order_id FROM crm.customers c \
         JOIN sales.orders o ON c.customer_id = o.customer_id",
    ),
    (
        "v_product_units",
        "SELECT product_id, COUNT(*) AS n, SUM(qty) AS units \
         FROM sales.lineitems GROUP BY product_id",
    ),
];

struct Run {
    /// Per-round total refresh cost across the view set, steady state.
    round_ms: Vec<f64>,
    /// Sum of `round_ms`.
    total_ms: f64,
    /// Delta rows consumed by maintenance (incremental config only).
    delta_rows: u64,
    /// Final contents of each view, canonically sorted.
    finals: Vec<(String, Vec<Row>)>,
    /// Simulated clock at the end of the run.
    clock_ms: i64,
}

/// Build a FedMark environment, define the view set (incrementally or
/// not), and drive `ROUNDS` rounds of ~1% churn, refreshing every view
/// each round.
fn run_config(incremental: bool) -> Result<Run> {
    let env = FedMark::build(1, SEED)?;
    for (name, sql) in VIEWS {
        if incremental {
            if let Some(reason) = env
                .system
                .define_incremental_matview(name, sql, RefreshPolicy::Manual)?
            {
                return Err(EiiError::Execution(format!(
                    "E19 view {name} unexpectedly fell back: {reason}"
                )));
            }
        } else {
            env.system.define_matview(name, sql, RefreshPolicy::Manual)?;
        }
    }

    let (n_cust, n_ord, n_prod, n_li, ..) = sizes(1);
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x19f3);
    let mut live: Vec<i64> = (0..n_ord).collect();
    let mut next_order = 1_000_000i64;
    let mut next_li = 1_000_000i64;
    let sales = env.system.federation().source("sales")?;
    // 1% of the order book churns per round.
    let churn = (n_ord as usize / 100).max(1);

    let mut round_ms = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        for _ in 0..churn {
            match rng.gen_range(0..4) {
                0 => {
                    sales.update(&UpdateOp::Insert {
                        table: "orders".into(),
                        row: row![
                            next_order,
                            rng.gen_range(0..n_cust),
                            (rng.gen_range(1..2000) as f64) / 2.0,
                            if rng.gen_bool(0.5) { "open" } else { "shipped" },
                            Value::Timestamp(rng.gen_range(0..1_000_000))
                        ],
                    })?;
                    live.push(next_order);
                    next_order += 1;
                }
                1 => {
                    let id = live[rng.gen_range(0..live.len())];
                    sales.update(&UpdateOp::UpdateByKey {
                        table: "orders".into(),
                        key: Value::Int(id),
                        assignments: vec![(
                            "status".into(),
                            Value::from(if rng.gen_bool(0.5) { "open" } else { "billed" }),
                        )],
                    })?;
                }
                2 => {
                    let id = live.swap_remove(rng.gen_range(0..live.len()));
                    sales.update(&UpdateOp::DeleteByKey {
                        table: "orders".into(),
                        key: Value::Int(id),
                    })?;
                }
                _ => {
                    sales.update(&UpdateOp::Insert {
                        table: "lineitems".into(),
                        row: row![
                            next_li,
                            live[rng.gen_range(0..live.len())],
                            rng.gen_range(0..n_prod),
                            rng.gen_range(1..10i64)
                        ],
                    })?;
                    next_li += 1;
                }
            }
        }
        let mut ms = 0.0;
        for (name, _) in VIEWS {
            ms += env.system.refresh_matview(name)?;
        }
        round_ms.push(ms);
    }
    let _ = n_li; // lineitem ids continue from a disjoint range

    let mgr = env.system.matviews().expect("views defined");
    let mut finals = Vec::new();
    for (name, _) in VIEWS {
        let mut rows = mgr
            .cached(name)?
            .expect("view materialized")
            .rows()
            .to_vec();
        rows.sort();
        finals.push((name.to_string(), rows));
    }
    Ok(Run {
        total_ms: round_ms.iter().sum(),
        round_ms,
        delta_rows: env.system.metrics().snapshot().counter("ivm.delta_rows"),
        finals,
        clock_ms: env.clock.now_ms(),
    })
}

/// E19 — O(delta) matview refresh under sustained churn. Errors (failing
/// the harness and CI) unless incremental maintenance beats full recompute
/// by `MIN_SPEEDUP`, produces identical view contents, and replays
/// bit-identically under the same seed.
pub fn e19_incremental_maintenance() -> Result<Report> {
    let inc = run_config(true)?;
    let full = run_config(false)?;
    let replay = run_config(true)?;

    let speedup = full.total_ms / inc.total_ms.max(f64::EPSILON);
    let mut report = Report::new(
        "e19",
        "incremental view maintenance: O(delta) refresh vs full recompute",
        "Halevy §3/§7 — mediated views only stay economical at dashboard \
         refresh rates if maintenance cost follows the change stream, not \
         the base data; delta propagation through filter/join/aggregate \
         keeps refreshed views byte-identical to recomputation",
        &[
            "config",
            "refresh sim ms (20 rounds)",
            "per-round mean",
            "per-round max",
            "delta rows",
            "final view rows",
            "sim clock ms",
        ],
    );
    for (name, run) in [("incremental", &inc), ("full recompute", &full)] {
        let max = run.round_ms.iter().cloned().fold(0.0, f64::max);
        report.row(vec![
            name.to_string(),
            fmt_f(run.total_ms),
            fmt_f(run.total_ms / ROUNDS as f64),
            fmt_f(max),
            run.delta_rows.to_string(),
            run.finals.iter().map(|(_, r)| r.len()).sum::<usize>().to_string(),
            run.clock_ms.to_string(),
        ]);
    }
    report.note(format!(
        "{} views x {ROUNDS} churn rounds at ~1% of the order book per \
         round; incremental refresh is {}x cheaper (bar: {MIN_SPEEDUP:.0}x)",
        VIEWS.len(),
        fmt_f(speedup),
    ));
    report.note(
        "freshness: after every run the incrementally maintained contents \
         equal a full recompute over the same write stream, row for row"
            .to_string(),
    );

    // CI regression gates.
    if speedup < MIN_SPEEDUP {
        return Err(EiiError::Execution(format!(
            "incremental refresh only {speedup:.1}x cheaper than full \
             recompute — under the {MIN_SPEEDUP:.0}x bar \
             ({:.2} vs {:.2} sim ms)",
            inc.total_ms, full.total_ms
        )));
    }
    for ((name, inc_rows), (_, full_rows)) in inc.finals.iter().zip(&full.finals) {
        if inc_rows != full_rows {
            return Err(EiiError::Execution(format!(
                "IVM ≢ recompute for {name}: {} maintained rows vs {} \
                 recomputed",
                inc_rows.len(),
                full_rows.len()
            )));
        }
    }
    if replay.clock_ms != inc.clock_ms || replay.finals != inc.finals {
        return Err(EiiError::Execution(format!(
            "same-seed replay diverged: clock {} vs {} ms",
            replay.clock_ms, inc.clock_ms
        )));
    }
    if inc.delta_rows == 0 || full.delta_rows != 0 {
        return Err(EiiError::Execution(
            "ivm.delta_rows miscounted: incremental must consume deltas, \
             full recompute must not"
                .into(),
        ));
    }

    BenchSummary::from_latencies("e19", &inc.round_ms, 0)
        .with_extra("speedup_vs_full", speedup)
        .with_extra("delta_rows", inc.delta_rows as f64)
        .with_extra("full_refresh_ms", full.total_ms)
        .with_extra("sim_clock_ms", inc.clock_ms as f64)
        .write()?;
    Ok(report)
}
