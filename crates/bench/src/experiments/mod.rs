//! The E1–E12 experiment suite (see DESIGN.md §3 for the claim-to-
//! experiment mapping). Each function regenerates one table; the
//! `experiments` binary prints them.

pub mod advisor;
pub mod caching;
pub mod concurrency;
pub mod economics;
pub mod engine;
pub mod ivm;
pub mod observability;
pub mod resilience;
pub mod robustness;
pub mod services;
pub mod telemetry;
pub mod vectorized;

use eii::data::Result;

use crate::report::Report;

/// All experiment ids in order.
pub const ALL: [&str; 21] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14",
    "e15", "e16", "e17", "e18", "e19", "e20", "e21",
];

/// Run one experiment by id.
pub fn run(id: &str) -> Result<Report> {
    match id {
        "e1" => economics::e1_eii_vs_warehouse(),
        "e2" => economics::e2_schema_economics(),
        "e3" => engine::e3_pushdown_ablation(),
        "e4" => engine::e4_views_vs_handwritten(),
        "e5" => services::e5_matview_frontier(),
        "e6" => services::e6_record_correlation(),
        "e7" => economics::e7_mapping_topologies(),
        "e8" => services::e8_enterprise_search(),
        "e9" => engine::e9_fedmark(),
        "e10" => services::e10_saga_resilience(),
        "e11" => engine::e11_dialect_ablation(),
        "e12" => engine::e12_prediction(),
        "e13" => resilience::e13_fault_tolerance(),
        "e14" => observability::e14_observability_overhead(),
        "e15" => caching::e15_views_and_cache(),
        "e16" => concurrency::e16_concurrent_sessions(),
        "e17" => robustness::e17_robustness(),
        "e18" => telemetry::e18_workload_telemetry(),
        "e19" => ivm::e19_incremental_maintenance(),
        "e20" => advisor::e20_self_tuning(),
        "e21" => vectorized::e21_vectorized_execution(),
        other => Err(eii::data::EiiError::NotFound(format!(
            "experiment {other}; known: {}",
            ALL.join(", ")
        ))),
    }
}
