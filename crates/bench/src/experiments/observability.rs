//! E14 — observability overhead: the tracing/metrics/profiling
//! instrumentation is always on, so it must be close to free. Runs the
//! FedMark query set with the executor instrumented and uninstrumented and
//! compares simulated time (must be identical — instrumentation never
//! touches the simulation) and wall-clock time (budgeted under 5%).

use std::time::Instant;

use eii::data::{EiiError, Result};
use eii::exec::Executor;
use eii::sql::{parse_statement, Statement};

use crate::fedmark::FedMark;
use crate::report::{fmt_f, Report};
use crate::summary::BenchSummary;

/// Interleaved timing trials per mode; each mode is scored by its fastest
/// trial, the observation least polluted by machine noise.
const TRIALS: usize = 9;
/// Repetitions of the whole query set inside one trial. Sized so one trial
/// runs tens of milliseconds — long enough that scheduler noise amortizes
/// to well under the budget being measured.
const REPS: usize = 10;
/// Maximum tolerated wall-clock overhead, percent.
const BUDGET_PCT: f64 = 5.0;

/// E14 — instrumented vs. uninstrumented execution of the FedMark queries.
/// Errors (failing the harness and CI) if instrumentation changes simulated
/// time at all or costs more than [`BUDGET_PCT`] percent wall-clock.
pub fn e14_observability_overhead() -> Result<Report> {
    let env = FedMark::build(1, 23)?;
    let sys = &env.system;

    // Plan once; both modes execute identical physical plans.
    let mut plans = Vec::new();
    for (_, _, sql) in FedMark::queries() {
        let Statement::Query(q) = parse_statement(sql)? else {
            continue;
        };
        plans.push(eii::planner::plan_query(
            &q,
            sys.catalog(),
            sys.federation(),
            sys.config(),
        )?);
    }

    let run_pass = |instrument: bool| -> Result<(f64, f64)> {
        let start = Instant::now();
        let mut sim = 0.0;
        for _ in 0..REPS {
            sim = 0.0;
            for plan in &plans {
                let exec = if instrument {
                    Executor::new(sys.federation())
                        .with_metrics(sys.federation().metrics().clone())
                } else {
                    Executor::new(sys.federation()).without_instrumentation()
                };
                sim += exec.execute(plan)?.cost.sim_ms;
            }
        }
        Ok((sim, start.elapsed().as_secs_f64() * 1000.0))
    };

    // Warm caches, then interleave so noise hits both modes equally.
    run_pass(true)?;
    run_pass(false)?;
    let (mut sim_on, mut sim_off) = (0.0, 0.0);
    let (mut wall_on, mut wall_off) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..TRIALS {
        let (s, w) = run_pass(true)?;
        sim_on = s;
        wall_on = wall_on.min(w);
        let (s, w) = run_pass(false)?;
        sim_off = s;
        wall_off = wall_off.min(w);
    }
    let overhead_pct = (wall_on - wall_off) / wall_off * 100.0;

    let mut report = Report::new(
        "e14",
        "observability overhead: instrumented vs uninstrumented executor",
        "tracing, per-operator profiling, and metrics stay on in production \
         because they are near-free: zero simulated-time impact, wall-clock \
         within budget",
        &["mode", "sim ms (set)", "wall ms (min)", "overhead"],
    );
    report.row(vec![
        "uninstrumented".to_string(),
        fmt_f(sim_off),
        fmt_f(wall_off),
        "-".to_string(),
    ]);
    report.row(vec![
        "instrumented".to_string(),
        fmt_f(sim_on),
        fmt_f(wall_on),
        format!("{overhead_pct:+.1}%"),
    ]);
    report.note(format!(
        "FedMark sf=1, {} queries x {REPS} reps, best of {TRIALS} interleaved \
         trials per mode; budget {BUDGET_PCT:.0}%",
        plans.len()
    ));

    if sim_on != sim_off {
        return Err(EiiError::Execution(format!(
            "instrumentation changed simulated time: {sim_on} vs {sim_off} ms"
        )));
    }
    if overhead_pct > BUDGET_PCT {
        return Err(EiiError::Execution(format!(
            "instrumentation wall overhead {overhead_pct:.1}% exceeds {BUDGET_PCT:.0}% budget \
             ({wall_on:.1}ms vs {wall_off:.1}ms)"
        )));
    }

    // Headline summary: one clean instrumented pass over the query set.
    sys.federation().ledger().reset();
    let mut latencies = Vec::with_capacity(plans.len());
    for plan in &plans {
        let exec =
            Executor::new(sys.federation()).with_metrics(sys.federation().metrics().clone());
        latencies.push(exec.execute(plan)?.cost.sim_ms);
    }
    let bytes = sys.federation().ledger().total().bytes;
    BenchSummary::from_latencies("e14", &latencies, bytes)
        .with_extra("overhead_pct", overhead_pct)
        .write()?;
    Ok(report)
}
