//! E13 — fault tolerance. Draper §5: fielded federation systems live with
//! "sources that are slow, unavailable, or return errors"; Carey §4 argues
//! the platform, not the application, should absorb those failures. The
//! sweep injects source faults at increasing rates and measures how much
//! answer the enterprise still gets under each resilience posture.

use eii::data::Result;
use eii::prelude::*;

use crate::fedmark::FedMark;
use crate::report::{fmt_f, Report};
use crate::summary::BenchSummary;

const SEED: u64 = 101;
const FAULT_RATES: [f64; 6] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
const FAULTED_SOURCES: [&str; 3] = ["crm", "sales", "support"];

/// The parameterized workload: one three-source join per selectivity knob
/// (every query needs crm, sales, and the support document store alive).
fn workload() -> Vec<String> {
    (1..=40i64)
        .map(|i| {
            format!(
                "SELECT c.name, o.total, t.severity FROM crm.customers c \
                 JOIN sales.orders o ON c.customer_id = o.customer_id \
                 JOIN support.tickets t ON c.customer_id = t.customer_id \
                 WHERE c.customer_id < {}",
                i * 2
            )
        })
        .collect()
}

/// E13 — success rate, completeness, retry amplification, and staleness as
/// injected source failures climb from 0% to 50%, under four postures:
/// live-only, retry/backoff, retry + stale-snapshot fallback, and retry +
/// partial results.
pub fn e13_fault_tolerance() -> Result<Report> {
    let queries = workload();

    // Ground truth from a pristine environment (same seed, no faults).
    let base = FedMark::build(1, SEED)?;
    let mut baseline_rows = 0usize;
    for sql in &queries {
        baseline_rows += base.system.execute(sql)?.rows()?.num_rows();
    }

    let mut report = Report::new(
        "e13",
        "fault tolerance: graceful degradation under injected source failures",
        "Draper §5 / Carey §4 — naive federation collapses when any source \
         misbehaves; retry/backoff heals transient faults and degradation to \
         stale snapshots keeps answering through hard outages",
        &[
            "fault rate",
            "mode",
            "queries ok",
            "success",
            "completeness",
            "retries",
            "avg stale ms",
        ],
    );

    // Headline summary: the retry + partial-results posture across the
    // whole fault sweep (the posture a production hub would actually run).
    let mut summary_latencies: Vec<f64> = Vec::new();
    let mut summary_bytes = 0usize;

    for rate in FAULT_RATES {
        for (mode, retry, policy) in [
            ("live only", false, DegradationPolicy::Fail),
            ("retry/backoff", true, DegradationPolicy::Fail),
            ("retry + stale fallback", true, DegradationPolicy::Fallback),
            ("retry + partial results", true, DegradationPolicy::PartialResults),
        ] {
            let env = FedMark::build(1, SEED)?;
            // Snapshots are taken while the sources are still healthy —
            // the last good extract before the trouble starts.
            env.system.snapshot_fallback("crm.customers")?;
            env.system.snapshot_fallback("sales.orders")?;
            env.system.snapshot_fallback("support.tickets")?;
            for (i, source) in FAULTED_SOURCES.iter().enumerate() {
                env.system
                    .federation()
                    .inject_faults(source, FaultProfile::failing(rate, 40 + i as u64))?;
                if retry {
                    env.system.federation().harden(
                        source,
                        RetryPolicy::standard(),
                        CircuitBreakerConfig::default(),
                    )?;
                }
            }
            env.system.set_degradation_policy(policy);
            env.system.federation().ledger().reset();

            let mut ok = 0usize;
            let mut rows = 0usize;
            let mut stale_sum = 0i64;
            let mut stale_n = 0usize;
            let measured = policy == DegradationPolicy::PartialResults && retry;
            for sql in &queries {
                let t0 = env.system.clock().now_ms();
                if let Ok(out) = env.system.execute(sql) {
                    let res = out.query_result()?;
                    ok += 1;
                    rows += res.batch.num_rows();
                    if measured {
                        let waited = (env.system.clock().now_ms() - t0) as f64;
                        summary_latencies.push(waited + res.cost.sim_ms);
                    }
                    for r in &res.degraded {
                        if let Some(ms) = r.stale_ms {
                            stale_sum += ms;
                            stale_n += 1;
                        }
                    }
                }
            }
            let ledger = env.system.federation().ledger().total();
            if measured {
                summary_bytes += ledger.bytes;
            }
            report.row(vec![
                format!("{:.0}%", rate * 100.0),
                mode.to_string(),
                format!("{ok}/{}", queries.len()),
                format!("{:.0}%", ok as f64 / queries.len() as f64 * 100.0),
                format!("{:.1}%", rows as f64 / baseline_rows as f64 * 100.0),
                ledger.retries.to_string(),
                if stale_n == 0 {
                    "-".to_string()
                } else {
                    fmt_f(stale_sum as f64 / stale_n as f64)
                },
            ]);
        }
    }
    report.note(format!(
        "{} three-source joins over crm (LAN) x sales (WAN) x support \
         (docs); faults injected on all three; snapshots taken pre-outage",
        queries.len()
    ));
    report.note(
        "at 0% every mode is byte-identical to the unhardened system with \
         zero retries — resilience is free until something breaks",
    );

    BenchSummary::from_latencies("e13", &summary_latencies, summary_bytes)
        .with_extra("fault_rates", FAULT_RATES.len() as f64)
        .write()?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fault_rate_is_perfect_in_every_mode() {
        let report = e13_fault_tolerance().unwrap();
        // The first four rows are the 0% sweep: full success, full
        // completeness, no retries, no staleness.
        for row in &report.rows[..4] {
            assert_eq!(row[0], "0%");
            assert_eq!(row[3], "100%");
            assert_eq!(row[4], "100.0%");
            assert_eq!(row[5], "0");
            assert_eq!(row[6], "-");
        }
    }

    #[test]
    fn fallback_beats_live_only_at_heavy_fault_rates() {
        let report = e13_fault_tolerance().unwrap();
        let pct = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let success = |rate: &str, mode: &str| {
            let row = report
                .rows
                .iter()
                .find(|r| r[0] == rate && r[1] == mode)
                .unwrap();
            pct(&row[3])
        };
        assert!(success("30%", "live only") < 50.0);
        assert!(success("30%", "retry + stale fallback") >= 95.0);
        assert!(success("30%", "retry/backoff") > success("30%", "live only"));
    }
}
