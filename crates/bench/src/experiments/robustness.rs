//! E17 — robustness under chaos: deadline propagation, cooperative
//! cancellation, hedged requests, and brownout load shedding, exercised by
//! the deterministic chaos harness ([`crate::chaos`]).
//!
//! Three gates, all on the simulated clock:
//!
//! 1. **Determinism** — a composed chaos scenario (latency spikes, a
//!    flapping document store, a crash window, a breaker storm) replayed
//!    from two freshly built environments yields bit-identical recovery
//!    traces.
//! 2. **Hedging** — against a source with a fail-fast error tail, a
//!    latency-triggered backup fetch beats the seed policy (retry with
//!    exponential backoff) on p99 while returning byte-identical answers.
//! 3. **Brownout** — under admission overload, high-priority sessions all
//!    meet their deadline SLA while low-priority queries are shed fast
//!    with a typed `shed` error instead of queueing behind them.

use eii::data::Result;
use eii::prelude::*;

use crate::chaos::{recovery_trace, trace_fingerprint, ChaosScenario};
use crate::fedmark::FedMark;
use crate::report::{fmt_f, Report};
use crate::summary::{percentile, BenchSummary};

const SEED: u64 = 401;
/// Fail-fast error rate on the hedged source (gate 2).
const TAIL_FAIL_PROB: f64 = 0.08;
/// Fault-dice seed for gate 2 — chosen so the very first fetch against
/// `sales` succeeds (the first request is never hedged: hedging needs an
/// observed latency history) and no query loses both primary and backup.
const TAIL_FAULT_SEED: u64 = 23;
/// Virtual-time SLA for high-priority work in the brownout gate.
const HIGH_SLA_MS: f64 = 2_000.0;

/// The chaos workload: three-source joins, every query needs crm, sales,
/// and the support document store to answer.
fn chaos_workload() -> Vec<String> {
    (1..=30i64)
        .map(|i| {
            format!(
                "SELECT c.name, o.total, t.severity FROM crm.customers c \
                 JOIN sales.orders o ON c.customer_id = o.customer_id \
                 JOIN support.tickets t ON c.customer_id = t.customer_id \
                 WHERE c.customer_id < {}",
                i * 3
            )
        })
        .collect()
}

/// The composed scenario gate 1 replays: spikes on the CRM LAN, a flapping
/// support store, and a crash window on sales inside a breaker storm (sales
/// is hardened, so the breaker trips, fast-fails, and probes half-open).
fn chaos_scenario() -> ChaosScenario {
    // Fast-fails never advance the virtual clock, so the breaker cooldown
    // must be short enough for crm's spikes to carry the timeline past it.
    ChaosScenario::compose(
        "spikes+flap+crash+storm",
        &[
            ChaosScenario::latency_spikes("crm", 0.5, 25, 11),
            ChaosScenario::flapping("support", 60, 100, 30, 3),
            ChaosScenario::crash("sales", 120, 200),
            ChaosScenario::breaker_storm("sales", 0.25, 13),
        ],
    )
    .breaker_cooldown(80)
}

/// Build a fresh environment, apply the chaos scenario, and replay the
/// workload, returning the recovery trace.
///
/// The replay runs with `parallel_fetch` off: this scenario's faults are
/// *clock-coupled* (outage windows, spike clock advances, breaker
/// cooldowns), and parallel branches advancing the shared clock in thread
/// order would make a sibling's position relative to a flapping window a
/// race. Serial fetch pins the clock schedule; fault *dice* are already
/// order-independent everywhere (content-addressed rolls, E13 runs fully
/// parallel).
fn chaos_run() -> Result<Vec<String>> {
    let mut config = PlannerConfig::optimized();
    config.parallel_fetch = false;
    let env = FedMark::build_with_config(1, SEED, config)?;
    chaos_scenario().apply(&env.system)?;
    env.system.federation().ledger().reset();
    Ok(recovery_trace(&env.system, &chaos_workload()))
}

/// The tail-latency workload for the hedging gate: crm ⋈ sales joins.
fn tail_workload() -> Vec<String> {
    (1..=80i64)
        .map(|i| {
            format!(
                "SELECT c.name, o.total FROM crm.customers c \
                 JOIN sales.orders o ON c.customer_id = o.customer_id \
                 WHERE o.total > {}",
                (i % 40) * 25
            )
        })
        .collect()
}

struct PostureRun {
    latencies_ms: Vec<f64>,
    row_counts: Vec<usize>,
    ok: usize,
    bytes: usize,
    hedges: usize,
    retries: usize,
}

/// Run the tail workload against a sales source with fail-fast faults,
/// under either the seed policy (retry/backoff) or hedged requests.
fn run_posture(hedged: bool) -> Result<PostureRun> {
    run_posture_seeded(hedged, TAIL_FAULT_SEED)
}

fn run_posture_seeded(hedged: bool, fault_seed: u64) -> Result<PostureRun> {
    let env = FedMark::build(1, SEED)?;
    env.system
        .federation()
        .inject_faults("sales", FaultProfile::failing(TAIL_FAIL_PROB, fault_seed))?;
    if hedged {
        // Threshold 0 hedges every fetch after the first per source: a
        // failed primary is rescued by the delayed backup at ~delay + one
        // clean fetch, instead of a retry loop burning backoff time.
        env.system.set_hedge_policy(HedgePolicy {
            threshold_ms: 0.0,
            delay_ms: 0.5,
        });
    } else {
        env.system.federation().harden(
            "sales",
            RetryPolicy::standard(),
            CircuitBreakerConfig::default(),
        )?;
    }
    env.system.federation().ledger().reset();

    let mut run = PostureRun {
        latencies_ms: Vec::new(),
        row_counts: Vec::new(),
        ok: 0,
        bytes: 0,
        hedges: 0,
        retries: 0,
    };
    for sql in &tail_workload() {
        let t0 = env.system.clock().now_ms();
        match env.system.execute(sql) {
            Ok(out) => {
                let res = out.query_result()?;
                let waited = (env.system.clock().now_ms() - t0) as f64;
                run.latencies_ms.push(waited + res.cost.sim_ms);
                run.row_counts.push(res.batch.num_rows());
                run.ok += 1;
            }
            Err(_) => {
                let waited = (env.system.clock().now_ms() - t0) as f64;
                run.latencies_ms.push(waited);
                run.row_counts.push(usize::MAX); // failed: never "equal"
            }
        }
    }
    let total = env.system.federation().ledger().total();
    run.bytes = total.bytes;
    run.hedges = total.hedges;
    run.retries = total.retries;
    Ok(run)
}

struct BrownoutRun {
    high_ok: usize,
    high_total: usize,
    high_p99_ms: f64,
    low_shed: usize,
    low_total: usize,
    degraded: u64,
}

/// Overload a two-worker scheduler whose brownout bucket only covers the
/// first few admissions, interleaving High (SLA-bearing) and Low
/// (best-effort) submissions.
fn run_brownout() -> Result<BrownoutRun> {
    let env = FedMark::build(1, SEED)?;
    let scheduler = env.system.scheduler_with_brownout(
        AdmissionConfig::with_workers(2),
        BrownoutConfig {
            capacity_ms: 30.0,
            cost_per_job_ms: 10.0,
            refill_per_job_ms: 0.0,
        },
    );

    let mut run = BrownoutRun {
        high_ok: 0,
        high_total: 0,
        high_p99_ms: 0.0,
        low_shed: 0,
        low_total: 0,
        degraded: 0,
    };
    let mut tickets = Vec::new();
    for (i, sql) in tail_workload().iter().take(24).enumerate() {
        let mut opts = ExecOptions::for_role("public");
        if i % 2 == 0 {
            opts.priority = Priority::High;
            opts.deadline_budget_ms = Some(HIGH_SLA_MS as i64);
            run.high_total += 1;
        } else {
            opts.priority = Priority::Low;
            run.low_total += 1;
        }
        match scheduler.submit_prioritized(sql, &opts) {
            Ok((ticket, _)) => tickets.push((opts.priority, ticket)),
            Err(e) if e.kind() == "shed" => run.low_shed += 1,
            Err(e) => return Err(e),
        }
    }
    for (priority, ticket) in tickets {
        let ok = ticket.join().is_ok();
        if priority == Priority::High && ok {
            run.high_ok += 1;
        }
    }
    let stats = scheduler.finish();
    run.high_p99_ms = stats.latency_percentile_for(Priority::High, 99.0);
    run.degraded = stats.degraded;
    Ok(run)
}

/// E17 — chaos-harness robustness: deterministic recovery traces, a p99
/// win from hedged requests with byte-identical answers, and brownout
/// shedding that protects high-priority SLAs.
pub fn e17_robustness() -> Result<Report> {
    let mut report = Report::new(
        "e17",
        "robustness: deadlines, hedging, and brownout under deterministic chaos",
        "Draper §5 / Carey §4 — a fielded integration platform must absorb \
         slow, flapping, and crashed sources; on a simulated clock the whole \
         recovery story replays bit-identically, so tail-latency and \
         load-shedding wins are provable, not anecdotal",
        &["gate", "metric", "seed policy", "hardened", "verdict"],
    );

    // Gate 1 — determinism: same scenario, two fresh environments.
    let trace_a = chaos_run()?;
    let trace_b = chaos_run()?;
    let identical = trace_a == trace_b;
    let errs = trace_a.iter().filter(|l| l.contains(" err ")).count();
    let oks = trace_a.len() - errs;
    report.row(vec![
        "chaos replay".into(),
        "trace fingerprint".into(),
        format!("{:016x}", trace_fingerprint(&trace_a)),
        format!("{:016x}", trace_fingerprint(&trace_b)),
        if identical { "bit-identical".into() } else { "DIVERGED".into() },
    ]);
    report.row(vec![
        "chaos replay".into(),
        "queries ok / failed".into(),
        format!("{oks} / {errs}"),
        "same".into(),
        "recovered mid-run".into(),
    ]);

    // Gate 2 — hedging vs the seed retry policy on a fail-fast tail.
    let seed_policy = run_posture(false)?;
    let hedged = run_posture(true)?;
    let n = tail_workload().len();
    let p99_seed = percentile(&seed_policy.latencies_ms, 99.0);
    let p99_hedged = percentile(&hedged.latencies_ms, 99.0);
    let results_match = seed_policy.row_counts == hedged.row_counts
        && seed_policy.ok == n
        && hedged.ok == n;
    report.row(vec![
        "hedged requests".into(),
        "p99 latency (sim ms)".into(),
        fmt_f(p99_seed),
        fmt_f(p99_hedged),
        format!("{:.1}x faster", p99_seed / p99_hedged.max(1e-9)),
    ]);
    report.row(vec![
        "hedged requests".into(),
        "answers".into(),
        format!("{}/{n} ok", seed_policy.ok),
        format!("{}/{n} ok", hedged.ok),
        if results_match { "byte-identical rows".into() } else { "MISMATCH".into() },
    ]);
    report.row(vec![
        "hedged requests".into(),
        "bytes shipped / retries / hedges".into(),
        format!("{} / {} / 0", seed_policy.bytes, seed_policy.retries),
        format!("{} / {} / {}", hedged.bytes, hedged.retries, hedged.hedges),
        "hedging tax".into(),
    ]);

    // Gate 3 — brownout: High meets its SLA, Low sheds fast.
    let brownout = run_brownout()?;
    report.row(vec![
        "brownout shedding".into(),
        "high-priority SLA".into(),
        format!("{}/{} ok", brownout.high_ok, brownout.high_total),
        format!("p99 {} ms (SLA {})", fmt_f(brownout.high_p99_ms), HIGH_SLA_MS),
        if brownout.high_ok == brownout.high_total && brownout.high_p99_ms <= HIGH_SLA_MS {
            "SLA met".into()
        } else {
            "SLA MISSED".into()
        },
    ]);
    report.row(vec![
        "brownout shedding".into(),
        "low-priority shed".into(),
        format!("{}/{} shed", brownout.low_shed, brownout.low_total),
        format!("{} degraded", brownout.degraded),
        "typed `shed` error, fails fast".into(),
    ]);

    report.note(format!(
        "chaos scenario: {} — crm spikes (p=0.5, +25ms), support flapping \
         (3 windows of 30ms every 100ms), sales crash [120,200)ms inside a \
         25% breaker storm (hardened: retry/backoff + 80ms-cooldown breaker)",
        chaos_scenario().name
    ));
    report.note(
        "hedging gate: sales fails fast 8% of requests; seed policy heals by \
         retry (backoff burns virtual time), hedged posture races a 0.5ms-\
         delayed backup and takes the first arrival — same rows, shorter tail",
    );
    report.note(
        "brownout gate: token bucket covers 3 admissions (30ms @ 10ms/job, \
         no refill); High borrows against future refills, Low sheds before \
         queueing",
    );

    BenchSummary::from_latencies("e17", &hedged.latencies_ms, hedged.bytes)
        .with_extra("p99_seed_policy_ms", p99_seed)
        .with_extra("p99_hedged_ms", p99_hedged)
        .with_extra("hedges_fired", hedged.hedges as f64)
        .with_extra("low_shed", brownout.low_shed as f64)
        .with_extra("high_sla_ok", brownout.high_ok as f64)
        .write()?;

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_traces_are_bit_identical_and_show_recovery() {
        let a = chaos_run().unwrap();
        let b = chaos_run().unwrap();
        assert_eq!(a, b, "same seed, same scenario → same trace");
        let errs = a.iter().filter(|l| l.contains(" err ")).count();
        assert!(errs > 0, "chaos must actually break something:\n{}", a.join("\n"));
        let last = a.last().unwrap();
        assert!(
            last.contains(" ok "),
            "the run must recover by the end:\n{}",
            a.join("\n")
        );
    }

    #[test]
    fn hedging_beats_retry_backoff_on_p99_with_identical_answers() {
        let seed_policy = run_posture(false).unwrap();
        let hedged = run_posture(true).unwrap();
        let n = tail_workload().len();
        assert_eq!(seed_policy.ok, n, "seed policy must answer everything");
        assert_eq!(hedged.ok, n, "hedged posture must answer everything");
        assert_eq!(
            seed_policy.row_counts, hedged.row_counts,
            "hedging must not change any answer"
        );
        assert!(hedged.hedges > 0, "the backup fetch must actually fire");
        let p99_seed = percentile(&seed_policy.latencies_ms, 99.0);
        let p99_hedged = percentile(&hedged.latencies_ms, 99.0);
        assert!(
            p99_hedged < p99_seed,
            "hedged p99 {p99_hedged} must beat seed-policy p99 {p99_seed}"
        );
    }

    #[test]
    fn brownout_protects_high_priority_and_sheds_low_fast() {
        let run = run_brownout().unwrap();
        assert_eq!(run.high_ok, run.high_total, "every High query must succeed");
        assert!(
            run.high_p99_ms <= HIGH_SLA_MS,
            "High p99 {} must meet the {HIGH_SLA_MS}ms SLA",
            run.high_p99_ms
        );
        assert!(run.low_shed > 0, "overload must shed some Low work");
    }
}

