//! Service-layer experiments: E5 (materialized-view frontier), E6 (record
//! correlation), E8 (enterprise search), E10 (saga resilience).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use eii::data::Result;
use eii::eai::{FailureInjector, ProcessDef, ProcessEnv, SagaEngine, SagaOutcome, Step};
use eii::federation::UpdateOp;
use eii::matview::{similarity, CorrelationIndex, MatViewManager, RefreshPolicy};
use eii::prelude::*;
use eii::row;
use eii::search::{index_docstore, index_federation_table, EnterpriseSearch, SearchIndex};

use crate::fedmark::FedMark;
use crate::report::{fmt_f, Report};

/// E5 — Draper §5: the latency/staleness frontier of refresh policies.
pub fn e5_matview_frontier() -> Result<Report> {
    let mut report = Report::new(
        "e5",
        "materialized views: cost per fetch vs staleness, by refresh policy",
        "Draper §5 — administrators choose freshness per view; most \
         applications tolerate bounded staleness at a fraction of the cost",
        &[
            "policy",
            "fetches",
            "recomputes",
            "avg cost/fetch (ms)",
            "avg staleness (ms)",
            "max staleness (ms)",
        ],
    );
    let env = FedMark::build(1, 51)?;
    let views = MatViewManager::new(env.system.federation().clone(), env.clock.clone());
    let sql = "SELECT c.region, COUNT(*) AS orders FROM crm.customers c \
               JOIN sales.orders o ON c.customer_id = o.customer_id GROUP BY c.region";
    let policies: Vec<(String, RefreshPolicy)> = vec![
        ("live".into(), RefreshPolicy::Live),
        ("periodic 1s".into(), RefreshPolicy::Periodic { interval_ms: 1_000 }),
        ("periodic 10s".into(), RefreshPolicy::Periodic { interval_ms: 10_000 }),
        ("periodic 60s".into(), RefreshPolicy::Periodic { interval_ms: 60_000 }),
        ("manual".into(), RefreshPolicy::Manual),
    ];
    for (name, policy) in &policies {
        views.define(name, sql, env.system.catalog(), *policy)?;
    }
    let fetches = 60usize; // one every 5 simulated seconds
    let mut totals: HashMap<String, (f64, i64, i64)> = HashMap::new();
    for _ in 0..fetches {
        env.clock.advance_ms(5_000);
        for (name, _) in &policies {
            let (_, o) = views.fetch(name)?;
            let e = totals.entry(name.clone()).or_insert((0.0, 0, 0));
            e.0 += o.sim_ms;
            e.1 += o.staleness_ms;
            e.2 = e.2.max(o.staleness_ms);
        }
    }
    for (name, _) in &policies {
        let (cost, stale_sum, stale_max) = totals[name];
        report.row(vec![
            name.clone(),
            fetches.to_string(),
            views.refresh_count(name).to_string(),
            fmt_f(cost / fetches as f64),
            fmt_f(stale_sum as f64 / fetches as f64),
            stale_max.to_string(),
        ]);
    }
    report.note("fetch cadence: every 5 simulated seconds for 5 minutes".to_string());
    Ok(report)
}

/// Generate `(clean, dirty)` company-name pairs plus unmatched noise.
fn correlation_data(n: usize, seed: u64) -> (Batch, Batch) {
    let mut rng = StdRng::seed_from_u64(seed);
    let adjs = ["acme", "atlas", "apex", "global", "united", "pioneer", "summit", "nova"];
    let nouns = ["corp", "industries", "logistics", "systems", "partners"];
    let suffixes = ["inc", "llc", "ltd", "co", "corporation", "incorporated", ""];
    let left_schema = Arc::new(Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("name", DataType::Str),
    ]));
    let right_schema = Arc::new(Schema::new(vec![
        Field::new("ref", DataType::Int),
        Field::new("company", DataType::Str),
    ]));
    let mut left = Vec::new();
    let mut right = Vec::new();
    for i in 0..n {
        let base = format!(
            "{} {} {}",
            adjs[rng.gen_range(0..adjs.len())],
            nouns[rng.gen_range(0..nouns.len())],
            i
        );
        left.push(row![i as i64, base.clone()]);
        // Dirty variant: random case, random suffix, maybe punctuation.
        let mut dirty = if rng.gen_bool(0.5) {
            base.to_uppercase()
        } else {
            base.clone()
        };
        let suffix = suffixes[rng.gen_range(0..suffixes.len())];
        if !suffix.is_empty() {
            dirty.push(' ');
            dirty.push_str(suffix);
        }
        if rng.gen_bool(0.3) {
            dirty.push('.');
        }
        right.push(row![(10_000 + i) as i64, dirty]);
    }
    // Unmatched noise on the right.
    for i in 0..(n / 4) {
        right.push(row![(20_000 + i) as i64, format!("wayne enterprises {i}")]);
    }
    (
        Batch::new(left_schema, left),
        Batch::new(right_schema, right),
    )
}

/// E6 — Draper §5: the record-correlation join index.
pub fn e6_record_correlation() -> Result<Report> {
    let mut report = Report::new(
        "e6",
        "record correlation: joining sources with no shared key",
        "Draper §5 — exact joins find nothing on dirty identity data; the \
         stored join index recovers matches cheaply and precisely",
        &[
            "pairs",
            "exact matches",
            "candidates (blocked / n^2)",
            "precision",
            "recall",
            "build (wall ms)",
            "indexed join (wall us)",
            "naive fuzzy (wall us)",
        ],
    );
    for n in [50usize, 200, 800] {
        let (left, right) = correlation_data(n, 61);
        // Exact join baseline.
        let exact = left
            .rows()
            .iter()
            .flat_map(|l| right.rows().iter().filter(move |r| l.get(1) == r.get(1)))
            .count();
        let t0 = Instant::now();
        let ix = CorrelationIndex::build_best_match(
            &left, "id", "name", &right, "ref", "company", 0.62,
        )?;
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;
        // Ground truth: left i <-> right 10_000 + i.
        let mut tp = 0usize;
        let mut fp = 0usize;
        for c in ix.pairs() {
            let l = c.left_key.as_int().unwrap_or(-1);
            let r = c.right_key.as_int().unwrap_or(-1);
            if r == 10_000 + l {
                tp += 1;
            } else {
                fp += 1;
            }
        }
        let precision = tp as f64 / (tp + fp).max(1) as f64;
        let recall = tp as f64 / n as f64;
        // Join through the index vs re-scoring every pair on the fly.
        let t1 = Instant::now();
        let joined = ix.join(&left, "id", &right, "ref")?;
        let join_us = t1.elapsed().as_secs_f64() * 1e6;
        let t2 = Instant::now();
        // The unindexed alternative: re-score every pair on the fly, keep
        // each left record's best match (same semantics as the index, no
        // blocking, nothing stored).
        let mut naive = 0usize;
        for l in left.rows() {
            let mut best = 0.0f64;
            for r in right.rows() {
                let s = similarity(
                    l.get(1).as_str().unwrap_or(""),
                    r.get(1).as_str().unwrap_or(""),
                );
                best = best.max(s);
            }
            if best >= 0.62 {
                naive += 1;
            }
        }
        let naive_us = t2.elapsed().as_secs_f64() * 1e6;
        assert!(
            joined.num_rows() <= naive,
            "blocked join found pairs the exhaustive loop did not"
        );
        report.row(vec![
            n.to_string(),
            exact.to_string(),
            format!("{} / {}", ix.candidates_scored, n * (n + n / 4)),
            format!("{precision:.2}"),
            format!("{recall:.2}"),
            fmt_f(build_ms),
            fmt_f(join_us),
            fmt_f(naive_us),
        ]);
    }
    report.note("threshold 0.62 trigram similarity; blocking on first token".to_string());
    Ok(report)
}

/// E8 — Sikka §8: federated search with security filtering.
pub fn e8_enterprise_search() -> Result<Report> {
    let mut report = Report::new(
        "e8",
        "enterprise search across structured rows and documents",
        "Sikka §8 — one search over business objects and documents, with \
         per-source authorization on every hit",
        &[
            "query",
            "role",
            "hits",
            "structured",
            "documents",
            "filtered out",
            "wall us",
        ],
    );
    let env = FedMark::build(1, 71)?;
    let mut index = SearchIndex::new();
    index_federation_table(&mut index, env.system.federation(), "crm.customers")?;
    index_federation_table(&mut index, env.system.federation(), "hr.employees")?;
    index_docstore(&mut index, "contracts", &env.contracts)?;
    index_docstore(&mut index, "support", &env.tickets)?;
    let catalog = env.system.catalog().clone();
    catalog.grant("hr", "hr-admin"); // employee rows restricted
    let search = EnterpriseSearch::new(index, catalog);

    for (query, role) in [
        ("acme corp renewal", "public"),
        ("gold support tier", "public"),
        ("employee engineering", "public"),
        ("employee engineering", "hr-admin"),
        ("ticket widgets", "public"),
    ] {
        let t0 = Instant::now();
        let (hits, stats) = search.search(query, role, 20)?;
        let wall_us = t0.elapsed().as_secs_f64() * 1e6;
        let structured = hits
            .iter()
            .filter(|h| h.kind == eii::search::ItemKind::Structured)
            .count();
        report.row(vec![
            query.to_string(),
            role.to_string(),
            hits.len().to_string(),
            structured.to_string(),
            (hits.len() - structured).to_string(),
            stats.filtered_out.to_string(),
            fmt_f(wall_us),
        ]);
    }
    report.note("hr rows are ACL-restricted; note the same query's hit count by role".to_string());
    Ok(report)
}

/// E10 — Carey §4: long-running updates as sagas, under injected failures.
pub fn e10_saga_resilience() -> Result<Report> {
    let mut report = Report::new(
        "e10",
        "onboarding sagas under failure injection",
        "Carey §4 — multi-system updates need compensation, not transactions; \
         failed sagas must leave no partial effects",
        &[
            "failure rate",
            "sagas",
            "completed",
            "compensated",
            "stuck",
            "residue rows",
            "avg duration (sim s)",
        ],
    );
    for rate in [0.0f64, 0.05, 0.10, 0.25, 0.50] {
        let clock = SimClock::new();
        let hr = Database::new("hr", clock.clone());
        hr.create_table(
            TableDef::new(
                "employees",
                Arc::new(Schema::new(vec![
                    Field::new("emp_id", DataType::Int).not_null(),
                    Field::new("name", DataType::Str),
                ])),
            )
            .with_primary_key(0),
        )?;
        let it = Database::new("it", clock.clone());
        it.create_table(
            TableDef::new(
                "assets",
                Arc::new(Schema::new(vec![
                    Field::new("asset_id", DataType::Int).not_null(),
                    Field::new("owner", DataType::Int),
                ])),
            )
            .with_primary_key(0),
        )?;
        let fed = Federation::new();
        fed.register(
            Arc::new(RelationalConnector::new(hr.clone())),
            LinkProfile::lan(),
            WireFormat::Native,
        )?;
        fed.register(
            Arc::new(RelationalConnector::new(it.clone())),
            LinkProfile::lan(),
            WireFormat::Native,
        )?;
        let broker = eii::eai::MessageBroker::new();
        let engine = SagaEngine::new(clock.clone())
            .with_injector(FailureInjector::new(rate, 4242));

        let runs = 200usize;
        let mut completed = 0usize;
        let mut compensated = 0usize;
        let mut stuck = 0usize;
        let mut total_ms = 0i64;
        let mut completed_ids: Vec<i64> = Vec::new();
        for i in 0..runs {
            let emp = i as i64;
            let def = ProcessDef::new("onboard")
                .step(
                    Step::new("hr_insert", move |env: &ProcessEnv<'_>| {
                        env.federation.source("hr")?.update(&UpdateOp::Insert {
                            table: "employees".into(),
                            row: row![emp, format!("emp {emp}")],
                        })?;
                        Ok(())
                    })
                    .with_compensation(move |env| {
                        env.federation.source("hr")?.update(&UpdateOp::DeleteByKey {
                            table: "employees".into(),
                            key: Value::Int(emp),
                        })?;
                        Ok(())
                    })
                    .taking_ms(1_000),
                )
                .step(
                    Step::new("it_assign", move |env: &ProcessEnv<'_>| {
                        env.federation.source("it")?.update(&UpdateOp::Insert {
                            table: "assets".into(),
                            row: row![emp, emp],
                        })?;
                        Ok(())
                    })
                    .with_compensation(move |env| {
                        env.federation.source("it")?.update(&UpdateOp::DeleteByKey {
                            table: "assets".into(),
                            key: Value::Int(emp),
                        })?;
                        Ok(())
                    })
                    .taking_ms(2_000),
                )
                .step(Step::new("approve", |_| Ok(())).taking_ms(5_000));
            let start = clock.now_ms();
            let env = ProcessEnv::new(&fed, &broker, &clock, HashMap::new());
            let (outcome, _) = engine.run(&def, &env)?;
            total_ms += clock.now_ms() - start;
            match outcome {
                SagaOutcome::Completed => {
                    completed += 1;
                    completed_ids.push(emp);
                }
                SagaOutcome::Compensated { .. } => compensated += 1,
                SagaOutcome::Stuck { .. } => stuck += 1,
                // `run` has no cancel token; nothing can cancel here.
                SagaOutcome::Cancelled { .. } => unreachable!("uncancellable run"),
            }
        }
        // Invariant: sources contain exactly the completed sagas' rows.
        let hr_rows = hr.table("employees")?.read().row_count();
        let it_rows = it.table("assets")?.read().row_count();
        let residue =
            (hr_rows as i64 - completed as i64).abs() + (it_rows as i64 - completed as i64).abs();
        report.row(vec![
            format!("{:.0}%", rate * 100.0),
            runs.to_string(),
            completed.to_string(),
            compensated.to_string(),
            stuck.to_string(),
            residue.to_string(),
            fmt_f(total_ms as f64 / runs as f64 / 1000.0),
        ]);
    }
    report.note("residue rows = partial effects surviving after compensation (must be 0)".to_string());
    Ok(report)
}
