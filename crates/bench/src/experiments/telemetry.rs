//! E18 — the workload telemetry pipeline: the query log, trace store,
//! latency sketches, and SLO monitor record every statement, and must be
//! close to free and perfectly repeatable while doing it.
//!
//! Gates, enforced here so CI fails when they regress:
//!
//! 1. **Overhead** — running the FedMark suite with the telemetry pipeline
//!    enabled vs disabled leaves simulated time bit-identical (telemetry
//!    never touches the simulation) and costs under 5% wall-clock.
//! 2. **Determinism** — two same-seed 16-session chaos runs over freshly
//!    built environments log every statement and produce bit-identical
//!    query-log fingerprint aggregates (order-independent, so thread
//!    interleaving cannot perturb the digest CI diffs across commits).
//! 3. **Export** — a statement that hedged *and* degraded yields a stored
//!    trace whose Chrome trace-event JSON parses and contains the
//!    `hedge:backup` span, so the rescue is visible in Perfetto.
//!
//! The headline artifact is the workload profile the future matview
//! advisor will consume: top-k plan fingerprints by bytes shipped,
//! persisted to `BENCH_E18.json`.

use std::time::Instant;

use eii::data::{EiiError, Result};
use eii::obs::WorkloadKey;
use eii::prelude::*;

use crate::chaos::{trace_fingerprint, ChaosScenario};
use crate::fedmark::FedMark;
use crate::report::Report;
use crate::summary::BenchSummary;

const SEED: u64 = 503;
/// Interleaved timing trials per mode; each mode scored by its fastest
/// trial (the observation least polluted by machine noise), as in E14.
const TRIALS: usize = 9;
/// Repetitions of the whole query set inside one trial.
const REPS: usize = 6;
/// Maximum tolerated wall-clock overhead of telemetry recording, percent.
/// The 5% budget is a statement about optimized code — CI enforces it by
/// running the release binary. Unoptimized `cargo test` builds inflate the
/// relative cost of recording, so they get a loose leash; the sim-identity,
/// determinism, and export gates stay strict in every profile.
#[cfg(not(debug_assertions))]
const BUDGET_PCT: f64 = 5.0;
#[cfg(debug_assertions)]
const BUDGET_PCT: f64 = 40.0;
/// Concurrent sessions in the determinism gate.
const SESSIONS: usize = 16;
/// Workload-profile rows reported and persisted.
const TOP_K: usize = 5;

/// One full pass over the FedMark suite through the system facade (parse,
/// plan, execute, record); returns (total sim ms of the last rep, wall ms).
fn suite_pass(env: &FedMark, telemetry: bool) -> Result<(f64, f64)> {
    env.system.set_telemetry_enabled(telemetry);
    let start = Instant::now();
    let mut sim = 0.0;
    for _ in 0..REPS {
        sim = 0.0;
        for (_, _, sql) in FedMark::queries() {
            let out = env.system.execute(sql)?;
            sim += out.query_result()?.cost.sim_ms;
        }
    }
    Ok((sim, start.elapsed().as_secs_f64() * 1000.0))
}

/// Gate 1: telemetry on vs off, interleaved best-of-N. Errors if recording
/// changes simulated time at all or costs more than [`BUDGET_PCT`] percent.
fn overhead_gate() -> Result<(f64, f64)> {
    let env = FedMark::build(1, SEED)?;
    // Warm both modes, then interleave so scheduler noise hits them equally.
    suite_pass(&env, true)?;
    suite_pass(&env, false)?;
    let (mut sim_on, mut sim_off) = (0.0, 0.0);
    let (mut wall_on, mut wall_off) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..TRIALS {
        let (s, w) = suite_pass(&env, true)?;
        sim_on = s;
        wall_on = wall_on.min(w);
        let (s, w) = suite_pass(&env, false)?;
        sim_off = s;
        wall_off = wall_off.min(w);
    }
    env.system.set_telemetry_enabled(true);
    if sim_on != sim_off {
        return Err(EiiError::Execution(format!(
            "E18 telemetry changed simulated time: {sim_on} vs {sim_off} ms"
        )));
    }
    let overhead_pct = (wall_on - wall_off) / wall_off * 100.0;
    if overhead_pct > BUDGET_PCT {
        return Err(EiiError::Execution(format!(
            "E18 telemetry wall overhead {overhead_pct:.1}% exceeds {BUDGET_PCT:.0}% budget \
             ({wall_on:.1}ms on vs {wall_off:.1}ms off)"
        )));
    }
    Ok((overhead_pct, sim_on))
}

/// What one 16-session chaos run leaves behind in the query log.
struct ChaosRun {
    /// Sorted `(fingerprint, count)` aggregate — the determinism digest
    /// input. Order-independent, so worker-thread interleaving (which *does*
    /// perturb per-statement latencies and fault rolls) cannot touch it.
    fingerprints: Vec<(u64, u64)>,
    digest: u64,
    seen: u64,
}

/// One freshly built environment under composed chaos, 16 sessions each
/// submitting the whole suite through the admission-controlled pool.
fn chaos_run() -> Result<ChaosRun> {
    let env = FedMark::build(1, SEED)?;
    ChaosScenario::compose(
        "spikes+flap+storm",
        &[
            ChaosScenario::latency_spikes("crm", 0.3, 20, 17),
            ChaosScenario::flapping("support", 50, 120, 40, 3),
            ChaosScenario::breaker_storm("sales", 0.2, 29),
        ],
    )
    .breaker_cooldown(80)
    .apply(&env.system)?;

    let scheduler = env.system.scheduler(AdmissionConfig::with_workers(SESSIONS));
    let mut tickets = Vec::new();
    for _ in 0..SESSIONS {
        for (_, _, sql) in FedMark::queries() {
            tickets.push(scheduler.submit(sql, "public"));
        }
    }
    // Faulted statements still get logged (with their error kind), so the
    // aggregate below counts every submission either way.
    for t in tickets {
        let _ = t.join();
    }
    scheduler.finish();

    let log = env.system.query_log();
    let fingerprints = log.fingerprints();
    let lines: Vec<String> = fingerprints
        .iter()
        .map(|(fp, n)| format!("{fp:016x} x{n}"))
        .collect();
    Ok(ChaosRun {
        digest: trace_fingerprint(&lines),
        fingerprints,
        seen: log.seen(),
    })
}

/// What the serial profile pass leaves behind: the deterministic numbers
/// the report table and `BENCH_E18.json` are built from.
struct ProfileRun {
    latencies: Vec<f64>,
    bytes: u64,
    top: Vec<eii::obs::FingerprintStats>,
    distinct: usize,
}

/// One clean fault-free serial pass over the suite: per-statement byte
/// accounting is exact (no concurrent traffic on the shared ledger), so
/// the top-k-by-bytes workload profile is bit-stable across runs.
fn profile_run() -> Result<ProfileRun> {
    let env = FedMark::build(1, SEED)?;
    for (_, _, sql) in FedMark::queries() {
        env.system.execute(sql)?;
    }
    let log = env.system.query_log();
    let records = log.records();
    Ok(ProfileRun {
        latencies: records.iter().map(|r| r.sim_ms).collect(),
        bytes: records.iter().map(|r| r.bytes_shipped).sum(),
        top: log.top_k(TOP_K, WorkloadKey::BytesShipped),
        distinct: log.fingerprints().len(),
    })
}

/// Gate 3: force one statement to both hedge (latency-triggered backup on
/// the crm fetch) and degrade (the sales fetch fails hard and falls back
/// to a snapshot), then export its stored trace as Chrome trace-event JSON
/// and check the hedge shows up as a span.
fn chrome_export_gate() -> Result<(u64, usize)> {
    let env = FedMark::build(1, SEED)?;
    env.system.snapshot_fallback("sales.orders")?;
    env.system
        .federation()
        .inject_faults("sales", FaultProfile::failing(1.0, 7))?;
    env.system.set_degradation_policy(DegradationPolicy::Fallback);
    env.system.set_hedge_policy(HedgePolicy {
        threshold_ms: 0.0,
        delay_ms: 0.5,
    });
    // Prime the hedger's latency history: the first fetch per source is
    // never hedged.
    env.system
        .execute("SELECT name FROM crm.customers WHERE region = 'r3'")?;
    let out = env.system.execute(
        "SELECT c.name, o.total FROM crm.customers c \
         JOIN sales.orders o ON c.customer_id = o.customer_id \
         WHERE c.region = 'r1' AND o.total > 900",
    )?;
    let result = out.query_result()?;
    if !result.hedged || result.degraded.is_empty() {
        return Err(EiiError::Execution(format!(
            "E18 export setup failed: hedged={} degraded={:?}",
            result.hedged, result.degraded
        )));
    }
    let stored = env
        .system
        .trace_store()
        .latest()
        .ok_or_else(|| EiiError::Execution("E18: hedged+degraded trace not retained".into()))?;
    if !(stored.flags.hedged && stored.flags.degraded) {
        return Err(EiiError::Execution(format!(
            "E18: stored trace missing flags: {:?}",
            stored.flags
        )));
    }
    let chrome = eii::obs::chrome_trace_json(&stored);
    let parsed: serde_json::Value = serde_json::from_str(&chrome)
        .map_err(|e| EiiError::Execution(format!("E18 Chrome trace JSON unparseable: {e}")))?;
    let events = match &parsed {
        serde_json::Value::Obj(entries) => entries
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v),
        _ => None,
    };
    let n_events = match events {
        Some(serde_json::Value::Arr(items)) => items.len(),
        _ => 0,
    };
    if n_events == 0 {
        return Err(EiiError::Execution(
            "E18 Chrome trace export has no traceEvents".into(),
        ));
    }
    if !chrome.contains("hedge:backup") {
        return Err(EiiError::Execution(
            "E18 Chrome trace export missing the hedge:backup span".into(),
        ));
    }
    Ok((stored.trace_id, n_events))
}

pub fn e18_workload_telemetry() -> Result<Report> {
    let (overhead_pct, sim_suite) = overhead_gate()?;

    // Gate 2: two same-seed runs, compared on the order-independent
    // fingerprint aggregate (thread interleaving must not perturb it).
    let run_a = chaos_run()?;
    let run_b = chaos_run()?;
    if run_a.fingerprints != run_b.fingerprints || run_a.digest != run_b.digest {
        return Err(EiiError::Execution(format!(
            "E18 query-log drift across same-seed runs: digest {:016x} vs {:016x} \
             ({} vs {} fingerprints)",
            run_a.digest,
            run_b.digest,
            run_a.fingerprints.len(),
            run_b.fingerprints.len(),
        )));
    }
    let expected = (SESSIONS * FedMark::queries().len()) as u64;
    if run_a.seen != expected {
        return Err(EiiError::Execution(format!(
            "E18 query log lost statements: saw {} of {expected}",
            run_a.seen
        )));
    }

    let (trace_id, n_events) = chrome_export_gate()?;
    let profile = profile_run()?;

    let mut report = Report::new(
        "e18",
        "workload telemetry: query log, trace store, sketches, SLO monitor",
        "recording every statement into the query log and trace store is \
         near-free, bit-repeatable under 16-session chaos, and exports \
         Perfetto-loadable traces — the workload profile below is the \
         matview advisor's future input",
        &["rank", "fingerprint", "count", "errors", "bytes", "sim ms", "plan"],
    );
    for (rank, stats) in profile.top.iter().enumerate() {
        let mut plan = stats.plan.lines().next().unwrap_or("").to_string();
        if plan.len() > 44 {
            plan.truncate(41);
            plan.push_str("...");
        }
        report.row(vec![
            (rank + 1).to_string(),
            format!("{:016x}", stats.fingerprint),
            stats.count.to_string(),
            stats.errors.to_string(),
            stats.total_bytes.to_string(),
            format!("{:.1}", stats.total_sim_ms),
            plan,
        ]);
    }
    report.note(format!(
        "overhead: telemetry on vs off leaves the suite's simulated time \
         bit-identical ({sim_suite:.1} ms) at {overhead_pct:+.1}% wall \
         (budget {BUDGET_PCT:.0}%, best of {TRIALS} interleaved trials x {REPS} reps)"
    ));
    report.note(format!(
        "determinism: two same-seed {SESSIONS}-session chaos runs logged all \
         {} statements each with identical fingerprint aggregates; \
         digest {:016x}",
        run_a.seen, run_a.digest
    ));
    report.note(format!(
        "export: hedged+degraded statement retained by tail-sampling \
         (trace id {trace_id}), Chrome trace JSON parses with {n_events} \
         events including the hedge:backup span"
    ));

    BenchSummary::from_latencies("e18", &profile.latencies, profile.bytes as usize)
        .with_extra("overhead_pct", overhead_pct)
        .with_extra("fingerprints", profile.distinct as f64)
        .write()?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e18_gates_hold() {
        let report = e18_workload_telemetry().expect("E18 gates");
        assert_eq!(report.rows.len(), TOP_K);
        assert_eq!(report.notes.len(), 3);
    }
}
