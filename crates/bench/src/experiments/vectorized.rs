//! E21 — vectorized columnar execution, measured: wall-clock speedup of the
//! executor's batch-first operator path (typed column kernels, selection
//! vectors) over row-at-a-time interpretation, on hub-resident operator
//! chains where no simulated network time dilutes the comparison.
//!
//! Two equivalence gates ride along: the full FedMark suite must return
//! byte-identical answers — rows, degradation flags, simulated costs, and
//! ledger bytes — with vectorization on and off, and a same-seed rerun of
//! the vectorized suite must replay the simulated timeline bit for bit.

use std::sync::Arc;
use std::time::Instant;

use eii::data::{Batch, DataType, EiiError, Field, Result, Row, Schema, Value};
use eii::exec::Executor;
use eii::expr::{AggFunc, BinaryOp, Expr};
use eii::federation::Federation;
use eii::planner::{AggItem, JoinSite, PhysicalPlan, PlannerConfig};
use eii::sql::JoinKind;

use crate::fedmark::FedMark;
use crate::report::{fmt_f, Report};
use crate::summary::BenchSummary;

/// Probe-side rows in the hub operator chain.
const FACT_ROWS: i64 = 20_000;
/// Distinct join keys on the build side.
const DIM_KEYS: i64 = 2_000;
/// Build-side duplicates per key: the join EXPANDS ~10x, so the timed
/// region is dominated by hub operator work over ~200k joined rows rather
/// than by materializing the (small) leaf inputs, which both paths pay
/// identically.
const FANOUT: i64 = 10;
/// Wall-clock runs per path; the minimum is reported (best-of-k rides out
/// scheduler noise on shared CI boxes).
const BEST_OF: usize = 3;
/// The acceptance bar: the vectorized chain must run at least this many
/// times faster than row-at-a-time interpretation.
const MIN_SPEEDUP: f64 = 5.0;

/// The fact table: `fk` joins the dimension, `grp` is the aggregation key,
/// `a`/`b` feed the filter and arithmetic kernels. Values are arithmetic in
/// the row index, so both paths see identical, reproducible data with no
/// RNG in the timed region.
fn fact_rows() -> (Arc<Schema>, Vec<Row>) {
    let schema = Arc::new(Schema::new(vec![
        Field::new("fk", DataType::Int).not_null(),
        Field::new("grp", DataType::Int).not_null(),
        Field::new("a", DataType::Int).not_null(),
        Field::new("b", DataType::Float).not_null(),
    ]));
    let rows = (0..FACT_ROWS)
        .map(|i| {
            Row::new(vec![
                Value::Int(i % DIM_KEYS),
                Value::Int(i % 32),
                Value::Int(i * 7 % 1000),
                Value::Float((i % 997) as f64 * 0.5),
            ])
        })
        .collect();
    (schema, rows)
}

fn dim_rows() -> (Arc<Schema>, Vec<Row>) {
    let schema = Arc::new(Schema::new(vec![
        Field::new("dk", DataType::Int).not_null(),
        Field::new("w", DataType::Int).not_null(),
    ]));
    let rows = (0..DIM_KEYS)
        .flat_map(|j| {
            (0..FANOUT).map(move |c| {
                Row::new(vec![Value::Int(j), Value::Int((j * FANOUT + c) * 3 % 100)])
            })
        })
        .collect();
    (schema, rows)
}

/// The hub chain: scan → filter → join → filter → project → aggregate, all
/// assembly-site work over pre-materialized inputs. With `vectorized` the
/// executor pivots to columns once below the first filter and the chain
/// stays columnar through the aggregate.
fn hub_chain(vectorized: bool) -> PhysicalPlan {
    let (fact_schema, fact) = fact_rows();
    let (dim_schema, dim) = dim_rows();

    let joined_schema = Arc::new(Schema::new(
        fact_schema
            .fields()
            .iter()
            .chain(dim_schema.fields().iter())
            .cloned()
            .collect(),
    ));

    let pre_filter = PhysicalPlan::Filter {
        input: Box::new(PhysicalPlan::Values {
            schema: fact_schema,
            rows: fact,
        }),
        predicate: Expr::col("grp").lt(Expr::lit(28i64)),
        vectorized,
    };
    let join = PhysicalPlan::HashJoin {
        left: Box::new(pre_filter),
        right: Box::new(PhysicalPlan::Values {
            schema: dim_schema,
            rows: dim,
        }),
        left_keys: vec![Expr::col("fk")],
        right_keys: vec![Expr::col("dk")],
        kind: JoinKind::Inner,
        residual: None,
        site: JoinSite::Hub,
        parallel: false,
        schema: joined_schema,
        vectorized,
    };
    // Two filter rounds and two arithmetic-heavy projections over the
    // expanded join output: exactly the assembly-site work where typed
    // kernels and selection vectors pay (a row interpreter walks each
    // expression tree and re-clones every surviving row, per operator).
    let post_filter = PhysicalPlan::Filter {
        input: Box::new(join),
        predicate: Expr::col("a")
            .lt(Expr::lit(800i64))
            .and(Expr::col("b").gt_eq(Expr::lit(10.0))),
        vectorized,
    };
    let widen = PhysicalPlan::Project {
        input: Box::new(post_filter),
        exprs: vec![
            (Expr::col("grp"), "grp".to_string()),
            (
                Expr::col("a").binary(BinaryOp::Plus, Expr::col("w")),
                "aw".to_string(),
            ),
            (
                Expr::col("a")
                    .binary(BinaryOp::Multiply, Expr::col("w"))
                    .binary(BinaryOp::Modulo, Expr::lit(1_000i64)),
                "ax".to_string(),
            ),
            (
                Expr::col("a").binary(BinaryOp::Minus, Expr::lit(500i64)),
                "ad".to_string(),
            ),
            (Expr::col("b"), "b".to_string()),
        ],
        schema: Arc::new(Schema::new(vec![
            Field::new("grp", DataType::Int),
            Field::new("aw", DataType::Int),
            Field::new("ax", DataType::Int),
            Field::new("ad", DataType::Int),
            Field::new("b", DataType::Float),
        ])),
        vectorized,
    };
    let trim = PhysicalPlan::Filter {
        input: Box::new(widen),
        predicate: Expr::col("ax").lt(Expr::lit(990i64)).and(
            Expr::col("ad")
                .binary(BinaryOp::Plus, Expr::col("aw"))
                .gt_eq(Expr::lit(-400i64)),
        ),
        vectorized,
    };
    let widen2 = PhysicalPlan::Project {
        input: Box::new(trim),
        exprs: vec![
            (Expr::col("grp"), "grp".to_string()),
            (
                Expr::col("aw")
                    .binary(BinaryOp::Multiply, Expr::lit(7i64))
                    .binary(BinaryOp::Modulo, Expr::lit(991i64))
                    .binary(
                        BinaryOp::Plus,
                        Expr::col("ax")
                            .binary(BinaryOp::Multiply, Expr::lit(3i64))
                            .binary(BinaryOp::Modulo, Expr::lit(97i64)),
                    )
                    .binary(BinaryOp::Minus, Expr::col("ad")),
                "aw".to_string(),
            ),
            (
                Expr::col("aw")
                    .binary(BinaryOp::Plus, Expr::col("ax"))
                    .binary(BinaryOp::Multiply, Expr::lit(2i64))
                    .binary(BinaryOp::Modulo, Expr::lit(501i64)),
                "ax".to_string(),
            ),
            (Expr::col("b"), "b".to_string()),
        ],
        schema: Arc::new(Schema::new(vec![
            Field::new("grp", DataType::Int),
            Field::new("aw", DataType::Int),
            Field::new("ax", DataType::Int),
            Field::new("b", DataType::Float),
        ])),
        vectorized,
    };
    let trim2 = PhysicalPlan::Filter {
        input: Box::new(widen2),
        predicate: Expr::col("aw")
            .binary(BinaryOp::Plus, Expr::col("ax"))
            .gt_eq(Expr::lit(-2_000i64)),
        vectorized,
    };
    // Wide filters (high keep rate) isolate the per-row materialization tax:
    // the row interpreter re-clones nearly every row per filter, the
    // columnar path only rewrites a selection vector.
    let keep_b = PhysicalPlan::Filter {
        input: Box::new(trim2),
        predicate: Expr::col("b").lt(Expr::lit(490.0)),
        vectorized,
    };
    let keep_grp = PhysicalPlan::Filter {
        input: Box::new(keep_b),
        predicate: Expr::col("grp").gt_eq(Expr::lit(1i64)),
        vectorized,
    };
    let project = PhysicalPlan::Project {
        input: Box::new(keep_grp),
        exprs: vec![
            (Expr::col("grp"), "grp".to_string()),
            (
                Expr::col("aw").binary(BinaryOp::Plus, Expr::col("ax")),
                "aw".to_string(),
            ),
            (Expr::col("b"), "b".to_string()),
        ],
        schema: Arc::new(Schema::new(vec![
            Field::new("grp", DataType::Int),
            Field::new("aw", DataType::Int),
            Field::new("b", DataType::Float),
        ])),
        vectorized,
    };
    PhysicalPlan::Aggregate {
        input: Box::new(project),
        group_by: vec![Expr::col("grp")],
        aggs: vec![
            AggItem {
                func: AggFunc::CountStar,
                arg: None,
                distinct: false,
                name: "n".to_string(),
            },
            AggItem {
                func: AggFunc::Sum,
                arg: Some(Expr::col("aw")),
                distinct: false,
                name: "s".to_string(),
            },
            AggItem {
                func: AggFunc::Avg,
                arg: Some(Expr::col("b")),
                distinct: false,
                name: "avg_b".to_string(),
            },
            AggItem {
                func: AggFunc::Min,
                arg: Some(Expr::col("aw")),
                distinct: false,
                name: "lo".to_string(),
            },
            AggItem {
                func: AggFunc::Max,
                arg: Some(Expr::col("aw")),
                distinct: false,
                name: "hi".to_string(),
            },
        ],
        schema: Arc::new(Schema::new(vec![
            Field::new("grp", DataType::Int),
            Field::new("n", DataType::Int),
            Field::new("s", DataType::Int),
            Field::new("avg_b", DataType::Float),
            Field::new("lo", DataType::Int),
            Field::new("hi", DataType::Int),
        ])),
        vectorized,
    }
}

/// Execute `plan` against an empty federation (Values leaves fetch nothing)
/// and return the answer plus the best-of-[`BEST_OF`] wall time.
fn time_chain(plan: &PhysicalPlan) -> Result<(Batch, f64)> {
    let fed = Federation::new();
    let exec = Executor::new(&fed);
    let mut best = f64::INFINITY;
    let mut batch = None;
    for _ in 0..BEST_OF {
        let start = Instant::now();
        let out = exec.execute(plan)?;
        best = best.min(start.elapsed().as_secs_f64() * 1000.0);
        batch = Some(out.batch);
    }
    Ok((batch.expect("BEST_OF >= 1"), best))
}

/// One full FedMark suite pass under a planner configuration; everything an
/// equivalence gate wants to compare.
struct SuiteRun {
    answers: Vec<Vec<Row>>,
    degraded: Vec<usize>,
    sim_ms: Vec<f64>,
    bytes: usize,
}

fn run_suite(vectorize: bool, seed: u64) -> Result<SuiteRun> {
    let env = FedMark::build_with_config(
        1,
        seed,
        PlannerConfig {
            vectorize,
            ..PlannerConfig::optimized()
        },
    )?;
    let mut run = SuiteRun {
        answers: Vec::new(),
        degraded: Vec::new(),
        sim_ms: Vec::new(),
        bytes: 0,
    };
    for (_, _, sql) in FedMark::queries() {
        let out = env.system.execute(sql)?;
        let result = out.query_result()?;
        run.degraded.push(result.degraded.len());
        run.sim_ms.push(result.cost.sim_ms);
        run.answers.push(result.batch.rows().to_vec());
    }
    run.bytes = env.system.federation().ledger().total().bytes;
    Ok(run)
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// E21 — the vectorization gate. Errors (failing the harness and CI) unless
/// the columnar chain beats row-at-a-time by [`MIN_SPEEDUP`]x wall-clock,
/// both paths return identical hub-chain answers, the FedMark suite is
/// byte-identical (answers, degradation, sim cost, ledger bytes) under both
/// paths, and a same-seed vectorized rerun replays sim time bit for bit.
pub fn e21_vectorized_execution() -> Result<Report> {
    // ── hub wall-clock gate ───────────────────────────────────────────
    let row_plan = hub_chain(false);
    let vec_plan = hub_chain(true);
    let (row_out, row_wall) = time_chain(&row_plan)?;
    let (vec_out, vec_wall) = time_chain(&vec_plan)?;
    let speedup = row_wall / vec_wall;

    // ── end-to-end equivalence + replay ───────────────────────────────
    let off = run_suite(false, 23)?;
    let on = run_suite(true, 23)?;
    let replay = run_suite(true, 23)?;

    let mut report = Report::new(
        "e21",
        "vectorized columnar execution: batch kernels vs row-at-a-time",
        "Bitton §3 — hub-side assembly work is the EII server's own CPU \
         bill; executing it over typed column batches instead of row \
         iterators buys a multiple of wall-clock throughput without \
         changing a single answer byte or simulated millisecond",
        &[
            "path",
            "hub chain wall ms (best of 3)",
            "chain rows out",
            "suite sim ms",
            "suite bytes",
        ],
    );
    report.row(vec![
        "row-at-a-time".to_string(),
        fmt_f(row_wall),
        row_out.num_rows().to_string(),
        fmt_f(off.sim_ms.iter().sum::<f64>()),
        off.bytes.to_string(),
    ]);
    report.row(vec![
        "vectorized".to_string(),
        fmt_f(vec_wall),
        vec_out.num_rows().to_string(),
        fmt_f(on.sim_ms.iter().sum::<f64>()),
        on.bytes.to_string(),
    ]);
    report.note(format!(
        "hub chain: filter → hash join ({FACT_ROWS} probe rows x {FANOUT}x \
         fanout ≈ {}k joined) → filter → project → group-by over Values \
         leaves; vectorized is {}x faster (bar: {MIN_SPEEDUP:.0}x)",
        FACT_ROWS * FANOUT / 1000,
        fmt_f(speedup),
    ));
    report.note(
        "equivalence: FedMark answers, degradation flags, per-query sim ms, \
         and ledger bytes are identical with vectorize on/off; same-seed \
         vectorized rerun replays sim time bit for bit",
    );

    // CI regression gates.
    if speedup < MIN_SPEEDUP {
        return Err(EiiError::Execution(format!(
            "vectorized chain only {speedup:.2}x faster than row-at-a-time \
             — under the {MIN_SPEEDUP:.0}x bar ({row_wall:.2} vs \
             {vec_wall:.2} wall ms)"
        )));
    }
    if row_out.rows() != vec_out.rows() {
        return Err(EiiError::Execution(
            "hub chain answers differ between row and vectorized paths".into(),
        ));
    }
    if on.answers != off.answers || on.degraded != off.degraded {
        return Err(EiiError::Execution(
            "FedMark answers or degradation flags differ with vectorize \
             on vs off"
                .into(),
        ));
    }
    if bits(&on.sim_ms) != bits(&off.sim_ms) {
        return Err(EiiError::Execution(
            "simulated per-query cost differs with vectorize on vs off — \
             the columnar path must charge the same cost formulas"
                .into(),
        ));
    }
    if on.bytes != off.bytes {
        return Err(EiiError::Execution(format!(
            "ledger bytes differ with vectorize on vs off: {} vs {}",
            on.bytes, off.bytes
        )));
    }
    if bits(&replay.sim_ms) != bits(&on.sim_ms) || replay.answers != on.answers {
        return Err(EiiError::Execution(
            "same-seed vectorized replay diverged".into(),
        ));
    }

    BenchSummary::from_latencies("e21", &on.sim_ms, on.bytes)
        .with_extra("wall_speedup", speedup)
        .with_extra("row_wall_ms", row_wall)
        .with_extra("vec_wall_ms", vec_wall)
        .with_extra("chain_rows", (FACT_ROWS * FANOUT) as f64)
        .write()?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eii::prelude::{CacheConfig, RefreshPolicy};

    /// The hub chain returns identical rows under both paths (the wall-clock
    /// gate itself only runs in CI via the experiments binary).
    #[test]
    fn hub_chain_paths_agree() {
        let fed = Federation::new();
        let exec = Executor::new(&fed);
        let row = exec.execute(&hub_chain(false)).unwrap();
        let vec = exec.execute(&hub_chain(true)).unwrap();
        assert!(row.batch.num_rows() > 0);
        assert_eq!(row.batch.rows(), vec.batch.rows());
        assert_eq!(row.cost.sim_ms.to_bits(), vec.cost.sim_ms.to_bits());
    }

    /// Ledger pinning for the vectorization rollout: on E15's repeated
    /// FedMark workload — matviews and result cache on, the configuration
    /// whose whole point is byte accounting — the ledger's shipped and
    /// saved byte counts are identical with vectorize on and off.
    /// Selection vectors must never change what crosses the wire.
    #[test]
    fn ledger_bytes_identical_with_and_without_vectorization() {
        let run = |vectorize: bool| {
            let env = FedMark::build_with_config(
                1,
                23,
                PlannerConfig {
                    vectorize,
                    ..PlannerConfig::optimized()
                },
            )
            .unwrap();
            env.system
                .define_matview(
                    "mv_customers",
                    "SELECT * FROM crm.customers",
                    RefreshPolicy::Manual,
                )
                .unwrap();
            env.system.install_result_cache(CacheConfig::default());
            env.system.federation().ledger().reset();
            for _ in 0..2 {
                for (_, _, sql) in FedMark::queries() {
                    env.system.execute(sql).unwrap();
                }
            }
            env.system.federation().ledger().total()
        };
        let off = run(false);
        let on = run(true);
        assert!(off.bytes > 0, "workload must ship bytes");
        assert_eq!(off.bytes, on.bytes, "shipped bytes must pin");
        assert_eq!(off.bytes_saved, on.bytes_saved, "saved bytes must pin");
    }
}
