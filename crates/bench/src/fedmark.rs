//! FedMark: the standardized federated benchmark (Bitton §3: "to adequately
//! measure EII performance, we need a standardized benchmark – a la TPC").
//!
//! A deterministic, seeded generator for a six-source enterprise:
//!
//! | source  | kind                  | link | dialect        | tables |
//! |---------|-----------------------|------|----------------|--------|
//! | crm     | relational            | LAN  | ANSI           | customers |
//! | sales   | relational            | WAN  | legacy-minimal | orders, products, lineitems |
//! | hr      | relational            | LAN  | ANSI           | employees |
//! | support | document store        | LAN  | (wrapper)      | tickets |
//! | files   | delimited file        | WAN  | none           | payments |
//! | credit  | web service (bound)   | WAN  | none           | ratings |
//!
//! plus the Q1–Q10 query suite exercising selective scans, cross-source
//! joins, aggregation, document and flat-file joins, unions, bind joins,
//! top-N, and LIKE/distinct.

use std::fmt::Write as _;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use eii::prelude::*;
use eii::row;

/// FedMark scale factor: row counts scale linearly with it.
pub type ScaleFactor = usize;

/// A generated FedMark environment.
pub struct FedMark {
    pub system: Arc<EiiSystem>,
    pub clock: SimClock,
    /// The support-ticket document store (schema-less).
    pub tickets: DocStore,
    /// Unstructured contracts corpus (for the search experiments).
    pub contracts: DocStore,
    pub sf: ScaleFactor,
}

const REGIONS: usize = 8;
const SEGMENTS: usize = 4;
const ADJ: [&str; 8] = [
    "acme", "atlas", "apex", "global", "united", "pioneer", "summit", "nova",
];
const NOUN: [&str; 5] = ["corp", "industries", "logistics", "systems", "partners"];
const STATUS: [&str; 4] = ["open", "shipped", "billed", "returned"];
const CATEGORY: [&str; 6] = ["widgets", "gadgets", "tools", "parts", "service", "license"];
const DEPT: [&str; 5] = ["engineering", "sales", "finance", "support", "operations"];
const LOCATION: [&str; 3] = ["hq", "east-office", "west-office"];
const RATING: [&str; 5] = ["AAA", "AA", "A", "B", "C"];

/// Row counts per table at a scale factor.
pub fn sizes(sf: ScaleFactor) -> (i64, i64, i64, i64, i64, i64, i64) {
    let sf = sf.max(1) as i64;
    (
        100 * sf,  // customers
        600 * sf,  // orders
        40 * sf,   // products
        1500 * sf, // lineitems
        60 * sf,   // employees
        150 * sf,  // tickets
        300 * sf,  // payments
    )
}

fn company_name(rng: &mut StdRng, i: i64) -> String {
    format!(
        "{} {} {}",
        ADJ[rng.gen_range(0..ADJ.len())],
        NOUN[rng.gen_range(0..NOUN.len())],
        i
    )
}

impl FedMark {
    /// Build the environment with the optimizer fully on.
    pub fn build(sf: ScaleFactor, seed: u64) -> Result<FedMark> {
        FedMark::build_with_config(sf, seed, PlannerConfig::optimized())
    }

    /// Build with a specific planner configuration (the ablations).
    pub fn build_with_config(
        sf: ScaleFactor,
        seed: u64,
        config: PlannerConfig,
    ) -> Result<FedMark> {
        let mut rng = StdRng::seed_from_u64(seed);
        let clock = SimClock::new();
        let (n_cust, n_ord, n_prod, n_li, n_emp, n_tick, n_pay) = sizes(sf);

        // ── crm ───────────────────────────────────────────────────────
        let crm = Database::new("crm", clock.clone());
        let customers = crm.create_table(
            TableDef::new(
                "customers",
                Arc::new(Schema::new(vec![
                    Field::new("customer_id", DataType::Int).not_null(),
                    Field::new("name", DataType::Str),
                    Field::new("region", DataType::Str),
                    Field::new("segment", DataType::Str),
                    Field::new("created_at", DataType::Timestamp),
                ])),
            )
            .with_primary_key(0),
        )?;
        {
            let mut t = customers.write();
            for i in 0..n_cust {
                t.insert(row![
                    i,
                    company_name(&mut rng, i),
                    format!("r{}", rng.gen_range(0..REGIONS)),
                    format!("s{}", rng.gen_range(0..SEGMENTS)),
                    Value::Timestamp(rng.gen_range(0..1_000_000)),
                ])?;
            }
        }

        // ── sales (legacy dialect, WAN) ───────────────────────────────
        let sales = Database::new("sales", clock.clone());
        let orders = sales.create_table(
            TableDef::new(
                "orders",
                Arc::new(Schema::new(vec![
                    Field::new("order_id", DataType::Int).not_null(),
                    Field::new("customer_id", DataType::Int),
                    Field::new("total", DataType::Float),
                    Field::new("status", DataType::Str),
                    Field::new("placed_at", DataType::Timestamp),
                ])),
            )
            .with_primary_key(0),
        )?;
        {
            let mut t = orders.write();
            t.create_hash_index(1);
            for i in 0..n_ord {
                t.insert(row![
                    i,
                    rng.gen_range(0..n_cust),
                    (rng.gen_range(1..2000) as f64) / 2.0,
                    STATUS[rng.gen_range(0..STATUS.len())],
                    Value::Timestamp(rng.gen_range(0..1_000_000)),
                ])?;
            }
        }
        let products = sales.create_table(
            TableDef::new(
                "products",
                Arc::new(Schema::new(vec![
                    Field::new("product_id", DataType::Int).not_null(),
                    Field::new("category", DataType::Str),
                    Field::new("price", DataType::Float),
                ])),
            )
            .with_primary_key(0),
        )?;
        {
            let mut t = products.write();
            for i in 0..n_prod {
                t.insert(row![
                    i,
                    CATEGORY[rng.gen_range(0..CATEGORY.len())],
                    (rng.gen_range(5..500) as f64) / 5.0,
                ])?;
            }
        }
        let lineitems = sales.create_table(
            TableDef::new(
                "lineitems",
                Arc::new(Schema::new(vec![
                    Field::new("li_id", DataType::Int).not_null(),
                    Field::new("order_id", DataType::Int),
                    Field::new("product_id", DataType::Int),
                    Field::new("qty", DataType::Int),
                ])),
            )
            .with_primary_key(0),
        )?;
        {
            let mut t = lineitems.write();
            t.create_hash_index(1);
            for i in 0..n_li {
                t.insert(row![
                    i,
                    rng.gen_range(0..n_ord),
                    rng.gen_range(0..n_prod),
                    rng.gen_range(1..10i64),
                ])?;
            }
        }

        // ── hr ────────────────────────────────────────────────────────
        let hr = Database::new("hr", clock.clone());
        let employees = hr.create_table(
            TableDef::new(
                "employees",
                Arc::new(Schema::new(vec![
                    Field::new("emp_id", DataType::Int).not_null(),
                    Field::new("name", DataType::Str),
                    Field::new("department", DataType::Str),
                    Field::new("location", DataType::Str),
                ])),
            )
            .with_primary_key(0),
        )?;
        {
            let mut t = employees.write();
            for i in 0..n_emp {
                t.insert(row![
                    i,
                    format!("employee {i}"),
                    DEPT[rng.gen_range(0..DEPT.len())],
                    LOCATION[rng.gen_range(0..LOCATION.len())],
                ])?;
            }
        }

        // ── support (schema-less documents) ───────────────────────────
        let tickets = DocStore::new();
        {
            // Batches of 25 tickets per exported document.
            let mut batch: Vec<Vec<(&str, String)>> = Vec::new();
            let mut subjects: Vec<String> = Vec::new();
            for i in 0..n_tick {
                let cust = rng.gen_range(0..n_cust);
                subjects.push(format!(
                    "ticket about {} from customer {cust}",
                    CATEGORY[rng.gen_range(0..CATEGORY.len())]
                ));
                batch.push(vec![
                    ("ticket_id", i.to_string()),
                    ("customer_id", cust.to_string()),
                    ("severity", rng.gen_range(1..5i64).to_string()),
                    ("subject", subjects.last().expect("pushed").clone()),
                ]);
                if batch.len() == 25 || i == n_tick - 1 {
                    tickets.insert(Document::from_records(
                        format!("ticket export {i}"),
                        &batch,
                    ));
                    batch.clear();
                }
            }
        }
        let support = DocumentConnector::new("support", tickets.clone()).define_table(
            VirtualTable {
                name: "tickets".into(),
                columns: vec![
                    ("ticket_id".into(), "//row/ticket_id".into(), DataType::Int),
                    ("customer_id".into(), "//row/customer_id".into(), DataType::Int),
                    ("severity".into(), "//row/severity".into(), DataType::Int),
                    ("subject".into(), "//row/subject".into(), DataType::Str),
                ],
            },
        );

        // ── files (delimited payments) ────────────────────────────────
        let mut csv = String::from("payment_id,customer_id,amount\n");
        for i in 0..n_pay {
            let _ = writeln!(
                csv,
                "{i},{},{}",
                rng.gen_range(0..n_cust),
                (rng.gen_range(1..5000) as f64) / 10.0
            );
        }
        let files = CsvConnector::new("files").add_file(
            "payments",
            &csv,
            ',',
            &[DataType::Int, DataType::Int, DataType::Float],
        )?;

        // ── credit (access-limited web service) ───────────────────────
        let credit_db = Database::new("credit", clock.clone());
        let ratings = credit_db.create_table(
            TableDef::new(
                "ratings",
                Arc::new(Schema::new(vec![
                    Field::new("customer_id", DataType::Int).not_null(),
                    Field::new("rating", DataType::Str),
                ])),
            )
            .with_primary_key(0),
        )?;
        {
            let mut t = ratings.write();
            for i in 0..n_cust {
                t.insert(row![i, RATING[rng.gen_range(0..RATING.len())]])?;
            }
        }

        // ── contracts corpus (search) ─────────────────────────────────
        let contracts = DocStore::new();
        for i in 0..(20 * sf.max(1) as i64) {
            let cust = rng.gen_range(0..n_cust);
            contracts.insert(Document::from_text(
                format!("contract {i}"),
                &format!(
                    "master agreement customer {cust} {} renewal terms {} support tier {}",
                    company_name(&mut rng, cust),
                    2004 + (i % 3),
                    ["gold", "silver", "bronze"][rng.gen_range(0..3)]
                ),
            ));
        }

        // ── assemble ──────────────────────────────────────────────────
        let system = EiiSystem::builder(clock.clone())
            .planner_config(config)
            .source(
                Arc::new(RelationalConnector::new(crm)),
                LinkProfile::lan(),
                WireFormat::Native,
            )
            .source(
                Arc::new(
                    RelationalConnector::new(sales)
                        .with_dialect(eii::federation::Dialect::legacy_minimal()),
                ),
                LinkProfile::wan(),
                WireFormat::Native,
            )
            .source(
                Arc::new(RelationalConnector::new(hr)),
                LinkProfile::lan(),
                WireFormat::Native,
            )
            .source(Arc::new(support), LinkProfile::lan(), WireFormat::Native)
            .source(Arc::new(files), LinkProfile::wan(), WireFormat::Native)
            .source(
                Arc::new(
                    WebServiceConnector::new("credit", credit_db)
                        .require_binding("ratings", "customer_id"),
                ),
                LinkProfile::wan(),
                WireFormat::Native,
            )
            .build()?;

        Ok(FedMark {
            system,
            clock,
            tickets,
            contracts,
            sf,
        })
    }

    /// The Q1–Q10 suite: `(id, description, sql)`.
    pub fn queries() -> Vec<(&'static str, &'static str, &'static str)> {
        vec![
            (
                "Q1",
                "selective single-source scan",
                "SELECT name FROM crm.customers WHERE region = 'r3' AND segment = 's1'",
            ),
            (
                "Q2",
                "selective cross-source join (WAN, legacy dialect)",
                "SELECT c.name, o.total FROM crm.customers c \
                 JOIN sales.orders o ON c.customer_id = o.customer_id \
                 WHERE c.region = 'r1' AND o.total > 900",
            ),
            (
                "Q3",
                "revenue rollup by region",
                "SELECT c.region, COUNT(*) AS orders, SUM(o.total) AS revenue \
                 FROM crm.customers c JOIN sales.orders o ON c.customer_id = o.customer_id \
                 GROUP BY c.region ORDER BY revenue DESC",
            ),
            (
                "Q4",
                "three-table rollup at one source",
                "SELECT p.category, SUM(l.qty) AS units \
                 FROM sales.lineitems l \
                 JOIN sales.products p ON l.product_id = p.product_id \
                 JOIN sales.orders o ON l.order_id = o.order_id \
                 WHERE o.status = 'shipped' GROUP BY p.category ORDER BY units DESC",
            ),
            (
                "Q5",
                "document-store join",
                "SELECT c.name, t.subject FROM crm.customers c \
                 JOIN support.tickets t ON c.customer_id = t.customer_id \
                 WHERE t.severity = 1",
            ),
            (
                "Q6",
                "flat-file join (nothing pushable)",
                "SELECT c.name, p.amount FROM crm.customers c \
                 JOIN files.payments p ON c.customer_id = p.customer_id \
                 WHERE c.segment = 's0'",
            ),
            (
                "Q7",
                "union across sources",
                "SELECT name FROM crm.customers WHERE region = 'r0' \
                 UNION ALL SELECT name FROM hr.employees WHERE location = 'hq'",
            ),
            (
                "Q8",
                "bind join through an access-limited service",
                "SELECT c.name, r.rating FROM crm.customers c \
                 JOIN credit.ratings r ON c.customer_id = r.customer_id \
                 WHERE c.region = 'r2'",
            ),
            (
                "Q9",
                "cross-source top-N",
                "SELECT c.name, o.total FROM crm.customers c \
                 JOIN sales.orders o ON c.customer_id = o.customer_id \
                 ORDER BY o.total DESC LIMIT 10",
            ),
            (
                "Q10",
                "LIKE + DISTINCT",
                "SELECT DISTINCT name FROM crm.customers WHERE name LIKE 'a%'",
            ),
            (
                "Q11",
                "anti join via NOT IN subquery (customers who never ordered)",
                "SELECT name FROM crm.customers WHERE customer_id NOT IN \
                 (SELECT customer_id FROM sales.orders)",
            ),
        ]
    }

    /// Rewrite a FedMark query to run against a warehouse named `wh`
    /// holding copies of every loadable table.
    pub fn warehouse_sql(sql: &str) -> String {
        sql.replace("crm.", "wh.")
            .replace("sales.", "wh.")
            .replace("hr.", "wh.")
            .replace("support.", "wh.")
            .replace("files.", "wh.")
    }

    /// Every warehouse-loadable `source.table` with its key column (the
    /// credit service cannot be bulk-extracted — its access pattern forbids
    /// it).
    pub fn loadable_tables() -> Vec<(&'static str, &'static str)> {
        vec![
            ("crm.customers", "customer_id"),
            ("sales.orders", "order_id"),
            ("sales.products", "product_id"),
            ("sales.lineitems", "li_id"),
            ("hr.employees", "emp_id"),
            ("support.tickets", "ticket_id"),
            ("files.payments", "payment_id"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let a = FedMark::build(1, 42).unwrap();
        let b = FedMark::build(1, 42).unwrap();
        let qa = a
            .system
            .execute("SELECT COUNT(*) AS n FROM crm.customers WHERE region = 'r1'")
            .unwrap();
        let qb = b
            .system
            .execute("SELECT COUNT(*) AS n FROM crm.customers WHERE region = 'r1'")
            .unwrap();
        assert_eq!(qa.rows().unwrap().rows(), qb.rows().unwrap().rows());
    }

    #[test]
    fn all_queries_run_at_sf1() {
        let env = FedMark::build(1, 7).unwrap();
        for (id, _, sql) in FedMark::queries() {
            let out = env
                .system
                .execute(sql)
                .unwrap_or_else(|e| panic!("{id}: {e}"));
            let _ = out.rows().unwrap();
        }
    }

    #[test]
    fn naive_and_optimized_agree_on_the_suite() {
        let opt = FedMark::build(1, 9).unwrap();
        let naive = FedMark::build_with_config(1, 9, PlannerConfig::naive()).unwrap();
        for (id, _, sql) in FedMark::queries() {
            let a = opt.system.execute(sql).unwrap();
            let b = naive.system.execute(sql).unwrap();
            let mut ra = a.rows().unwrap().rows().to_vec();
            let mut rb = b.rows().unwrap().rows().to_vec();
            ra.sort();
            rb.sort();
            assert_eq!(ra, rb, "query {id} differs between configs");
        }
    }

    #[test]
    fn sizes_scale_linearly() {
        let (c1, o1, ..) = sizes(1);
        let (c3, o3, ..) = sizes(3);
        assert_eq!(c3, 3 * c1);
        assert_eq!(o3, 3 * o1);
    }
}
