//! Experiment report rendering: aligned ASCII tables (for EXPERIMENTS.md)
//! plus machine-readable JSON lines.

use std::fmt::Write as _;

/// One experiment's tabular output.
#[derive(Debug, Clone)]
pub struct Report {
    pub id: String,
    pub title: String,
    pub claim: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
    pub notes: Vec<String>,
}

impl Report {
    /// New empty report.
    pub fn new(id: &str, title: &str, claim: &str, headers: &[&str]) -> Self {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            claim: claim.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a data row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Append a free-form note printed under the table.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Render as an aligned ASCII table with header and notes.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}", self.id.to_uppercase(), self.title);
        let _ = writeln!(out, "Claim: {}", self.claim);
        let sep: String = widths
            .iter()
            .map(|w| format!("+{}", "-".repeat(w + 2)))
            .collect::<String>()
            + "+";
        let _ = writeln!(out, "{sep}");
        out.push('|');
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(out, " {h:<w$} |");
        }
        out.push('\n');
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            out.push('|');
            for (c, w) in row.iter().zip(&widths) {
                let _ = write!(out, " {c:>w$} |");
            }
            out.push('\n');
        }
        let _ = writeln!(out, "{sep}");
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        out
    }

    /// Machine-readable JSON (one object per report).
    pub fn to_json(&self) -> String {
        serde_json::json!({
            "id": self.id,
            "title": self.title,
            "headers": self.headers,
            "rows": self.rows,
            "notes": self.notes,
        })
        .to_string()
    }
}

/// Format a float compactly for table cells.
pub fn fmt_f(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut r = Report::new("e0", "demo", "x beats y", &["k", "value"]);
        r.row(vec!["a".into(), "1".into()]);
        r.row(vec!["long-key".into(), "22".into()]);
        r.note("a note");
        let text = r.render();
        assert!(text.contains("E0 — demo"));
        assert!(text.contains("| long-key |"));
        assert!(text.contains("note: a note"));
        assert!(r.to_json().contains("\"id\":\"e0\""));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(12345.6), "12346");
        assert_eq!(fmt_f(42.42), "42.4");
        assert_eq!(fmt_f(0.1234), "0.123");
    }
}
