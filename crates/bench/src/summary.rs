//! Machine-readable benchmark summaries: each headline experiment
//! (E13–E18) distills its run into one `BENCH_E<N>.json` file at the repo
//! root — throughput, latency percentiles on the virtual timeline, and
//! bytes shipped — so CI can archive the numbers as artifacts and diff
//! them across commits without parsing rendered tables. [`trajectory`]
//! folds every summary back into one compact table for the CI log.

use std::path::PathBuf;

use eii::data::{EiiError, Result};

/// The headline numbers one experiment emits.
#[derive(Debug, Clone)]
pub struct BenchSummary {
    pub id: String,
    /// Queries measured.
    pub queries: usize,
    /// Queries per simulated second (`queries / total virtual latency`).
    pub throughput_qps: f64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    /// Total bytes shipped across the federation during the measured run.
    pub bytes_shipped: usize,
    /// Experiment-specific extras (`hedge.fired`, `shed.count`, ...).
    pub extra: Vec<(String, f64)>,
}

impl BenchSummary {
    /// Summarize a vector of per-query virtual latencies (simulated ms).
    pub fn from_latencies(id: &str, latencies_ms: &[f64], bytes_shipped: usize) -> Self {
        let total: f64 = latencies_ms.iter().sum();
        BenchSummary {
            id: id.to_string(),
            queries: latencies_ms.len(),
            throughput_qps: if total > 0.0 {
                latencies_ms.len() as f64 / (total / 1000.0)
            } else {
                0.0
            },
            p50_ms: percentile(latencies_ms, 50.0),
            p99_ms: percentile(latencies_ms, 99.0),
            bytes_shipped,
            extra: Vec::new(),
        }
    }

    /// Attach an experiment-specific number.
    pub fn with_extra(mut self, key: &str, value: f64) -> Self {
        self.extra.push((key.to_string(), value));
        self
    }

    /// The JSON document this summary serializes to.
    pub fn to_json(&self) -> String {
        let mut entries = vec![
            ("id".to_string(), serde_json::to_value(&self.id)),
            ("queries".to_string(), serde_json::to_value(&self.queries)),
            (
                "throughput_qps".to_string(),
                serde_json::to_value(&round3(self.throughput_qps)),
            ),
            ("p50_ms".to_string(), serde_json::to_value(&round3(self.p50_ms))),
            ("p99_ms".to_string(), serde_json::to_value(&round3(self.p99_ms))),
            (
                "bytes_shipped".to_string(),
                serde_json::to_value(&self.bytes_shipped),
            ),
        ];
        for (k, v) in &self.extra {
            entries.push((k.clone(), serde_json::to_value(&round3(*v))));
        }
        serde_json::Value::Obj(entries).to_string()
    }

    /// Write `BENCH_<ID>.json` at the repository root; returns the path.
    pub fn write(&self) -> Result<PathBuf> {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(format!("BENCH_{}.json", self.id.to_uppercase()));
        std::fs::write(&path, format!("{}\n", self.to_json()))
            .map_err(|e| EiiError::Execution(format!("writing {}: {e}", path.display())))?;
        Ok(path)
    }
}

/// The headline gate experiments, in order, whose `BENCH_E<N>.json`
/// summaries make up the bench trajectory.
pub const TRAJECTORY_IDS: [&str; 9] =
    ["e13", "e14", "e15", "e16", "e17", "e18", "e19", "e20", "e21"];

/// Render the cross-experiment bench trajectory: one row per
/// [`TRAJECTORY_IDS`] summary present at the repo root, so CI (and a
/// reviewer skimming its log) can scan every headline number in one
/// compact table instead of opening six JSON artifacts. Experiments whose
/// summary file is missing render as dashes rather than failing the step.
pub fn trajectory() -> String {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut report = crate::report::Report::new(
        "trajectory",
        "bench trajectory",
        "the gate experiments' headline numbers, one row each, from BENCH_E*.json",
        &["exp", "queries", "qps", "p50 ms", "p99 ms", "bytes", "extras"],
    );
    for id in TRAJECTORY_IDS {
        let path = root.join(format!("BENCH_{}.json", id.to_uppercase()));
        let parsed = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| serde_json::from_str::<serde_json::Value>(&text).ok());
        let Some(serde_json::Value::Obj(entries)) = parsed else {
            report.row(vec![
                id.to_uppercase(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "missing".into(),
            ]);
            continue;
        };
        let num = |key: &str| -> Option<String> {
            entries.iter().find(|(k, _)| k == key).and_then(|(_, v)| match v {
                serde_json::Value::Int(i) => Some(i.to_string()),
                serde_json::Value::Float(f) => Some(crate::report::fmt_f(*f)),
                _ => None,
            })
        };
        let cell = |key: &str| num(key).unwrap_or_else(|| "-".into());
        let headline = ["id", "queries", "throughput_qps", "p50_ms", "p99_ms", "bytes_shipped"];
        let extras: Vec<String> = entries
            .iter()
            .filter(|(k, _)| !headline.contains(&k.as_str()))
            .filter_map(|(k, _)| num(k).map(|v| format!("{k}={v}")))
            .collect();
        report.row(vec![
            id.to_uppercase(),
            cell("queries"),
            cell("throughput_qps"),
            cell("p50_ms"),
            cell("p99_ms"),
            cell("bytes_shipped"),
            if extras.is_empty() {
                "-".into()
            } else {
                extras.join(" ")
            },
        ]);
    }
    report.render()
}

/// Nearest-rank percentile over an unsorted sample (0 for an empty one).
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn trajectory_renders_one_row_per_gate_experiment() {
        let text = trajectory();
        assert!(text.contains("TRAJECTORY"));
        for id in TRAJECTORY_IDS {
            assert!(text.contains(&id.to_uppercase()), "missing row for {id}");
        }
    }

    #[test]
    fn summary_serializes_headline_numbers() {
        let s = BenchSummary::from_latencies("e99", &[1.0, 2.0, 3.0, 4.0], 1234)
            .with_extra("hedge.fired", 2.0);
        let json = s.to_json();
        assert!(json.contains("\"id\":\"e99\""));
        assert!(json.contains("\"bytes_shipped\":1234"));
        assert!(json.contains("\"hedge.fired\":2"));
        assert_eq!(s.queries, 4);
        assert!((s.throughput_qps - 400.0).abs() < 1e-9);
    }
}
