//! Concurrency smoke test: one `Arc<EiiSystem>` shared across 16 OS
//! threads runs the full FedMark query suite simultaneously. Every thread
//! must get row-identical answers to the serial oracle, and the run must
//! complete (no deadlock) with exact aggregate byte accounting.

use eii::data::Row;
use eii_bench::fedmark::FedMark;

fn sorted(rows: &[Row]) -> Vec<Row> {
    let mut rows = rows.to_vec();
    rows.sort();
    rows
}

#[test]
fn fedmark_suite_across_16_os_threads() {
    const THREADS: usize = 16;
    // Serial oracle on its own environment: expected rows per query and
    // bytes shipped for one pass over the suite.
    let oracle = FedMark::build(1, 7).unwrap();
    let mut expect = Vec::new();
    for (_, _, sql) in FedMark::queries() {
        let out = oracle.system.execute(sql).unwrap();
        expect.push(sorted(out.rows().unwrap().rows()));
    }
    let serial_bytes = oracle.system.federation().ledger().total().bytes;

    let env = FedMark::build(1, 7).unwrap();
    let system = &env.system;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let expect = &expect;
            scope.spawn(move || {
                let session = system.session().with_label(&format!("smoke{t}"));
                for (i, (id, _, sql)) in FedMark::queries().into_iter().enumerate() {
                    let out = session.execute(sql).unwrap();
                    assert_eq!(
                        sorted(out.rows().unwrap().rows()),
                        expect[i],
                        "thread {t}: {id} diverged from the serial oracle"
                    );
                }
            });
        }
    });

    // Aggregate accounting stays exact under contention: 16 threads each
    // shipped exactly what one serial pass ships.
    assert_eq!(
        env.system.federation().ledger().total().bytes,
        serial_bytes * THREADS,
        "concurrent byte accounting drifted from serial"
    );
    let snap = env.system.metrics().snapshot();
    for t in 0..THREADS {
        assert_eq!(
            snap.counter(&format!("session.smoke{t}.queries")),
            FedMark::queries().len() as u64,
            "per-session metrics labels under-counted"
        );
    }
}
