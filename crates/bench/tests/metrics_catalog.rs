//! Metrics-catalog drift test: the table in `docs/observability.md` is the
//! contract for every metric name the engine emits. A smoke workload
//! exercises each subsystem (queries, cache, matviews, sagas, resilience,
//! hedging, degradation, brownout shedding, deadlines, cancellation, SLOs)
//! and the test fails in both directions — a documented metric the
//! workload never emits (stale docs or dead instrumentation), or an
//! emitted metric the catalog does not list (undocumented telemetry).
//!
//! Catalog placeholders like `<name>` / `<priority>` match exactly one
//! dot-free segment of an emitted metric name.

use std::collections::{BTreeSet, HashMap};

use eii::data::EiiError;
use eii::eai::{MessageBroker, ProcessDef, ProcessEnv, SagaEngine, Step};
use eii::obs::{MetricsSnapshot, SloObjective};
use eii::prelude::*;
use eii::row;
use eii_bench::fedmark::FedMark;

/// Parse the metric catalog out of `docs/observability.md`: rows of the
/// three-column table whose middle cell is a metric type.
fn documented_catalog() -> Vec<(String, String)> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/observability.md");
    let text = std::fs::read_to_string(path).expect("docs/observability.md is readable");
    let mut out = Vec::new();
    for line in text.lines() {
        let trimmed = line.trim();
        if !trimmed.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = trimmed
            .trim_matches('|')
            .split('|')
            .map(str::trim)
            .collect();
        if cells.len() == 3 && matches!(cells[1], "counter" | "gauge" | "histogram" | "sketch") {
            out.push((cells[1].to_string(), cells[0].trim_matches('`').to_string()));
        }
    }
    assert!(
        out.len() >= 30,
        "catalog parse looks broken: only {} rows found",
        out.len()
    );
    out
}

/// `<placeholder>` segments match any one dot-free segment.
fn matches_pattern(pattern: &str, name: &str) -> bool {
    let ps: Vec<&str> = pattern.split('.').collect();
    let ns: Vec<&str> = name.split('.').collect();
    ps.len() == ns.len()
        && ps
            .iter()
            .zip(&ns)
            .all(|(p, n)| (p.starts_with('<') && p.ends_with('>')) || p == n)
}

fn collect(into: &mut BTreeSet<(String, String)>, snap: &MetricsSnapshot) {
    for k in snap.counters.keys() {
        into.insert(("counter".to_string(), k.clone()));
    }
    for k in snap.gauges.keys() {
        into.insert(("gauge".to_string(), k.clone()));
    }
    for k in snap.histograms.keys() {
        into.insert(("histogram".to_string(), k.clone()));
    }
    for k in snap.sketches.keys() {
        into.insert(("sketch".to_string(), k.clone()));
    }
}

/// Queries, labeled session, matview rewrite, result cache (hit / stale
/// hit / eviction / invalidation), deadlines, cancellation, sagas, SLO
/// evaluation — the "happy path plus local machinery" slice.
fn scenario_core() -> MetricsSnapshot {
    let env = FedMark::build(1, 11).unwrap();
    let system = &env.system;
    system.install_result_cache(CacheConfig {
        capacity: 8,
        staleness_budget_ms: 0,
    });
    system
        .define_matview(
            "mv_customers",
            "SELECT * FROM crm.customers",
            RefreshPolicy::Manual,
        )
        .unwrap();
    system.set_slo_objective(SloObjective::new("normal", 100.0));

    // The full suite through a labeled session: 11 distinct cache entries
    // against capacity 8, so the oldest evict.
    let session = system.session().with_label("drift");
    for (_, _, sql) in FedMark::queries() {
        session.execute(sql).unwrap();
    }

    // Fill, hit (age histogram + bytes-saved credit), then turn the entry
    // suspect by writing to its base table: a budgeted session takes a
    // stale hit, the unbudgeted retry invalidates and refetches.
    let hot = "SELECT total FROM sales.orders WHERE total > 950";
    system.execute(hot).unwrap();
    system.execute(hot).unwrap();
    system
        .federation()
        .source("sales")
        .unwrap()
        .update(&UpdateOp::Insert {
            table: "orders".into(),
            row: row![9_000_000i64, 0i64, 999.5f64, "new", Value::Timestamp(0)],
        })
        .unwrap();
    system
        .session()
        .with_staleness_budget(1_000_000_000)
        .execute(hot)
        .unwrap();
    system.execute(hot).unwrap();
    system.invalidate_cached("crm.customers");

    // Incremental view maintenance: one delta-maintained view (bootstrap,
    // delta refresh with staleness tracking, in-place result-cache
    // refresh) and one definition that falls back to recompute.
    let ivm_sql = "SELECT order_id, total FROM sales.orders WHERE total > 990";
    let fallback = system
        .define_incremental_matview("mv_ivm", ivm_sql, RefreshPolicy::Manual)
        .unwrap();
    assert!(fallback.is_none(), "a filter view must incrementalize");
    system.execute(ivm_sql).unwrap(); // fills the cache under the view's plan key
    system
        .federation()
        .source("sales")
        .unwrap()
        .update(&UpdateOp::Insert {
            table: "orders".into(),
            row: row![9_000_001i64, 0i64, 999.75f64, "new", Value::Timestamp(0)],
        })
        .unwrap();
    system.refresh_matview("mv_ivm").unwrap();
    let reason = system
        .define_incremental_matview(
            "mv_ivm_fallback",
            "SELECT order_id FROM sales.orders ORDER BY total LIMIT 5",
            RefreshPolicy::Manual,
        )
        .unwrap();
    assert!(reason.is_some(), "ORDER BY ... LIMIT must fall back");
    system.refresh_matview("mv_ivm_fallback").unwrap();

    // Deadline accounting: one statement finishes inside a generous
    // budget, one federated join cannot fit a 1 ms budget.
    system
        .session()
        .with_deadline_ms(1_000_000)
        .execute("SELECT status FROM sales.orders WHERE total > 990")
        .unwrap();
    let exceeded = system.session().with_deadline_ms(1).execute(
        "SELECT c.name, o.total FROM crm.customers c \
         JOIN sales.orders o ON c.customer_id = o.customer_id",
    );
    assert!(exceeded.is_err(), "a 1 ms deadline must abort a WAN join");

    // Cooperative cancellation via a pre-tripped token.
    let token = CancelToken::new();
    token.cancel("metrics drift smoke");
    let cancelled = system
        .session()
        .with_cancel_token(token)
        .execute("SELECT segment FROM crm.customers WHERE region = 'r2'");
    assert!(cancelled.is_err(), "a tripped token must abort the query");

    // One completed and one compensated saga against this federation.
    let broker = MessageBroker::new();
    let engine = SagaEngine::new(env.clock.clone()).with_metrics(system.metrics().clone());
    let penv = ProcessEnv::new(system.federation(), &broker, &env.clock, HashMap::new());
    let ok = ProcessDef::new("drift_ok").step(Step::new("noop", |_| Ok(())));
    engine.run(&ok, &penv).unwrap();
    let boom = ProcessDef::new("drift_boom")
        .step(Step::new("pre", |_| Ok(())).with_compensation(|_| Ok(())))
        .step(Step::new(
            "explode",
            |_| Err(EiiError::Execution("injected".into())),
        ));
    engine.run(&boom, &penv).unwrap();

    system.slo_status();
    system.metrics().snapshot()
}

/// Retries, failures, and a full breaker lap (open → rejected fast-fail →
/// half-open → closed) driven by an outage window on the virtual clock.
fn scenario_breaker() -> MetricsSnapshot {
    let env = FedMark::build(1, 12).unwrap();
    let system = &env.system;
    let mut profile = FaultProfile::none();
    profile.outages = vec![(0, 400)];
    system.federation().inject_faults("sales", profile).unwrap();
    // After inject_faults, so the resilience layer wraps the faulty
    // transport (as it would in production).
    system
        .federation()
        .harden(
            "sales",
            RetryPolicy::standard(),
            CircuitBreakerConfig {
                failure_threshold: 2,
                cooldown_ms: 50,
                success_threshold: 1,
            },
        )
        .unwrap();
    let sql = "SELECT order_id FROM sales.orders WHERE total > 995";
    let mut recovered = false;
    for _ in 0..40 {
        match system.execute(sql) {
            Ok(_) => {
                recovered = true;
                break;
            }
            Err(_) => {
                env.clock.advance_ms(30);
            }
        }
    }
    assert!(recovered, "the source must heal after its outage window");
    system.metrics().snapshot()
}

/// Hedged requests over a flaky source: backups fire on every non-first
/// fetch and rescue failed primaries.
fn scenario_hedge() -> MetricsSnapshot {
    let env = FedMark::build(1, 13).unwrap();
    env.system
        .federation()
        .inject_faults("sales", FaultProfile::failing(0.4, 99))
        .unwrap();
    env.system.set_hedge_policy(HedgePolicy {
        threshold_ms: 0.0,
        delay_ms: 0.5,
    });
    let sql = "SELECT customer_id FROM sales.orders WHERE total > 900";
    for _ in 0..25 {
        let _ = env.system.execute(sql);
    }
    env.system.metrics().snapshot()
}

/// Stale-snapshot fallback for a fully failing source.
fn scenario_degraded() -> MetricsSnapshot {
    let env = FedMark::build(1, 14).unwrap();
    env.system.snapshot_fallback("sales.orders").unwrap();
    env.system
        .federation()
        .inject_faults("sales", FaultProfile::failing(1.0, 7))
        .unwrap();
    env.system.set_degradation_policy(DegradationPolicy::Fallback);
    env.system
        .execute("SELECT total FROM sales.orders WHERE total > 900")
        .unwrap();
    env.system.metrics().snapshot()
}

/// Brownout admission over an undersized token bucket: Low submissions
/// shed with a typed error, Normal ones degrade to partial results.
fn scenario_shed() -> MetricsSnapshot {
    let env = FedMark::build(1, 15).unwrap();
    let scheduler = env.system.scheduler_with_brownout(
        AdmissionConfig::with_workers(2),
        BrownoutConfig {
            capacity_ms: 30.0,
            cost_per_job_ms: 10.0,
            refill_per_job_ms: 0.0,
        },
    );
    let queries = FedMark::queries();
    let mut tickets = Vec::new();
    for (i, (_, _, sql)) in queries.iter().cycle().take(24).enumerate() {
        let mut opts = ExecOptions::for_role("public");
        opts.priority = match i % 3 {
            0 => Priority::High,
            1 => Priority::Normal,
            _ => Priority::Low,
        };
        if let Ok((ticket, _)) = scheduler.submit_prioritized(sql, &opts) {
            tickets.push(ticket);
        }
    }
    for ticket in tickets {
        let _ = ticket.join();
    }
    scheduler.finish();
    env.system.metrics().snapshot()
}

/// The self-tuning loop: an advisory cycle materializes a hot
/// fingerprint, a later cycle evicts it once its observed hit rate
/// decays, and a divergence factor of 1.0 forces the executor to
/// adaptively re-plan an eligible hub join.
fn scenario_advisor() -> MetricsSnapshot {
    // Hub hash joins only, so the adaptive re-planning hook is eligible.
    let env = FedMark::build_with_config(
        1,
        16,
        PlannerConfig {
            use_bind_joins: false,
            choose_assembly_site: false,
            ..PlannerConfig::optimized()
        },
    )
    .unwrap();
    let system = &env.system;
    system.enable_advisor(AdvisorConfig {
        advise_every: 4,
        min_count: 2,
        grace_statements: 4,
        min_hit_rate: 0.99,
        replan_factor: 1.0,
        ..AdvisorConfig::default()
    });
    // Before any view rewrites exist: every eligible hub join counts as
    // diverged at factor 1.0, so the build side is re-issued bound.
    system
        .execute(
            "SELECT c.name, o.total FROM crm.customers c \
             JOIN sales.orders o ON c.customer_id = o.customer_id \
             WHERE o.total > 990",
        )
        .unwrap();
    // Statements 2-5: the hot fingerprint crosses the cycle boundary at
    // 4 with count >= min_count and is materialized as a live IVM view.
    let hot = "SELECT order_id, total FROM sales.orders WHERE status = 'open'";
    for _ in 0..4 {
        system.execute(hot).unwrap();
    }
    // Off-fingerprint tail past the grace window: the installed view's
    // hit rate decays to 0 < 0.99 and a later cycle evicts it.
    for i in 0..8 {
        system
            .execute(&format!(
                "SELECT name FROM crm.customers WHERE customer_id = {i}"
            ))
            .unwrap();
    }
    let snap = system.metrics().snapshot();
    assert!(snap.counter("advisor.materialized") >= 1, "no view installed");
    assert!(snap.counter("advisor.evicted") >= 1, "no view evicted");
    assert!(snap.counter("advisor.replans") >= 1, "no join re-planned");
    snap
}

#[test]
fn metrics_catalog_matches_emitted_names() {
    let documented = documented_catalog();
    let mut emitted = BTreeSet::new();
    for snap in [
        scenario_core(),
        scenario_breaker(),
        scenario_hedge(),
        scenario_degraded(),
        scenario_shed(),
        scenario_advisor(),
    ] {
        collect(&mut emitted, &snap);
    }

    let never_emitted: Vec<String> = documented
        .iter()
        .filter(|(ty, pattern)| {
            !emitted
                .iter()
                .any(|(ety, name)| ety == ty && matches_pattern(pattern, name))
        })
        .map(|(ty, pattern)| format!("{pattern} ({ty})"))
        .collect();
    assert!(
        never_emitted.is_empty(),
        "documented in docs/observability.md but never emitted by the smoke \
         workload (stale docs or dead instrumentation): {never_emitted:?}"
    );

    let undocumented: Vec<String> = emitted
        .iter()
        .filter(|(ty, name)| {
            !documented
                .iter()
                .any(|(dty, pattern)| dty == ty && matches_pattern(pattern, name))
        })
        .map(|(ty, name)| format!("{name} ({ty})"))
        .collect();
    assert!(
        undocumented.is_empty(),
        "emitted by the smoke workload but missing from the \
         docs/observability.md catalog: {undocumented:?}"
    );
}
