//! Source-level access control.
//!
//! A deliberately simple role model: a source with no entries is open to
//! everyone; once any role is granted, only granted roles may read it.
//! The enterprise-search substrate consults this on every hit (E8's
//! security-filter overhead measurement).

use std::collections::BTreeMap;

/// Role-based per-source access control lists.
#[derive(Debug, Clone, Default)]
pub struct AccessControl {
    grants: BTreeMap<String, Vec<String>>,
}

impl AccessControl {
    /// Empty (everything open).
    pub fn new() -> Self {
        AccessControl::default()
    }

    /// Grant `role` access to `source`.
    pub fn grant(&mut self, source: &str, role: &str) {
        let roles = self.grants.entry(source.to_string()).or_default();
        if !roles.iter().any(|r| r == role) {
            roles.push(role.to_string());
        }
    }

    /// Revoke `role`'s access; removes the source entry when the last role
    /// goes (reopening the source).
    pub fn revoke(&mut self, source: &str, role: &str) {
        if let Some(roles) = self.grants.get_mut(source) {
            roles.retain(|r| r != role);
            if roles.is_empty() {
                self.grants.remove(source);
            }
        }
    }

    /// May `role` read `source`?
    pub fn allowed(&self, source: &str, role: &str) -> bool {
        match self.grants.get(source) {
            None => true,
            Some(roles) => roles.iter().any(|r| r == role),
        }
    }

    /// Snapshot for export.
    pub fn entries(&self) -> Vec<(String, Vec<String>)> {
        self.grants
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_is_idempotent() {
        let mut acl = AccessControl::new();
        acl.grant("hr", "admin");
        acl.grant("hr", "admin");
        assert_eq!(acl.entries(), vec![("hr".into(), vec!["admin".into()])]);
    }

    #[test]
    fn multiple_roles() {
        let mut acl = AccessControl::new();
        acl.grant("hr", "admin");
        acl.grant("hr", "auditor");
        assert!(acl.allowed("hr", "auditor"));
        assert!(!acl.allowed("hr", "intern"));
        acl.revoke("hr", "auditor");
        assert!(!acl.allowed("hr", "auditor"));
    }

    #[test]
    fn revoke_unknown_is_noop() {
        let mut acl = AccessControl::new();
        acl.revoke("ghost", "nobody");
        assert!(acl.allowed("ghost", "anyone"));
    }
}
