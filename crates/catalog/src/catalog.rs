//! The catalog proper.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use eii_data::{EiiError, Result};
use eii_sql::{parse_statement, SetQuery, Statement};

use crate::acl::AccessControl;

/// A mediated-schema view: a name bound to a query over source tables (or
/// other views — views compose).
#[derive(Debug, Clone, PartialEq)]
pub struct ViewDef {
    pub name: String,
    /// Original SQL text (kept for export and EXPLAIN).
    pub sql: String,
    /// Parsed body.
    pub query: SetQuery,
}

/// Descriptive metadata about a registered source.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SourceMeta {
    pub description: String,
    pub owner: String,
    pub tags: Vec<String>,
}

#[derive(Debug, Default)]
struct Inner {
    views: BTreeMap<String, ViewDef>,
    sources: BTreeMap<String, SourceMeta>,
    acl: AccessControl,
}

/// Shared, thread-safe metadata registry.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    inner: Arc<RwLock<Inner>>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    // ---- views (the mediated schema) ---------------------------------

    /// Define a view from `CREATE VIEW` SQL text.
    pub fn create_view_sql(&self, sql: &str) -> Result<String> {
        match parse_statement(sql)? {
            Statement::CreateView { name, query } => {
                self.create_view(&name, sql, query)?;
                Ok(name)
            }
            _ => Err(EiiError::Parse(
                "expected a CREATE VIEW statement".into(),
            )),
        }
    }

    /// Define a view from an already-parsed body.
    pub fn create_view(&self, name: &str, sql: &str, query: SetQuery) -> Result<()> {
        let mut inner = self.inner.write();
        if inner.views.contains_key(name) {
            return Err(EiiError::AlreadyExists(format!("view {name}")));
        }
        inner.views.insert(
            name.to_string(),
            ViewDef {
                name: name.to_string(),
                sql: sql.to_string(),
                query,
            },
        );
        Ok(())
    }

    /// Replace an existing view definition (schema evolution path).
    pub fn replace_view(&self, name: &str, sql: &str, query: SetQuery) -> Result<()> {
        let mut inner = self.inner.write();
        if !inner.views.contains_key(name) {
            return Err(EiiError::NotFound(format!("view {name}")));
        }
        inner.views.insert(
            name.to_string(),
            ViewDef {
                name: name.to_string(),
                sql: sql.to_string(),
                query,
            },
        );
        Ok(())
    }

    /// Fetch a view definition.
    pub fn view(&self, name: &str) -> Option<ViewDef> {
        self.inner.read().views.get(name).cloned()
    }

    /// Drop a view. Returns true when it existed.
    pub fn drop_view(&self, name: &str) -> bool {
        self.inner.write().views.remove(name).is_some()
    }

    /// Names of all views, sorted.
    pub fn view_names(&self) -> Vec<String> {
        self.inner.read().views.keys().cloned().collect()
    }

    // ---- source metadata ----------------------------------------------

    /// Attach metadata to a source name.
    pub fn describe_source(&self, source: &str, meta: SourceMeta) {
        self.inner
            .write()
            .sources
            .insert(source.to_string(), meta);
    }

    /// Fetch source metadata.
    pub fn source_meta(&self, source: &str) -> Option<SourceMeta> {
        self.inner.read().sources.get(source).cloned()
    }

    /// Find sources whose description or tags mention `term`
    /// (the "locating the data" tooling).
    pub fn find_sources(&self, term: &str) -> Vec<String> {
        let term = term.to_lowercase();
        self.inner
            .read()
            .sources
            .iter()
            .filter(|(name, m)| {
                name.to_lowercase().contains(&term)
                    || m.description.to_lowercase().contains(&term)
                    || m.tags.iter().any(|t| t.to_lowercase().contains(&term))
            })
            .map(|(name, _)| name.clone())
            .collect()
    }

    // ---- access control -------------------------------------------------

    /// Grant `role` access to `source`.
    pub fn grant(&self, source: &str, role: &str) {
        self.inner.write().acl.grant(source, role);
    }

    /// Revoke `role`'s access to `source`.
    pub fn revoke(&self, source: &str, role: &str) {
        self.inner.write().acl.revoke(source, role);
    }

    /// May `role` read from `source`? Sources with no ACL entries are open.
    pub fn allowed(&self, source: &str, role: &str) -> bool {
        self.inner.read().acl.allowed(source, role)
    }

    /// Snapshot of ACL entries for export.
    pub fn acl_entries(&self) -> Vec<(String, Vec<String>)> {
        self.inner.read().acl.entries()
    }

    /// Snapshot of views for export.
    pub fn view_snapshot(&self) -> Vec<ViewDef> {
        self.inner.read().views.values().cloned().collect()
    }

    /// Snapshot of source metadata for export.
    pub fn source_snapshot(&self) -> Vec<(String, SourceMeta)> {
        self.inner
            .read()
            .sources
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_resolve_view() {
        let c = Catalog::new();
        let name = c
            .create_view_sql("CREATE VIEW customers AS SELECT id, name FROM crm.customers")
            .unwrap();
        assert_eq!(name, "customers");
        assert!(c.view("customers").is_some());
        assert_eq!(c.view_names(), vec!["customers"]);
        assert!(c.view("ghost").is_none());
    }

    #[test]
    fn duplicate_view_rejected_replace_allowed() {
        let c = Catalog::new();
        c.create_view_sql("CREATE VIEW v AS SELECT a FROM s.t").unwrap();
        assert_eq!(
            c.create_view_sql("CREATE VIEW v AS SELECT a FROM s.t")
                .unwrap_err()
                .kind(),
            "already_exists"
        );
        let q = eii_sql::parse_query("SELECT b FROM s.t").unwrap();
        c.replace_view("v", "SELECT b FROM s.t", q).unwrap();
        assert!(c.view("v").unwrap().sql.contains('b'));
        assert_eq!(
            c.replace_view("nope", "SELECT 1", eii_sql::parse_query("SELECT 1").unwrap())
                .unwrap_err()
                .kind(),
            "not_found"
        );
    }

    #[test]
    fn non_view_statement_rejected() {
        let c = Catalog::new();
        assert_eq!(
            c.create_view_sql("SELECT 1").unwrap_err().kind(),
            "parse"
        );
    }

    #[test]
    fn source_discovery_by_term() {
        let c = Catalog::new();
        c.describe_source(
            "crm",
            SourceMeta {
                description: "Customer relationship management system".into(),
                owner: "sales-it".into(),
                tags: vec!["customer".into(), "gold".into()],
            },
        );
        c.describe_source(
            "hr",
            SourceMeta {
                description: "Employee records".into(),
                owner: "hr-it".into(),
                tags: vec![],
            },
        );
        assert_eq!(c.find_sources("customer"), vec!["crm"]);
        assert_eq!(c.find_sources("employee"), vec!["hr"]);
        assert!(c.find_sources("zzz").is_empty());
        assert_eq!(c.source_meta("crm").unwrap().owner, "sales-it");
    }

    #[test]
    fn acl_open_by_default_then_restricted() {
        let c = Catalog::new();
        assert!(c.allowed("hr", "anyone"));
        c.grant("hr", "hr-admin");
        assert!(!c.allowed("hr", "anyone"));
        assert!(c.allowed("hr", "hr-admin"));
        c.revoke("hr", "hr-admin");
        assert!(c.allowed("hr", "anyone"), "empty ACL reopens the source");
    }
}
