//! JSON export/import of the catalog.
//!
//! Rosenthal §7: "it is not tolerable to capture overlapping semantics
//! separately for each product ... EI metadata is unintegrated". The export
//! format is the platform's answer: every tool (EII planner, ETL designer,
//! search indexer) reads the same metadata document.

use serde::{Deserialize, Serialize};

use eii_data::{EiiError, Result};
use eii_sql::{parse_statement, Statement};

use crate::catalog::{Catalog, SourceMeta};

/// The serialized catalog document.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct CatalogExport {
    pub version: u32,
    /// View name -> CREATE VIEW SQL.
    pub views: Vec<ExportedView>,
    pub sources: Vec<ExportedSource>,
    pub acl: Vec<ExportedAcl>,
}

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct ExportedView {
    pub name: String,
    pub sql: String,
}

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct ExportedSource {
    pub name: String,
    pub description: String,
    pub owner: String,
    pub tags: Vec<String>,
}

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct ExportedAcl {
    pub source: String,
    pub roles: Vec<String>,
}

impl CatalogExport {
    /// Snapshot a live catalog.
    pub fn from_catalog(catalog: &Catalog) -> Self {
        CatalogExport {
            version: 1,
            views: catalog
                .view_snapshot()
                .into_iter()
                .map(|v| ExportedView {
                    name: v.name,
                    sql: v.sql,
                })
                .collect(),
            sources: catalog
                .source_snapshot()
                .into_iter()
                .map(|(name, m)| ExportedSource {
                    name,
                    description: m.description,
                    owner: m.owner,
                    tags: m.tags,
                })
                .collect(),
            acl: catalog
                .acl_entries()
                .into_iter()
                .map(|(source, roles)| ExportedAcl { source, roles })
                .collect(),
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| EiiError::Serde(format!("catalog export: {e}")))
    }

    /// Parse from JSON.
    pub fn from_json(text: &str) -> Result<Self> {
        serde_json::from_str(text).map_err(|e| EiiError::Serde(format!("catalog import: {e}")))
    }

    /// Materialize into a fresh catalog (re-parsing all view SQL).
    pub fn into_catalog(self) -> Result<Catalog> {
        let catalog = Catalog::new();
        for v in self.views {
            match parse_statement(&v.sql)? {
                Statement::CreateView { name, query } => {
                    if name != v.name {
                        return Err(EiiError::Serde(format!(
                            "view entry '{}' declares CREATE VIEW {name}",
                            v.name
                        )));
                    }
                    catalog.create_view(&name, &v.sql, query)?;
                }
                _ => {
                    return Err(EiiError::Serde(format!(
                        "view '{}' body is not a CREATE VIEW statement",
                        v.name
                    )))
                }
            }
        }
        for s in self.sources {
            catalog.describe_source(
                &s.name,
                SourceMeta {
                    description: s.description,
                    owner: s.owner,
                    tags: s.tags,
                },
            );
        }
        for a in self.acl {
            for role in &a.roles {
                catalog.grant(&a.source, role);
            }
        }
        Ok(catalog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> Catalog {
        let c = Catalog::new();
        c.create_view_sql("CREATE VIEW customers AS SELECT id, name FROM crm.customers")
            .unwrap();
        c.create_view_sql(
            "CREATE VIEW big_orders AS SELECT * FROM orders.orders WHERE total > 1000",
        )
        .unwrap();
        c.describe_source(
            "crm",
            SourceMeta {
                description: "CRM".into(),
                owner: "sales".into(),
                tags: vec!["customer".into()],
            },
        );
        c.grant("hr", "hr-admin");
        c
    }

    #[test]
    fn round_trip_preserves_everything() {
        let original = populated();
        let json = CatalogExport::from_catalog(&original).to_json().unwrap();
        let restored = CatalogExport::from_json(&json)
            .unwrap()
            .into_catalog()
            .unwrap();
        assert_eq!(restored.view_names(), original.view_names());
        assert_eq!(
            restored.view("customers").unwrap().query,
            original.view("customers").unwrap().query
        );
        assert_eq!(restored.source_meta("crm"), original.source_meta("crm"));
        assert!(!restored.allowed("hr", "anyone"));
        assert!(restored.allowed("hr", "hr-admin"));
    }

    #[test]
    fn corrupt_json_reports_serde_error() {
        assert_eq!(
            CatalogExport::from_json("{not json").unwrap_err().kind(),
            "serde"
        );
    }

    #[test]
    fn mismatched_view_name_rejected() {
        let export = CatalogExport {
            version: 1,
            views: vec![ExportedView {
                name: "a".into(),
                sql: "CREATE VIEW b AS SELECT 1".into(),
            }],
            sources: vec![],
            acl: vec![],
        };
        assert_eq!(export.into_catalog().unwrap_err().kind(), "serde");
    }
}
