//! # eii-catalog
//!
//! The enterprise metadata registry — Halevy's "framework for storing the
//! meta-data across an enterprise". It holds:
//!
//! - the **mediated schema**: named views defined (GAV-style) as queries over
//!   `source.table` relations, following Draper's "views as a central
//!   metaphor ... factor the job into smaller pieces, and keep and re-use
//!   those pieces across multiple queries";
//! - **source metadata**: descriptions, owners, tags — the "locating and
//!   understanding the data to be integrated" problem;
//! - **access control lists** per source (Sikka §8: "ensuring that only
//!   authorized users get access to the information they seek");
//! - JSON **export/import**, because metadata that cannot be shared across
//!   tools "is unintegrated ... EI metadata" (Rosenthal §7).

pub mod acl;
pub mod catalog;
pub mod export;

pub use acl::AccessControl;
pub use catalog::{Catalog, SourceMeta, ViewDef};
pub use export::CatalogExport;
