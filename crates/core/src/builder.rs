//! Build-time configuration for a shareable [`EiiSystem`].
//!
//! The builder collects everything the pre-builder mutator API set up
//! incrementally — sources, planner configuration, degradation policy,
//! the semantic result cache, materialized views, enterprise search —
//! and produces an immutable `Arc<EiiSystem>` in one shot. Because every
//! piece of post-build mutability lives behind interior mutability, the
//! returned handle is `Send + Sync` and can be cloned across threads and
//! [`crate::Session`]s freely.

use std::sync::Arc;

use eii_data::{Result, SimClock};
use eii_exec::{CacheConfig, DegradationPolicy, HedgePolicy};
use eii_federation::{Connector, LinkProfile, WireFormat};
use eii_matview::RefreshPolicy;
use eii_planner::PlannerConfig;
use eii_search::EnterpriseSearch;

use crate::EiiSystem;

/// Declarative configuration for an [`EiiSystem`]; see the module docs.
///
/// ```
/// use std::sync::Arc;
/// use eii::prelude::*;
///
/// let clock = SimClock::new();
/// let crm = Database::new("crm", clock.clone());
/// let schema = Arc::new(Schema::new(vec![
///     Field::new("id", DataType::Int).not_null(),
/// ]));
/// crm.create_table(TableDef::new("customers", schema).with_primary_key(0)).unwrap();
/// let system: Arc<EiiSystem> = EiiSystem::builder(clock)
///     .source(Arc::new(RelationalConnector::new(crm)), LinkProfile::lan(), WireFormat::Native)
///     .degradation(DegradationPolicy::Fail)
///     .build()
///     .unwrap();
/// ```
pub struct EiiSystemBuilder {
    clock: SimClock,
    config: Option<PlannerConfig>,
    sources: Vec<(Arc<dyn Connector>, LinkProfile, WireFormat)>,
    degradation: Option<DegradationPolicy>,
    cache: Option<CacheConfig>,
    matviews: Vec<(String, String, RefreshPolicy)>,
    search: Option<EnterpriseSearch>,
    scan_partitions: usize,
    hedge: Option<HedgePolicy>,
}

impl EiiSystemBuilder {
    /// Start a builder on the given simulated clock.
    pub fn new(clock: SimClock) -> Self {
        EiiSystemBuilder {
            clock,
            config: None,
            sources: Vec::new(),
            degradation: None,
            cache: None,
            matviews: Vec::new(),
            search: None,
            scan_partitions: 1,
            hedge: None,
        }
    }

    /// Replace the planner configuration (default:
    /// [`PlannerConfig::optimized`]).
    pub fn planner_config(mut self, config: PlannerConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Register a wrapped source behind a network link.
    pub fn source(
        mut self,
        connector: Arc<dyn Connector>,
        link: LinkProfile,
        wire: WireFormat,
    ) -> Self {
        self.sources.push((connector, link, wire));
        self
    }

    /// Choose what queries do when a source stays down past the retry
    /// layer (default: fail).
    pub fn degradation(mut self, policy: DegradationPolicy) -> Self {
        self.degradation = Some(policy);
        self
    }

    /// Turn on the semantic result cache.
    pub fn result_cache(mut self, config: CacheConfig) -> Self {
        self.cache = Some(config);
        self
    }

    /// Define (and materialize at build time) a view over the federation.
    pub fn matview(mut self, name: &str, sql: &str, policy: RefreshPolicy) -> Self {
        self.matviews
            .push((name.to_string(), sql.to_string(), policy));
        self
    }

    /// Attach an enterprise-search service.
    pub fn search(mut self, search: EnterpriseSearch) -> Self {
        self.search = Some(search);
        self
    }

    /// Split unbound, unlimited source scans into `n` parallel partitions
    /// when the connector supports it (default 1: serial scans).
    pub fn scan_partitions(mut self, n: usize) -> Self {
        self.scan_partitions = n.max(1);
        self
    }

    /// Hedge slow source fetches: once a source's observed mean latency
    /// crosses the policy threshold, each fetch launches a delayed backup
    /// request and takes whichever answer lands first on the virtual
    /// timeline (default: no hedging).
    pub fn hedging(mut self, policy: HedgePolicy) -> Self {
        self.hedge = Some(policy);
        self
    }

    /// Build the system and wrap it in an `Arc` ready to share across
    /// threads and sessions.
    pub fn build(self) -> Result<Arc<EiiSystem>> {
        Ok(Arc::new(self.build_owned()?))
    }

    /// Build the system without the `Arc` wrapper — for callers that embed
    /// it in their own ownership structure.
    pub fn build_owned(self) -> Result<EiiSystem> {
        let mut system = EiiSystem::new(self.clock);
        if let Some(config) = self.config {
            system.set_planner_config(config);
        }
        system.set_scan_partitions(self.scan_partitions);
        if let Some(policy) = self.hedge {
            system.set_hedge_policy(policy);
        }
        for (connector, link, wire) in self.sources {
            system.add_source(connector, link, wire)?;
        }
        if let Some(policy) = self.degradation {
            system.set_degradation_policy(policy);
        }
        if let Some(config) = self.cache {
            system.install_result_cache(config);
        }
        if let Some(search) = self.search {
            system.attach_search_service(search);
        }
        // Views snapshot the federation's topology, so they are defined
        // only after every source is registered.
        for (name, sql, policy) in self.matviews {
            system.define_matview(&name, &sql, policy)?;
        }
        Ok(system)
    }
}
