//! # eii — an Enterprise Information Integration platform
//!
//! A complete implementation of the EII architecture described in
//! *"Enterprise Information Integration: Successes, Challenges and
//! Controversies"* (Halevy et al., SIGMOD 2005): uniform SQL access to
//! multiple heterogeneous sources without first loading them into a
//! warehouse — plus every substrate the paper's discussion depends on
//! (warehouse/ETL baseline, materialized views, record correlation, EAI
//! sagas, semantics management, enterprise search).
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use eii::prelude::*;
//!
//! // A relational source...
//! let clock = SimClock::new();
//! let crm = Database::new("crm", clock.clone());
//! let schema = Arc::new(Schema::new(vec![
//!     Field::new("id", DataType::Int).not_null(),
//!     Field::new("name", DataType::Str),
//! ]));
//! let t = crm.create_table(TableDef::new("customers", schema).with_primary_key(0)).unwrap();
//! t.write().insert(eii::row![1i64, "alice"]).unwrap();
//!
//! // ...registered with the EII system and queried through a mediated view.
//! let mut system = EiiSystem::new(clock);
//! system
//!     .register_source(Arc::new(RelationalConnector::new(crm)), LinkProfile::lan(), WireFormat::Native)
//!     .unwrap();
//! system.execute("CREATE VIEW customers AS SELECT id, name FROM crm.customers").unwrap();
//! let out = system.execute("SELECT name FROM customers WHERE id = 1").unwrap();
//! assert_eq!(out.rows().unwrap().num_rows(), 1);
//! ```

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use eii_catalog::Catalog;
use eii_data::{Batch, EiiError, Result, SimClock};
use eii_eai::{MessageBroker, ProcessDef, ProcessEnv, SagaEngine, SagaOutcome};
use eii_exec::{
    DegradationPolicy, Executor, FallbackStore, OperatorProfile, QueryResult, SourceReport,
};
use eii_federation::{Connector, Federation, LinkProfile, SourceHealth, SourceQuery, WireFormat};
use eii_obs::{MetricsRegistry, QueryTrace, Tracer};
use eii_planner::{optimize, CostModel, PhysicalPlan, PlanBuilder, PhysicalPlanner, PlannerConfig};
use eii_search::{EnterpriseSearch, Hit};
use eii_sql::{parse_statement, SetQuery, Statement};

/// Everything an application typically imports.
pub mod prelude {
    pub use crate::{EiiSystem, ExecOutcome};
    pub use eii_catalog::{Catalog, SourceMeta};
    pub use eii_data::{
        Batch, DataType, EiiError, Field, Result, Row, Schema, SimClock, Value,
    };
    pub use eii_docstore::{DocStore, Document};
    pub use eii_exec::{DegradationPolicy, FallbackStore, SourceReport};
    pub use eii_federation::{
        adapters::document::VirtualTable, CircuitBreakerConfig, Connector, CsvConnector,
        DocumentConnector, FaultProfile, Federation, LinkProfile, RelationalConnector,
        RetryPolicy, UpdateOp, WebServiceConnector, WireFormat,
    };
    pub use eii_planner::PlannerConfig;
    pub use eii_storage::{Database, TableDef};
}

// Re-export the subsystem crates under stable names so downstream users
// depend on `eii` alone.
pub use eii_catalog as catalog;
pub use eii_data as data;
pub use eii_data::row as row_macro;
pub use eii_docstore as docstore;
pub use eii_eai as eai;
pub use eii_exec as exec;
pub use eii_expr as expr;
pub use eii_federation as federation;
pub use eii_matview as matview;
pub use eii_planner as planner;
pub use eii_search as search;
pub use eii_semantics as semantics;
pub use eii_sql as sql;
pub use eii_storage as storage;
pub use eii_warehouse as warehouse;

// `eii::row!` works because the macro is exported at the crate root of
// eii-data and re-exported here.
pub use eii_data::row;

/// Result of executing one statement.
#[derive(Debug)]
pub enum ExecOutcome {
    /// A query's rows plus cost accounting (boxed: a [`QueryResult`] with
    /// its operator profile dwarfs the other variants).
    Rows(Box<QueryResult>),
    /// `CREATE VIEW` succeeded; the view name.
    ViewCreated(String),
    /// `SEARCH` hits.
    SearchHits(Vec<Hit>),
    /// `EXPLAIN [ANALYZE]` text.
    Explained(String),
}

impl ExecOutcome {
    /// The rows, if this outcome carries any.
    pub fn rows(&self) -> Result<&Batch> {
        match self {
            ExecOutcome::Rows(r) => Ok(&r.batch),
            other => Err(EiiError::Execution(format!(
                "statement did not produce rows: {other:?}"
            ))),
        }
    }

    /// The full query result, if this outcome is a query.
    pub fn query_result(&self) -> Result<&QueryResult> {
        match self {
            ExecOutcome::Rows(r) => Ok(r),
            other => Err(EiiError::Execution(format!(
                "statement did not produce rows: {other:?}"
            ))),
        }
    }

    /// The rendered plan, if this outcome is an `EXPLAIN [ANALYZE]`.
    pub fn explained(&self) -> Result<&str> {
        match self {
            ExecOutcome::Explained(s) => Ok(s),
            other => Err(EiiError::Execution(format!(
                "statement was not an EXPLAIN: {other:?}"
            ))),
        }
    }
}

/// The EII server: a federation of wrapped sources, a metadata catalog, a
/// planner configuration, a message broker, and (optionally) an enterprise
/// search service.
pub struct EiiSystem {
    clock: SimClock,
    federation: Federation,
    catalog: Catalog,
    config: PlannerConfig,
    broker: MessageBroker,
    search: Option<EnterpriseSearch>,
    degradation: DegradationPolicy,
    fallbacks: FallbackStore,
    last_trace: Mutex<Option<QueryTrace>>,
}

impl EiiSystem {
    /// A new system on the given simulated clock, with all optimizations
    /// enabled.
    pub fn new(clock: SimClock) -> Self {
        EiiSystem {
            federation: Federation::with_clock(clock.clone()),
            clock,
            catalog: Catalog::new(),
            config: PlannerConfig::optimized(),
            broker: MessageBroker::new(),
            search: None,
            degradation: DegradationPolicy::Fail,
            fallbacks: FallbackStore::new(),
            last_trace: Mutex::new(None),
        }
    }

    /// Replace the planner configuration (ablations, naive mode, ...).
    pub fn with_config(mut self, config: PlannerConfig) -> Self {
        self.config = config;
        self
    }

    /// The simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The federation (read access: ledger, schemas, handles).
    pub fn federation(&self) -> &Federation {
        &self.federation
    }

    /// Mutable federation access (wire-format switches etc.).
    pub fn federation_mut(&mut self) -> &mut Federation {
        &mut self.federation
    }

    /// The metadata catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The message broker shared with EAI processes.
    pub fn broker(&self) -> &MessageBroker {
        &self.broker
    }

    /// The active planner configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Register a wrapped source behind a network link.
    pub fn register_source(
        &mut self,
        connector: Arc<dyn Connector>,
        link: LinkProfile,
        wire: WireFormat,
    ) -> Result<()> {
        self.federation.register(connector, link, wire)
    }

    /// Attach an enterprise-search service (see [`eii_search`]).
    pub fn attach_search(&mut self, search: EnterpriseSearch) {
        self.search = Some(search);
    }

    /// Choose what queries do when a source stays down past the
    /// federation's retry layer (default: fail).
    pub fn set_degradation(&mut self, policy: DegradationPolicy) {
        self.degradation = policy;
    }

    /// The stale-snapshot store consulted under
    /// [`DegradationPolicy::Fallback`].
    pub fn fallbacks(&self) -> &FallbackStore {
        &self.fallbacks
    }

    /// Snapshot `source.table` live right now and register it as the
    /// fallback copy (stamped with the current simulated time).
    pub fn snapshot_fallback(&self, qualified: &str) -> Result<()> {
        let (h, table) = self.federation.resolve(qualified)?;
        let (batch, _) = h.query(&SourceQuery::full_table(table))?;
        self.fallbacks
            .register(qualified, batch, self.clock.now_ms());
        Ok(())
    }

    /// Execute one SQL statement as the given role. The statement's trace
    /// (parse/plan/execute spans plus per-operator actuals) is retained and
    /// readable through [`EiiSystem::last_trace`].
    pub fn execute_as(&self, sql: &str, role: &str) -> Result<ExecOutcome> {
        let tracer = Tracer::new(self.clock.clone());
        let outcome = self.execute_traced(sql, role, &tracer);
        *self.last_trace.lock().expect("trace lock") = Some(tracer.finish());
        outcome
    }

    fn execute_traced(&self, sql: &str, role: &str, tracer: &Tracer) -> Result<ExecOutcome> {
        let _statement = tracer.span("statement");
        let stmt = {
            let _parse = tracer.span("parse");
            parse_statement(sql)?
        };
        match stmt {
            Statement::Query(q) => {
                Ok(ExecOutcome::Rows(Box::new(self.run_query(&q, tracer)?)))
            }
            Statement::Explain { analyze: false, query } => {
                let (optimized, physical) = self.plan_explain(&query, tracer)?;
                Ok(ExecOutcome::Explained(format!(
                    "== Logical plan ==\n{}== Physical plan ==\n{}",
                    optimized.display(),
                    physical.display()
                )))
            }
            Statement::Explain { analyze: true, query } => {
                Ok(ExecOutcome::Explained(self.run_explain_analyze(&query, tracer)?))
            }
            Statement::CreateView { name, query } => {
                // Validate the body plans before accepting the definition.
                self.catalog.create_view(&name, sql, query.clone())?;
                let probe = PlanBuilder::new(&self.catalog, &self.federation).build(&query);
                if let Err(e) = probe {
                    self.catalog.drop_view(&name);
                    return Err(e);
                }
                Ok(ExecOutcome::ViewCreated(name))
            }
            Statement::Search {
                terms,
                sources,
                limit,
            } => {
                let Some(search) = &self.search else {
                    return Err(EiiError::Execution(
                        "no search service attached; call attach_search first".into(),
                    ));
                };
                let (mut hits, _) = search.search(&terms, role, limit.unwrap_or(10))?;
                if !sources.is_empty() {
                    hits.retain(|h| sources.iter().any(|s| s == &h.source));
                }
                Ok(ExecOutcome::SearchHits(hits))
            }
        }
    }

    /// Execute one SQL statement as the default (`public`) role.
    pub fn execute(&self, sql: &str) -> Result<ExecOutcome> {
        self.execute_as(sql, "public")
    }

    /// Plan and run one query, tracing the plan and execute phases and
    /// grafting the executor's per-operator profile into the trace.
    fn run_query(&self, q: &SetQuery, tracer: &Tracer) -> Result<QueryResult> {
        let plan = {
            let _plan = tracer.span("plan");
            eii_planner::plan_query(q, &self.catalog, &self.federation, &self.config)?
        };
        let execute = tracer.span("execute");
        let exec = Executor::new(&self.federation)
            .with_degradation(self.degradation, self.fallbacks.clone())
            .with_metrics(self.federation.metrics().clone());
        let result = exec.execute(&plan)?;
        execute.annotate("rows", result.batch.num_rows());
        execute.annotate("bytes", result.cost.bytes);
        if !result.degraded.is_empty() {
            execute.annotate("degraded", result.degraded.len());
        }
        if let Some(profile) = &result.profile {
            tracer.attach(profile.to_span());
        }
        drop(execute);
        Ok(result)
    }

    /// Build the optimized logical plan and its physical plan, under a
    /// `plan` span.
    fn plan_explain(
        &self,
        q: &SetQuery,
        tracer: &Tracer,
    ) -> Result<(eii_planner::LogicalPlan, PhysicalPlan)> {
        let _plan = tracer.span("plan");
        let logical = PlanBuilder::new(&self.catalog, &self.federation).build(q)?;
        let optimized = optimize(logical, &self.federation, &self.config)?;
        let physical =
            PhysicalPlanner::new(&self.federation, &self.config).create(optimized.clone())?;
        Ok((optimized, physical))
    }

    /// Execute the query and render the physical plan with per-operator
    /// estimated versus actual rows, bytes, and simulated time.
    fn run_explain_analyze(&self, q: &SetQuery, tracer: &Tracer) -> Result<String> {
        let (_, physical) = self.plan_explain(q, tracer)?;
        let execute = tracer.span("execute");
        let exec = Executor::new(&self.federation)
            .with_degradation(self.degradation, self.fallbacks.clone())
            .with_metrics(self.federation.metrics().clone());
        let result = exec.execute(&physical)?;
        if let Some(profile) = &result.profile {
            tracer.attach(profile.to_span());
        }
        drop(execute);
        let profile = result.profile.as_ref().ok_or_else(|| {
            EiiError::Execution("EXPLAIN ANALYZE needs executor instrumentation".into())
        })?;
        let model = CostModel::new(&self.federation);
        let mut out = String::new();
        render_analyze(&physical, profile, &model, &result.degraded, 0, &mut out);
        let _ = write!(
            out,
            "Total: rows={} bytes={} sim={:.1}ms wall={:.1?}{}",
            result.batch.num_rows(),
            result.cost.bytes,
            result.cost.sim_ms,
            result.wall,
            if result.fully_live() {
                String::new()
            } else {
                format!(" degraded_sources={}", result.degraded.len())
            }
        );
        out.push('\n');
        Ok(out)
    }

    /// `EXPLAIN ANALYZE` as a direct call: execute `sql` (a query) and
    /// return the annotated plan text.
    pub fn explain_analyze(&self, sql: &str) -> Result<String> {
        let q = match parse_statement(sql)? {
            Statement::Query(q) | Statement::Explain { query: q, .. } => q,
            _ => return Err(EiiError::Plan("EXPLAIN ANALYZE expects a query".into())),
        };
        let tracer = Tracer::new(self.clock.clone());
        let text = self.run_explain_analyze(&q, &tracer);
        *self.last_trace.lock().expect("trace lock") = Some(tracer.finish());
        text
    }

    /// The trace of the most recently executed statement (spans for parse,
    /// plan, execute, and one `op:<label>` span per physical operator).
    pub fn last_trace(&self) -> Option<QueryTrace> {
        self.last_trace.lock().expect("trace lock").clone()
    }

    /// The metrics registry every query, source, breaker, and saga records
    /// into.
    pub fn metrics(&self) -> &MetricsRegistry {
        self.federation.metrics()
    }

    /// Current health of every registered source: cumulative traffic,
    /// failures and retries, circuit-breaker state, and the last error.
    pub fn source_health(&self) -> Vec<SourceHealth> {
        self.federation.source_health()
    }

    /// EXPLAIN: render the optimized logical and physical plans.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let Statement::Query(q) = parse_statement(sql)? else {
            return Err(EiiError::Plan("EXPLAIN expects a query".into()));
        };
        let logical = PlanBuilder::new(&self.catalog, &self.federation).build(&q)?;
        let optimized = optimize(logical, &self.federation, &self.config)?;
        let physical =
            PhysicalPlanner::new(&self.federation, &self.config).create(optimized.clone())?;
        Ok(format!(
            "== Logical plan ==\n{}== Physical plan ==\n{}",
            optimized.display(),
            physical.display()
        ))
    }

    /// Predict a query's cost without executing it (experiment E12's
    /// "query execution-time prediction").
    pub fn predict(&self, sql: &str) -> Result<eii_planner::PlanEstimate> {
        let Statement::Query(q) = parse_statement(sql)? else {
            return Err(EiiError::Plan("prediction expects a query".into()));
        };
        let logical = PlanBuilder::new(&self.catalog, &self.federation).build(&q)?;
        let optimized = optimize(logical, &self.federation, &self.config)?;
        eii_planner::CostModel::new(&self.federation).estimate(&optimized)
    }

    /// Run a business process as a saga (the update half of enterprise
    /// integration; see Carey §4).
    pub fn run_process(
        &self,
        def: &ProcessDef,
        vars: std::collections::HashMap<String, eii_data::Value>,
    ) -> Result<(SagaOutcome, Vec<eii_eai::JournalEntry>)> {
        let env = ProcessEnv::new(&self.federation, &self.broker, &self.clock, vars);
        SagaEngine::new(self.clock.clone())
            .with_metrics(self.federation.metrics().clone())
            .run(def, &env)
    }
}

/// Render one `EXPLAIN ANALYZE` line per operator: the describe line, the
/// pushdown summary (source-facing operators), the cost model's estimate
/// next to the measured actuals, and a `[DEGRADED: ...]` flag on operators
/// whose source could not answer live.
fn render_analyze(
    plan: &PhysicalPlan,
    profile: &OperatorProfile,
    model: &CostModel,
    degraded: &[SourceReport],
    depth: usize,
    out: &mut String,
) {
    out.push_str(&"  ".repeat(depth));
    out.push_str(&plan.describe());
    if let Some(p) = plan.pushdown() {
        let _ = write!(out, " {p}");
    }
    match model.estimate_physical(plan) {
        Ok(est) => {
            let _ = write!(
                out,
                " (est rows={:.0} bytes={:.0} sim={:.1}ms",
                est.rows, est.bytes, est.sim_ms
            );
        }
        Err(_) => out.push_str(" (est ?"),
    }
    let _ = write!(
        out,
        " | act rows={} bytes={} sim={:.1}ms wall={:.1?})",
        profile.rows, profile.cost.bytes, profile.cost.sim_ms, profile.wall
    );
    if let Some(src) = &profile.source {
        for report in degraded.iter().filter(|r| &r.source == src) {
            match report.stale_ms {
                Some(ms) => {
                    let _ = write!(out, " [DEGRADED: {} stale {}ms]", report.table, ms);
                }
                None => {
                    let _ = write!(out, " [DEGRADED: {} dropped: {}]", report.table, report.error);
                }
            }
        }
    }
    out.push('\n');
    for (child, child_profile) in plan.children().iter().zip(&profile.children) {
        render_analyze(child, child_profile, model, degraded, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use eii_data::row;

    fn system() -> EiiSystem {
        let clock = SimClock::new();
        let crm = Database::new("crm", clock.clone());
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int).not_null(),
            Field::new("name", DataType::Str),
            Field::new("region", DataType::Str),
        ]));
        let t = crm
            .create_table(TableDef::new("customers", schema).with_primary_key(0))
            .unwrap();
        {
            let mut t = t.write();
            t.insert(row![1i64, "alice", "west"]).unwrap();
            t.insert(row![2i64, "bob", "east"]).unwrap();
        }
        let mut sys = EiiSystem::new(clock);
        sys.register_source(
            Arc::new(RelationalConnector::new(crm)),
            LinkProfile::lan(),
            WireFormat::Native,
        )
        .unwrap();
        sys
    }

    #[test]
    fn query_through_facade() {
        let sys = system();
        let out = sys.execute("SELECT name FROM crm.customers ORDER BY name").unwrap();
        let batch = out.rows().unwrap();
        assert_eq!(batch.num_rows(), 2);
    }

    #[test]
    fn view_lifecycle_through_facade() {
        let sys = system();
        let out = sys
            .execute("CREATE VIEW west AS SELECT * FROM crm.customers WHERE region = 'west'")
            .unwrap();
        assert!(matches!(out, ExecOutcome::ViewCreated(ref n) if n == "west"));
        let rows = sys.execute("SELECT name FROM west").unwrap();
        assert_eq!(rows.rows().unwrap().num_rows(), 1);
    }

    #[test]
    fn bad_view_body_is_rejected_and_not_registered() {
        let sys = system();
        let err = sys
            .execute("CREATE VIEW broken AS SELECT x FROM no.such_table")
            .unwrap_err();
        assert_eq!(err.kind(), "not_found");
        assert!(sys.catalog().view("broken").is_none());
    }

    #[test]
    fn explain_shows_both_plans() {
        let sys = system();
        let text = sys
            .explain("SELECT name FROM crm.customers WHERE region = 'west'")
            .unwrap();
        assert!(text.contains("== Logical plan =="));
        assert!(text.contains("SourceQuery crm"));
        assert!(text.contains("pushed="), "{text}");
    }

    #[test]
    fn predict_returns_estimate() {
        let sys = system();
        let est = sys.predict("SELECT name FROM crm.customers").unwrap();
        assert!(est.rows > 0.0);
        assert!(est.sim_ms > 0.0);
    }

    #[test]
    fn search_requires_attachment() {
        let sys = system();
        let err = sys.execute("SEARCH 'acme'").unwrap_err();
        assert_eq!(err.kind(), "execution");
    }
}
