//! # eii — an Enterprise Information Integration platform
//!
//! A complete implementation of the EII architecture described in
//! *"Enterprise Information Integration: Successes, Challenges and
//! Controversies"* (Halevy et al., SIGMOD 2005): uniform SQL access to
//! multiple heterogeneous sources without first loading them into a
//! warehouse — plus every substrate the paper's discussion depends on
//! (warehouse/ETL baseline, materialized views, record correlation, EAI
//! sagas, semantics management, enterprise search).
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use eii::prelude::*;
//!
//! // A relational source...
//! let clock = SimClock::new();
//! let crm = Database::new("crm", clock.clone());
//! let schema = Arc::new(Schema::new(vec![
//!     Field::new("id", DataType::Int).not_null(),
//!     Field::new("name", DataType::Str),
//! ]));
//! let t = crm.create_table(TableDef::new("customers", schema).with_primary_key(0)).unwrap();
//! t.write().insert(eii::row![1i64, "alice"]).unwrap();
//!
//! // ...registered with the EII system and queried through a mediated view.
//! // `build()` returns an `Arc<EiiSystem>` that is `Send + Sync`, so the
//! // same system can serve queries from many threads or [`Session`]s.
//! let system = EiiSystem::builder(clock)
//!     .source(Arc::new(RelationalConnector::new(crm)), LinkProfile::lan(), WireFormat::Native)
//!     .build()
//!     .unwrap();
//! system.execute("CREATE VIEW customers AS SELECT id, name FROM crm.customers").unwrap();
//! let out = system.execute("SELECT name FROM customers WHERE id = 1").unwrap();
//! assert_eq!(out.rows().unwrap().num_rows(), 1);
//! ```

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use eii_advisor::{Advisor, AdvisorAction, AdvisorConfig, Candidate, Proposal};
use eii_catalog::Catalog;
use eii_data::{Batch, CancelToken, Deadline, EiiError, Priority, Result, SimClock};
use eii_eai::{MessageBroker, ProcessDef, ProcessEnv, SagaEngine, SagaOutcome};
use eii_exec::{
    CacheConfig, CacheLookup, CachedResult, DegradationPolicy, Executor, FallbackStore,
    HedgePolicy, OperatorProfile, QueryResult, ReplanPolicy, ResultCache, SourceReport,
};
use eii_federation::{
    Connector, Federation, LinkProfile, QueryCost, RequestCtx, SourceHealth, SourceQuery,
    WireFormat,
};
use eii_matview::{MatViewManager, RefreshPolicy};
use eii_planner::FallbackReason;
use eii_obs::{
    fingerprint64, MetricsRegistry, OperatorStat, QueryLog, QueryLogRecord, QueryTrace,
    SloMonitor, SloObjective, SloStatus, StatementFlags, StoredTrace, TelemetryEvent,
    TraceStore, Tracer,
};
use eii_planner::{
    optimize, rewrite_matviews, rewrite_matviews_with_budget, CardinalityFeedback, CostModel,
    LogicalPlan, PhysicalPlan, PlanBuilder, PhysicalPlanner, PlannerConfig,
};
use eii_search::{EnterpriseSearch, Hit};
use eii_sql::{parse_statement, SetQuery, Statement};

/// Simulated ms to serve a memoized result (mirrors a matview cache read).
const CACHE_HIT_MS: f64 = 0.05;
/// Hub-side per-row cost applied to served cache hits (the executor's
/// default rate).
const CACHE_HUB_MS_PER_ROW: f64 = 0.0005;

pub mod builder;
pub mod session;

pub use builder::EiiSystemBuilder;
pub use session::{ExplainMode, QueryScheduler, Session};

/// Everything an application typically imports.
pub mod prelude {
    pub use crate::{EiiSystem, EiiSystemBuilder, ExecOptions, ExecOutcome, QueryScheduler, Session};
    pub use eii_exec::{
        AdmissionConfig, BrownoutConfig, HedgePolicy, QueryTicket, SchedulerStats, ShedDecision,
    };
    pub use eii_catalog::{Catalog, SourceMeta};
    pub use eii_data::{
        Batch, CancelToken, DataType, Deadline, EiiError, Field, Priority, Result, Row,
        Schema, SimClock, Value,
    };
    pub use eii_federation::RequestCtx;
    pub use eii_docstore::{DocStore, Document};
    pub use eii_exec::{CacheConfig, DegradationPolicy, FallbackStore, SourceReport};
    pub use eii_advisor::AdvisorConfig;
    pub use eii_matview::{IvmStatus, RefreshPolicy};
    pub use eii_planner::FallbackReason;
    pub use eii_federation::{
        adapters::document::VirtualTable, CircuitBreakerConfig, Connector, CsvConnector,
        DocumentConnector, FaultProfile, Federation, LinkProfile, RelationalConnector,
        RetryPolicy, UpdateOp, WebServiceConnector, WireFormat,
    };
    pub use eii_planner::PlannerConfig;
    pub use eii_storage::{Database, TableDef};
}

// Re-export the subsystem crates under stable names so downstream users
// depend on `eii` alone.
pub use eii_advisor as advisor;
pub use eii_catalog as catalog;
pub use eii_data as data;
pub use eii_data::row as row_macro;
pub use eii_docstore as docstore;
pub use eii_eai as eai;
pub use eii_exec as exec;
pub use eii_expr as expr;
pub use eii_federation as federation;
pub use eii_matview as matview;
pub use eii_obs as obs;
pub use eii_planner as planner;
pub use eii_search as search;
pub use eii_semantics as semantics;
pub use eii_sql as sql;
pub use eii_storage as storage;
pub use eii_warehouse as warehouse;

// `eii::row!` works because the macro is exported at the crate root of
// eii-data and re-exported here.
pub use eii_data::row;

/// Result of executing one statement.
#[derive(Debug)]
pub enum ExecOutcome {
    /// A query's rows plus cost accounting (boxed: a [`QueryResult`] with
    /// its operator profile dwarfs the other variants).
    Rows(Box<QueryResult>),
    /// `CREATE VIEW` succeeded; the view name.
    ViewCreated(String),
    /// `SEARCH` hits.
    SearchHits(Vec<Hit>),
    /// `EXPLAIN [ANALYZE]` text.
    Explained(String),
    /// A scheduled materialized-view refresh completed; the view name and
    /// the refresh's simulated cost.
    Refreshed {
        /// The refreshed view.
        view: String,
        /// Simulated refresh cost, ms.
        sim_ms: f64,
    },
}

impl ExecOutcome {
    /// The rows, if this outcome carries any.
    pub fn rows(&self) -> Result<&Batch> {
        match self {
            ExecOutcome::Rows(r) => Ok(&r.batch),
            other => Err(EiiError::Execution(format!(
                "statement did not produce rows: {other:?}"
            ))),
        }
    }

    /// The full query result, if this outcome is a query.
    pub fn query_result(&self) -> Result<&QueryResult> {
        match self {
            ExecOutcome::Rows(r) => Ok(r),
            other => Err(EiiError::Execution(format!(
                "statement did not produce rows: {other:?}"
            ))),
        }
    }

    /// The rendered plan, if this outcome is an `EXPLAIN [ANALYZE]`.
    pub fn explained(&self) -> Result<&str> {
        match self {
            ExecOutcome::Explained(s) => Ok(s),
            other => Err(EiiError::Execution(format!(
                "statement was not an EXPLAIN: {other:?}"
            ))),
        }
    }

    /// The rows, when this outcome carries any (non-erroring probe).
    pub fn try_rows(&self) -> Option<&Batch> {
        match self {
            ExecOutcome::Rows(r) => Some(&r.batch),
            _ => None,
        }
    }

    /// The full query result, when this outcome is a query.
    pub fn try_query_result(&self) -> Option<&QueryResult> {
        match self {
            ExecOutcome::Rows(r) => Some(r),
            _ => None,
        }
    }

    /// The rendered plan, when this outcome is an `EXPLAIN [ANALYZE]`.
    pub fn try_explained(&self) -> Option<&str> {
        match self {
            ExecOutcome::Explained(s) => Some(s),
            _ => None,
        }
    }

    /// The search hits, when this outcome is a `SEARCH`.
    pub fn try_search_hits(&self) -> Option<&[Hit]> {
        match self {
            ExecOutcome::SearchHits(hits) => Some(hits),
            _ => None,
        }
    }

    /// Consume the outcome into its query result — the typed accessor
    /// scheduler callers use so joined tickets aren't triple-unwrapped.
    pub fn into_query_result(self) -> Result<QueryResult> {
        match self {
            ExecOutcome::Rows(r) => Ok(*r),
            other => Err(EiiError::Execution(format!(
                "statement did not produce rows: {other:?}"
            ))),
        }
    }
}

/// Per-query execution options, carried by [`Session`] handles and
/// accepted directly by [`EiiSystem::execute_with`].
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Role for access-controlled statements (`SEARCH` honors it).
    pub role: String,
    /// Per-query override of the semantic result cache's staleness budget,
    /// in simulated milliseconds (`None`: use the configured budget).
    pub staleness_budget_ms: Option<i64>,
    /// Simulated-time budget for the whole query (`None`: unbounded). When
    /// set, every fetch charges a shared [`Deadline`] and the query fails
    /// with a `deadline` error the moment the budget runs out; the planner
    /// also prefers materialized views that fit the remaining budget.
    pub deadline_budget_ms: Option<i64>,
    /// Priority tier for brownout load shedding (scheduler submissions).
    pub priority: Priority,
    /// Cooperative cancellation token checked at every batch boundary and
    /// before every connector request (`None`: not cancellable).
    pub cancel: Option<CancelToken>,
    /// Set by the brownout controller on a `Degrade` decision: the query
    /// runs under [`DegradationPolicy::PartialResults`] so shedding load
    /// yields partial answers instead of queueing behind high-priority work.
    pub brownout_degraded: bool,
    /// Session label stamped into query-log records and stored traces, so
    /// workload telemetry can be sliced per session ([`Session::with_label`]
    /// sets it automatically).
    pub session: Option<String>,
}

impl ExecOptions {
    /// Options for a role with no overrides.
    pub fn for_role(role: &str) -> Self {
        ExecOptions {
            role: role.to_string(),
            staleness_budget_ms: None,
            deadline_budget_ms: None,
            priority: Priority::Normal,
            cancel: None,
            brownout_degraded: false,
            session: None,
        }
    }
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions::for_role("public")
    }
}

/// Per-statement telemetry scratchpad the execute path fills in as facts
/// become known (fingerprint after planning, flags and actuals after
/// execution), consumed by [`EiiSystem::record_statement`].
#[derive(Debug, Default)]
struct StatementTelemetry {
    fingerprint: u64,
    plan: String,
    flags: StatementFlags,
    per_source_bytes: Vec<(String, u64)>,
    operators: Vec<OperatorStat>,
    deadline_budget_ms: Option<f64>,
    deadline_spent_ms: Option<f64>,
    trace_id: Option<u64>,
    /// Trace-store retention decision, made on the success path as soon as
    /// the outcome's flags are known so the expensive per-operator
    /// cost-model walk only runs for statements whose trace is kept.
    /// `None` on paths that never decided (errors, cache hits, DDL);
    /// [`EiiSystem::record_statement`] then asks the store itself.
    kept: Option<bool>,
}

/// The EII server: a federation of wrapped sources, a metadata catalog, a
/// planner configuration, a message broker, and (optionally) an enterprise
/// search service.
///
/// The system is `Send + Sync` end to end: every piece of genuinely shared
/// state is behind interior mutability (the federation's source registry,
/// the transfer ledger, metrics, the result cache, the materialized-view
/// manager, the fallback store, and the degradation policy), so an
/// `Arc<EiiSystem>` built by [`EiiSystemBuilder`] can serve concurrent
/// sessions from many threads. Hot query paths take only short read locks;
/// see `docs/architecture.md` ("Concurrency model") for the lock map.
pub struct EiiSystem {
    clock: SimClock,
    federation: Federation,
    catalog: Catalog,
    config: PlannerConfig,
    broker: MessageBroker,
    search: OnceLock<EnterpriseSearch>,
    degradation: RwLock<DegradationPolicy>,
    fallbacks: FallbackStore,
    matviews: OnceLock<MatViewManager>,
    cache: OnceLock<ResultCache>,
    scan_partitions: usize,
    hedge: RwLock<Option<HedgePolicy>>,
    last_trace: Mutex<Option<Arc<QueryTrace>>>,
    query_log: QueryLog,
    traces: TraceStore,
    slo: SloMonitor,
    /// Gate for the whole telemetry pipeline (query log, trace store, SLO
    /// samples). E18 measures the enabled-vs-disabled overhead under 5%.
    telemetry: AtomicBool,
    /// Workload-driven self-tuning, once enabled ([`EiiSystem::enable_advisor`]).
    advisor: OnceLock<AdvisorState>,
}

/// The advisor runtime: the decision engine plus the cardinality-feedback
/// store shared between statement recording (which writes observed
/// est-vs-actual ratios) and the executor's adaptive re-planning hook
/// (which reads feedback-corrected estimates mid-query).
struct AdvisorState {
    advisor: Advisor,
    feedback: Arc<CardinalityFeedback>,
}

impl EiiSystem {
    /// A new system on the given simulated clock, with all optimizations
    /// enabled. Prefer [`EiiSystem::builder`] for anything beyond a bare
    /// system: it wires sources, policies, caches, and views at build time
    /// and hands back a shareable `Arc<EiiSystem>`.
    pub fn new(clock: SimClock) -> Self {
        EiiSystem {
            federation: Federation::with_clock(clock.clone()),
            clock,
            catalog: Catalog::new(),
            config: PlannerConfig::optimized(),
            broker: MessageBroker::new(),
            search: OnceLock::new(),
            degradation: RwLock::new(DegradationPolicy::Fail),
            fallbacks: FallbackStore::new(),
            matviews: OnceLock::new(),
            cache: OnceLock::new(),
            scan_partitions: 1,
            hedge: RwLock::new(None),
            last_trace: Mutex::new(None),
            query_log: QueryLog::default(),
            traces: TraceStore::default(),
            slo: SloMonitor::new(),
            telemetry: AtomicBool::new(true),
            advisor: OnceLock::new(),
        }
    }

    /// Start configuring a system (see [`EiiSystemBuilder`]).
    pub fn builder(clock: SimClock) -> EiiSystemBuilder {
        EiiSystemBuilder::new(clock)
    }

    /// Replace the planner configuration (ablations, naive mode, ...).
    /// Consumes the system, so it only composes before the system is
    /// shared; after that, configuration is fixed.
    pub fn with_config(mut self, config: PlannerConfig) -> Self {
        self.config = config;
        self
    }

    pub(crate) fn set_planner_config(&mut self, config: PlannerConfig) {
        self.config = config;
    }

    pub(crate) fn set_scan_partitions(&mut self, n: usize) {
        self.scan_partitions = n.max(1);
    }

    /// Enable hedged requests: once a source's observed mean latency
    /// crosses the policy threshold, fetches against it race a delayed
    /// backup and the first (virtual-time) arrival wins.
    pub fn set_hedge_policy(&self, policy: HedgePolicy) {
        *self.hedge.write() = Some(policy);
    }

    /// The currently active hedging policy, if any.
    pub fn hedge_policy(&self) -> Option<HedgePolicy> {
        *self.hedge.read()
    }

    /// The simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The federation: ledger, schemas, handles, and (interior-mutable)
    /// source reconfiguration — fault injection, hardening, wire formats.
    pub fn federation(&self) -> &Federation {
        &self.federation
    }

    /// The metadata catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The message broker shared with EAI processes.
    pub fn broker(&self) -> &MessageBroker {
        &self.broker
    }

    /// The active planner configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Register a wrapped source behind a network link.
    pub fn add_source(
        &self,
        connector: Arc<dyn Connector>,
        link: LinkProfile,
        wire: WireFormat,
    ) -> Result<()> {
        self.federation.register(connector, link, wire)
    }

    /// Attach an enterprise-search service (see [`eii_search`]); a no-op if
    /// one is already attached.
    pub fn attach_search_service(&self, search: EnterpriseSearch) {
        let _ = self.search.set(search);
    }

    /// Choose what queries do when a source stays down past the
    /// federation's retry layer (default: fail).
    pub fn set_degradation_policy(&self, policy: DegradationPolicy) {
        *self.degradation.write() = policy;
    }

    /// The currently active degradation policy.
    pub fn degradation_policy(&self) -> DegradationPolicy {
        *self.degradation.read()
    }

    /// Count a query abort (`deadline.exceeded` / `query.cancelled`) so the
    /// dashboards distinguish budget blowouts from caller teardowns.
    fn count_abort(&self, err: &EiiError) {
        let metrics = self.federation.metrics();
        match err.kind() {
            "deadline" => metrics.inc("deadline.exceeded"),
            "cancelled" => metrics.inc("query.cancelled"),
            _ => {}
        }
    }

    /// The stale-snapshot store consulted under
    /// [`DegradationPolicy::Fallback`].
    pub fn fallbacks(&self) -> &FallbackStore {
        &self.fallbacks
    }

    /// Snapshot `source.table` live right now and register it as the
    /// fallback copy (stamped with the current simulated time).
    pub fn snapshot_fallback(&self, qualified: &str) -> Result<()> {
        let (h, table) = self.federation.resolve(qualified)?;
        let (batch, _) = h.query(&SourceQuery::full_table(table))?;
        self.fallbacks
            .register(qualified, batch, self.clock.now_ms());
        Ok(())
    }

    /// Define a materialized view over the federation and materialize it
    /// now; returns the initial refresh's simulated cost. Once a view is
    /// fresh under its policy, the planner's rewrite pass (when
    /// [`PlannerConfig::rewrite_matviews`] is on) answers matching query
    /// subtrees from it instead of the sources.
    ///
    /// The manager snapshots the federation on first use: register every
    /// source before creating views.
    pub fn define_matview(&self, name: &str, sql: &str, policy: RefreshPolicy) -> Result<f64> {
        let mgr = self.matviews.get_or_init(|| {
            MatViewManager::new(self.federation.clone(), self.clock.clone())
        });
        mgr.define(name, sql, &self.catalog, policy)?;
        mgr.refresh(name)
    }

    /// Like [`EiiSystem::define_matview`], but the view refreshes by
    /// **delta propagation** over the base tables' change logs — O(delta),
    /// not O(data) — when its plan is incrementalizable (see
    /// `docs/ivm.md`). Non-incrementalizable views are still created and
    /// refresh by full recompute; the returned [`FallbackReason`] says
    /// why. The initial materialization replays the change logs through
    /// the same delta path.
    pub fn define_incremental_matview(
        &self,
        name: &str,
        sql: &str,
        policy: RefreshPolicy,
    ) -> Result<Option<FallbackReason>> {
        let mgr = self.matviews.get_or_init(|| {
            MatViewManager::new(self.federation.clone(), self.clock.clone())
        });
        let fallback = mgr.define_incremental(name, sql, &self.catalog, policy)?;
        if let Err(e) = mgr.refresh(name) {
            // A failed bootstrap must not leave behind a registered view
            // whose every future refresh would fail the same way.
            let _ = mgr.drop_view(name);
            return Err(e);
        }
        self.refresh_cached_for(name);
        Ok(fallback)
    }

    /// Recompute a materialized view now (incrementally for
    /// delta-maintained views); returns the refresh's simulated cost. Any
    /// result-cache entry keyed by the view's plan is refreshed in place
    /// rather than left to go stale.
    pub fn refresh_matview(&self, name: &str) -> Result<f64> {
        let cost = self
            .matviews
            .get()
            .ok_or_else(|| EiiError::NotFound(format!("materialized view {name}")))?
            .refresh(name)?;
        self.refresh_cached_for(name);
        Ok(cost)
    }

    /// Push a view's fresh materialization into the result-cache entry
    /// stored under the same normalized plan key (an ad-hoc query textually
    /// matching the view's definition), with re-probed base-table versions.
    /// A cache miss or absent cache is a no-op.
    fn refresh_cached_for(&self, name: &str) {
        let (Some(mgr), Some(cache)) = (self.matviews.get(), self.cache.get()) else {
            return;
        };
        let (Ok(key), Ok(Some(batch)), Ok(tables)) = (
            mgr.plan_key(name),
            mgr.cached(name),
            mgr.base_tables(name),
        ) else {
            return;
        };
        let versions = ResultCache::probe_versions(&self.federation, &tables);
        cache.refresh_entry(&key, batch, versions, self.clock.now_ms());
    }

    /// The materialized-view manager, once any view has been created.
    pub fn matviews(&self) -> Option<&MatViewManager> {
        self.matviews.get()
    }

    /// Turn on the semantic result cache: query results are memoized under
    /// their normalized plan and served back — version-checked against each
    /// base table's change log — until invalidated, evicted, or older than
    /// the configured staleness budget. Returns `false` (and leaves the
    /// existing cache in place) if one is already installed.
    pub fn install_result_cache(&self, config: CacheConfig) -> bool {
        self.cache
            .set(ResultCache::new(config).with_metrics(self.federation.metrics().clone()))
            .is_ok()
    }

    /// The semantic result cache, when enabled.
    pub fn result_cache(&self) -> Option<&ResultCache> {
        self.cache.get()
    }

    /// Tell the cache a write landed on `source.table`; every dependent
    /// entry is dropped. (Version probing catches change-logged sources on
    /// its own; this is the hook for sources without CDC.)
    pub fn invalidate_cached(&self, qualified: &str) -> usize {
        self.cache
            .get()
            .map_or(0, |c| c.invalidate_table(qualified))
    }

    /// Turn on workload-driven self-tuning: the matview advisor (mines the
    /// query log for materialization candidates and manages the installed
    /// set under the configured storage budget), the cardinality-feedback
    /// store (per-operator est-vs-actual ratios folded in after every
    /// query), and the executor's adaptive re-planning hook (hub joins
    /// whose observed cardinality diverges from the feedback-corrected
    /// estimate re-issue their build side as a binding-filtered fetch).
    ///
    /// Rides the telemetry pipeline: with telemetry disabled
    /// ([`EiiSystem::set_telemetry_enabled`]) the advisor observes nothing
    /// and the loop stalls. Returns `false` (leaving the existing advisor
    /// in place) if one is already enabled.
    pub fn enable_advisor(&self, config: AdvisorConfig) -> bool {
        self.advisor
            .set(AdvisorState {
                advisor: Advisor::new(config),
                feedback: Arc::new(CardinalityFeedback::new()),
            })
            .is_ok()
    }

    /// The advisor's decision engine, when enabled.
    pub fn advisor(&self) -> Option<&Advisor> {
        self.advisor.get().map(|s| &s.advisor)
    }

    /// Human-readable advisor report: installed views with observed hit
    /// rates, plus the executed-action journal.
    pub fn advisor_report(&self) -> String {
        match self.advisor.get() {
            Some(s) => s.advisor.report(),
            None => "advisor: disabled\n".to_string(),
        }
    }

    /// Run one advisory cycle now: mine the query log's heaviest
    /// fingerprints by bytes shipped, install the best-scoring candidates
    /// under the storage budget as incrementally maintained always-fresh
    /// (`Live`) views, and evict installed views whose observed hit rate
    /// decayed below the floor. Candidates whose plan is not incrementally
    /// maintainable are rejected — their upkeep would be a full recompute
    /// per refresh — and never re-proposed.
    ///
    /// Fires automatically every `advise_every` observed statements;
    /// public so benchmarks and tests can force a cycle. Returns the
    /// actions actually executed this cycle.
    pub fn run_advisor_cycle(&self) -> Vec<AdvisorAction> {
        let Some(state) = self.advisor.get() else {
            return Vec::new();
        };
        let metrics = self.metrics();
        metrics.inc("advisor.cycles");
        let candidates: Vec<Candidate> = self
            .query_log
            .top_k(
                state.advisor.config().top_k,
                eii_obs::WorkloadKey::BytesShipped,
            )
            .into_iter()
            .map(|s| Candidate {
                fingerprint: s.fingerprint,
                rows: s.total_rows.checked_div(s.count).unwrap_or(0),
                sql: s.sql,
                count: s.count,
                total_bytes: s.total_bytes,
            })
            .collect();
        let journal_before = state.advisor.actions().len();
        for proposal in state.advisor.propose(&candidates) {
            match proposal {
                Proposal::Materialize {
                    name,
                    fingerprint,
                    sql,
                    score,
                    rows,
                } => match self.define_incremental_matview(&name, &sql, RefreshPolicy::Live) {
                    Ok(None) => {
                        state
                            .advisor
                            .record_materialized(fingerprint, &name, rows, score);
                        metrics.inc("advisor.materialized");
                    }
                    // Policy: only O(delta)-maintainable views are worth
                    // automatic installation; fallback-only views would
                    // pay a full recompute on every base write.
                    Ok(Some(reason)) => {
                        let _ = self.drop_advisor_view(&name);
                        state
                            .advisor
                            .record_rejected(fingerprint, &format!("{reason:?}"));
                    }
                    Err(e) => state.advisor.record_rejected(fingerprint, e.kind()),
                },
                Proposal::Evict {
                    name, fingerprint, ..
                } => {
                    let _ = self.drop_advisor_view(&name);
                    state.advisor.record_evicted(fingerprint);
                    metrics.inc("advisor.evicted");
                }
            }
        }
        state.advisor.actions().split_off(journal_before)
    }

    /// Drop an advisor-installed view; absent manager or view is a no-op
    /// (the definition may have been rolled back by a failed bootstrap).
    fn drop_advisor_view(&self, name: &str) -> Result<()> {
        match self.matviews.get() {
            Some(mgr) => mgr.drop_view(name),
            None => Ok(()),
        }
    }

    /// Mark scans of advisor-installed views in rendered plan text: an
    /// `[ADVISED]` header says the rows are served by a view the advisor
    /// — not an administrator — materialized.
    fn annotate_advised(&self, mut text: String) -> String {
        let Some(state) = self.advisor.get() else {
            return text;
        };
        for view in state.advisor.installed() {
            let from = format!("MatViewScan {} ", view.name);
            let to = format!("MatViewScan {} [ADVISED] ", view.name);
            text = text.replace(&from, &to);
        }
        text
    }

    /// Execute one SQL statement as the given role. Prefer a [`Session`]
    /// (see [`EiiSystem::session`]) for stateful work — it threads per-query
    /// options and keeps its own trace; this entry point is the stateless
    /// one-shot form.
    pub fn execute_as(&self, sql: &str, role: &str) -> Result<ExecOutcome> {
        self.execute_with(sql, &ExecOptions::for_role(role))
    }

    /// Execute one SQL statement under explicit per-query options (what
    /// [`Session`] handles thread through). The trace lands in
    /// [`EiiSystem::last_trace`] and is also returned to the caller via
    /// `opts` consumers; sessions keep their own copy.
    pub fn execute_with(&self, sql: &str, opts: &ExecOptions) -> Result<ExecOutcome> {
        self.execute_with_trace_shared(sql, opts).0
    }

    /// As [`EiiSystem::execute_with`], but hands the finished trace back to
    /// the caller instead of only the shared `last_trace` slot.
    pub fn execute_with_trace(
        &self,
        sql: &str,
        opts: &ExecOptions,
    ) -> (Result<ExecOutcome>, QueryTrace) {
        let (outcome, trace) = self.execute_with_trace_shared(sql, opts);
        (outcome, (*trace).clone())
    }

    /// The execution core behind [`EiiSystem::execute_with`] and
    /// [`EiiSystem::execute_with_trace`]: the finished trace is shared via
    /// `Arc` between the trace store, the `last_trace` slot, and the
    /// caller, so the hot path never deep-clones the span tree.
    pub(crate) fn execute_with_trace_shared(
        &self,
        sql: &str,
        opts: &ExecOptions,
    ) -> (Result<ExecOutcome>, Arc<QueryTrace>) {
        let tracer = Tracer::new(self.clock.clone());
        let start_wall = Instant::now();
        let start_sim = self.clock.now_ms();
        let mut telemetry = StatementTelemetry::default();
        let outcome = self.execute_traced(sql, opts, &tracer, &mut telemetry);
        let trace = Arc::new(tracer.finish());
        self.record_statement(sql, opts, &outcome, &trace, telemetry, start_sim, start_wall);
        *self.last_trace.lock() = Some(Arc::clone(&trace));
        (outcome, trace)
    }

    fn execute_traced(
        &self,
        sql: &str,
        opts: &ExecOptions,
        tracer: &Tracer,
        telemetry: &mut StatementTelemetry,
    ) -> Result<ExecOutcome> {
        let role = opts.role.as_str();
        let _statement = tracer.span("statement");
        let stmt = {
            let _parse = tracer.span("parse");
            parse_statement(sql)?
        };
        match stmt {
            Statement::Query(q) => Ok(ExecOutcome::Rows(Box::new(
                self.run_query(&q, opts, tracer, telemetry)?,
            ))),
            Statement::Explain { analyze: false, query } => {
                let (optimized, physical) = self.plan_explain(&query, tracer)?;
                Ok(ExecOutcome::Explained(self.annotate_advised(format!(
                    "== Logical plan ==\n{}== Physical plan ==\n{}",
                    optimized.display(),
                    physical.display()
                ))))
            }
            Statement::Explain { analyze: true, query } => Ok(ExecOutcome::Explained(
                self.run_explain_analyze(&query, tracer, telemetry)?,
            )),
            Statement::CreateView { name, query } => {
                // Validate the body plans before accepting the definition.
                self.catalog.create_view(&name, sql, query.clone())?;
                let probe = PlanBuilder::new(&self.catalog, &self.federation).build(&query);
                if let Err(e) = probe {
                    self.catalog.drop_view(&name);
                    return Err(e);
                }
                Ok(ExecOutcome::ViewCreated(name))
            }
            Statement::Search {
                terms,
                sources,
                limit,
            } => {
                let Some(search) = self.search.get() else {
                    return Err(EiiError::Execution(
                        "no search service attached; call attach_search first".into(),
                    ));
                };
                let (mut hits, _) = search.search(&terms, role, limit.unwrap_or(10))?;
                if !sources.is_empty() {
                    hits.retain(|h| sources.iter().any(|s| s == &h.source));
                }
                Ok(ExecOutcome::SearchHits(hits))
            }
        }
    }

    /// Execute one SQL statement as the default (`public`) role.
    pub fn execute(&self, sql: &str) -> Result<ExecOutcome> {
        self.execute_as(sql, "public")
    }

    /// Build and optimize the logical plan, then apply the
    /// answering-queries-using-views rewrite when enabled and any view is
    /// servable right now.
    fn optimize_with_views(&self, q: &SetQuery) -> Result<LogicalPlan> {
        let logical = PlanBuilder::new(&self.catalog, &self.federation).build(q)?;
        let optimized = optimize(logical, &self.federation, &self.config)?;
        match (self.matviews.get(), self.config.rewrite_matviews) {
            (Some(mgr), true) => {
                let defs = mgr.defs(self.clock.now_ms());
                rewrite_matviews(optimized, &defs, &self.federation)
            }
            _ => Ok(optimized),
        }
    }

    /// Plan and run one query, tracing the plan and execute phases and
    /// grafting the executor's per-operator profile into the trace.
    ///
    /// The full answer path: normalize the plan → probe the semantic cache
    /// (hit: serve memoized rows, fresh or stale-flagged) → rewrite against
    /// materialized views → execute federated → memoize the result.
    fn run_query(
        &self,
        q: &SetQuery,
        opts: &ExecOptions,
        tracer: &Tracer,
        telemetry: &mut StatementTelemetry,
    ) -> Result<QueryResult> {
        let start = Instant::now();
        let now = self.clock.now_ms();
        let telemetry_on = self.telemetry_enabled();
        let deadline = opts
            .deadline_budget_ms
            .map(|budget| Deadline::new(self.clock.clone(), budget));
        telemetry.deadline_budget_ms = opts.deadline_budget_ms.map(|b| b as f64);
        let mut ctx = RequestCtx::new();
        if let Some(d) = &deadline {
            ctx = ctx.with_deadline(d.clone());
        }
        if let Some(cancel) = &opts.cancel {
            ctx = ctx.with_cancel(cancel.clone());
        }
        if telemetry_on {
            // Allocate the trace ID up front so resilience events fired
            // mid-statement (hedge, breaker, shed) can reference it; the
            // retention decision happens after the outcome is known.
            let trace_id = self.traces.next_trace_id();
            telemetry.trace_id = Some(trace_id);
            ctx = ctx.with_trace_id(trace_id);
        }
        // A pre-cancelled or pre-expired request never plans, let alone
        // fetches.
        ctx.check().inspect_err(|e| self.count_abort(e))?;
        let plan_span = tracer.span("plan");
        let logical = PlanBuilder::new(&self.catalog, &self.federation).build(q)?;
        let optimized = optimize(logical, &self.federation, &self.config)?;

        // The cache key is the normalized (optimized) plan, so equivalent
        // SQL shares an entry; base tables drive version validation.
        let key = optimized.display();
        telemetry.fingerprint = fingerprint64(&key);
        telemetry.plan = key.clone();
        let tables = base_tables(&optimized);
        if let Some(cache) = self.cache.get() {
            match cache.lookup_with_budget(
                &key,
                now,
                &self.federation,
                opts.staleness_budget_ms,
            ) {
                CacheLookup::Hit(hit) => {
                    drop(plan_span);
                    telemetry.flags.cached = true;
                    return Ok(self.serve_cached(hit, Vec::new(), start, tracer));
                }
                CacheLookup::Stale(hit, reports) => {
                    drop(plan_span);
                    telemetry.flags.cached = true;
                    return Ok(self.serve_cached(hit, reports, start, tracer));
                }
                CacheLookup::Miss => {}
            }
        }

        let rewritten = match (self.matviews.get(), self.config.rewrite_matviews) {
            (Some(mgr), true) => {
                let defs = mgr.defs(now);
                // A tight budget can rescue a matview substitution that pure
                // cost comparison would reject: stale-but-local beats
                // fresh-but-late.
                let budget = deadline.as_ref().map(|d| d.remaining_ms() as f64);
                rewrite_matviews_with_budget(optimized, &defs, &self.federation, budget)?
            }
            _ => optimized,
        };
        let physical = PhysicalPlanner::new(&self.federation, &self.config).create(rewritten)?;
        telemetry.flags.matview = plan_uses_matview(&physical);
        drop(plan_span);

        // The cache needs the per-source delta to credit later hits; the
        // query log needs it to attribute bytes shipped per source.
        let traffic_before = (self.cache.get().is_some() || telemetry_on)
            .then(|| self.federation.ledger().snapshot());

        let execute = tracer.span("execute");
        // Brownout-degraded queries serve partial answers rather than
        // queueing behind high-priority work.
        let policy = if opts.brownout_degraded {
            DegradationPolicy::PartialResults
        } else {
            self.degradation_policy()
        };
        let mut exec = Executor::new(&self.federation)
            .with_degradation(policy, self.fallbacks.clone())
            .with_metrics(self.federation.metrics().clone())
            .with_scan_partitions(self.scan_partitions)
            .with_batch_size(self.config.batch_size)
            .with_request_ctx(ctx);
        if let Some(policy) = self.hedge_policy() {
            exec = exec.with_hedging(policy);
        }
        if let Some(mgr) = self.matviews.get() {
            exec = exec.with_matviews(mgr.store());
        }
        if let Some(state) = self.advisor.get() {
            exec = exec.with_replan(ReplanPolicy {
                feedback: Arc::clone(&state.feedback),
                factor: state.advisor.config().replan_factor,
            });
        }
        let result = exec.execute(&physical).inspect_err(|e| self.count_abort(e));
        if let Some(d) = &deadline {
            let remaining = d.remaining_ms();
            self.federation
                .metrics()
                .observe("deadline.remaining_ms", remaining as f64);
            if let Some(budget) = opts.deadline_budget_ms {
                telemetry.deadline_spent_ms = Some((budget - remaining).max(0) as f64);
            }
        }
        let result = result?;
        telemetry.flags.hedged = result.hedged;
        telemetry.flags.degraded = !result.degraded.is_empty();
        if let (Some(state), Some(profile)) = (self.advisor.get(), &result.profile) {
            let model = CostModel::new(&self.federation);
            observe_feedback(&physical, profile, &model, &state.feedback);
        }
        if telemetry_on {
            if let Some(before) = &traffic_before {
                telemetry.per_source_bytes =
                    traffic_delta(before, &self.federation.ledger().snapshot())
                        .into_iter()
                        .map(|(source, bytes)| (source, bytes as u64))
                        .collect();
            }
            // Decide trace retention now that the outcome's flags are
            // known: the per-operator cost-model walk (statistics lookups
            // per scan) is the priciest piece of recording, so it only
            // runs for statements tail-sampling keeps — which still covers
            // the first execution of every fingerprint plus everything
            // noteworthy. E18's overhead gate is what holds this honest.
            let keep = self
                .traces
                .should_keep(telemetry.fingerprint, telemetry.flags, false);
            telemetry.kept = Some(keep);
            if keep {
                if let Some(profile) = &result.profile {
                    let model = CostModel::new(&self.federation);
                    let mut path = vec![0];
                    collect_operator_stats(
                        &physical,
                        profile,
                        &model,
                        &mut path,
                        &mut telemetry.operators,
                    );
                }
            }
        }
        execute.annotate("rows", result.batch.num_rows());
        execute.annotate("bytes", result.cost.bytes);
        if !result.degraded.is_empty() {
            execute.annotate("degraded", result.degraded.len());
        }
        if let Some(profile) = &result.profile {
            tracer.attach(profile.to_span());
        }
        drop(execute);

        self.credit_matview_savings(&physical);

        if let Some(cache) = self.cache.get() {
            let per_source = traffic_delta(
                &traffic_before.expect("snapshot taken when cache enabled"),
                &self.federation.ledger().snapshot(),
            );
            let versions = ResultCache::probe_versions(&self.federation, &tables);
            cache.fill(key, result.batch.clone(), result.cost, per_source, versions, now);
        }
        Ok(result)
    }

    /// Serve a memoized result: credit every byte the original execution
    /// shipped to the saved side of the ledger, and report stale entries
    /// exactly like degraded (stale-fallback) answers.
    fn serve_cached(
        &self,
        hit: CachedResult,
        reports: Vec<SourceReport>,
        start: Instant,
        tracer: &Tracer,
    ) -> QueryResult {
        let metrics = self.federation.metrics();
        for (source, bytes) in &hit.per_source_bytes {
            self.federation.ledger().record_saved(source, *bytes);
            metrics.add(&format!("source.{source}.bytes_saved"), *bytes as u64);
        }
        metrics.add("cache.bytes_saved", hit.cost.bytes as u64);
        metrics.observe("cache.age_ms", hit.age_ms as f64);
        let span = tracer.span("cache_hit");
        span.annotate("rows", hit.batch.num_rows());
        span.annotate("age_ms", hit.age_ms as usize);
        drop(span);
        let rows = hit.batch.num_rows();
        QueryResult {
            batch: hit.batch,
            cost: QueryCost {
                sim_ms: CACHE_HIT_MS + rows as f64 * CACHE_HUB_MS_PER_ROW,
                ..QueryCost::default()
            },
            wall: start.elapsed(),
            degraded: reports,
            profile: None,
            hedged: false,
        }
    }

    /// Credit the bytes each `MatViewScan` in the executed plan avoided
    /// shipping, per source, and count the rewrites.
    fn credit_matview_savings(&self, plan: &PhysicalPlan) {
        let mut saved: Vec<(String, f64)> = Vec::new();
        let mut scans = 0usize;
        collect_matview_savings(plan, &mut saved, &mut scans);
        if scans == 0 {
            return;
        }
        let metrics = self.federation.metrics();
        metrics.add("matview.hits", scans as u64);
        for (source, bytes) in saved {
            self.federation.ledger().record_saved(&source, bytes as usize);
            metrics.add(&format!("source.{source}.bytes_saved"), bytes as u64);
            metrics.add("matview.bytes_saved", bytes as u64);
        }
    }

    /// Build the optimized (and view-rewritten) logical plan plus its
    /// physical plan, under a `plan` span.
    fn plan_explain(
        &self,
        q: &SetQuery,
        tracer: &Tracer,
    ) -> Result<(eii_planner::LogicalPlan, PhysicalPlan)> {
        let _plan = tracer.span("plan");
        let optimized = self.optimize_with_views(q)?;
        let physical =
            PhysicalPlanner::new(&self.federation, &self.config).create(optimized.clone())?;
        Ok((optimized, physical))
    }

    /// Execute the query and render the physical plan with per-operator
    /// estimated versus actual rows, bytes, and simulated time. When the
    /// semantic cache holds the answer there is no operator tree to render:
    /// the output is a `[CACHED]` header (with staleness flags mirroring
    /// `[DEGRADED: ...]`) plus the total line.
    fn run_explain_analyze(
        &self,
        q: &SetQuery,
        tracer: &Tracer,
        telemetry: &mut StatementTelemetry,
    ) -> Result<String> {
        if let Some(cache) = self.cache.get() {
            let logical = PlanBuilder::new(&self.catalog, &self.federation).build(q)?;
            let optimized = optimize(logical, &self.federation, &self.config)?;
            let probe = cache.lookup(&optimized.display(), self.clock.now_ms(), &self.federation);
            match probe {
                CacheLookup::Hit(hit) => {
                    telemetry.flags.cached = true;
                    return Ok(render_cached(&hit, &[]));
                }
                CacheLookup::Stale(hit, reports) => {
                    telemetry.flags.cached = true;
                    return Ok(render_cached(&hit, &reports));
                }
                CacheLookup::Miss => {}
            }
        }
        let (optimized, physical) = self.plan_explain(q, tracer)?;
        telemetry.plan = optimized.display();
        telemetry.fingerprint = fingerprint64(&telemetry.plan);
        let execute = tracer.span("execute");
        let mut exec = Executor::new(&self.federation)
            .with_degradation(self.degradation_policy(), self.fallbacks.clone())
            .with_metrics(self.federation.metrics().clone())
            .with_scan_partitions(self.scan_partitions)
            .with_batch_size(self.config.batch_size);
        if let Some(policy) = self.hedge_policy() {
            exec = exec.with_hedging(policy);
        }
        if let Some(mgr) = self.matviews.get() {
            exec = exec.with_matviews(mgr.store());
        }
        if let Some(state) = self.advisor.get() {
            exec = exec.with_replan(ReplanPolicy {
                feedback: Arc::clone(&state.feedback),
                factor: state.advisor.config().replan_factor,
            });
        }
        let result = exec.execute(&physical)?;
        if let Some(profile) = &result.profile {
            tracer.attach(profile.to_span());
        }
        drop(execute);
        let profile = result.profile.as_ref().ok_or_else(|| {
            EiiError::Execution("EXPLAIN ANALYZE needs executor instrumentation".into())
        })?;
        if let Some(state) = self.advisor.get() {
            let model = CostModel::new(&self.federation);
            observe_feedback(&physical, profile, &model, &state.feedback);
        }
        telemetry.flags.hedged = result.hedged;
        telemetry.flags.degraded = !result.degraded.is_empty();
        telemetry.flags.matview = plan_uses_matview(&physical);
        let model = CostModel::new(&self.federation);
        let mut out = String::new();
        render_analyze(&physical, profile, &model, &result.degraded, 0, &mut out);
        let rendered_flags = telemetry.flags.render();
        let _ = write!(
            out,
            "Total: rows={} bytes={} sim={:.1}ms wall={:.1?}{}{}",
            result.batch.num_rows(),
            result.cost.bytes,
            result.cost.sim_ms,
            result.wall,
            if result.fully_live() {
                String::new()
            } else {
                format!(" degraded_sources={}", result.degraded.len())
            },
            if rendered_flags.is_empty() {
                String::new()
            } else {
                format!(" flags={rendered_flags}")
            }
        );
        out.push('\n');
        Ok(self.annotate_advised(out))
    }

    /// `EXPLAIN ANALYZE` as a direct call: execute `sql` (a query) and
    /// return the annotated plan text.
    pub fn explain_analyze(&self, sql: &str) -> Result<String> {
        let q = match parse_statement(sql)? {
            Statement::Query(q) | Statement::Explain { query: q, .. } => q,
            _ => return Err(EiiError::Plan("EXPLAIN ANALYZE expects a query".into())),
        };
        let tracer = Tracer::new(self.clock.clone());
        let start_wall = Instant::now();
        let start_sim = self.clock.now_ms();
        let mut telemetry = StatementTelemetry::default();
        let opts = ExecOptions::default();
        let text = self.run_explain_analyze(&q, &tracer, &mut telemetry);
        let trace = Arc::new(tracer.finish());
        let outcome = text.clone().map(ExecOutcome::Explained);
        self.record_statement(sql, &opts, &outcome, &trace, telemetry, start_sim, start_wall);
        *self.last_trace.lock() = Some(trace);
        text
    }

    /// The trace of the most recently executed statement (spans for parse,
    /// plan, execute, and one `op:<label>` span per physical operator).
    ///
    /// Under concurrent sessions this slot is clobbered by whichever
    /// statement finished last; use [`Session::last_trace`] for a
    /// per-session trace or [`EiiSystem::trace_store`] for sampled
    /// retention with per-session and by-ID lookup.
    #[deprecated(
        since = "0.1.0",
        note = "shared slot races across sessions; use Session::last_trace \
                or EiiSystem::trace_store"
    )]
    pub fn last_trace(&self) -> Option<QueryTrace> {
        self.last_trace.lock().as_deref().cloned()
    }

    /// The durable workload query log: per-statement records (sampled into
    /// a bounded ring) plus exact per-fingerprint aggregates and top-k
    /// workload rankings.
    pub fn query_log(&self) -> &QueryLog {
        &self.query_log
    }

    /// The sampled trace store: last-N retention with tail-sampling (every
    /// error/hedged/shed/degraded/cancelled statement keeps its trace) and
    /// Chrome trace-event export via [`eii_obs::chrome_trace_json`].
    pub fn trace_store(&self) -> &TraceStore {
        &self.traces
    }

    /// The SLO burn-rate monitor (register objectives with
    /// [`EiiSystem::set_slo_objective`], read with [`EiiSystem::slo_status`]).
    pub fn slo_monitor(&self) -> &SloMonitor {
        &self.slo
    }

    /// Register (or replace) a latency/availability objective for a
    /// priority tier.
    pub fn set_slo_objective(&self, objective: SloObjective) {
        self.slo.set_objective(objective);
    }

    /// Evaluate every registered SLO objective at the current virtual time,
    /// publish `slo.<priority>.*` metrics, and return the typed statuses.
    pub fn slo_status(&self) -> Vec<SloStatus> {
        let statuses = self.slo.evaluate(self.clock.now_ms() as f64);
        let metrics = self.metrics();
        for status in &statuses {
            let p = &status.priority;
            let worst = |burns: &[eii_obs::WindowBurn]| {
                burns.iter().map(|b| b.burn_rate).fold(0.0f64, f64::max)
            };
            metrics.observe(&format!("slo.{p}.latency_burn"), worst(&status.latency_burn));
            metrics.observe(
                &format!("slo.{p}.availability_burn"),
                worst(&status.availability_burn),
            );
            metrics.observe(
                &format!("slo.{p}.state"),
                match status.state() {
                    eii_obs::SloState::Healthy => 0.0,
                    eii_obs::SloState::AtRisk => 1.0,
                    eii_obs::SloState::Breached => 2.0,
                },
            );
        }
        statuses
    }

    /// Turn the telemetry pipeline (query log, trace store, SLO samples)
    /// on or off. On by default; E18 holds its overhead under 5%.
    pub fn set_telemetry_enabled(&self, enabled: bool) {
        self.telemetry.store(enabled, Ordering::Relaxed);
    }

    /// Whether the telemetry pipeline is currently recording.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.load(Ordering::Relaxed)
    }

    /// Record one finished statement into the telemetry pipeline: decide
    /// trace retention (tail-sampling), feed the SLO monitor, and append
    /// the query-log record. No-op when telemetry is disabled.
    #[allow(clippy::too_many_arguments)]
    fn record_statement(
        &self,
        sql: &str,
        opts: &ExecOptions,
        outcome: &Result<ExecOutcome>,
        trace: &Arc<QueryTrace>,
        mut t: StatementTelemetry,
        start_sim_ms: i64,
        start_wall: Instant,
    ) {
        if !self.telemetry_enabled() {
            return;
        }
        let end_sim = self.clock.now_ms();
        let (rows, bytes_shipped, sim_ms, degraded) = match outcome {
            Ok(ExecOutcome::Rows(r)) => (
                r.batch.num_rows() as u64,
                r.cost.bytes as u64,
                r.cost.sim_ms,
                !r.degraded.is_empty(),
            ),
            _ => (0, 0, (end_sim - start_sim_ms) as f64, false),
        };
        if let Ok(ExecOutcome::Rows(r)) = outcome {
            t.flags.hedged |= r.hedged;
        }
        t.flags.degraded |= degraded;
        let error = outcome.as_ref().err().map(|e| e.kind().to_string());
        match error.as_deref() {
            Some("cancelled") | Some("deadline") => t.flags.cancelled = true,
            Some("shed") => t.flags.shed = true,
            _ => {}
        }
        if t.fingerprint == 0 {
            // Statements that never reached planning (parse errors, DDL,
            // search) fingerprint on their normalized SQL text.
            t.plan = sql.trim().to_string();
            t.fingerprint = fingerprint64(&t.plan);
        }
        let errored = error.is_some();
        let keep = t
            .kept
            .unwrap_or_else(|| self.traces.should_keep(t.fingerprint, t.flags, errored));
        let trace_id = if keep {
            let id = t.trace_id.unwrap_or_else(|| self.traces.next_trace_id());
            self.traces.store(StoredTrace {
                trace_id: id,
                fingerprint: t.fingerprint,
                session: opts.session.clone(),
                start_sim_ms: start_sim_ms as f64,
                flags: t.flags,
                error: error.clone(),
                trace: Arc::clone(trace),
            });
            Some(id)
        } else {
            None
        };
        self.slo
            .record(opts.priority.as_str(), end_sim as f64, sim_ms, !errored);
        let fingerprint = t.fingerprint;
        let advisor_hit = t.flags.matview || t.flags.cached;
        self.query_log.record(QueryLogRecord {
            fingerprint: t.fingerprint,
            plan: t.plan,
            sql: sql.trim().to_string(),
            session: opts.session.clone(),
            role: opts.role.clone(),
            priority: opts.priority.as_str().to_string(),
            start_sim_ms: start_sim_ms as f64,
            sim_ms,
            wall_us: start_wall.elapsed().as_micros() as u64,
            rows,
            bytes_shipped,
            per_source_bytes: t.per_source_bytes,
            operators: t.operators,
            deadline_budget_ms: t.deadline_budget_ms,
            deadline_spent_ms: t.deadline_spent_ms,
            flags: t.flags,
            error,
            trace_id,
        });
        // The advisor loop piggybacks on statement recording: observe the
        // outcome (did an installed view or the cache answer it?) and run
        // an advisory cycle at the configured cadence. Cycles execute view
        // definitions directly against the matview manager — no statements
        // run, so this cannot recurse.
        if let Some(state) = self.advisor.get() {
            if state.advisor.observe_statement(fingerprint, advisor_hit) {
                self.run_advisor_cycle();
            }
        }
    }

    /// Record a statement the admission controller turned away: a synthetic
    /// single-span trace (always retained — shed is noteworthy), a `shed`
    /// telemetry event stamped with the trace ID, and a query-log record.
    pub(crate) fn record_shed(&self, sql: &str, opts: &ExecOptions) {
        if !self.telemetry_enabled() {
            return;
        }
        let now = self.clock.now_ms();
        let plan = sql.trim().to_string();
        let fingerprint = fingerprint64(&plan);
        let flags = StatementFlags {
            shed: true,
            ..StatementFlags::default()
        };
        let trace_id = self.traces.next_trace_id();
        let tracer = Tracer::new(self.clock.clone());
        {
            let span = tracer.span("shed");
            span.annotate("priority", opts.priority.as_str());
        }
        self.traces.store(StoredTrace {
            trace_id,
            fingerprint,
            session: opts.session.clone(),
            start_sim_ms: now as f64,
            flags,
            error: Some("shed".to_string()),
            trace: Arc::new(tracer.finish()),
        });
        self.metrics().record_event(TelemetryEvent {
            sim_ms: now as f64,
            kind: "shed".to_string(),
            source: "admission".to_string(),
            trace_id: Some(trace_id),
            detail: format!("priority={}", opts.priority.as_str()),
        });
        self.slo
            .record(opts.priority.as_str(), now as f64, 0.0, false);
        self.query_log.record(QueryLogRecord {
            fingerprint,
            sql: plan.clone(),
            plan,
            session: opts.session.clone(),
            role: opts.role.clone(),
            priority: opts.priority.as_str().to_string(),
            start_sim_ms: now as f64,
            sim_ms: 0.0,
            wall_us: 0,
            rows: 0,
            bytes_shipped: 0,
            per_source_bytes: Vec::new(),
            operators: Vec::new(),
            deadline_budget_ms: opts.deadline_budget_ms.map(|b| b as f64),
            deadline_spent_ms: None,
            flags,
            error: Some("shed".to_string()),
            trace_id: Some(trace_id),
        });
    }

    /// The metrics registry every query, source, breaker, and saga records
    /// into.
    pub fn metrics(&self) -> &MetricsRegistry {
        self.federation.metrics()
    }

    /// Current health of every registered source: cumulative traffic,
    /// failures and retries, circuit-breaker state, and the last error.
    pub fn source_health(&self) -> Vec<SourceHealth> {
        self.federation.source_health()
    }

    /// EXPLAIN: render the optimized logical and physical plans (including
    /// any `MatViewScan` substitutions with their chosen-versus-rejected
    /// costs).
    pub fn explain(&self, sql: &str) -> Result<String> {
        let Statement::Query(q) = parse_statement(sql)? else {
            return Err(EiiError::Plan("EXPLAIN expects a query".into()));
        };
        let optimized = self.optimize_with_views(&q)?;
        let physical =
            PhysicalPlanner::new(&self.federation, &self.config).create(optimized.clone())?;
        Ok(self.annotate_advised(format!(
            "== Logical plan ==\n{}== Physical plan ==\n{}",
            optimized.display(),
            physical.display()
        )))
    }

    /// Predict a query's cost without executing it (experiment E12's
    /// "query execution-time prediction").
    pub fn predict(&self, sql: &str) -> Result<eii_planner::PlanEstimate> {
        let Statement::Query(q) = parse_statement(sql)? else {
            return Err(EiiError::Plan("prediction expects a query".into()));
        };
        let logical = PlanBuilder::new(&self.catalog, &self.federation).build(&q)?;
        let optimized = optimize(logical, &self.federation, &self.config)?;
        eii_planner::CostModel::new(&self.federation).estimate(&optimized)
    }

    /// Run a business process as a saga (the update half of enterprise
    /// integration; see Carey §4).
    pub fn run_process(
        &self,
        def: &ProcessDef,
        vars: std::collections::HashMap<String, eii_data::Value>,
    ) -> Result<(SagaOutcome, Vec<eii_eai::JournalEntry>)> {
        let env = ProcessEnv::new(&self.federation, &self.broker, &self.clock, vars);
        SagaEngine::new(self.clock.clone())
            .with_metrics(self.federation.metrics().clone())
            .run(def, &env)
    }
}

/// Every distinct `source.table` a logical plan scans.
fn base_tables(plan: &LogicalPlan) -> Vec<String> {
    fn walk(plan: &LogicalPlan, out: &mut Vec<String>) {
        if let LogicalPlan::SourceScan { source, table, .. } = plan {
            let qualified = format!("{source}.{table}");
            if !out.contains(&qualified) {
                out.push(qualified);
            }
        }
        for child in plan.children() {
            walk(child, out);
        }
    }
    let mut out = Vec::new();
    walk(plan, &mut out);
    out
}

/// Bytes shipped per source between two ledger snapshots — what one
/// execution cost, attributed by source.
fn traffic_delta(
    before: &[(String, eii_federation::SourceTraffic)],
    after: &[(String, eii_federation::SourceTraffic)],
) -> Vec<(String, usize)> {
    after
        .iter()
        .filter_map(|(source, t)| {
            let prior = before
                .iter()
                .find(|(s, _)| s == source)
                .map_or(0, |(_, p)| p.bytes);
            let delta = t.bytes.saturating_sub(prior);
            (delta > 0).then(|| (source.clone(), delta))
        })
        .collect()
}

/// Does the physical plan scan any materialized view?
fn plan_uses_matview(plan: &PhysicalPlan) -> bool {
    matches!(plan, PhysicalPlan::MatViewScan { .. })
        || plan.children().iter().any(|c| plan_uses_matview(c))
}

/// Flatten the plan/profile trees into per-operator estimated-vs-actual
/// stats for the query log, keyed by dotted path (`0`, `0.1`, ...).
///
/// Children are estimated first and the parent's estimate is derived from
/// theirs ([`CostModel::estimate_from_children`]), so the whole tree costs
/// one source-statistics lookup per scan — calling
/// [`CostModel::estimate_physical`] at every node would re-estimate each
/// subtree and put a measurable tax on every query (E18's overhead gate).
/// Returns this subtree's estimate for the caller's own derivation.
fn collect_operator_stats(
    plan: &PhysicalPlan,
    profile: &OperatorProfile,
    model: &CostModel,
    path: &mut Vec<usize>,
    out: &mut Vec<OperatorStat>,
) -> eii_planner::PlanEstimate {
    let slot = out.len();
    out.push(OperatorStat {
        path: path
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join("."),
        label: profile.label.to_string(),
        est_rows: 0,
        actual_rows: profile.rows as u64,
        bytes: profile.cost.bytes as u64,
        sim_ms: profile.cost.sim_ms,
    });
    let children = plan.children();
    let mut kids = Vec::with_capacity(children.len());
    for (i, (child, child_profile)) in children.iter().zip(&profile.children).enumerate() {
        path.push(i);
        kids.push(collect_operator_stats(child, child_profile, model, path, out));
        path.pop();
    }
    let est = model.estimate_from_children(plan, &kids);
    out[slot].est_rows = est.rows.round() as u64;
    est
}

/// Fold one execution's per-operator actuals into the advisor's
/// cardinality-feedback store, keyed by plan-node fingerprint. Estimates
/// are derived bottom-up with the *uncorrected* cost model (one
/// statistics lookup per scan, like [`collect_operator_stats`]) so the
/// stored ratio stays actual-over-raw-estimate instead of chasing its own
/// corrections. Returns this subtree's estimate for the caller.
fn observe_feedback(
    plan: &PhysicalPlan,
    profile: &OperatorProfile,
    model: &CostModel,
    feedback: &CardinalityFeedback,
) -> eii_planner::PlanEstimate {
    let children = plan.children();
    let mut kids = Vec::with_capacity(children.len());
    for (child, child_profile) in children.iter().zip(&profile.children) {
        kids.push(observe_feedback(child, child_profile, model, feedback));
    }
    let est = model.estimate_from_children(plan, &kids);
    feedback.observe(
        CardinalityFeedback::node_key(plan),
        est.rows,
        profile.rows as f64,
    );
    est
}

/// Accumulate the per-source saved-bytes estimates of every `MatViewScan`
/// in the plan, counting the scans.
fn collect_matview_savings(plan: &PhysicalPlan, saved: &mut Vec<(String, f64)>, scans: &mut usize) {
    if let PhysicalPlan::MatViewScan { saved: s, .. } = plan {
        *scans += 1;
        for (source, bytes) in s {
            match saved.iter_mut().find(|(name, _)| name == source) {
                Some((_, acc)) => *acc += bytes,
                None => saved.push((source.clone(), *bytes)),
            }
        }
    }
    for child in plan.children() {
        collect_matview_savings(child, saved, scans);
    }
}

/// Render the `EXPLAIN ANALYZE` output for a semantic-cache hit: no
/// operator tree ran, so the header says where the rows came from, and any
/// staleness is flagged the way degraded sources are.
fn render_cached(hit: &CachedResult, reports: &[SourceReport]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "Result [CACHED] semantic result cache hit (age={}ms, originally \
         rows={} bytes={} sim={:.1}ms)",
        hit.age_ms,
        hit.batch.num_rows(),
        hit.cost.bytes,
        hit.cost.sim_ms
    );
    for report in reports {
        let _ = write!(
            out,
            " [STALE: {}.{} {}ms]",
            report.source,
            report.table,
            report.stale_ms.unwrap_or(0)
        );
    }
    out.push('\n');
    let rows = hit.batch.num_rows();
    let _ = write!(
        out,
        "Total: rows={rows} bytes=0 sim={:.1}ms (served from cache)",
        CACHE_HIT_MS + rows as f64 * CACHE_HUB_MS_PER_ROW
    );
    out.push('\n');
    out
}

/// Render one `EXPLAIN ANALYZE` line per operator: the describe line, the
/// pushdown summary (source-facing operators), the cost model's estimate
/// next to the measured actuals, and a `[DEGRADED: ...]` flag on operators
/// whose source could not answer live.
fn render_analyze(
    plan: &PhysicalPlan,
    profile: &OperatorProfile,
    model: &CostModel,
    degraded: &[SourceReport],
    depth: usize,
    out: &mut String,
) {
    out.push_str(&"  ".repeat(depth));
    out.push_str(&plan.describe());
    if let Some(p) = plan.pushdown() {
        let _ = write!(out, " {p}");
    }
    match model.estimate_physical(plan) {
        Ok(est) => {
            let _ = write!(
                out,
                " (est rows={:.0} bytes={:.0} sim={:.1}ms",
                est.rows, est.bytes, est.sim_ms
            );
        }
        Err(_) => out.push_str(" (est ?"),
    }
    let _ = write!(
        out,
        " | act rows={} bytes={} sim={:.1}ms wall={:.1?})",
        profile.rows, profile.cost.bytes, profile.cost.sim_ms, profile.wall
    );
    if profile.replanned {
        out.push_str(" [REPLANNED]");
    }
    if let Some(src) = &profile.source {
        for report in degraded.iter().filter(|r| &r.source == src) {
            match report.stale_ms {
                Some(ms) => {
                    let _ = write!(out, " [DEGRADED: {} stale {}ms]", report.table, ms);
                }
                None => {
                    let _ = write!(out, " [DEGRADED: {} dropped: {}]", report.table, report.error);
                }
            }
        }
    }
    out.push('\n');
    for (child, child_profile) in plan.children().iter().zip(&profile.children) {
        render_analyze(child, child_profile, model, degraded, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use eii_data::row;

    fn system() -> EiiSystem {
        let clock = SimClock::new();
        let crm = Database::new("crm", clock.clone());
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int).not_null(),
            Field::new("name", DataType::Str),
            Field::new("region", DataType::Str),
        ]));
        let t = crm
            .create_table(TableDef::new("customers", schema).with_primary_key(0))
            .unwrap();
        {
            let mut t = t.write();
            t.insert(row![1i64, "alice", "west"]).unwrap();
            t.insert(row![2i64, "bob", "east"]).unwrap();
        }
        let sys = EiiSystem::new(clock);
        sys.add_source(
            Arc::new(RelationalConnector::new(crm)),
            LinkProfile::lan(),
            WireFormat::Native,
        )
        .unwrap();
        sys
    }

    #[test]
    fn query_through_facade() {
        let sys = system();
        let out = sys.execute("SELECT name FROM crm.customers ORDER BY name").unwrap();
        let batch = out.rows().unwrap();
        assert_eq!(batch.num_rows(), 2);
    }

    #[test]
    fn view_lifecycle_through_facade() {
        let sys = system();
        let out = sys
            .execute("CREATE VIEW west AS SELECT * FROM crm.customers WHERE region = 'west'")
            .unwrap();
        assert!(matches!(out, ExecOutcome::ViewCreated(ref n) if n == "west"));
        let rows = sys.execute("SELECT name FROM west").unwrap();
        assert_eq!(rows.rows().unwrap().num_rows(), 1);
    }

    #[test]
    fn bad_view_body_is_rejected_and_not_registered() {
        let sys = system();
        let err = sys
            .execute("CREATE VIEW broken AS SELECT x FROM no.such_table")
            .unwrap_err();
        assert_eq!(err.kind(), "not_found");
        assert!(sys.catalog().view("broken").is_none());
    }

    #[test]
    fn explain_shows_both_plans() {
        let sys = system();
        let text = sys
            .explain("SELECT name FROM crm.customers WHERE region = 'west'")
            .unwrap();
        assert!(text.contains("== Logical plan =="));
        assert!(text.contains("SourceQuery crm"));
        assert!(text.contains("pushed="), "{text}");
    }

    #[test]
    fn predict_returns_estimate() {
        let sys = system();
        let est = sys.predict("SELECT name FROM crm.customers").unwrap();
        assert!(est.rows > 0.0);
        assert!(est.sim_ms > 0.0);
    }

    #[test]
    fn search_requires_attachment() {
        let sys = system();
        let err = sys.execute("SEARCH 'acme'").unwrap_err();
        assert_eq!(err.kind(), "execution");
    }

    #[test]
    fn matview_rewrite_answers_locally_and_credits_saved_bytes() {
        let sys = system();
        sys.define_matview(
            "all_customers",
            "SELECT * FROM crm.customers",
            RefreshPolicy::Manual,
        )
        .unwrap();
        let shipped_before = sys.federation().ledger().total().bytes;

        // EXPLAIN shows the substitution with both alternatives' costs.
        let text = sys.explain("SELECT * FROM crm.customers").unwrap();
        assert!(text.contains("[MATVIEW]"), "{text}");
        assert!(text.contains("rejected federated"), "{text}");

        let out = sys.execute("SELECT * FROM crm.customers").unwrap();
        assert_eq!(out.rows().unwrap().num_rows(), 2);
        let total = sys.federation().ledger().total();
        assert_eq!(
            total.bytes, shipped_before,
            "the rewritten query must ship nothing"
        );
        assert!(total.bytes_saved > 0, "savings are credited to the ledger");
        assert_eq!(sys.metrics().snapshot().counter("matview.hits"), 1);
    }

    #[test]
    fn matview_rewrite_compensates_narrower_scans() {
        let sys = system();
        sys.define_matview(
            "all_customers",
            "SELECT * FROM crm.customers",
            RefreshPolicy::Manual,
        )
        .unwrap();
        let before = sys.federation().ledger().total().bytes;
        let out = sys
            .execute("SELECT name FROM crm.customers WHERE region = 'west'")
            .unwrap();
        let batch = out.rows().unwrap();
        assert_eq!(batch.num_rows(), 1);
        assert_eq!(batch.rows()[0], row!["alice"]);
        assert_eq!(
            sys.federation().ledger().total().bytes,
            before,
            "containment rewrite must not touch the source"
        );
    }

    #[test]
    fn incremental_matview_refreshes_cache_entry_in_place() {
        let clock = SimClock::new();
        let crm = Database::new("crm", clock.clone());
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int).not_null(),
            Field::new("name", DataType::Str),
        ]));
        let t = crm
            .create_table(TableDef::new("customers", schema).with_primary_key(0))
            .unwrap();
        t.write().insert(row![1i64, "alice"]).unwrap();
        let sys = EiiSystem::new(clock);
        sys.add_source(
            Arc::new(RelationalConnector::new(crm)),
            LinkProfile::lan(),
            WireFormat::Native,
        )
        .unwrap();
        sys.install_result_cache(CacheConfig::default());
        let q = "SELECT name FROM crm.customers";
        // The view's definition matches the query, so both share a plan
        // key in the result cache.
        assert!(sys
            .define_incremental_matview("names", q, RefreshPolicy::Manual)
            .unwrap()
            .is_none());
        sys.execute(q).unwrap(); // fills the cache
        t.write().insert(row![2i64, "bob"]).unwrap();
        // An incremental refresh pushes the delta into the view AND the
        // cached entry: the next read hits fresh data without rerunning.
        sys.refresh_matview("names").unwrap();
        let shipped = sys.federation().ledger().total().bytes;
        let out = sys.execute(q).unwrap();
        assert_eq!(out.rows().unwrap().num_rows(), 2, "hit serves fresh rows");
        assert_eq!(
            sys.federation().ledger().total().bytes,
            shipped,
            "served from the refreshed cache entry, nothing shipped"
        );
        let snap = sys.metrics().snapshot();
        assert_eq!(snap.counter("cache.refreshed"), 1);
        assert_eq!(snap.counter("cache.invalidations"), 0);
        // Bootstrap + explicit refresh, one delta row consumed.
        assert_eq!(snap.counter("ivm.refreshes"), 2);
        assert_eq!(snap.counter("ivm.delta_rows"), 2);
        let status = sys.matviews().unwrap().ivm_status("names").unwrap();
        assert!(status.incremental);
        assert_eq!(status.stats.refreshes, 2);
    }

    #[test]
    fn scheduled_refresh_honors_pool_and_cancellation() {
        let sys = Arc::new(system());
        sys.define_incremental_matview(
            "v",
            "SELECT id FROM crm.customers",
            RefreshPolicy::Manual,
        )
        .unwrap();
        let sched = sys.scheduler(AdmissionConfig::default());
        let (ticket, decision) = sched
            .submit_refresh("v", &ExecOptions::default())
            .unwrap();
        assert_eq!(decision, ShedDecision::Admit);
        let out = ticket.join().unwrap();
        assert!(matches!(out, ExecOutcome::Refreshed { ref view, .. } if view == "v"));
        // A pre-tripped cancel token stops the refresh before any
        // maintenance stage runs.
        let cancel = CancelToken::new();
        cancel.cancel("client gone");
        let opts = ExecOptions {
            cancel: Some(cancel),
            ..ExecOptions::default()
        };
        let (ticket, _) = sched.submit_refresh("v", &opts).unwrap();
        assert_eq!(ticket.join().unwrap_err().kind(), "cancelled");
        sched.finish();
    }

    #[test]
    fn result_cache_serves_repeats_and_invalidates_on_writes() {
        let clock = SimClock::new();
        let crm = Database::new("crm", clock.clone());
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int).not_null(),
            Field::new("name", DataType::Str),
        ]));
        let t = crm
            .create_table(TableDef::new("customers", schema).with_primary_key(0))
            .unwrap();
        t.write().insert(row![1i64, "alice"]).unwrap();
        let sys = EiiSystem::new(clock);
        sys.add_source(
            Arc::new(RelationalConnector::new(crm)),
            LinkProfile::lan(),
            WireFormat::Native,
        )
        .unwrap();
        sys.install_result_cache(CacheConfig::default());

        let q = "SELECT name FROM crm.customers";
        sys.execute(q).unwrap();
        let shipped_after_first = sys.federation().ledger().total().bytes;
        let out = sys.execute(q).unwrap();
        assert_eq!(out.rows().unwrap().num_rows(), 1);
        assert_eq!(
            sys.federation().ledger().total().bytes,
            shipped_after_first,
            "second run is a cache hit"
        );
        let snap = sys.metrics().snapshot();
        assert_eq!(snap.counter("cache.hits"), 1);
        assert_eq!(snap.counter("cache.misses"), 1);
        assert!(sys.federation().ledger().total().bytes_saved > 0);

        // A write to the base table bumps its change-log watermark: the
        // next read must miss and see the new row.
        t.write().insert(row![2i64, "bob"]).unwrap();
        let out = sys.execute(q).unwrap();
        assert_eq!(out.rows().unwrap().num_rows(), 2, "fresh data after write");
        assert!(
            sys.federation().ledger().total().bytes > shipped_after_first,
            "the refreshed answer came from the source"
        );
    }

    #[test]
    fn explain_analyze_flags_cached_results() {
        let sys = system();
        sys.install_result_cache(CacheConfig::default());
        let q = "SELECT name FROM crm.customers";
        sys.execute(q).unwrap();
        let text = sys.explain_analyze(q).unwrap();
        assert!(text.contains("[CACHED]"), "{text}");
        assert!(text.contains("served from cache"), "{text}");
        // A query the cache has not seen renders the normal operator tree.
        let text = sys
            .explain_analyze("SELECT id FROM crm.customers")
            .unwrap();
        assert!(!text.contains("[CACHED]"), "{text}");
        assert!(text.contains("act rows="), "{text}");
    }

    #[test]
    fn advisor_materializes_hot_fingerprints_and_annotates_plans() {
        let sys = system();
        assert!(sys.enable_advisor(AdvisorConfig {
            advise_every: 4,
            min_count: 2,
            ..AdvisorConfig::default()
        }));
        assert!(
            !sys.enable_advisor(AdvisorConfig::default()),
            "second enable must be rejected"
        );
        let q = "SELECT name FROM crm.customers";
        let baseline: Vec<Row> = sys.execute(q).unwrap().rows().unwrap().rows().to_vec();
        for _ in 0..3 {
            sys.execute(q).unwrap();
        }
        // The 4th statement crossed the cycle boundary: the hot
        // fingerprint is now materialized as a live IVM view.
        let installed = sys.advisor().unwrap().installed();
        assert_eq!(installed.len(), 1, "{}", sys.advisor_report());
        assert!(installed[0].name.starts_with("adv_"));
        let text = sys.explain(q).unwrap();
        assert!(text.contains("[ADVISED]"), "{text}");
        // Answers are unchanged, and the repeat ships nothing.
        let shipped = sys.federation().ledger().total().bytes;
        let out = sys.execute(q).unwrap();
        assert_eq!(out.rows().unwrap().rows(), &baseline[..]);
        assert_eq!(sys.federation().ledger().total().bytes, shipped);
        let snap = sys.metrics().snapshot();
        assert!(snap.counter("advisor.cycles") >= 1);
        assert_eq!(snap.counter("advisor.materialized"), 1);
        assert!(sys.advisor_report().contains("materialize adv_"));
    }

    #[test]
    fn advisor_replans_diverging_hub_joins_and_flags_them() {
        let clock = SimClock::new();
        let crm = Database::new("crm", clock.clone());
        let cschema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int).not_null(),
            Field::new("name", DataType::Str),
        ]));
        let ct = crm
            .create_table(TableDef::new("customers", cschema).with_primary_key(0))
            .unwrap();
        let sales = Database::new("sales", clock.clone());
        let oschema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int).not_null(),
            Field::new("customer_id", DataType::Int),
        ]));
        let ot = sales
            .create_table(TableDef::new("orders", oschema).with_primary_key(0))
            .unwrap();
        {
            let mut t = ct.write();
            t.insert(row![1i64, "alice"]).unwrap();
            t.insert(row![2i64, "bob"]).unwrap();
        }
        {
            let mut t = ot.write();
            for i in 0..10i64 {
                t.insert(row![i, i % 2 + 1]).unwrap();
            }
        }
        // Hub hash joins only: no bind joins, no assembly-site pushout.
        let sys = EiiSystem::new(clock).with_config(PlannerConfig {
            use_bind_joins: false,
            choose_assembly_site: false,
            ..PlannerConfig::optimized()
        });
        sys.add_source(
            Arc::new(RelationalConnector::new(crm)),
            LinkProfile::lan(),
            WireFormat::Native,
        )
        .unwrap();
        sys.add_source(
            Arc::new(RelationalConnector::new(sales)),
            LinkProfile::wan(),
            WireFormat::Native,
        )
        .unwrap();
        let q = "SELECT c.name FROM crm.customers c \
                 JOIN sales.orders o ON c.id = o.customer_id ORDER BY c.name";
        let baseline: Vec<Row> = sys.execute(q).unwrap().rows().unwrap().rows().to_vec();
        // Factor 1.0: every eligible join counts as diverged, so the
        // build side is re-issued as a binding-filtered fetch.
        sys.enable_advisor(AdvisorConfig {
            replan_factor: 1.0,
            advise_every: 1_000_000,
            ..AdvisorConfig::default()
        });
        let out = sys.execute(q).unwrap();
        assert_eq!(
            out.rows().unwrap().rows(),
            &baseline[..],
            "adaptation must preserve answers"
        );
        let text = sys.explain_analyze(q).unwrap();
        assert!(text.contains("[REPLANNED]"), "{text}");
        assert!(sys.metrics().snapshot().counter("advisor.replans") >= 1);
    }

    /// The shared-reference facade API covers the whole setup surface the
    /// removed `&mut self` mutators used to: sources, degradation policy,
    /// result cache, matviews, and federation tuning.
    #[test]
    fn facade_setup_api_covers_former_mutators() {
        let clock = SimClock::new();
        let crm = Database::new("crm", clock.clone());
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int).not_null(),
            Field::new("name", DataType::Str),
        ]));
        let t = crm
            .create_table(TableDef::new("customers", schema).with_primary_key(0))
            .unwrap();
        t.write().insert(row![1i64, "alice"]).unwrap();
        let sys = EiiSystem::new(clock).with_config(PlannerConfig::optimized());
        sys.add_source(
            Arc::new(RelationalConnector::new(crm)),
            LinkProfile::lan(),
            WireFormat::Native,
        )
        .unwrap();
        sys.set_degradation_policy(DegradationPolicy::Fail);
        sys.install_result_cache(CacheConfig::default());
        sys.define_matview(
            "all_customers",
            "SELECT * FROM crm.customers",
            RefreshPolicy::Manual,
        )
        .unwrap();
        sys.federation().set_scan_speed("crm", 0.001).unwrap();
        let out = sys.execute("SELECT name FROM crm.customers").unwrap();
        assert_eq!(out.rows().unwrap().num_rows(), 1);
    }
}
