//! Session handles and the concurrent query scheduler.
//!
//! A [`Session`] is a cheap per-client view over a shared
//! `Arc<EiiSystem>`: it carries the client's role, per-session overrides
//! (staleness budget, explain mode), an optional metrics label, and its
//! own last-trace slot, so concurrent clients never clobber each other's
//! observability. A [`QueryScheduler`] runs many sessions' statements
//! through the admission-controlled worker pool
//! ([`eii_exec::Scheduler`]), returning [`QueryTicket`] handles.

use std::sync::Arc;

use parking_lot::Mutex;

use eii_data::{CancelToken, Deadline, EiiError, Priority, Result};
use eii_exec::{
    AdmissionConfig, BrownoutConfig, JobOutput, QueryTicket, Scheduler, SchedulerStats,
    ShedDecision,
};
use eii_federation::RequestCtx;
use eii_obs::QueryTrace;
use eii_planner::{LogicalPlan, PlanBuilder};
use eii_sql::{parse_statement, Statement};

use crate::{EiiSystem, ExecOptions, ExecOutcome};

/// What a session does with queries: run them, or render their plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExplainMode {
    /// Execute normally.
    #[default]
    Off,
    /// Queries return `EXPLAIN` text instead of rows.
    Plan,
    /// Queries execute and return `EXPLAIN ANALYZE` text instead of rows.
    Analyze,
}

/// A per-client handle over a shared system; see the module docs.
///
/// Sessions are created with [`EiiSystem::session`] and configured with
/// the `with_*` builder methods. They are `Send + Sync`; each one keeps
/// its own trace slot.
pub struct Session {
    system: Arc<EiiSystem>,
    opts: ExecOptions,
    label: Option<String>,
    explain: ExplainMode,
    last_trace: Mutex<Option<Arc<QueryTrace>>>,
}

impl Session {
    /// Set the role access-controlled statements run as (default
    /// `public`).
    pub fn with_role(mut self, role: &str) -> Self {
        self.opts.role = role.to_string();
        self
    }

    /// Label this session's metrics: each execute bumps
    /// `session.<label>.queries` and observes `session.<label>.sim_ms`.
    /// The label is also stamped into query-log records and stored traces,
    /// so [`Session::last_stored_trace`] can find this session's traces in
    /// the shared store.
    pub fn with_label(mut self, label: &str) -> Self {
        self.label = Some(label.to_string());
        self.opts.session = Some(label.to_string());
        self
    }

    /// Override the semantic result cache's staleness budget for this
    /// session's queries (simulated ms; `0` refuses stale hits entirely).
    pub fn with_staleness_budget(mut self, budget_ms: i64) -> Self {
        self.opts.staleness_budget_ms = Some(budget_ms);
        self
    }

    /// Choose what this session's queries return (rows or plan text).
    pub fn with_explain_mode(mut self, mode: ExplainMode) -> Self {
        self.explain = mode;
        self
    }

    /// Grant every query of this session a simulated-time deadline: the
    /// query fails with a `deadline` error the moment its budget runs out,
    /// and the planner prefers materialized views that fit the budget.
    pub fn with_deadline_ms(mut self, budget_ms: i64) -> Self {
        self.opts.deadline_budget_ms = Some(budget_ms);
        self
    }

    /// Priority tier this session's work runs at under brownout load
    /// shedding (default [`Priority::Normal`]).
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.opts.priority = priority;
        self
    }

    /// Attach a cooperative cancellation token: tripping it stops this
    /// session's in-flight query at its next batch boundary.
    pub fn with_cancel_token(mut self, cancel: CancelToken) -> Self {
        self.opts.cancel = Some(cancel);
        self
    }

    /// The priority tier this session runs at.
    pub fn priority(&self) -> Priority {
        self.opts.priority
    }

    /// The role this session runs as.
    pub fn role(&self) -> &str {
        &self.opts.role
    }

    /// The shared system this session talks to.
    pub fn system(&self) -> &Arc<EiiSystem> {
        &self.system
    }

    /// Execute one SQL statement under this session's options. Honors the
    /// session's [`ExplainMode`] for queries; non-query statements always
    /// execute normally.
    pub fn execute(&self, sql: &str) -> Result<ExecOutcome> {
        let explain_query = self.explain != ExplainMode::Off
            && matches!(parse_statement(sql), Ok(Statement::Query(_)));
        let outcome = if explain_query {
            let text = match self.explain {
                ExplainMode::Plan => self.system.explain(sql),
                _ => self.system.explain_analyze(sql),
            };
            text.map(ExecOutcome::Explained)
        } else {
            let (outcome, trace) = self.system.execute_with_trace_shared(sql, &self.opts);
            *self.last_trace.lock() = Some(trace);
            outcome
        };
        if let Some(label) = &self.label {
            let metrics = self.system.metrics();
            metrics.add(&format!("session.{label}.queries"), 1);
            if let Ok(out) = &outcome {
                if let Some(r) = out.try_query_result() {
                    metrics.observe(&format!("session.{label}.sim_ms"), r.cost.sim_ms);
                }
            }
        }
        outcome
    }

    /// The trace of this session's most recent executed statement (not
    /// shared with other sessions).
    pub fn last_trace(&self) -> Option<QueryTrace> {
        self.last_trace.lock().as_deref().cloned()
    }

    /// This session's most recent trace *retained by the shared trace
    /// store* (sampling may skip unremarkable statements). Requires a
    /// label ([`Session::with_label`]); unlabeled sessions always get
    /// `None` — use [`Session::last_trace`] for the unconditional copy.
    pub fn last_stored_trace(&self) -> Option<eii_obs::StoredTrace> {
        self.label
            .as_deref()
            .and_then(|label| self.system.trace_store().latest_for_session(label))
    }
}

/// Runs statements through the admission-controlled worker pool. Create
/// one with [`EiiSystem::scheduler`]; submit SQL and join the returned
/// [`QueryTicket`]s. Per-source permits keep one slow source from
/// starving the pool (composing with the federation's circuit breakers),
/// and the stats expose throughput and latency on the deterministic
/// virtual timeline.
pub struct QueryScheduler {
    system: Arc<EiiSystem>,
    pool: Scheduler<ExecOutcome>,
}

impl QueryScheduler {
    /// Submit one statement; always accepted (admission gates execution).
    pub fn submit(&self, sql: &str, role: &str) -> QueryTicket<ExecOutcome> {
        let (sources, work) = self.job(sql, ExecOptions::for_role(role));
        self.pool.submit(sources, work)
    }

    /// Submit one statement only if the admission controller has capacity
    /// right now; otherwise reject with an `Execution` error.
    pub fn try_submit(&self, sql: &str, role: &str) -> Result<QueryTicket<ExecOutcome>> {
        let (sources, work) = self.job(sql, ExecOptions::for_role(role));
        self.pool.try_submit(sources, work)
    }

    /// Submit one statement under full [`ExecOptions`] and a priority tier,
    /// consulting the brownout controller (when this scheduler was built
    /// with one): `Low` work may be turned away with a typed `shed` error,
    /// `Normal` work may be downgraded to partial results, and the
    /// returned ticket's [`QueryTicket::cancel`] stops even a *running*
    /// query cooperatively — the ticket and the query share one
    /// [`CancelToken`].
    pub fn submit_prioritized(
        &self,
        sql: &str,
        opts: &ExecOptions,
    ) -> Result<(QueryTicket<ExecOutcome>, ShedDecision)> {
        let mut opts = opts.clone();
        let cancel = opts.cancel.get_or_insert_with(CancelToken::new).clone();
        let priority = opts.priority;
        let metrics = self.system.metrics();
        let decision = self.pool.admit(priority).inspect_err(|err| {
            if err.kind() == "shed" {
                metrics.inc(&format!("shed.rejected.{}", priority.as_str()));
                self.system.record_shed(sql, &opts);
            }
        })?;
        if decision == ShedDecision::Degrade {
            opts.brownout_degraded = true;
            metrics.inc(&format!("shed.degraded.{}", priority.as_str()));
        }
        let (sources, work) = self.job(sql, opts);
        Ok((
            self.pool.submit_admitted(sources, priority, cancel, work),
            decision,
        ))
    }

    /// Submit a materialized-view refresh through the same
    /// admission-controlled pool as queries. The view's base sources claim
    /// per-source permits (a refresh competes fairly with reads against
    /// the same backends), the priority tier consults the brownout
    /// controller, and the options' deadline budget and cancel token are
    /// checked between per-table maintenance stages — an overloaded
    /// system sheds or cuts short refreshes instead of queueing them
    /// forever. Delta-maintained views refresh in O(delta); others fully
    /// recompute.
    pub fn submit_refresh(
        &self,
        view: &str,
        opts: &ExecOptions,
    ) -> Result<(QueryTicket<ExecOutcome>, ShedDecision)> {
        let mgr = self
            .system
            .matviews()
            .ok_or_else(|| EiiError::NotFound(format!("materialized view {view}")))?;
        let mut sources: Vec<String> = mgr
            .base_tables(view)?
            .iter()
            .filter_map(|t| t.split_once('.').map(|(s, _)| s.to_string()))
            .collect();
        sources.sort();
        sources.dedup();
        let mut opts = opts.clone();
        let cancel = opts.cancel.get_or_insert_with(CancelToken::new).clone();
        let priority = opts.priority;
        let metrics = self.system.metrics();
        let decision = self.pool.admit(priority).inspect_err(|err| {
            if err.kind() == "shed" {
                metrics.inc(&format!("shed.rejected.{}", priority.as_str()));
            }
        })?;
        let system = Arc::clone(&self.system);
        let view = view.to_string();
        let ctx_cancel = cancel.clone();
        let work = move || {
            let mut ctx = RequestCtx::new().with_cancel(ctx_cancel);
            if let Some(budget) = opts.deadline_budget_ms {
                ctx = ctx.with_deadline(Deadline::new(system.clock().clone(), budget));
            }
            let mgr = system
                .matviews()
                .ok_or_else(|| EiiError::NotFound(format!("materialized view {view}")))?;
            let sim_ms = mgr.refresh_with_ctx(&view, &ctx)?;
            system.refresh_cached_for(&view);
            Ok(JobOutput {
                value: ExecOutcome::Refreshed { view, sim_ms },
                sim_ms,
            })
        };
        Ok((
            self.pool.submit_admitted(sources, priority, cancel, work),
            decision,
        ))
    }

    fn job(
        &self,
        sql: &str,
        opts: ExecOptions,
    ) -> (
        Vec<String>,
        impl FnOnce() -> Result<JobOutput<ExecOutcome>> + Send + 'static,
    ) {
        let sources = base_sources(&self.system, sql);
        let system = Arc::clone(&self.system);
        let sql = sql.to_string();
        let work = move || {
            let outcome = system.execute_with(&sql, &opts)?;
            let sim_ms = outcome
                .try_query_result()
                .map_or(0.0, |r| r.cost.sim_ms);
            Ok(JobOutput {
                value: outcome,
                sim_ms,
            })
        };
        (sources, work)
    }

    /// The admission configuration the pool runs under.
    pub fn config(&self) -> AdmissionConfig {
        self.pool.config()
    }

    /// Point-in-time scheduler statistics (virtual timeline).
    pub fn stats(&self) -> SchedulerStats {
        self.pool.stats()
    }

    /// Drain the queue, stop the workers, and return the final
    /// statistics.
    pub fn finish(self) -> SchedulerStats {
        self.pool.join()
    }
}

impl EiiSystem {
    /// A new session over this system with default options (`public`
    /// role, no overrides).
    pub fn session(self: &Arc<Self>) -> Session {
        Session {
            system: Arc::clone(self),
            opts: ExecOptions::default(),
            label: None,
            explain: ExplainMode::Off,
            last_trace: Mutex::new(None),
        }
    }

    /// A concurrent query scheduler over this system; see
    /// [`QueryScheduler`].
    pub fn scheduler(self: &Arc<Self>, config: AdmissionConfig) -> QueryScheduler {
        QueryScheduler {
            system: Arc::clone(self),
            pool: Scheduler::new(config),
        }
    }

    /// A scheduler with brownout load shedding: under sustained overload the
    /// admission token bucket sheds `Low`-priority work with a typed `shed`
    /// error and downgrades `Normal` work to partial results, keeping
    /// `High`-priority deadlines intact.
    pub fn scheduler_with_brownout(
        self: &Arc<Self>,
        config: AdmissionConfig,
        brownout: BrownoutConfig,
    ) -> QueryScheduler {
        QueryScheduler {
            system: Arc::clone(self),
            pool: Scheduler::new(config).with_brownout(brownout),
        }
    }
}

/// Every distinct source a statement's plan scans — what the admission
/// controller counts against per-source permits. Statements that don't
/// plan (or aren't queries) claim no permits.
fn base_sources(system: &EiiSystem, sql: &str) -> Vec<String> {
    let Ok(Statement::Query(q)) = parse_statement(sql) else {
        return Vec::new();
    };
    let Ok(plan) = PlanBuilder::new(system.catalog(), system.federation()).build(&q) else {
        return Vec::new();
    };
    fn walk(plan: &LogicalPlan, out: &mut Vec<String>) {
        if let LogicalPlan::SourceScan { source, .. } = plan {
            if !out.iter().any(|s| s == source) {
                out.push(source.clone());
            }
        }
        for child in plan.children() {
            walk(child, out);
        }
    }
    let mut out = Vec::new();
    walk(&plan, &mut out);
    out
}
