//! Session handles and the concurrent query scheduler.
//!
//! A [`Session`] is a cheap per-client view over a shared
//! `Arc<EiiSystem>`: it carries the client's role, per-session overrides
//! (staleness budget, explain mode), an optional metrics label, and its
//! own last-trace slot, so concurrent clients never clobber each other's
//! observability. A [`QueryScheduler`] runs many sessions' statements
//! through the admission-controlled worker pool
//! ([`eii_exec::Scheduler`]), returning [`QueryTicket`] handles.

use std::sync::Arc;

use parking_lot::Mutex;

use eii_data::Result;
use eii_exec::{AdmissionConfig, JobOutput, QueryTicket, Scheduler, SchedulerStats};
use eii_obs::QueryTrace;
use eii_planner::{LogicalPlan, PlanBuilder};
use eii_sql::{parse_statement, Statement};

use crate::{EiiSystem, ExecOptions, ExecOutcome};

/// What a session does with queries: run them, or render their plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExplainMode {
    /// Execute normally.
    #[default]
    Off,
    /// Queries return `EXPLAIN` text instead of rows.
    Plan,
    /// Queries execute and return `EXPLAIN ANALYZE` text instead of rows.
    Analyze,
}

/// A per-client handle over a shared system; see the module docs.
///
/// Sessions are created with [`EiiSystem::session`] and configured with
/// the `with_*` builder methods. They are `Send + Sync`; each one keeps
/// its own trace slot.
pub struct Session {
    system: Arc<EiiSystem>,
    opts: ExecOptions,
    label: Option<String>,
    explain: ExplainMode,
    last_trace: Mutex<Option<QueryTrace>>,
}

impl Session {
    /// Set the role access-controlled statements run as (default
    /// `public`).
    pub fn with_role(mut self, role: &str) -> Self {
        self.opts.role = role.to_string();
        self
    }

    /// Label this session's metrics: each execute bumps
    /// `session.<label>.queries` and observes `session.<label>.sim_ms`.
    pub fn with_label(mut self, label: &str) -> Self {
        self.label = Some(label.to_string());
        self
    }

    /// Override the semantic result cache's staleness budget for this
    /// session's queries (simulated ms; `0` refuses stale hits entirely).
    pub fn with_staleness_budget(mut self, budget_ms: i64) -> Self {
        self.opts.staleness_budget_ms = Some(budget_ms);
        self
    }

    /// Choose what this session's queries return (rows or plan text).
    pub fn with_explain_mode(mut self, mode: ExplainMode) -> Self {
        self.explain = mode;
        self
    }

    /// The role this session runs as.
    pub fn role(&self) -> &str {
        &self.opts.role
    }

    /// The shared system this session talks to.
    pub fn system(&self) -> &Arc<EiiSystem> {
        &self.system
    }

    /// Execute one SQL statement under this session's options. Honors the
    /// session's [`ExplainMode`] for queries; non-query statements always
    /// execute normally.
    pub fn execute(&self, sql: &str) -> Result<ExecOutcome> {
        let explain_query = self.explain != ExplainMode::Off
            && matches!(parse_statement(sql), Ok(Statement::Query(_)));
        let outcome = if explain_query {
            let text = match self.explain {
                ExplainMode::Plan => self.system.explain(sql),
                _ => self.system.explain_analyze(sql),
            };
            text.map(ExecOutcome::Explained)
        } else {
            let (outcome, trace) = self.system.execute_with_trace(sql, &self.opts);
            *self.last_trace.lock() = Some(trace);
            outcome
        };
        if let Some(label) = &self.label {
            let metrics = self.system.metrics();
            metrics.add(&format!("session.{label}.queries"), 1);
            if let Ok(out) = &outcome {
                if let Some(r) = out.try_query_result() {
                    metrics.observe(&format!("session.{label}.sim_ms"), r.cost.sim_ms);
                }
            }
        }
        outcome
    }

    /// The trace of this session's most recent executed statement (not
    /// shared with other sessions).
    pub fn last_trace(&self) -> Option<QueryTrace> {
        self.last_trace.lock().clone()
    }
}

/// Runs statements through the admission-controlled worker pool. Create
/// one with [`EiiSystem::scheduler`]; submit SQL and join the returned
/// [`QueryTicket`]s. Per-source permits keep one slow source from
/// starving the pool (composing with the federation's circuit breakers),
/// and the stats expose throughput and latency on the deterministic
/// virtual timeline.
pub struct QueryScheduler {
    system: Arc<EiiSystem>,
    pool: Scheduler<ExecOutcome>,
}

impl QueryScheduler {
    /// Submit one statement; always accepted (admission gates execution).
    pub fn submit(&self, sql: &str, role: &str) -> QueryTicket<ExecOutcome> {
        let (sources, work) = self.job(sql, role);
        self.pool.submit(sources, work)
    }

    /// Submit one statement only if the admission controller has capacity
    /// right now; otherwise reject with an `Execution` error.
    pub fn try_submit(&self, sql: &str, role: &str) -> Result<QueryTicket<ExecOutcome>> {
        let (sources, work) = self.job(sql, role);
        self.pool.try_submit(sources, work)
    }

    fn job(
        &self,
        sql: &str,
        role: &str,
    ) -> (
        Vec<String>,
        impl FnOnce() -> Result<JobOutput<ExecOutcome>> + Send + 'static,
    ) {
        let sources = base_sources(&self.system, sql);
        let system = Arc::clone(&self.system);
        let sql = sql.to_string();
        let role = role.to_string();
        let work = move || {
            let outcome = system.execute_as(&sql, &role)?;
            let sim_ms = outcome
                .try_query_result()
                .map_or(0.0, |r| r.cost.sim_ms);
            Ok(JobOutput {
                value: outcome,
                sim_ms,
            })
        };
        (sources, work)
    }

    /// The admission configuration the pool runs under.
    pub fn config(&self) -> AdmissionConfig {
        self.pool.config()
    }

    /// Point-in-time scheduler statistics (virtual timeline).
    pub fn stats(&self) -> SchedulerStats {
        self.pool.stats()
    }

    /// Drain the queue, stop the workers, and return the final
    /// statistics.
    pub fn finish(self) -> SchedulerStats {
        self.pool.join()
    }
}

impl EiiSystem {
    /// A new session over this system with default options (`public`
    /// role, no overrides).
    pub fn session(self: &Arc<Self>) -> Session {
        Session {
            system: Arc::clone(self),
            opts: ExecOptions::default(),
            label: None,
            explain: ExplainMode::Off,
            last_trace: Mutex::new(None),
        }
    }

    /// A concurrent query scheduler over this system; see
    /// [`QueryScheduler`].
    pub fn scheduler(self: &Arc<Self>, config: AdmissionConfig) -> QueryScheduler {
        QueryScheduler {
            system: Arc::clone(self),
            pool: Scheduler::new(config),
        }
    }
}

/// Every distinct source a statement's plan scans — what the admission
/// controller counts against per-source permits. Statements that don't
/// plan (or aren't queries) claim no permits.
fn base_sources(system: &EiiSystem, sql: &str) -> Vec<String> {
    let Ok(Statement::Query(q)) = parse_statement(sql) else {
        return Vec::new();
    };
    let Ok(plan) = PlanBuilder::new(system.catalog(), system.federation()).build(&q) else {
        return Vec::new();
    };
    fn walk(plan: &LogicalPlan, out: &mut Vec<String>) {
        if let LogicalPlan::SourceScan { source, .. } = plan {
            if !out.iter().any(|s| s == source) {
                out.push(source.clone());
            }
        }
        for child in plan.children() {
            walk(child, out);
        }
    }
    let mut out = Vec::new();
    walk(&plan, &mut out);
    out
}
