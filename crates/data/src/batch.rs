//! Batches: a schema plus a set of rows — the unit of data exchange between
//! operators, wrappers, and the assembly site.

use std::fmt;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::error::{EiiError, Result};
use crate::row::Row;
use crate::schema::SchemaRef;
use crate::value::Value;

/// A schema-tagged collection of rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Batch {
    schema: SchemaRef,
    rows: Vec<Row>,
}

impl Batch {
    /// Build a batch, validating row widths against the schema.
    pub fn try_new(schema: SchemaRef, rows: Vec<Row>) -> Result<Self> {
        if let Some(bad) = rows.iter().find(|r| r.len() != schema.len()) {
            return Err(EiiError::Internal(format!(
                "row width {} does not match schema width {}",
                bad.len(),
                schema.len()
            )));
        }
        Ok(Batch { schema, rows })
    }

    /// Build without validation (hot paths that construct rows from the same
    /// schema). Debug-asserts widths.
    pub fn new(schema: SchemaRef, rows: Vec<Row>) -> Self {
        debug_assert!(rows.iter().all(|r| r.len() == schema.len()));
        Batch { schema, rows }
    }

    /// An empty batch of the given schema.
    pub fn empty(schema: SchemaRef) -> Self {
        Batch {
            schema,
            rows: Vec::new(),
        }
    }

    /// The governing schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Rows in order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Consume into rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Total native wire size of all rows plus per-row schema overhead.
    pub fn wire_size(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.wire_size() + self.schema.row_overhead())
            .sum()
    }

    /// Total wire size when shipped as XML (see [`Row::xml_wire_size`]).
    pub fn xml_wire_size(&self) -> usize {
        let names: Vec<&str> = self
            .schema
            .fields()
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        let doc_tags = "<rows></rows>".len();
        doc_tags
            + self
                .rows
                .iter()
                .map(|r| r.xml_wire_size(&names))
                .sum::<usize>()
    }

    /// Column values at position `col` across all rows.
    pub fn column(&self, col: usize) -> impl Iterator<Item = &Value> + '_ {
        self.rows.iter().map(move |r| r.get(col))
    }

    /// Sort rows by the given column positions (ascending flags parallel).
    pub fn sort_by(&mut self, keys: &[(usize, bool)]) {
        self.rows.sort_by(|a, b| {
            for &(col, asc) in keys {
                let ord = a.get(col).cmp(b.get(col));
                let ord = if asc { ord } else { ord.reverse() };
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    /// Render as an aligned ASCII table — the experiment harness's output
    /// format.
    pub fn to_table(&self) -> String {
        let headers: Vec<String> = self
            .schema
            .fields()
            .iter()
            .map(|f| f.qualified_name())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.values().iter().map(Value::to_string).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (h, w) in headers.iter().zip(&widths) {
            let _ = write!(out, " {h:<w$} |");
        }
        out.push('\n');
        sep(&mut out);
        for row in &rendered {
            out.push('|');
            for (cell, w) in row.iter().zip(&widths) {
                let _ = write!(out, " {cell:<w$} |");
            }
            out.push('\n');
        }
        sep(&mut out);
        out
    }
}

impl fmt::Display for Batch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::{DataType, Field, Schema};
    use std::sync::Arc;

    fn schema() -> SchemaRef {
        Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("name", DataType::Str),
        ]))
    }

    #[test]
    fn try_new_validates_width() {
        let err = Batch::try_new(schema(), vec![row![1i64]]).unwrap_err();
        assert_eq!(err.kind(), "internal");
        let ok = Batch::try_new(schema(), vec![row![1i64, "a"]]).unwrap();
        assert_eq!(ok.num_rows(), 1);
    }

    #[test]
    fn sort_multi_key() {
        let mut b = Batch::new(
            schema(),
            vec![row![2i64, "b"], row![1i64, "z"], row![1i64, "a"]],
        );
        b.sort_by(&[(0, true), (1, false)]);
        assert_eq!(b.rows()[0], row![1i64, "z"]);
        assert_eq!(b.rows()[1], row![1i64, "a"]);
        assert_eq!(b.rows()[2], row![2i64, "b"]);
    }

    #[test]
    fn ascii_table_contains_headers_and_cells() {
        let b = Batch::new(schema(), vec![row![1i64, "alice"]]);
        let t = b.to_table();
        assert!(t.contains("id"));
        assert!(t.contains("alice"));
        assert!(t.starts_with('+'));
    }

    #[test]
    fn xml_size_exceeds_native() {
        let b = Batch::new(schema(), vec![row![1i64, "alice"], row![2i64, "bob"]]);
        assert!(b.xml_wire_size() > b.wire_size());
    }

    #[test]
    fn column_iterates_single_column() {
        let b = Batch::new(schema(), vec![row![1i64, "a"], row![2i64, "b"]]);
        let ids: Vec<i64> = b.column(0).map(|v| v.as_int().unwrap()).collect();
        assert_eq!(ids, vec![1, 2]);
    }
}
