//! A deterministic simulated clock.
//!
//! The warehouse (staleness), materialized views (refresh intervals), the
//! network simulator (latency), and the EAI engine (long-running processes)
//! all tell time through [`SimClock`] so experiments are reproducible and do
//! not depend on wall-clock scheduling. Time is measured in *simulated
//! milliseconds* from an arbitrary epoch.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// A shared logical clock. Cloning yields a handle onto the same clock.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_ms: Arc<AtomicI64>,
}

impl SimClock {
    /// A clock starting at time 0.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// A clock starting at `start_ms`.
    pub fn starting_at(start_ms: i64) -> Self {
        let c = SimClock::new();
        c.now_ms.store(start_ms, Ordering::SeqCst);
        c
    }

    /// Current simulated time in milliseconds.
    pub fn now_ms(&self) -> i64 {
        self.now_ms.load(Ordering::SeqCst)
    }

    /// Advance the clock by `delta_ms` (callers simulate elapsed work) and
    /// return the new time.
    pub fn advance_ms(&self, delta_ms: i64) -> i64 {
        debug_assert!(delta_ms >= 0, "time cannot run backwards");
        self.now_ms.fetch_add(delta_ms, Ordering::SeqCst) + delta_ms
    }

    /// Move the clock to at least `target_ms` (no-op if already past).
    pub fn advance_to(&self, target_ms: i64) -> i64 {
        self.now_ms.fetch_max(target_ms, Ordering::SeqCst).max(target_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = SimClock::new();
        assert_eq!(c.now_ms(), 0);
        assert_eq!(c.advance_ms(10), 10);
        assert_eq!(c.advance_ms(5), 15);
        assert_eq!(c.now_ms(), 15);
    }

    #[test]
    fn handles_share_state() {
        let a = SimClock::starting_at(100);
        let b = a.clone();
        a.advance_ms(50);
        assert_eq!(b.now_ms(), 150);
    }

    #[test]
    fn advance_to_is_monotone() {
        let c = SimClock::new();
        assert_eq!(c.advance_to(30), 30);
        assert_eq!(c.advance_to(10), 30, "advance_to never rewinds");
        assert_eq!(c.now_ms(), 30);
    }

    #[test]
    fn concurrent_advances_accumulate() {
        let c = SimClock::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.advance_ms(1);
                    }
                });
            }
        });
        assert_eq!(c.now_ms(), 4000);
    }
}
