//! Columnar batches: typed column vectors, null bitmaps, and selection
//! vectors — the batch-first data model behind the vectorized executor.
//!
//! [`ColumnarBatch`] lives *alongside* the row model, not instead of it: the
//! adapter edges (connectors, result cache, IVM change logs, `ExecOutcome`)
//! keep exchanging [`Batch`]es of [`Row`]s, and the executor pivots to
//! columns once per scan with [`ColumnarBatch::from_batch`] and back once per
//! query with [`ColumnarBatch::to_batch`]. In between, operators pass columns
//! and *selection vectors* (index lists) so a filter costs one `Vec<u32>`
//! instead of materializing rows.
//!
//! Layout invariants:
//!
//! - every column of a batch has the same *physical* length;
//! - `sel`, when present, lists physical indices in logical row order
//!   (duplicates allowed — a join probe may select a build row many times);
//! - null bitmaps travel with the typed vectors; the value slot under a null
//!   is an arbitrary placeholder and must never be read;
//! - a column whose values do not fit one [`Value`] variant degrades to
//!   [`ColumnData::Mixed`] (heterogeneous, schema-less sources) with nulls
//!   stored inline — correctness never depends on a column being typed.

use std::sync::Arc;

use crate::batch::Batch;
use crate::row::Row;
use crate::schema::{DataType, SchemaRef};
use crate::value::Value;

/// A fixed-length validity bitmap: bit set ⇒ value present, clear ⇒ NULL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NullBitmap {
    words: Vec<u64>,
    len: usize,
}

impl NullBitmap {
    /// An all-valid bitmap of `len` bits.
    pub fn new_valid(len: usize) -> Self {
        NullBitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mark position `i` as NULL.
    pub fn set_null(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// True iff position `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) == 0
    }

    /// Number of NULL positions.
    pub fn null_count(&self) -> usize {
        let set: usize = self.words.iter().map(|w| w.count_ones() as usize).sum();
        // Trailing bits past `len` are left set by construction.
        let padding = self.words.len() * 64 - self.len;
        self.len - (set - padding)
    }

    /// True iff no position is NULL.
    pub fn all_valid(&self) -> bool {
        self.null_count() == 0
    }
}

/// The typed storage of one column: one vector per [`Value`] variant, plus a
/// `Mixed` escape hatch for heterogeneous columns.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Booleans.
    Bool(Vec<bool>),
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Strings; `Arc<str>` keeps gathers cheap.
    Str(Vec<Arc<str>>),
    /// Simulated-clock timestamps.
    Timestamp(Vec<i64>),
    /// Heterogeneous values (schema-less sources); NULLs are inline
    /// [`Value::Null`]s and the sibling bitmap is ignored.
    Mixed(Vec<Value>),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Timestamp(v) => v.len(),
            ColumnData::Mixed(v) => v.len(),
        }
    }
}

/// One column: typed data plus an optional null bitmap (`None` ⇒ no NULLs,
/// except for `Mixed` where NULLs are inline).
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    data: ColumnData,
    nulls: Option<NullBitmap>,
}

impl Column {
    /// Build from parts. The bitmap, when present, must match the data length.
    pub fn new(data: ColumnData, nulls: Option<NullBitmap>) -> Self {
        debug_assert!(nulls.as_ref().is_none_or(|n| n.len() == data.len()));
        Column { data, nulls }
    }

    /// Build a typed column from scalar values, degrading to `Mixed` when a
    /// non-null value does not fit `ty`.
    pub fn from_values(values: &[Value], ty: DataType) -> Self {
        let fits = values.iter().all(|v| match v {
            Value::Null => true,
            other => other.data_type() == Some(ty),
        });
        if !fits {
            return Column {
                data: ColumnData::Mixed(values.to_vec()),
                nulls: None,
            };
        }
        let mut nulls = NullBitmap::new_valid(values.len());
        let mut any_null = false;
        macro_rules! pack {
            ($variant:ident, $default:expr, $extract:expr) => {{
                let data: Vec<_> = values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| match v {
                        Value::Null => {
                            nulls.set_null(i);
                            any_null = true;
                            $default
                        }
                        #[allow(clippy::redundant_closure_call)]
                        other => $extract(other),
                    })
                    .collect();
                ColumnData::$variant(data)
            }};
        }
        let data = match ty {
            DataType::Bool => pack!(Bool, false, |v: &Value| v.as_bool().unwrap()),
            DataType::Int => pack!(Int, 0i64, |v: &Value| v.as_int().unwrap()),
            DataType::Float => pack!(Float, 0.0f64, |v: &Value| v.as_float().unwrap()),
            DataType::Str => pack!(Str, Arc::from(""), |v: &Value| match v {
                Value::Str(s) => Arc::clone(s),
                _ => unreachable!("type checked above"),
            }),
            DataType::Timestamp => pack!(Timestamp, 0i64, |v: &Value| v.as_int().unwrap()),
        };
        Column {
            data,
            nulls: any_null.then_some(nulls),
        }
    }

    /// A column of `len` copies of one scalar (literal broadcast).
    pub fn broadcast(value: &Value, len: usize) -> Self {
        match value {
            Value::Null => {
                let mut nulls = NullBitmap::new_valid(len);
                for i in 0..len {
                    nulls.set_null(i);
                }
                Column {
                    data: ColumnData::Int(vec![0; len]),
                    nulls: Some(nulls),
                }
            }
            Value::Bool(b) => Column::new(ColumnData::Bool(vec![*b; len]), None),
            Value::Int(i) => Column::new(ColumnData::Int(vec![*i; len]), None),
            Value::Float(f) => Column::new(ColumnData::Float(vec![*f; len]), None),
            Value::Str(s) => Column::new(ColumnData::Str(vec![Arc::clone(s); len]), None),
            Value::Timestamp(t) => Column::new(ColumnData::Timestamp(vec![*t; len]), None),
        }
    }

    /// Physical length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the column holds zero values.
    pub fn is_empty(&self) -> bool {
        self.data.len() == 0
    }

    /// The typed storage.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The null bitmap, if any position may be NULL (`Mixed` stores NULLs
    /// inline instead).
    pub fn nulls(&self) -> Option<&NullBitmap> {
        self.nulls.as_ref()
    }

    /// True iff position `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        if let ColumnData::Mixed(v) = &self.data {
            return v[i].is_null();
        }
        self.nulls.as_ref().is_some_and(|n| n.is_null(i))
    }

    /// True when no position is NULL.
    pub fn no_nulls(&self) -> bool {
        match &self.data {
            ColumnData::Mixed(v) => v.iter().all(|x| !x.is_null()),
            _ => self.nulls.as_ref().is_none_or(NullBitmap::all_valid),
        }
    }

    /// The scalar at position `i` (clones `Arc` for strings).
    #[inline]
    pub fn value(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Str(v) => Value::Str(Arc::clone(&v[i])),
            ColumnData::Timestamp(v) => Value::Timestamp(v[i]),
            ColumnData::Mixed(v) => v[i].clone(),
        }
    }

    /// The integer vector, when this column is typed `Int`.
    pub fn as_ints(&self) -> Option<&[i64]> {
        match &self.data {
            ColumnData::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The float vector, when this column is typed `Float`.
    pub fn as_floats(&self) -> Option<&[f64]> {
        match &self.data {
            ColumnData::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The bool vector, when this column is typed `Bool`.
    pub fn as_bools(&self) -> Option<&[bool]> {
        match &self.data {
            ColumnData::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// The string vector, when this column is typed `Str`.
    pub fn as_strs(&self) -> Option<&[Arc<str>]> {
        match &self.data {
            ColumnData::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Copy out the positions in `sel`, producing a compact column.
    pub fn gather(&self, sel: &[u32]) -> Column {
        macro_rules! take {
            ($variant:ident, $v:expr) => {
                ColumnData::$variant(sel.iter().map(|&i| $v[i as usize].clone()).collect())
            };
        }
        let data = match &self.data {
            ColumnData::Bool(v) => take!(Bool, v),
            ColumnData::Int(v) => take!(Int, v),
            ColumnData::Float(v) => take!(Float, v),
            ColumnData::Str(v) => take!(Str, v),
            ColumnData::Timestamp(v) => take!(Timestamp, v),
            ColumnData::Mixed(v) => take!(Mixed, v),
        };
        let nulls = self.nulls.as_ref().map(|old| {
            let mut n = NullBitmap::new_valid(sel.len());
            for (out, &i) in sel.iter().enumerate() {
                if old.is_null(i as usize) {
                    n.set_null(out);
                }
            }
            n
        });
        Column::new(data, nulls)
    }

    /// [`Self::gather`] with an absent-row sentinel: positions equal to
    /// `u32::MAX` come out NULL (outer-join null extension).
    pub fn gather_opt(&self, sel: &[u32]) -> Column {
        if !sel.contains(&u32::MAX) {
            return self.gather(sel);
        }
        let values: Vec<Value> = sel
            .iter()
            .map(|&i| {
                if i == u32::MAX {
                    Value::Null
                } else {
                    self.value(i as usize)
                }
            })
            .collect();
        Column::new(ColumnData::Mixed(values), None)
    }
}

/// A columnar batch: a schema, one [`Column`] per field (shared via `Arc` so
/// projections and renames are free), and an optional selection vector naming
/// the live rows.
#[derive(Debug, Clone)]
pub struct ColumnarBatch {
    schema: SchemaRef,
    columns: Vec<Arc<Column>>,
    /// Physical row count (columns may be absent for zero-column schemas).
    base_len: usize,
    /// Logical-order list of live physical indices; `None` ⇒ all rows live.
    sel: Option<Arc<Vec<u32>>>,
}

impl ColumnarBatch {
    /// Build from compact parts (no selection).
    pub fn new(schema: SchemaRef, columns: Vec<Arc<Column>>, base_len: usize) -> Self {
        debug_assert_eq!(columns.len(), schema.len());
        debug_assert!(columns.iter().all(|c| c.len() == base_len));
        ColumnarBatch {
            schema,
            columns,
            base_len,
            sel: None,
        }
    }

    /// An empty batch of the given schema.
    pub fn empty(schema: SchemaRef) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Arc::new(Column::from_values(&[], f.data_type)))
            .collect();
        ColumnarBatch {
            schema,
            columns,
            base_len: 0,
            sel: None,
        }
    }

    /// Pivot a row batch into columns. Each field gets a typed vector per its
    /// declared [`DataType`]; columns whose values disagree with the schema
    /// degrade to [`ColumnData::Mixed`].
    pub fn from_batch(batch: &Batch) -> Self {
        let schema = Arc::clone(batch.schema());
        let rows = batch.rows();
        let columns = schema
            .fields()
            .iter()
            .enumerate()
            .map(|(c, f)| {
                let values: Vec<Value> = rows.iter().map(|r| r.get(c).clone()).collect();
                Arc::new(Column::from_values(&values, f.data_type))
            })
            .collect();
        ColumnarBatch {
            schema,
            columns,
            base_len: rows.len(),
            sel: None,
        }
    }

    /// Pivot back to rows, applying the selection (logical order).
    pub fn to_batch(&self) -> Batch {
        let n = self.num_rows();
        let mut rows = Vec::with_capacity(n);
        for logical in 0..n {
            let phys = self.physical_index(logical);
            let values = self.columns.iter().map(|c| c.value(phys)).collect();
            rows.push(Row::new(values));
        }
        Batch::new(Arc::clone(&self.schema), rows)
    }

    /// The governing schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Re-tag with a different schema of the same width (Rename).
    pub fn with_schema(mut self, schema: SchemaRef) -> Self {
        debug_assert_eq!(schema.len(), self.schema.len());
        self.schema = schema;
        self
    }

    /// Logical (selected) row count.
    pub fn num_rows(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.base_len,
        }
    }

    /// True when no rows are live.
    pub fn is_empty(&self) -> bool {
        self.num_rows() == 0
    }

    /// Physical row count of the backing columns.
    pub fn base_len(&self) -> usize {
        self.base_len
    }

    /// The selection vector, when one is active.
    pub fn selection(&self) -> Option<&[u32]> {
        self.sel.as_deref().map(Vec::as_slice)
    }

    /// Column `i` (physical layout; index through [`Self::physical_index`]).
    pub fn column(&self, i: usize) -> &Arc<Column> {
        &self.columns[i]
    }

    /// All columns.
    pub fn columns(&self) -> &[Arc<Column>] {
        &self.columns
    }

    /// Map a logical row to its physical index.
    #[inline]
    pub fn physical_index(&self, logical: usize) -> usize {
        match &self.sel {
            Some(s) => s[logical] as usize,
            None => logical,
        }
    }

    /// The scalar at (logical row, column).
    pub fn value_at(&self, logical: usize, col: usize) -> Value {
        self.columns[col].value(self.physical_index(logical))
    }

    /// Materialize one logical row.
    pub fn row(&self, logical: usize) -> Row {
        let phys = self.physical_index(logical);
        Row::new(self.columns.iter().map(|c| c.value(phys)).collect())
    }

    /// Restrict to the given logical rows. `keep` holds *logical* indices of
    /// `self` in the new order; composition with an existing selection is
    /// handled here.
    pub fn select(&self, keep: Vec<u32>) -> Self {
        let sel = match &self.sel {
            Some(old) => keep.into_iter().map(|i| old[i as usize]).collect(),
            None => keep,
        };
        ColumnarBatch {
            schema: Arc::clone(&self.schema),
            columns: self.columns.clone(),
            base_len: self.base_len,
            sel: Some(Arc::new(sel)),
        }
    }

    /// Copy the live rows into compact columns (drops the selection). A
    /// no-op when no selection is active.
    pub fn compact(&self) -> Self {
        let Some(sel) = self.sel.as_deref() else {
            return self.clone();
        };
        let columns = self
            .columns
            .iter()
            .map(|c| Arc::new(c.gather(sel)))
            .collect();
        ColumnarBatch {
            schema: Arc::clone(&self.schema),
            columns,
            base_len: sel.len(),
            sel: None,
        }
    }

    /// Replace the column set (projection); `base_len` and selection carry
    /// over, so the new columns must share the current physical layout.
    pub fn with_columns(&self, schema: SchemaRef, columns: Vec<Arc<Column>>) -> Self {
        debug_assert!(columns.iter().all(|c| c.len() == self.base_len));
        ColumnarBatch {
            schema,
            columns,
            base_len: self.base_len,
            sel: self.sel.clone(),
        }
    }

    /// Concatenate chunks of identical schema into one compact batch.
    pub fn concat(schema: SchemaRef, chunks: &[ColumnarBatch]) -> Self {
        let live: Vec<ColumnarBatch> = chunks.iter().map(ColumnarBatch::compact).collect();
        let total: usize = live.iter().map(ColumnarBatch::num_rows).sum();
        if live.is_empty() || schema.is_empty() {
            let mut out = ColumnarBatch::empty(schema);
            out.base_len = total;
            return out;
        }
        let columns = (0..schema.len())
            .map(|c| {
                // Column-by-column append via scalars is only taken on the
                // slow path; typed fast concat below covers matching chunks.
                let mut iter = live.iter().map(|b| b.columns[c].as_ref());
                let first = iter.next().expect("non-empty");
                let mut values: Option<Vec<Value>> = None;
                let mut acc = first.clone();
                for col in iter {
                    // Once a chunk forces the Mixed fallback, every later
                    // chunk goes to `values` too — appending a typed chunk
                    // back onto `acc` would silently drop its rows.
                    if let Some(vals) = values.as_mut() {
                        vals.extend((0..col.len()).map(|i| col.value(i)));
                    } else if try_append(&mut acc, col).is_err() {
                        let mut vals: Vec<Value> =
                            (0..acc.len()).map(|i| acc.value(i)).collect();
                        vals.extend((0..col.len()).map(|i| col.value(i)));
                        values = Some(vals);
                    }
                }
                let col = match values {
                    Some(v) => Column::new(ColumnData::Mixed(v), None),
                    None => acc,
                };
                Arc::new(col)
            })
            .collect();
        ColumnarBatch {
            schema,
            columns,
            base_len: total,
            sel: None,
        }
    }
}

/// Append `src` onto `acc` when both share a typed representation; `Err` asks
/// the caller to fall back to `Mixed`.
fn try_append(acc: &mut Column, src: &Column) -> std::result::Result<(), ()> {
    let old_len = acc.len();
    let added = src.len();
    match (&mut acc.data, &src.data) {
        (ColumnData::Bool(a), ColumnData::Bool(b)) => a.extend_from_slice(b),
        (ColumnData::Int(a), ColumnData::Int(b)) => a.extend_from_slice(b),
        (ColumnData::Float(a), ColumnData::Float(b)) => a.extend_from_slice(b),
        (ColumnData::Str(a), ColumnData::Str(b)) => a.extend_from_slice(b),
        (ColumnData::Timestamp(a), ColumnData::Timestamp(b)) => a.extend_from_slice(b),
        (ColumnData::Mixed(a), ColumnData::Mixed(b)) => a.extend_from_slice(b),
        _ => return Err(()),
    }
    if acc.nulls.is_some() || src.nulls.is_some() {
        let mut merged = NullBitmap::new_valid(old_len + added);
        if let Some(n) = &acc.nulls {
            for i in 0..old_len {
                if n.is_null(i) {
                    merged.set_null(i);
                }
            }
        }
        if let Some(n) = &src.nulls {
            for i in 0..added {
                if n.is_null(i) {
                    merged.set_null(old_len + i);
                }
            }
        }
        acc.nulls = Some(merged);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::{Field, Schema};

    fn schema() -> SchemaRef {
        Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("name", DataType::Str),
            Field::new("score", DataType::Float),
        ]))
    }

    fn sample() -> Batch {
        Batch::new(
            schema(),
            vec![
                row![1i64, "a", 1.5f64],
                row![2i64, Value::Null, 2.5f64],
                row![3i64, "c", Value::Null],
            ],
        )
    }

    #[test]
    fn pivot_round_trips() {
        let b = sample();
        let cb = ColumnarBatch::from_batch(&b);
        assert_eq!(cb.num_rows(), 3);
        assert!(cb.column(0).as_ints().is_some());
        assert_eq!(cb.to_batch(), b);
    }

    #[test]
    fn null_bitmap_tracks_nulls() {
        let cb = ColumnarBatch::from_batch(&sample());
        assert!(!cb.column(0).is_null(0));
        assert!(cb.column(1).is_null(1));
        assert!(cb.column(2).is_null(2));
        assert_eq!(cb.column(1).nulls().unwrap().null_count(), 1);
        assert_eq!(cb.value_at(1, 1), Value::Null);
    }

    #[test]
    fn heterogeneous_column_degrades_to_mixed() {
        let s = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]));
        let b = Batch::new(Arc::clone(&s), vec![row![1i64], row!["oops"]]);
        let cb = ColumnarBatch::from_batch(&b);
        assert!(matches!(cb.column(0).data(), ColumnData::Mixed(_)));
        assert_eq!(cb.to_batch(), b);
    }

    #[test]
    fn selection_composes_and_compacts() {
        let cb = ColumnarBatch::from_batch(&sample());
        let first = cb.select(vec![2, 0]);
        assert_eq!(first.num_rows(), 2);
        assert_eq!(first.value_at(0, 0), Value::Int(3));
        // Second select indexes into the first's logical order.
        let second = first.select(vec![1]);
        assert_eq!(second.num_rows(), 1);
        assert_eq!(second.value_at(0, 0), Value::Int(1));
        let compact = second.compact();
        assert!(compact.selection().is_none());
        assert_eq!(compact.to_batch().rows()[0], sample().rows()[0]);
    }

    #[test]
    fn concat_merges_chunks_and_nulls() {
        let a = ColumnarBatch::from_batch(&sample());
        let b = ColumnarBatch::from_batch(&sample()).select(vec![1]);
        let merged = ColumnarBatch::concat(schema(), &[a, b]);
        assert_eq!(merged.num_rows(), 4);
        assert!(merged.column(1).is_null(3));
        assert_eq!(merged.value_at(3, 0), Value::Int(2));
    }

    #[test]
    fn concat_keeps_typed_chunks_after_mixed_fallback() {
        // [Int, Mixed, Int]: the middle chunk forces the Mixed fallback and
        // the trailing typed chunk must still land in the merged column.
        let s = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]));
        let ints_a = ColumnarBatch::from_batch(&Batch::new(
            Arc::clone(&s),
            vec![row![1i64], row![2i64]],
        ));
        let mixed = ColumnarBatch::from_batch(&Batch::new(
            Arc::clone(&s),
            vec![row![Value::Null], row!["oops"]],
        ));
        assert!(matches!(mixed.column(0).data(), ColumnData::Mixed(_)));
        let ints_b = ColumnarBatch::from_batch(&Batch::new(
            Arc::clone(&s),
            vec![row![3i64], row![4i64]],
        ));
        let merged = ColumnarBatch::concat(Arc::clone(&s), &[ints_a, mixed, ints_b]);
        assert_eq!(merged.num_rows(), 6);
        assert_eq!(merged.column(0).len(), 6);
        let got: Vec<Value> = (0..6).map(|i| merged.value_at(i, 0)).collect();
        assert_eq!(
            got,
            vec![
                Value::Int(1),
                Value::Int(2),
                Value::Null,
                Value::from("oops"),
                Value::Int(3),
                Value::Int(4),
            ]
        );
    }

    #[test]
    fn broadcast_literal() {
        let c = Column::broadcast(&Value::Int(7), 3);
        assert_eq!(c.value(2), Value::Int(7));
        let n = Column::broadcast(&Value::Null, 2);
        assert!(n.is_null(0) && n.is_null(1));
    }

    #[test]
    fn zero_column_schema_keeps_row_count() {
        let s = Arc::new(Schema::empty());
        let b = Batch::new(Arc::clone(&s), vec![Row::new(vec![]), Row::new(vec![])]);
        let cb = ColumnarBatch::from_batch(&b);
        assert_eq!(cb.num_rows(), 2);
        assert_eq!(cb.to_batch().num_rows(), 2);
    }
}
