//! Query deadlines, cooperative cancellation, and priority tiers.
//!
//! A [`Deadline`] is a *virtual-clock budget*: the caller grants a query
//! `budget_ms` simulated milliseconds, and every layer that spends simulated
//! time — connector round trips, retry backoffs, injected fault waits —
//! charges it against the budget. Two kinds of spending exist in the
//! simulator:
//!
//! 1. **Clock-advancing waits** (fault timeouts, retry backoffs) move the
//!    shared [`SimClock`] forward; the deadline observes them through
//!    `clock.now_ms() - start_ms`.
//! 2. **Accounted work** (successful fetches cost `sim_ms` without advancing
//!    the clock, so unrelated sessions don't see each other's latency); the
//!    spender calls [`Deadline::charge`] explicitly.
//!
//! Both are summed by [`Deadline::elapsed_ms`], so the budget shrinks the
//! same way in a single-threaded run and across racing partition scans —
//! charges are commutative atomic adds, making expiry deterministic for a
//! given plan regardless of thread interleaving.
//!
//! A [`CancelToken`] is the cooperative teardown signal: operators check it
//! at batch boundaries and connectors check it before issuing a request, so
//! cancelling a query (or failing one branch of a parallel plan) stops the
//! sibling scans at their next check instead of letting them run to
//! completion.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::SimClock;
use crate::error::{EiiError, Result};

/// Priority tier of a session's work, used by brownout load shedding: when
/// the scheduler's token bucket runs dry, `Low` work is shed (typed error,
/// fails fast) and `Normal` work is degraded (partial results) before `High`
/// work ever waits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Best-effort: first to be shed under load.
    Low,
    /// Regular interactive work: degraded (not dropped) under load.
    #[default]
    Normal,
    /// SLA-bearing work: admitted as long as the system runs at all.
    High,
}

impl Priority {
    /// Lowercase label used in metrics and error messages.
    pub fn as_str(&self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

/// Micro-milliseconds per millisecond: charges carry fractional `sim_ms`
/// costs, accumulated losslessly in integer micro-ms so concurrent adds stay
/// exact and deterministic.
const MICRO: f64 = 1000.0;

/// A shrinking virtual-time budget shared by every stage of one query.
/// Cloning yields a handle onto the same budget.
#[derive(Debug, Clone)]
pub struct Deadline {
    clock: SimClock,
    start_ms: i64,
    budget_ms: i64,
    /// Explicitly charged simulated time in micro-milliseconds.
    charged_us: Arc<AtomicU64>,
}

impl Deadline {
    /// Grant `budget_ms` of simulated time starting now.
    pub fn new(clock: SimClock, budget_ms: i64) -> Self {
        let start_ms = clock.now_ms();
        Deadline {
            clock,
            start_ms,
            budget_ms,
            charged_us: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The granted budget, simulated milliseconds.
    pub fn budget_ms(&self) -> i64 {
        self.budget_ms
    }

    /// Simulated time consumed so far: clock movement since the grant plus
    /// everything explicitly charged.
    pub fn elapsed_ms(&self) -> i64 {
        let waited = self.clock.now_ms() - self.start_ms;
        let charged = (self.charged_us.load(Ordering::SeqCst) as f64 / MICRO).round() as i64;
        waited + charged
    }

    /// Budget left, simulated milliseconds (never negative).
    pub fn remaining_ms(&self) -> i64 {
        (self.budget_ms - self.elapsed_ms()).max(0)
    }

    /// Has the budget run out?
    pub fn expired(&self) -> bool {
        self.elapsed_ms() >= self.budget_ms
    }

    /// Charge `sim_ms` of accounted (non-clock-advancing) work.
    pub fn charge(&self, sim_ms: f64) {
        if sim_ms <= 0.0 {
            return;
        }
        let us = (sim_ms * MICRO).round() as u64;
        self.charged_us.fetch_add(us, Ordering::SeqCst);
    }

    /// Fail with [`EiiError::DeadlineExceeded`] if the budget ran out.
    pub fn check(&self) -> Result<()> {
        if self.expired() {
            return Err(EiiError::DeadlineExceeded {
                budget_ms: self.budget_ms,
                elapsed_ms: self.elapsed_ms(),
            });
        }
        Ok(())
    }
}

/// A cooperative cancellation flag. Cloning yields a handle onto the same
/// flag; any holder can cancel, every holder observes it.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
    reason: Arc<Mutex<Option<String>>>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Trip the token. The first reason wins; later calls are no-ops so the
    /// original cause survives racing cancellations.
    pub fn cancel(&self, reason: impl Into<String>) {
        let mut slot = self.reason.lock().unwrap_or_else(|p| p.into_inner());
        if !self.cancelled.swap(true, Ordering::SeqCst) {
            *slot = Some(reason.into());
        }
    }

    /// Has anyone cancelled?
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    /// The reason given at cancellation, if cancelled.
    pub fn reason(&self) -> Option<String> {
        self.reason
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Fail with [`EiiError::Cancelled`] if the token is tripped.
    pub fn check(&self) -> Result<()> {
        if self.is_cancelled() {
            return Err(EiiError::Cancelled(
                self.reason().unwrap_or_else(|| "cancelled".into()),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_tracks_clock_and_charges() {
        let clock = SimClock::new();
        let d = Deadline::new(clock.clone(), 100);
        assert_eq!(d.remaining_ms(), 100);
        clock.advance_ms(30);
        assert_eq!(d.elapsed_ms(), 30);
        d.charge(25.4);
        assert_eq!(d.elapsed_ms(), 55);
        assert_eq!(d.remaining_ms(), 45);
        assert!(d.check().is_ok());
        d.charge(50.0);
        assert!(d.expired());
        let err = d.check().unwrap_err();
        assert_eq!(err.kind(), "deadline");
        assert!(err.message().contains("100 ms"));
    }

    #[test]
    fn deadline_handles_share_the_budget() {
        let clock = SimClock::new();
        let d = Deadline::new(clock.clone(), 50);
        let d2 = d.clone();
        d2.charge(40.0);
        assert_eq!(d.remaining_ms(), 10);
    }

    #[test]
    fn fractional_charges_accumulate_exactly() {
        let clock = SimClock::new();
        let d = Deadline::new(clock, 10);
        for _ in 0..10 {
            d.charge(0.25);
        }
        assert_eq!(d.elapsed_ms(), 3, "2.5 ms rounds to 3");
        assert!(!d.expired());
    }

    #[test]
    fn concurrent_charges_are_deterministic() {
        let clock = SimClock::new();
        let d = Deadline::new(clock, 1000);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let d = d.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        d.charge(0.5);
                    }
                });
            }
        });
        assert_eq!(d.elapsed_ms(), 200);
    }

    #[test]
    fn cancel_token_first_reason_wins() {
        let t = CancelToken::new();
        assert!(t.check().is_ok());
        t.cancel("user gave up");
        t.cancel("sibling failed");
        assert!(t.is_cancelled());
        assert_eq!(t.reason().as_deref(), Some("user gave up"));
        let err = t.check().unwrap_err();
        assert_eq!(err.kind(), "cancelled");
        assert!(err.message().contains("user gave up"));
    }

    #[test]
    fn priority_orders_and_labels() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
        assert_eq!(Priority::default(), Priority::Normal);
        assert_eq!(Priority::High.as_str(), "high");
    }
}
