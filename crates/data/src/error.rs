//! The platform-wide error type.
//!
//! Every layer of the system (parser, planner, executor, wrappers, ETL, EAI)
//! reports failures through [`EiiError`] so that errors compose across crate
//! boundaries without conversion boilerplate.

use std::fmt;

/// Convenient result alias used across the workspace.
pub type Result<T, E = EiiError> = std::result::Result<T, E>;

/// Platform-wide error type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EiiError {
    /// Lexing or parsing failed.
    Parse(String),
    /// A name (table, column, view, source) could not be resolved.
    NotFound(String),
    /// An object with the same name already exists.
    AlreadyExists(String),
    /// The query or expression does not type-check.
    Type(String),
    /// A plan could not be produced (unsupported construct, no viable
    /// decomposition, capability mismatch, ...).
    Plan(String),
    /// Runtime failure while executing a plan.
    Execution(String),
    /// A wrapper / remote source rejected or failed a request.
    Source(String),
    /// The caller is not authorized for the requested data.
    Unauthorized(String),
    /// Failure in the ETL / warehouse substrate.
    Etl(String),
    /// Failure in the EAI / process substrate.
    Process(String),
    /// Constraint violation (uniqueness, referential, domain).
    Constraint(String),
    /// Catalog (de)serialization problems.
    Serde(String),
    /// A source stayed unreachable through every retry attempt (or its
    /// circuit breaker is open and requests fail fast).
    SourceUnavailable {
        source: String,
        /// Requests actually attempted before giving up (0 when the breaker
        /// rejected the call without trying).
        attempts: usize,
        /// Simulated milliseconds spent before giving up (0 when rejected
        /// without trying).
        elapsed_ms: i64,
    },
    /// A request to a source exceeded its deadline.
    Timeout {
        source: String,
        /// How long the caller waited, simulated milliseconds.
        deadline_ms: i64,
        /// Requests actually attempted before the timeout surfaced.
        attempts: usize,
        /// Simulated milliseconds elapsed across all attempts.
        elapsed_ms: i64,
    },
    /// The query's [`Deadline`](crate::deadline::Deadline) budget ran out.
    DeadlineExceeded {
        /// The budget the caller granted, simulated milliseconds.
        budget_ms: i64,
        /// Simulated milliseconds consumed when the budget check fired.
        elapsed_ms: i64,
    },
    /// The query was cancelled cooperatively (caller gave up, or a sibling
    /// branch failed and tore the rest of the plan down).
    Cancelled(String),
    /// Brownout load shedding dropped the query before it ran.
    Shed {
        /// Priority tier of the shed work.
        priority: String,
        /// Why the scheduler refused it.
        reason: String,
    },
    /// Anything else.
    Internal(String),
}

impl EiiError {
    /// Short machine-readable category tag, used in logs and experiment
    /// output.
    pub fn kind(&self) -> &'static str {
        match self {
            EiiError::Parse(_) => "parse",
            EiiError::NotFound(_) => "not_found",
            EiiError::AlreadyExists(_) => "already_exists",
            EiiError::Type(_) => "type",
            EiiError::Plan(_) => "plan",
            EiiError::Execution(_) => "execution",
            EiiError::Source(_) => "source",
            EiiError::Unauthorized(_) => "unauthorized",
            EiiError::Etl(_) => "etl",
            EiiError::Process(_) => "process",
            EiiError::Constraint(_) => "constraint",
            EiiError::Serde(_) => "serde",
            EiiError::SourceUnavailable { .. } => "source_unavailable",
            EiiError::Timeout { .. } => "timeout",
            EiiError::DeadlineExceeded { .. } => "deadline",
            EiiError::Cancelled(_) => "cancelled",
            EiiError::Shed { .. } => "shed",
            EiiError::Internal(_) => "internal",
        }
    }

    /// Is this a transport-level failure (the source was reached but the
    /// request failed in transit)? Transport errors are the ones worth
    /// retrying; structural errors (bad query, missing table) will not heal.
    pub fn is_transport(&self) -> bool {
        matches!(self, EiiError::Source(_) | EiiError::Timeout { .. })
    }

    /// The human-readable message carried by the error. Structured variants
    /// render their fields.
    pub fn message(&self) -> String {
        match self {
            EiiError::Parse(m)
            | EiiError::NotFound(m)
            | EiiError::AlreadyExists(m)
            | EiiError::Type(m)
            | EiiError::Plan(m)
            | EiiError::Execution(m)
            | EiiError::Source(m)
            | EiiError::Unauthorized(m)
            | EiiError::Etl(m)
            | EiiError::Process(m)
            | EiiError::Constraint(m)
            | EiiError::Serde(m)
            | EiiError::Internal(m) => m.clone(),
            EiiError::SourceUnavailable {
                source,
                attempts,
                elapsed_ms,
            } => {
                format!(
                    "source {source} unavailable after {attempts} attempt(s) \
                     ({elapsed_ms} ms elapsed)"
                )
            }
            EiiError::Timeout {
                source,
                deadline_ms,
                attempts,
                elapsed_ms,
            } => format!(
                "request to {source} timed out after {deadline_ms} ms \
                 ({attempts} attempt(s), {elapsed_ms} ms elapsed)"
            ),
            EiiError::DeadlineExceeded {
                budget_ms,
                elapsed_ms,
            } => format!("deadline of {budget_ms} ms exceeded ({elapsed_ms} ms consumed)"),
            EiiError::Cancelled(reason) => format!("cancelled: {reason}"),
            EiiError::Shed { priority, reason } => {
                format!("shed {priority}-priority work: {reason}")
            }
        }
    }
}

impl fmt::Display for EiiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.kind(), self.message())
    }
}

impl std::error::Error for EiiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = EiiError::Plan("no viable decomposition".into());
        assert_eq!(e.to_string(), "plan error: no viable decomposition");
        assert_eq!(e.kind(), "plan");
        assert_eq!(e.message(), "no viable decomposition");
    }

    #[test]
    fn structured_variants_render_their_fields() {
        let e = EiiError::SourceUnavailable {
            source: "crm".into(),
            attempts: 3,
            elapsed_ms: 70,
        };
        assert_eq!(e.kind(), "source_unavailable");
        assert_eq!(
            e.to_string(),
            "source_unavailable error: source crm unavailable after 3 attempt(s) \
             (70 ms elapsed)"
        );
        let t = EiiError::Timeout {
            source: "sales".into(),
            deadline_ms: 250,
            attempts: 2,
            elapsed_ms: 510,
        };
        assert_eq!(t.kind(), "timeout");
        assert!(t.message().contains("250 ms"));
        assert!(t.message().contains("2 attempt(s)"));
        assert!(t.message().contains("510 ms elapsed"));
        let d = EiiError::DeadlineExceeded {
            budget_ms: 100,
            elapsed_ms: 120,
        };
        assert_eq!(d.kind(), "deadline");
        assert!(d.message().contains("100 ms"));
        assert!(d.message().contains("120 ms"));
        let s = EiiError::Shed {
            priority: "low".into(),
            reason: "brownout".into(),
        };
        assert_eq!(s.kind(), "shed");
        assert!(s.message().contains("low-priority"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            EiiError::NotFound("t".into()),
            EiiError::NotFound("t".into())
        );
        assert_ne!(EiiError::NotFound("t".into()), EiiError::Parse("t".into()));
    }

    #[test]
    fn every_variant_has_distinct_kind() {
        let variants = [
            EiiError::Parse(String::new()),
            EiiError::NotFound(String::new()),
            EiiError::AlreadyExists(String::new()),
            EiiError::Type(String::new()),
            EiiError::Plan(String::new()),
            EiiError::Execution(String::new()),
            EiiError::Source(String::new()),
            EiiError::Unauthorized(String::new()),
            EiiError::Etl(String::new()),
            EiiError::Process(String::new()),
            EiiError::Constraint(String::new()),
            EiiError::Serde(String::new()),
            EiiError::SourceUnavailable {
                source: String::new(),
                attempts: 0,
                elapsed_ms: 0,
            },
            EiiError::Timeout {
                source: String::new(),
                deadline_ms: 0,
                attempts: 0,
                elapsed_ms: 0,
            },
            EiiError::DeadlineExceeded {
                budget_ms: 0,
                elapsed_ms: 0,
            },
            EiiError::Cancelled(String::new()),
            EiiError::Shed {
                priority: String::new(),
                reason: String::new(),
            },
            EiiError::Internal(String::new()),
        ];
        let mut kinds: Vec<_> = variants.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), variants.len());
    }
}
