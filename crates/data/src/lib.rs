//! # eii-data
//!
//! Core data model shared by every crate of the `eii` platform: dynamically
//! typed [`Value`]s, [`Row`]s and [`Batch`]es, [`Schema`] metadata, the common
//! [`EiiError`] error type, and a deterministic simulated clock used for
//! staleness accounting in the warehouse/materialized-view experiments.
//!
//! Everything here is deliberately independent of the query engine so that
//! storage engines, wrappers, and the EAI substrate can share one vocabulary.

pub mod batch;
pub mod clock;
pub mod columnar;
pub mod deadline;
pub mod error;
pub mod row;
pub mod schema;
pub mod value;

pub use batch::Batch;
pub use columnar::{Column, ColumnData, ColumnarBatch, NullBitmap};
pub use clock::SimClock;
pub use deadline::{CancelToken, Deadline, Priority};
pub use error::{EiiError, Result};
pub use row::Row;
pub use schema::{DataType, Field, Schema, SchemaRef};
pub use value::Value;
