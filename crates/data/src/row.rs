//! Rows: fixed-width tuples of [`Value`]s.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// A tuple of values. Positions correspond to the fields of the governing
/// [`crate::Schema`]. Cloning is cheap-ish (strings are `Arc<str>`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Build from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// Values in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the row has no columns.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at position `i`.
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Replace the value at position `i`.
    pub fn set(&mut self, i: usize, v: Value) {
        self.values[i] = v;
    }

    /// Append a value (schema-evolution / projection building).
    pub fn push(&mut self, v: Value) {
        self.values.push(v);
    }

    /// Concatenate two rows (joins).
    pub fn concat(&self, other: &Row) -> Row {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend(self.values.iter().cloned());
        values.extend(other.values.iter().cloned());
        Row { values }
    }

    /// Project the row to the given column positions.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row {
            values: indices.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }

    /// Wire size in the native representation (see [`Value::wire_size`]).
    pub fn wire_size(&self) -> usize {
        self.values.iter().map(Value::wire_size).sum()
    }

    /// Wire size when shipped as XML, modeling the inflation Bitton describes
    /// ("each table would be converted to XML, increasing its size about 3
    /// times"): each value is serialized as text and wrapped in open/close
    /// element tags derived from column names.
    pub fn xml_wire_size(&self, field_names: &[&str]) -> usize {
        debug_assert_eq!(field_names.len(), self.values.len());
        let row_tags = "<row></row>".len();
        let body: usize = self
            .values
            .iter()
            .zip(field_names)
            .map(|(v, name)| {
                // <name>text</name>
                2 * name.len() + 5 + v.to_string().len()
            })
            .sum();
        row_tags + body
    }

    /// Consume into the underlying values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Row::new(iter.into_iter().collect())
    }
}

/// Helper macro to build a row from heterogenous literals.
///
/// ```
/// use eii_data::{row, Value};
/// let r = row![1i64, "alice", 3.5];
/// assert_eq!(r.get(1), &Value::str("alice"));
/// ```
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::Row::new(vec![$($crate::Value::from($v)),*])
    };
}

/// Cheap shared handle to a row, used where many operators hold the same
/// tuple (e.g. join build sides).
pub type RowRef = Arc<Row>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_macro_and_accessors() {
        let r = row![1i64, "x", 2.5, true];
        assert_eq!(r.len(), 4);
        assert_eq!(r.get(0), &Value::Int(1));
        assert_eq!(r.get(3), &Value::Bool(true));
    }

    #[test]
    fn concat_and_project() {
        let a = row![1i64, "a"];
        let b = row![2i64];
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        let p = c.project(&[2, 0]);
        assert_eq!(p, row![2i64, 1i64]);
    }

    #[test]
    fn xml_inflates_size_over_native() {
        let r = row![123456i64, "alice anderson", 9.25];
        let native = r.wire_size();
        let xml = r.xml_wire_size(&["customer_id", "customer_name", "balance"]);
        assert!(
            xml as f64 > 2.0 * native as f64,
            "xml={xml} native={native}: expected substantial inflation"
        );
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(row![1i64, "a"].to_string(), "[1, a]");
    }
}
