//! Schemas: the typed shape of relational data.
//!
//! A [`Schema`] is an ordered list of [`Field`]s. Fields carry an optional
//! *relation qualifier* so that plans over joins can resolve ambiguous column
//! names (`crm.customers.id` vs `orders.orders.id`) the way the federated
//! planner needs to.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::{EiiError, Result};

/// Scalar data types supported by the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Str,
    Timestamp,
}

impl DataType {
    /// True if values of this type participate in arithmetic.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// The common supertype of two types when used together in arithmetic or
    /// comparisons, or `None` if they are incompatible.
    pub fn unify(self, other: DataType) -> Option<DataType> {
        match (self, other) {
            (a, b) if a == b => Some(a),
            (DataType::Int, DataType::Float) | (DataType::Float, DataType::Int) => {
                Some(DataType::Float)
            }
            (DataType::Int, DataType::Timestamp) | (DataType::Timestamp, DataType::Int) => {
                Some(DataType::Timestamp)
            }
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STR",
            DataType::Timestamp => "TIMESTAMP",
        };
        f.write_str(s)
    }
}

/// A named, typed column, optionally qualified by the relation it came from.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Field {
    /// Relation (table, view, or alias) qualifier, if any.
    pub relation: Option<String>,
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
    /// Whether NULLs may appear.
    pub nullable: bool,
}

impl Field {
    /// A nullable field with no qualifier.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            relation: None,
            name: name.into(),
            data_type,
            nullable: true,
        }
    }

    /// Attach/replace the relation qualifier.
    pub fn with_relation(mut self, relation: impl Into<String>) -> Self {
        self.relation = Some(relation.into());
        self
    }

    /// Mark the field non-nullable.
    pub fn not_null(mut self) -> Self {
        self.nullable = false;
        self
    }

    /// `relation.name` if qualified, else `name`.
    pub fn qualified_name(&self) -> String {
        match &self.relation {
            Some(r) => format!("{r}.{}", self.name),
            None => self.name.clone(),
        }
    }

    /// Does this field answer to `name` (and `relation` when given)?
    pub fn matches(&self, relation: Option<&str>, name: &str) -> bool {
        if !self.name.eq_ignore_ascii_case(name) {
            return false;
        }
        match relation {
            None => true,
            Some(r) => self
                .relation
                .as_deref()
                .is_some_and(|fr| fr.eq_ignore_ascii_case(r)),
        }
    }
}

/// Shared, immutable schema handle.
pub type SchemaRef = Arc<Schema>;

/// An ordered collection of fields.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Empty schema (zero columns), used by constant relations.
    pub fn empty() -> Self {
        Schema { fields: Vec::new() }
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Field at position `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Resolve a possibly-qualified column reference to its index.
    ///
    /// Fails with `NotFound` when no field matches and with `Type` when the
    /// reference is ambiguous (matches more than one field), mirroring SQL
    /// name-resolution rules.
    pub fn index_of(&self, relation: Option<&str>, name: &str) -> Result<usize> {
        let mut found: Option<usize> = None;
        for (i, f) in self.fields.iter().enumerate() {
            if f.matches(relation, name) {
                if let Some(prev) = found {
                    return Err(EiiError::Type(format!(
                        "ambiguous column reference '{}' (matches {} and {})",
                        name,
                        self.fields[prev].qualified_name(),
                        f.qualified_name()
                    )));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| {
            let want = match relation {
                Some(r) => format!("{r}.{name}"),
                None => name.to_string(),
            };
            EiiError::NotFound(format!("column '{want}' not found in schema {self}"))
        })
    }

    /// Concatenate two schemas (used by joins); re-qualification is the
    /// caller's business.
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema { fields }
    }

    /// A copy of this schema with every field re-qualified to `relation`
    /// (applied when a subquery or table gets an alias).
    pub fn qualified(&self, relation: &str) -> Schema {
        Schema {
            fields: self
                .fields
                .iter()
                .map(|f| f.clone().with_relation(relation))
                .collect(),
        }
    }

    /// Sum of per-row wire size lower bound: header per field. Used by the
    /// cost model as the fixed overhead per shipped row.
    pub fn row_overhead(&self) -> usize {
        self.fields.len()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.qualified_name(), field.data_type)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int).with_relation("c").not_null(),
            Field::new("name", DataType::Str).with_relation("c"),
            Field::new("id", DataType::Int).with_relation("o"),
        ])
    }

    #[test]
    fn unqualified_lookup_of_unique_name() {
        let s = sample();
        assert_eq!(s.index_of(None, "name").unwrap(), 1);
        assert_eq!(s.index_of(None, "NAME").unwrap(), 1);
    }

    #[test]
    fn ambiguous_lookup_fails() {
        let s = sample();
        let err = s.index_of(None, "id").unwrap_err();
        assert_eq!(err.kind(), "type");
    }

    #[test]
    fn qualified_lookup_disambiguates() {
        let s = sample();
        assert_eq!(s.index_of(Some("c"), "id").unwrap(), 0);
        assert_eq!(s.index_of(Some("o"), "id").unwrap(), 2);
    }

    #[test]
    fn missing_column_reports_not_found() {
        let s = sample();
        assert_eq!(s.index_of(None, "ghost").unwrap_err().kind(), "not_found");
        assert_eq!(
            s.index_of(Some("zz"), "id").unwrap_err().kind(),
            "not_found"
        );
    }

    #[test]
    fn join_concatenates_in_order() {
        let a = Schema::new(vec![Field::new("x", DataType::Int)]);
        let b = Schema::new(vec![Field::new("y", DataType::Str)]);
        let j = a.join(&b);
        assert_eq!(j.len(), 2);
        assert_eq!(j.field(0).name, "x");
        assert_eq!(j.field(1).name, "y");
    }

    #[test]
    fn qualify_rewrites_all_relations() {
        let s = sample().qualified("t");
        assert!(s.fields().iter().all(|f| f.relation.as_deref() == Some("t")));
        assert_eq!(s.index_of(Some("t"), "name").unwrap(), 1);
    }

    #[test]
    fn type_unification() {
        assert_eq!(
            DataType::Int.unify(DataType::Float),
            Some(DataType::Float)
        );
        assert_eq!(DataType::Str.unify(DataType::Int), None);
        assert_eq!(DataType::Bool.unify(DataType::Bool), Some(DataType::Bool));
        assert_eq!(
            DataType::Timestamp.unify(DataType::Int),
            Some(DataType::Timestamp)
        );
    }
}
