//! Dynamically typed scalar values.
//!
//! [`Value`] is the unit of data flowing between sources, wrappers, the
//! federated executor, and the warehouse. It supports total ordering and
//! hashing (so it can key hash joins and aggregations), lossy-free size
//! accounting (for the bytes-shipped experiments), and SQL-style `NULL`
//! semantics at the comparison layer of the expression crate.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::schema::DataType;

/// A dynamically typed scalar value.
///
/// `Float` uses total ordering (via `f64::total_cmp`) for `Ord`/`Hash` so that
/// values can be used as join and group-by keys; SQL `NULL` comparison
/// semantics are implemented in `eii-expr`, not here.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string. `Arc<str>` keeps row cloning cheap during joins.
    Str(Arc<str>),
    /// Milliseconds since an arbitrary epoch of the simulated clock.
    Timestamp(i64),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The runtime type of this value, or `None` for `Null` (which inhabits
    /// every type).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    /// True iff the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Truthiness for WHERE clauses: only `Bool(true)` passes.
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Interpret as i64 where possible.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Timestamp(t) => Some(*t),
            _ => None,
        }
    }

    /// Interpret as f64 where possible (ints widen).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Interpret as &str where possible.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Interpret as bool where possible.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Size of the value in bytes when shipped over the simulated network in
    /// the native (binary) representation. This drives the bytes-shipped
    /// metrics of experiments E3/E11.
    pub fn wire_size(&self) -> usize {
        1 + match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Timestamp(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => 4 + s.len(),
        }
    }

    /// Attempt to cast this value to `ty`, mirroring permissive SQL casts.
    /// Returns `None` when the cast is not meaningful.
    pub fn cast(&self, ty: DataType) -> Option<Value> {
        if self.is_null() {
            return Some(Value::Null);
        }
        match (self, ty) {
            (v, t) if v.data_type() == Some(t) => Some(v.clone()),
            (Value::Int(i), DataType::Float) => Some(Value::Float(*i as f64)),
            (Value::Float(f), DataType::Int) => Some(Value::Int(*f as i64)),
            (Value::Int(i), DataType::Timestamp) => Some(Value::Timestamp(*i)),
            (Value::Timestamp(t), DataType::Int) => Some(Value::Int(*t)),
            (Value::Bool(b), DataType::Int) => Some(Value::Int(i64::from(*b))),
            (Value::Int(i), DataType::Str) => Some(Value::str(i.to_string())),
            (Value::Float(f), DataType::Str) => Some(Value::str(f.to_string())),
            (Value::Bool(b), DataType::Str) => Some(Value::str(b.to_string())),
            (Value::Timestamp(t), DataType::Str) => Some(Value::str(format!("@{t}"))),
            (Value::Str(s), DataType::Int) => s.trim().parse::<i64>().ok().map(Value::Int),
            (Value::Str(s), DataType::Float) => s.trim().parse::<f64>().ok().map(Value::Float),
            (Value::Str(s), DataType::Bool) => match s.trim().to_ascii_lowercase().as_str() {
                "true" | "t" | "1" | "y" | "yes" => Some(Value::Bool(true)),
                "false" | "f" | "0" | "n" | "no" => Some(Value::Bool(false)),
                _ => None,
            },
            (Value::Str(s), DataType::Timestamp) => {
                let body = s.strip_prefix('@').unwrap_or(s);
                body.trim().parse::<i64>().ok().map(Value::Timestamp)
            }
            _ => None,
        }
    }

    /// Rank used to order values of *different* types deterministically, so
    /// that sorting heterogeneous columns (schema-less sources!) is total.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // numerics compare with each other
            Value::Str(_) => 3,
            Value::Timestamp(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float must hash identically when they compare equal
            // (e.g. 2 == 2.0), so hash all numerics through total-orderable
            // f64 bits when the float is integral.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Timestamp(t) => {
                4u8.hash(state);
                t.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Timestamp(t) => write!(f, "@{t}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_eq!(hash_of(&Value::Int(2)), hash_of(&Value::Float(2.0)));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn heterogeneous_ordering_is_total_and_stable() {
        let mut vals = [
            Value::str("abc"),
            Value::Int(1),
            Value::Null,
            Value::Bool(true),
            Value::Timestamp(5),
            Value::Float(0.5),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert!(matches!(vals[1], Value::Bool(_)));
        assert!(matches!(vals.last(), Some(Value::Timestamp(_))));
    }

    #[test]
    fn casts() {
        assert_eq!(
            Value::str("42").cast(DataType::Int),
            Some(Value::Int(42))
        );
        assert_eq!(
            Value::Int(3).cast(DataType::Float),
            Some(Value::Float(3.0))
        );
        assert_eq!(Value::str("nope").cast(DataType::Int), None);
        assert_eq!(Value::Null.cast(DataType::Int), Some(Value::Null));
        assert_eq!(
            Value::str("yes").cast(DataType::Bool),
            Some(Value::Bool(true))
        );
        assert_eq!(
            Value::str("@77").cast(DataType::Timestamp),
            Some(Value::Timestamp(77))
        );
    }

    #[test]
    fn wire_size_accounts_for_payload() {
        assert_eq!(Value::Null.wire_size(), 1);
        assert_eq!(Value::Int(7).wire_size(), 9);
        assert_eq!(Value::str("ab").wire_size(), 1 + 4 + 2);
    }

    #[test]
    fn display_round_trips_through_cast_for_ints() {
        let v = Value::Int(-91);
        let s = Value::str(v.to_string());
        assert_eq!(s.cast(DataType::Int), Some(v));
    }

    proptest! {
        #[test]
        fn ord_is_antisymmetric(a in any::<i64>(), b in any::<i64>()) {
            let (x, y) = (Value::Int(a), Value::Int(b));
            prop_assert_eq!(x.cmp(&y), y.cmp(&x).reverse());
        }

        #[test]
        fn eq_implies_same_hash(a in any::<i64>()) {
            let (x, y) = (Value::Int(a), Value::Float(a as f64));
            if x == y {
                prop_assert_eq!(hash_of(&x), hash_of(&y));
            }
        }

        #[test]
        fn int_string_cast_roundtrip(a in any::<i64>()) {
            let v = Value::Int(a);
            let s = v.cast(DataType::Str).unwrap();
            prop_assert_eq!(s.cast(DataType::Int), Some(v));
        }

        #[test]
        fn float_total_order_is_transitive(a in any::<f64>(), b in any::<f64>(), c in any::<f64>()) {
            let (x, y, z) = (Value::Float(a), Value::Float(b), Value::Float(c));
            if x <= y && y <= z {
                prop_assert!(x <= z);
            }
        }
    }
}
