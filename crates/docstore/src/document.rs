//! Semi-structured documents: named node trees with text payloads.

use std::fmt;

/// Document identifier within a store.
pub type DocId = u64;

/// A node of a semi-structured document tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocNode {
    /// Element name (`customer`, `paragraph`, `cell`, ...).
    pub name: String,
    /// Text content, if this node carries any.
    pub text: Option<String>,
    /// Child nodes in document order.
    pub children: Vec<DocNode>,
}

impl DocNode {
    /// A leaf node carrying text.
    pub fn leaf(name: impl Into<String>, text: impl Into<String>) -> Self {
        DocNode {
            name: name.into(),
            text: Some(text.into()),
            children: Vec::new(),
        }
    }

    /// An interior node with children.
    pub fn elem(name: impl Into<String>, children: Vec<DocNode>) -> Self {
        DocNode {
            name: name.into(),
            text: None,
            children,
        }
    }

    /// Total number of nodes in this subtree.
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(DocNode::node_count).sum::<usize>()
    }

    /// Concatenated text of this subtree (depth-first), separated by spaces.
    pub fn full_text(&self) -> String {
        let mut out = String::new();
        self.collect_text(&mut out);
        out.trim_end().to_string()
    }

    fn collect_text(&self, out: &mut String) {
        if let Some(t) = &self.text {
            out.push_str(t);
            out.push(' ');
        }
        for c in &self.children {
            c.collect_text(out);
        }
    }

    /// Approximate serialized size in bytes (tags + text), used by the
    /// network simulator when documents ship between sites.
    pub fn wire_size(&self) -> usize {
        2 * self.name.len()
            + 5
            + self.text.as_deref().map_or(0, str::len)
            + self.children.iter().map(DocNode::wire_size).sum::<usize>()
    }
}

impl fmt::Display for DocNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.name)?;
        if let Some(t) = &self.text {
            write!(f, "{t}")?;
        }
        for c in &self.children {
            write!(f, "{c}")?;
        }
        write!(f, "</{}>", self.name)
    }
}

/// A stored document: an id, a human-readable title, and the content tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    pub id: DocId,
    pub title: String,
    pub root: DocNode,
}

impl Document {
    /// Build a document; the id is assigned by the store on insert
    /// (pass 0 here).
    pub fn new(title: impl Into<String>, root: DocNode) -> Self {
        Document {
            id: 0,
            title: title.into(),
            root,
        }
    }

    /// Ingest plain prose (the "MS Word" path): each line becomes a
    /// `paragraph` node under a `doc` root. No schema is declared anywhere —
    /// that is the point.
    pub fn from_text(title: impl Into<String>, body: &str) -> Self {
        let children = body
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| DocNode::leaf("paragraph", l.trim()))
            .collect();
        Document::new(title, DocNode::elem("doc", children))
    }

    /// Ingest tabular data (the "Excel" path): each record becomes a `row`
    /// node with one child per `(column, value)` pair. Columns may vary per
    /// record — schema-less means ragged data is fine.
    pub fn from_records(
        title: impl Into<String>,
        records: &[Vec<(&str, String)>],
    ) -> Self {
        let children = records
            .iter()
            .map(|rec| {
                DocNode::elem(
                    "row",
                    rec.iter()
                        .map(|(k, v)| DocNode::leaf(*k, v.clone()))
                        .collect(),
                )
            })
            .collect();
        Document::new(title, DocNode::elem("sheet", children))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_text_builds_paragraphs() {
        let d = Document::from_text("memo", "first line\n\n  second line  \n");
        assert_eq!(d.root.children.len(), 2);
        assert_eq!(d.root.children[1].text.as_deref(), Some("second line"));
        assert_eq!(d.root.full_text(), "first line second line");
    }

    #[test]
    fn from_records_allows_ragged_rows() {
        let d = Document::from_records(
            "sheet",
            &[
                vec![("id", "1".into()), ("name", "alice".into())],
                vec![("id", "2".into())],
            ],
        );
        assert_eq!(d.root.children[0].children.len(), 2);
        assert_eq!(d.root.children[1].children.len(), 1);
    }

    #[test]
    fn node_count_and_display() {
        let n = DocNode::elem("a", vec![DocNode::leaf("b", "x"), DocNode::leaf("c", "y")]);
        assert_eq!(n.node_count(), 3);
        assert_eq!(n.to_string(), "<a><b>x</b><c>y</c></a>");
    }

    #[test]
    fn wire_size_grows_with_content() {
        let small = DocNode::leaf("p", "hi");
        let big = DocNode::leaf("p", "hi there this is much longer");
        assert!(big.wire_size() > small.wire_size());
    }
}
