//! # eii-docstore
//!
//! A schema-less document store modeled on NASA's NETMARK system (Ashish,
//! §2 of the paper): "data is managed in a schema-less manner; ... imposition
//! of structure and semantics (schema) may be done by clients as needed."
//!
//! Documents are semi-structured node trees (the shape of the paper's "MS
//! Word, Excel, PowerPoint" business documents after conversion). The store
//! itself knows nothing about their schema — there is no schema registration
//! step, no mapping, no DBA. Structure is imposed at read time through
//! *path extraction* ([`DocStore::extract`]), which turns a set of node paths
//! into a relational [`Batch`] — exactly the "intelligent storage + client-
//! side schema" architecture the article advocates. A keyword index supports
//! the enterprise-search substrate.

pub mod document;
pub mod path;
pub mod store;
pub mod tokenize;

pub use document::{DocId, DocNode, Document};
pub use path::PathQuery;
pub use store::DocStore;
pub use tokenize::tokenize_text;
