//! Schema-on-read path queries.
//!
//! A [`PathQuery`] names a node by a `/`-separated path of element names,
//! optionally starting with `//` to match at any depth. Extraction walks the
//! tree and returns matching nodes' text. This is the client-side "imposition
//! of structure" of the NETMARK approach: the same stored document can be
//! read through many different paths by different applications.

use eii_data::{DataType, Value};

use crate::document::DocNode;

/// A parsed path query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathQuery {
    /// Element names, outermost first.
    pub segments: Vec<String>,
    /// When true, the first segment may match at any depth (`//name`).
    pub anywhere: bool,
}

impl PathQuery {
    /// Parse a path like `sheet/row/name` or `//paragraph`.
    pub fn parse(path: &str) -> PathQuery {
        let anywhere = path.starts_with("//");
        let trimmed = path.trim_start_matches('/');
        PathQuery {
            segments: trimmed
                .split('/')
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect(),
            anywhere,
        }
    }

    /// Collect the text of every node matching the path under `root`
    /// (`root` itself is the first candidate for the first segment).
    pub fn extract<'a>(&self, root: &'a DocNode) -> Vec<&'a DocNode> {
        let mut out = Vec::new();
        if self.segments.is_empty() {
            return out;
        }
        if self.anywhere {
            // Find every node matching the first segment anywhere, then
            // match the rest of the path below it.
            let mut stack = vec![root];
            while let Some(n) = stack.pop() {
                if n.name == self.segments[0] {
                    Self::match_rest(n, &self.segments[1..], &mut out);
                }
                // Reverse so the LIFO pop visits children in document order.
                stack.extend(n.children.iter().rev());
            }
        } else if root.name == self.segments[0] {
            Self::match_rest(root, &self.segments[1..], &mut out);
        }
        out
    }

    fn match_rest<'a>(node: &'a DocNode, rest: &[String], out: &mut Vec<&'a DocNode>) {
        match rest.split_first() {
            None => out.push(node),
            Some((seg, tail)) => {
                for c in node.children.iter().filter(|c| &c.name == seg) {
                    Self::match_rest(c, tail, out);
                }
            }
        }
    }

    /// Extract matching nodes' text as values of the requested type; text
    /// that fails to parse becomes NULL (schema-on-read is lenient by
    /// design).
    pub fn extract_values(&self, root: &DocNode, ty: DataType) -> Vec<Value> {
        self.extract(root)
            .into_iter()
            .map(|n| match &n.text {
                None => Value::Null,
                Some(t) => Value::str(t.as_str())
                    .cast(ty)
                    .unwrap_or(Value::Null),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Document;

    fn doc() -> DocNode {
        DocNode::elem(
            "sheet",
            vec![
                DocNode::elem(
                    "row",
                    vec![DocNode::leaf("id", "1"), DocNode::leaf("name", "alice")],
                ),
                DocNode::elem(
                    "row",
                    vec![DocNode::leaf("id", "2"), DocNode::leaf("name", "bob")],
                ),
            ],
        )
    }

    #[test]
    fn rooted_path_extracts_in_order() {
        let q = PathQuery::parse("sheet/row/name");
        let names: Vec<_> = q
            .extract(&doc())
            .into_iter()
            .map(|n| n.text.clone().unwrap())
            .collect();
        assert_eq!(names, vec!["alice", "bob"]);
    }

    #[test]
    fn anywhere_path_matches_any_depth() {
        let q = PathQuery::parse("//name");
        assert_eq!(q.extract(&doc()).len(), 2);
        let q = PathQuery::parse("//row/id");
        assert_eq!(q.extract(&doc()).len(), 2);
    }

    #[test]
    fn non_matching_path_is_empty() {
        let q = PathQuery::parse("sheet/column");
        assert!(q.extract(&doc()).is_empty());
        let q = PathQuery::parse("workbook/row");
        assert!(q.extract(&doc()).is_empty());
    }

    #[test]
    fn typed_extraction_with_lenient_parse() {
        let q = PathQuery::parse("sheet/row/id");
        let vals = q.extract_values(&doc(), DataType::Int);
        assert_eq!(vals, vec![Value::Int(1), Value::Int(2)]);
        // Names do not parse as ints -> NULL, not error.
        let q = PathQuery::parse("sheet/row/name");
        let vals = q.extract_values(&doc(), DataType::Int);
        assert_eq!(vals, vec![Value::Null, Value::Null]);
    }

    #[test]
    fn paragraphs_from_text_document() {
        let d = Document::from_text("m", "alpha\nbeta");
        let q = PathQuery::parse("doc/paragraph");
        assert_eq!(q.extract(&d.root).len(), 2);
    }
}
