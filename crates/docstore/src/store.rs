//! The document store itself.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use parking_lot::RwLock;

use eii_data::{Batch, DataType, EiiError, Field, Result, Row, Schema, Value};

use crate::document::{DocId, Document};
use crate::path::PathQuery;
use crate::tokenize::tokenize_text;

#[derive(Debug, Default)]
struct Inner {
    docs: BTreeMap<DocId, Document>,
    next_id: DocId,
    /// token -> set of documents containing it (kept incrementally).
    keyword_index: HashMap<String, HashSet<DocId>>,
}

/// A shared, schema-less document store.
///
/// Note what is *absent*: there is no schema registration, no column
/// catalog, no mapping step. `insert` is the entire administration cost of
/// adding data — the property the economics experiment (E2) measures.
#[derive(Debug, Clone, Default)]
pub struct DocStore {
    inner: Arc<RwLock<Inner>>,
}

impl DocStore {
    /// An empty store.
    pub fn new() -> Self {
        DocStore::default()
    }

    /// Insert a document, assigning and returning its id.
    pub fn insert(&self, mut doc: Document) -> DocId {
        let mut inner = self.inner.write();
        inner.next_id += 1;
        let id = inner.next_id;
        doc.id = id;
        let text = format!("{} {}", doc.title, doc.root.full_text());
        for tok in tokenize_text(&text) {
            inner.keyword_index.entry(tok).or_default().insert(id);
        }
        inner.docs.insert(id, doc);
        id
    }

    /// Fetch a document by id.
    pub fn get(&self, id: DocId) -> Result<Document> {
        self.inner
            .read()
            .docs
            .get(&id)
            .cloned()
            .ok_or_else(|| EiiError::NotFound(format!("document {id}")))
    }

    /// Remove a document. Returns true when it existed.
    pub fn remove(&self, id: DocId) -> bool {
        let mut inner = self.inner.write();
        let existed = inner.docs.remove(&id).is_some();
        if existed {
            for set in inner.keyword_index.values_mut() {
                set.remove(&id);
            }
            inner.keyword_index.retain(|_, s| !s.is_empty());
        }
        existed
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.inner.read().docs.len()
    }

    /// True when the store has no documents.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All document ids, ascending.
    pub fn ids(&self) -> Vec<DocId> {
        self.inner.read().docs.keys().copied().collect()
    }

    /// Documents containing *all* the query's tokens (conjunctive keyword
    /// search), ascending by id.
    pub fn keyword_search(&self, query: &str) -> Vec<DocId> {
        let tokens = tokenize_text(query);
        if tokens.is_empty() {
            return Vec::new();
        }
        let inner = self.inner.read();
        let mut result: Option<HashSet<DocId>> = None;
        for t in &tokens {
            let set = inner.keyword_index.get(t).cloned().unwrap_or_default();
            result = Some(match result {
                None => set,
                Some(acc) => acc.intersection(&set).copied().collect(),
            });
            if result.as_ref().is_some_and(HashSet::is_empty) {
                return Vec::new();
            }
        }
        let mut ids: Vec<DocId> = result.unwrap_or_default().into_iter().collect();
        ids.sort_unstable();
        ids
    }

    /// Schema-on-read extraction: impose a relational schema on the stored
    /// documents *at query time*. Each requested column is a `(name, path,
    /// type)` triple; for every document, row `i` combines the `i`-th match
    /// of each path (ragged documents pad with NULL).
    ///
    /// This is the NETMARK pattern: the store stays schema-less, the client
    /// decides structure per use.
    pub fn extract(&self, columns: &[(&str, &str, DataType)]) -> Result<Batch> {
        let schema = Arc::new(Schema::new(
            columns
                .iter()
                .map(|(name, _, ty)| Field::new(*name, *ty))
                .collect(),
        ));
        let queries: Vec<PathQuery> = columns
            .iter()
            .map(|(_, path, _)| PathQuery::parse(path))
            .collect();
        let inner = self.inner.read();
        let mut rows = Vec::new();
        for doc in inner.docs.values() {
            let per_col: Vec<Vec<Value>> = queries
                .iter()
                .zip(columns)
                .map(|(q, (_, _, ty))| q.extract_values(&doc.root, *ty))
                .collect();
            let height = per_col.iter().map(Vec::len).max().unwrap_or(0);
            for i in 0..height {
                let row: Row = per_col
                    .iter()
                    .map(|col| col.get(i).cloned().unwrap_or(Value::Null))
                    .collect();
                rows.push(row);
            }
        }
        Batch::try_new(schema, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_sheets() -> DocStore {
        let s = DocStore::new();
        s.insert(Document::from_records(
            "crm extract",
            &[
                vec![("id", "1".into()), ("name", "alice".into())],
                vec![("id", "2".into()), ("name", "bob".into())],
            ],
        ));
        s.insert(Document::from_records(
            "support extract",
            &[vec![("id", "3".into()), ("name", "carol".into())]],
        ));
        s
    }

    #[test]
    fn insert_assigns_increasing_ids() {
        let s = DocStore::new();
        let a = s.insert(Document::from_text("a", "x"));
        let b = s.insert(Document::from_text("b", "y"));
        assert!(b > a);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn keyword_search_is_conjunctive() {
        let s = DocStore::new();
        let d1 = s.insert(Document::from_text("memo", "acme contract renewal"));
        let _d2 = s.insert(Document::from_text("memo", "acme invoice"));
        assert_eq!(s.keyword_search("acme contract"), vec![d1]);
        assert_eq!(s.keyword_search("acme").len(), 2);
        assert!(s.keyword_search("").is_empty());
        assert!(s.keyword_search("ghost").is_empty());
    }

    #[test]
    fn remove_unindexes() {
        let s = DocStore::new();
        let id = s.insert(Document::from_text("memo", "unique_token_xyz"));
        assert_eq!(s.keyword_search("unique_token_xyz"), vec![id]);
        assert!(s.remove(id));
        assert!(s.keyword_search("unique_token_xyz").is_empty());
        assert!(!s.remove(id));
    }

    #[test]
    fn extract_imposes_schema_at_read_time() {
        let s = store_with_sheets();
        let b = s
            .extract(&[
                ("id", "//row/id", DataType::Int),
                ("name", "//row/name", DataType::Str),
            ])
            .unwrap();
        assert_eq!(b.num_rows(), 3);
        assert_eq!(b.rows()[0].get(1), &Value::str("alice"));
        assert_eq!(b.rows()[2].get(0), &Value::Int(3));
    }

    #[test]
    fn extract_pads_ragged_documents_with_null() {
        let s = DocStore::new();
        s.insert(Document::from_records(
            "ragged",
            &[
                vec![("id", "1".into()), ("name", "alice".into())],
                vec![("id", "2".into())], // no name
            ],
        ));
        let b = s
            .extract(&[
                ("id", "//row/id", DataType::Int),
                ("name", "//row/name", DataType::Str),
            ])
            .unwrap();
        assert_eq!(b.num_rows(), 2);
        assert_eq!(b.rows()[1].get(1), &Value::Null);
    }

    #[test]
    fn different_clients_different_schemas_same_store() {
        let s = store_with_sheets();
        // Client A wants ids only; client B wants names only. No schema was
        // ever registered with the store.
        let a = s.extract(&[("id", "//row/id", DataType::Int)]).unwrap();
        let b = s.extract(&[("who", "//row/name", DataType::Str)]).unwrap();
        assert_eq!(a.num_rows(), 3);
        assert_eq!(b.schema().field(0).name, "who");
    }
}
