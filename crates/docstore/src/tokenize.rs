//! Text tokenization shared by the keyword index and the enterprise-search
//! substrate.

/// Lowercase alphanumeric tokens of length >= 2, with a small stop list.
pub fn tokenize_text(text: &str) -> Vec<String> {
    const STOP: &[&str] = &[
        "the", "a", "an", "and", "or", "of", "to", "in", "on", "for", "is", "are", "was",
        "be", "by", "at", "with", "as", "it", "this", "that",
    ];
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| t.len() >= 2)
        .map(str::to_lowercase)
        .filter(|t| !STOP.contains(&t.as_str()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_splits() {
        assert_eq!(
            tokenize_text("Acme Corp: contract-renewal 2005"),
            vec!["acme", "corp", "contract", "renewal", "2005"]
        );
    }

    #[test]
    fn drops_stop_words_and_short_tokens() {
        assert_eq!(tokenize_text("the cat in a box"), vec!["cat", "box"]);
        assert!(tokenize_text("a I x").is_empty());
    }
}
