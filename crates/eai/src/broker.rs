//! A topic-based message broker built on crossbeam channels.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use eii_data::Value;

/// A message published to a topic.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    pub topic: String,
    /// Correlation key (e.g. the entity's id).
    pub key: Value,
    /// Free-form body.
    pub body: String,
}

/// Topic-based pub/sub. Every subscriber to a topic receives every message
/// published to it after subscription.
#[derive(Clone, Default)]
pub struct MessageBroker {
    topics: Arc<Mutex<HashMap<String, Vec<Sender<Message>>>>>,
}

impl MessageBroker {
    /// New broker.
    pub fn new() -> Self {
        MessageBroker::default()
    }

    /// Subscribe to a topic; returns the receiving end.
    pub fn subscribe(&self, topic: &str) -> Receiver<Message> {
        let (tx, rx) = unbounded();
        self.topics
            .lock()
            .entry(topic.to_string())
            .or_default()
            .push(tx);
        rx
    }

    /// Publish a message; returns the number of subscribers reached.
    pub fn publish(&self, msg: Message) -> usize {
        let mut topics = self.topics.lock();
        let Some(subs) = topics.get_mut(&msg.topic) else {
            return 0;
        };
        // Drop closed subscribers as we go.
        subs.retain(|tx| tx.send(msg.clone()).is_ok());
        subs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_to_all_subscribers() {
        let broker = MessageBroker::new();
        let a = broker.subscribe("employee.changed");
        let b = broker.subscribe("employee.changed");
        let n = broker.publish(Message {
            topic: "employee.changed".into(),
            key: Value::Int(7),
            body: "address update".into(),
        });
        assert_eq!(n, 2);
        assert_eq!(a.recv().unwrap().key, Value::Int(7));
        assert_eq!(b.recv().unwrap().body, "address update");
    }

    #[test]
    fn publish_without_subscribers_reaches_nobody() {
        let broker = MessageBroker::new();
        let n = broker.publish(Message {
            topic: "nobody.listens".into(),
            key: Value::Null,
            body: String::new(),
        });
        assert_eq!(n, 0);
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let broker = MessageBroker::new();
        let a = broker.subscribe("t");
        drop(broker.subscribe("t"));
        let n = broker.publish(Message {
            topic: "t".into(),
            key: Value::Int(1),
            body: "x".into(),
        });
        assert_eq!(n, 1);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn topics_are_isolated() {
        let broker = MessageBroker::new();
        let a = broker.subscribe("a");
        broker.publish(Message {
            topic: "b".into(),
            key: Value::Null,
            body: String::new(),
        });
        assert!(a.is_empty());
    }
}
