//! # eii-eai
//!
//! The Enterprise Application Integration substrate — the *update* half of
//! Carey's argument (§4): "'Insert employee into company' is really a
//! business process, possibly needing to run over a period of hours or days
//! ... Such an update clearly must not be a traditional transaction, instead
//! demanding long-running transaction technology and the availability of
//! compensation capabilities in the event of a transaction step failure."
//!
//! - [`ProcessDef`]: a named sequence of steps, each with an action (usually
//!   an update routed through a federation wrapper) and an optional
//!   compensation;
//! - [`SagaEngine`]: runs processes as sagas — on a step failure, completed
//!   steps are compensated in reverse order; everything is journaled;
//! - [`MessageBroker`]: topic-based messaging for notifications between
//!   processes (the "message brokering capabilities" of WebLogic
//!   Integration);
//! - [`FailureInjector`]: deterministic, seedable fault injection for the
//!   saga experiments (E10).

pub mod broker;
pub mod process;
pub mod saga;

pub use broker::{Message, MessageBroker};
pub use process::{ProcessDef, ProcessEnv, Step};
pub use saga::{FailureInjector, JournalEntry, JournalEvent, SagaEngine, SagaOutcome};
