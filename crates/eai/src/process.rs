//! Business-process definitions.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use eii_data::{Result, SimClock, Value};
use eii_federation::Federation;

use crate::broker::MessageBroker;

/// Everything a step can touch: the federation (for wrapper-routed
/// updates), the broker (notifications), a shared variable context, and the
/// simulated clock.
pub struct ProcessEnv<'a> {
    pub federation: &'a Federation,
    pub broker: &'a MessageBroker,
    pub clock: &'a SimClock,
    vars: Mutex<HashMap<String, Value>>,
}

impl<'a> ProcessEnv<'a> {
    /// New environment with initial variables.
    pub fn new(
        federation: &'a Federation,
        broker: &'a MessageBroker,
        clock: &'a SimClock,
        vars: HashMap<String, Value>,
    ) -> Self {
        ProcessEnv {
            federation,
            broker,
            clock,
            vars: Mutex::new(vars),
        }
    }

    /// Read a context variable.
    pub fn get(&self, name: &str) -> Option<Value> {
        self.vars.lock().get(name).cloned()
    }

    /// Write a context variable (steps pass data forward this way).
    pub fn set(&self, name: &str, v: Value) {
        self.vars.lock().insert(name.to_string(), v);
    }
}

/// A step body.
pub type StepFn = Arc<dyn Fn(&ProcessEnv<'_>) -> Result<()> + Send + Sync>;

/// One step of a process: a forward action, an optional compensation, and a
/// simulated duration ("possibly needing to run over a period of hours or
/// days").
#[derive(Clone)]
pub struct Step {
    pub name: String,
    pub action: StepFn,
    pub compensation: Option<StepFn>,
    pub duration_ms: i64,
}

impl Step {
    /// A step with a forward action only.
    pub fn new(
        name: impl Into<String>,
        action: impl Fn(&ProcessEnv<'_>) -> Result<()> + Send + Sync + 'static,
    ) -> Self {
        Step {
            name: name.into(),
            action: Arc::new(action),
            compensation: None,
            duration_ms: 1,
        }
    }

    /// Attach a compensation.
    pub fn with_compensation(
        mut self,
        comp: impl Fn(&ProcessEnv<'_>) -> Result<()> + Send + Sync + 'static,
    ) -> Self {
        self.compensation = Some(Arc::new(comp));
        self
    }

    /// Set the simulated duration.
    pub fn taking_ms(mut self, ms: i64) -> Self {
        self.duration_ms = ms;
        self
    }
}

/// A named business process.
#[derive(Clone)]
pub struct ProcessDef {
    pub name: String,
    pub steps: Vec<Step>,
}

impl ProcessDef {
    /// New empty process.
    pub fn new(name: impl Into<String>) -> Self {
        ProcessDef {
            name: name.into(),
            steps: Vec::new(),
        }
    }

    /// Append a step.
    pub fn step(mut self, step: Step) -> Self {
        self.steps.push(step);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_variables_flow_between_steps() {
        let fed = Federation::new();
        let broker = MessageBroker::new();
        let clock = SimClock::new();
        let env = ProcessEnv::new(&fed, &broker, &clock, HashMap::new());
        env.set("employee_id", Value::Int(42));
        assert_eq!(env.get("employee_id"), Some(Value::Int(42)));
        assert_eq!(env.get("missing"), None);
    }

    #[test]
    fn builder_composes_steps() {
        let p = ProcessDef::new("onboard")
            .step(Step::new("create_record", |_| Ok(())).taking_ms(100))
            .step(
                Step::new("provision_office", |_| Ok(()))
                    .with_compensation(|_| Ok(()))
                    .taking_ms(86_400_000),
            );
        assert_eq!(p.steps.len(), 2);
        assert_eq!(p.steps[1].duration_ms, 86_400_000);
        assert!(p.steps[1].compensation.is_some());
        assert!(p.steps[0].compensation.is_none());
    }
}
