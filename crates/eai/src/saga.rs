//! The saga engine: long-running processes with compensation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use eii_data::{CancelToken, Result, SimClock};
use eii_obs::MetricsRegistry;
use parking_lot::Mutex;

use crate::process::{ProcessDef, ProcessEnv};

/// Deterministic fault injection: each step fails independently with
/// probability `rate`, driven by a seeded RNG so experiments replay exactly.
pub struct FailureInjector {
    rate: f64,
    rng: Mutex<StdRng>,
}

impl FailureInjector {
    /// Injector failing each step with probability `rate`.
    pub fn new(rate: f64, seed: u64) -> Self {
        FailureInjector {
            rate,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// Never fails.
    pub fn none() -> Self {
        FailureInjector::new(0.0, 0)
    }

    /// Injector driven by the federation's shared fault model: a saga step
    /// fails whenever the profile would fail or time out a request, under
    /// the profile's own seed. One fault configuration now describes both
    /// the query path and the process path.
    pub fn from_profile(profile: &eii_federation::FaultProfile) -> Self {
        FailureInjector::new(
            (profile.fail_prob + profile.timeout_prob).clamp(0.0, 1.0),
            profile.seed,
        )
    }

    fn roll(&self) -> bool {
        self.rate > 0.0 && self.rng.lock().gen_bool(self.rate.clamp(0.0, 1.0))
    }
}

/// What happened to one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalEvent {
    Started,
    Completed,
    Failed,
    Compensated,
    CompensationFailed,
}

/// One journal line — the audit trail of a saga instance.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    pub at_ms: i64,
    pub step: String,
    pub event: JournalEvent,
}

/// Final state of a saga instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SagaOutcome {
    /// All steps completed.
    Completed,
    /// A step failed; all previously completed steps were compensated.
    Compensated { failed_step: String },
    /// A step failed AND a compensation failed — manual intervention
    /// required (the case the journal exists for).
    Stuck {
        failed_step: String,
        stuck_compensation: String,
    },
    /// The caller cancelled between steps; all previously completed steps
    /// were compensated. `before_step` is the step that never started.
    Cancelled { before_step: String },
}

/// Runs process definitions with saga semantics.
pub struct SagaEngine {
    clock: SimClock,
    injector: FailureInjector,
    metrics: Option<MetricsRegistry>,
}

impl SagaEngine {
    /// Engine without fault injection.
    pub fn new(clock: SimClock) -> Self {
        SagaEngine {
            clock,
            injector: FailureInjector::none(),
            metrics: None,
        }
    }

    /// Attach a failure injector.
    pub fn with_injector(mut self, injector: FailureInjector) -> Self {
        self.injector = injector;
        self
    }

    /// Record saga step and outcome counters (`saga.step.started`,
    /// `saga.step.compensated`, `saga.outcome.stuck`, ...) into `metrics`
    /// after every run.
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Run one instance. Returns the outcome and the journal.
    ///
    /// Semantics: steps run in order, each advancing the simulated clock by
    /// its duration. On the first failure (real or injected), compensations
    /// of all *completed* steps run in reverse order. A compensation that
    /// itself fails leaves the saga [`SagaOutcome::Stuck`].
    pub fn run(
        &self,
        def: &ProcessDef,
        env: &ProcessEnv<'_>,
    ) -> Result<(SagaOutcome, Vec<JournalEntry>)> {
        self.run_inner(def, env, None)
    }

    /// Like [`SagaEngine::run`], but checks `cancel` between steps: a tripped
    /// token stops the saga before the next step starts and compensates
    /// every completed step in reverse order, exactly as a step failure
    /// would — cancellation must not leave half-done side effects behind.
    pub fn run_with_cancel(
        &self,
        def: &ProcessDef,
        env: &ProcessEnv<'_>,
        cancel: &CancelToken,
    ) -> Result<(SagaOutcome, Vec<JournalEntry>)> {
        self.run_inner(def, env, Some(cancel))
    }

    fn run_inner(
        &self,
        def: &ProcessDef,
        env: &ProcessEnv<'_>,
        cancel: Option<&CancelToken>,
    ) -> Result<(SagaOutcome, Vec<JournalEntry>)> {
        let (outcome, journal) = self.run_steps(def, env, cancel)?;
        if let Some(m) = &self.metrics {
            for entry in &journal {
                let event = match entry.event {
                    JournalEvent::Started => "started",
                    JournalEvent::Completed => "completed",
                    JournalEvent::Failed => "failed",
                    JournalEvent::Compensated => "compensated",
                    JournalEvent::CompensationFailed => "compensation_failed",
                };
                m.inc(&format!("saga.step.{event}"));
            }
            let outcome_name = match &outcome {
                SagaOutcome::Completed => "completed",
                SagaOutcome::Compensated { .. } => "compensated",
                SagaOutcome::Stuck { .. } => "stuck",
                SagaOutcome::Cancelled { .. } => "cancelled",
            };
            m.inc(&format!("saga.outcome.{outcome_name}"));
        }
        Ok((outcome, journal))
    }

    fn run_steps(
        &self,
        def: &ProcessDef,
        env: &ProcessEnv<'_>,
        cancel: Option<&CancelToken>,
    ) -> Result<(SagaOutcome, Vec<JournalEntry>)> {
        let mut journal = Vec::new();
        let mut completed: Vec<usize> = Vec::new();
        for (i, step) in def.steps.iter().enumerate() {
            if cancel.is_some_and(|c| c.is_cancelled()) {
                let outcome = match self.compensate(def, &completed, env, &mut journal) {
                    Some(stuck_compensation) => SagaOutcome::Stuck {
                        failed_step: step.name.clone(),
                        stuck_compensation,
                    },
                    None => SagaOutcome::Cancelled {
                        before_step: step.name.clone(),
                    },
                };
                return Ok((outcome, journal));
            }
            journal.push(JournalEntry {
                at_ms: self.clock.now_ms(),
                step: step.name.clone(),
                event: JournalEvent::Started,
            });
            self.clock.advance_ms(step.duration_ms);
            let injected = self.injector.roll();
            let result = if injected {
                Err(eii_data::EiiError::Process(format!(
                    "injected failure in step {}",
                    step.name
                )))
            } else {
                (step.action)(env)
            };
            match result {
                Ok(()) => {
                    journal.push(JournalEntry {
                        at_ms: self.clock.now_ms(),
                        step: step.name.clone(),
                        event: JournalEvent::Completed,
                    });
                    completed.push(i);
                }
                Err(_) => {
                    journal.push(JournalEntry {
                        at_ms: self.clock.now_ms(),
                        step: step.name.clone(),
                        event: JournalEvent::Failed,
                    });
                    let outcome = match self.compensate(def, &completed, env, &mut journal) {
                        Some(stuck_compensation) => SagaOutcome::Stuck {
                            failed_step: step.name.clone(),
                            stuck_compensation,
                        },
                        None => SagaOutcome::Compensated {
                            failed_step: step.name.clone(),
                        },
                    };
                    return Ok((outcome, journal));
                }
            }
        }
        Ok((SagaOutcome::Completed, journal))
    }

    /// Compensate `completed` steps in reverse order, journaling each one.
    /// Returns the name of the compensation that failed (saga stuck), or
    /// `None` when every completed step was rolled back.
    fn compensate(
        &self,
        def: &ProcessDef,
        completed: &[usize],
        env: &ProcessEnv<'_>,
        journal: &mut Vec<JournalEntry>,
    ) -> Option<String> {
        for &j in completed.iter().rev() {
            let done = &def.steps[j];
            match &done.compensation {
                None => {
                    // No compensation declared: by convention the step is
                    // read-only / idempotent and needs none.
                    journal.push(JournalEntry {
                        at_ms: self.clock.now_ms(),
                        step: done.name.clone(),
                        event: JournalEvent::Compensated,
                    });
                }
                Some(comp) => {
                    self.clock.advance_ms(done.duration_ms / 2);
                    match comp(env) {
                        Ok(()) => journal.push(JournalEntry {
                            at_ms: self.clock.now_ms(),
                            step: done.name.clone(),
                            event: JournalEvent::Compensated,
                        }),
                        Err(_) => {
                            journal.push(JournalEntry {
                                at_ms: self.clock.now_ms(),
                                step: done.name.clone(),
                                event: JournalEvent::CompensationFailed,
                            });
                            return Some(done.name.clone());
                        }
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::MessageBroker;
    use crate::process::Step;
    use eii_data::{EiiError, Value};
    use eii_federation::Federation;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicI64, Ordering};
    use std::sync::Arc;

    fn env<'a>(
        fed: &'a Federation,
        broker: &'a MessageBroker,
        clock: &'a SimClock,
    ) -> ProcessEnv<'a> {
        ProcessEnv::new(fed, broker, clock, HashMap::new())
    }

    #[test]
    fn happy_path_completes_and_advances_clock() {
        let fed = Federation::new();
        let broker = MessageBroker::new();
        let clock = SimClock::new();
        let e = env(&fed, &broker, &clock);
        let def = ProcessDef::new("p")
            .step(Step::new("a", |_| Ok(())).taking_ms(10))
            .step(Step::new("b", |_| Ok(())).taking_ms(20));
        let engine = SagaEngine::new(clock.clone());
        let (outcome, journal) = engine.run(&def, &e).unwrap();
        assert_eq!(outcome, SagaOutcome::Completed);
        assert_eq!(clock.now_ms(), 30);
        assert_eq!(
            journal.iter().filter(|j| j.event == JournalEvent::Completed).count(),
            2
        );
    }

    #[test]
    fn failure_compensates_in_reverse_order() {
        let fed = Federation::new();
        let broker = MessageBroker::new();
        let clock = SimClock::new();
        let e = env(&fed, &broker, &clock);
        let balance = Arc::new(AtomicI64::new(0));
        let (b1, b2) = (balance.clone(), balance.clone());
        let (c1, c2) = (balance.clone(), balance.clone());
        let def = ProcessDef::new("p")
            .step(
                Step::new("reserve_office", move |_| {
                    b1.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                })
                .with_compensation(move |_| {
                    c1.fetch_sub(1, Ordering::SeqCst);
                    Ok(())
                }),
            )
            .step(
                Step::new("order_laptop", move |_| {
                    b2.fetch_add(10, Ordering::SeqCst);
                    Ok(())
                })
                .with_compensation(move |_| {
                    c2.fetch_sub(10, Ordering::SeqCst);
                    Ok(())
                }),
            )
            .step(Step::new("approval", |_| {
                Err(EiiError::Process("rejected".into()))
            }));
        let engine = SagaEngine::new(clock.clone());
        let (outcome, journal) = engine.run(&def, &e).unwrap();
        assert_eq!(
            outcome,
            SagaOutcome::Compensated {
                failed_step: "approval".into()
            }
        );
        assert_eq!(balance.load(Ordering::SeqCst), 0, "all effects undone");
        // Reverse order: laptop compensated before office.
        let comp_order: Vec<&str> = journal
            .iter()
            .filter(|j| j.event == JournalEvent::Compensated)
            .map(|j| j.step.as_str())
            .collect();
        assert_eq!(comp_order, vec!["order_laptop", "reserve_office"]);
    }

    #[test]
    fn stuck_when_compensation_fails() {
        let fed = Federation::new();
        let broker = MessageBroker::new();
        let clock = SimClock::new();
        let e = env(&fed, &broker, &clock);
        let def = ProcessDef::new("p")
            .step(
                Step::new("a", |_| Ok(()))
                    .with_compensation(|_| Err(EiiError::Process("cannot undo".into()))),
            )
            .step(Step::new("b", |_| Err(EiiError::Process("boom".into()))));
        let engine = SagaEngine::new(clock.clone());
        let (outcome, journal) = engine.run(&def, &e).unwrap();
        assert_eq!(
            outcome,
            SagaOutcome::Stuck {
                failed_step: "b".into(),
                stuck_compensation: "a".into()
            }
        );
        assert!(journal
            .iter()
            .any(|j| j.event == JournalEvent::CompensationFailed));
    }

    #[test]
    fn cancellation_between_steps_compensates_completed_work() {
        let fed = Federation::new();
        let broker = MessageBroker::new();
        let clock = SimClock::new();
        let e = env(&fed, &broker, &clock);
        let balance = Arc::new(AtomicI64::new(0));
        let (b1, c1) = (balance.clone(), balance.clone());
        let cancel = CancelToken::new();
        let trip = cancel.clone();
        let def = ProcessDef::new("p")
            .step(
                Step::new("reserve", move |_| {
                    b1.fetch_add(5, Ordering::SeqCst);
                    // The caller gives up while the saga is mid-flight.
                    trip.cancel("user closed the request");
                    Ok(())
                })
                .with_compensation(move |_| {
                    c1.fetch_sub(5, Ordering::SeqCst);
                    Ok(())
                }),
            )
            .step(Step::new("charge", |_| {
                panic!("a cancelled saga must not start its next step")
            }));
        let engine = SagaEngine::new(clock.clone());
        let (outcome, journal) = engine.run_with_cancel(&def, &e, &cancel).unwrap();
        assert_eq!(
            outcome,
            SagaOutcome::Cancelled {
                before_step: "charge".into()
            }
        );
        assert_eq!(balance.load(Ordering::SeqCst), 0, "reserve rolled back");
        assert!(journal
            .iter()
            .any(|j| j.step == "reserve" && j.event == JournalEvent::Compensated));
    }

    #[test]
    fn an_untripped_token_changes_nothing() {
        let fed = Federation::new();
        let broker = MessageBroker::new();
        let clock = SimClock::new();
        let e = env(&fed, &broker, &clock);
        let def = ProcessDef::new("p")
            .step(Step::new("a", |_| Ok(())).taking_ms(10))
            .step(Step::new("b", |_| Ok(())).taking_ms(20));
        let engine = SagaEngine::new(clock.clone());
        let (outcome, _) = engine
            .run_with_cancel(&def, &e, &CancelToken::new())
            .unwrap();
        assert_eq!(outcome, SagaOutcome::Completed);
        assert_eq!(clock.now_ms(), 30);
    }

    #[test]
    fn injector_is_deterministic() {
        let fed = Federation::new();
        let broker = MessageBroker::new();
        let run_once = |seed: u64| {
            let clock = SimClock::new();
            let e = env(&fed, &broker, &clock);
            let def = ProcessDef::new("p")
                .step(Step::new("a", |_| Ok(())))
                .step(Step::new("b", |_| Ok(())))
                .step(Step::new("c", |_| Ok(())));
            let engine =
                SagaEngine::new(clock.clone()).with_injector(FailureInjector::new(0.5, seed));
            engine.run(&def, &e).unwrap().0
        };
        assert_eq!(run_once(7), run_once(7), "same seed, same outcome");
    }

    #[test]
    fn shared_fault_profile_drives_saga_failures() {
        use eii_federation::FaultProfile;

        let fed = Federation::new();
        let broker = MessageBroker::new();
        let run_with = |injector: FailureInjector| {
            let clock = SimClock::new();
            let e = env(&fed, &broker, &clock);
            let def = ProcessDef::new("p")
                .step(Step::new("a", |_| Ok(())))
                .step(Step::new("b", |_| Ok(())))
                .step(Step::new("c", |_| Ok(())));
            let engine = SagaEngine::new(clock.clone()).with_injector(injector);
            engine.run(&def, &e).unwrap().0
        };
        // The one profile that configures the query path configures the
        // process path too, and replays identically.
        let profile = FaultProfile::failing(0.4, 99).with_timeouts(0.2, 50);
        assert_eq!(
            run_with(FailureInjector::from_profile(&profile)),
            run_with(FailureInjector::from_profile(&profile)),
            "same profile, same saga outcome"
        );
        // A fault-free profile never trips a step.
        assert_eq!(
            run_with(FailureInjector::from_profile(&FaultProfile::none())),
            SagaOutcome::Completed
        );
    }

    #[test]
    fn context_variables_cross_steps() {
        let fed = Federation::new();
        let broker = MessageBroker::new();
        let clock = SimClock::new();
        let e = env(&fed, &broker, &clock);
        let def = ProcessDef::new("p")
            .step(Step::new("alloc_id", |env| {
                env.set("id", Value::Int(99));
                Ok(())
            }))
            .step(Step::new("use_id", |env| {
                assert_eq!(env.get("id"), Some(Value::Int(99)));
                Ok(())
            }));
        let engine = SagaEngine::new(clock.clone());
        let (outcome, _) = engine.run(&def, &e).unwrap();
        assert_eq!(outcome, SagaOutcome::Completed);
    }

    #[test]
    fn steps_publish_notifications() {
        let fed = Federation::new();
        let broker = MessageBroker::new();
        let rx = broker.subscribe("hr.changed");
        let clock = SimClock::new();
        let e = env(&fed, &broker, &clock);
        let def = ProcessDef::new("p").step(Step::new("notify", |env| {
            env.broker.publish(crate::broker::Message {
                topic: "hr.changed".into(),
                key: Value::Int(1),
                body: "hired".into(),
            });
            Ok(())
        }));
        SagaEngine::new(clock.clone()).run(&def, &e).unwrap();
        assert_eq!(rx.recv().unwrap().body, "hired");
    }
}
