//! Aggregate accumulators with SQL NULL semantics.

use std::collections::HashSet;

use eii_data::{EiiError, Result, Value};
use eii_expr::AggFunc;

/// Running sum that stays integral until a float arrives.
#[derive(Debug, Clone, Copy)]
enum Sum {
    Int(i64),
    Float(f64),
}

impl Sum {
    fn add(&mut self, v: &Value) -> Result<()> {
        match (&mut *self, v) {
            (Sum::Int(acc), Value::Int(i)) => *acc = acc.wrapping_add(*i),
            (Sum::Int(acc), Value::Float(f)) => *self = Sum::Float(*acc as f64 + f),
            (Sum::Float(acc), v) => {
                *acc += v
                    .as_float()
                    .ok_or_else(|| EiiError::Type(format!("SUM over non-numeric {v}")))?;
            }
            (_, other) => {
                return Err(EiiError::Type(format!("SUM over non-numeric {other}")))
            }
        }
        Ok(())
    }

    fn value(self) -> Value {
        match self {
            Sum::Int(i) => Value::Int(i),
            Sum::Float(f) => Value::Float(f),
        }
    }
}

/// One aggregate's state.
#[derive(Debug, Clone)]
pub struct Accumulator {
    func: AggFunc,
    distinct: bool,
    seen: HashSet<Value>,
    count: i64,
    sum: Option<Sum>,
    min: Option<Value>,
    max: Option<Value>,
}

impl Accumulator {
    /// Fresh state for one aggregate.
    pub fn new(func: AggFunc, distinct: bool) -> Self {
        Accumulator {
            func,
            distinct,
            seen: HashSet::new(),
            count: 0,
            sum: None,
            min: None,
            max: None,
        }
    }

    /// Feed one input value. For `COUNT(*)` pass `None`; otherwise the
    /// evaluated argument (NULLs are ignored, per SQL).
    pub fn push(&mut self, v: Option<&Value>) -> Result<()> {
        match v {
            None => {
                // COUNT(*) counts rows unconditionally.
                self.count += 1;
                Ok(())
            }
            Some(Value::Null) => Ok(()),
            Some(v) => {
                if self.distinct && !self.seen.insert(v.clone()) {
                    return Ok(());
                }
                self.count += 1;
                match self.func {
                    AggFunc::Count | AggFunc::CountStar => {}
                    AggFunc::Sum | AggFunc::Avg => {
                        let sum = self.sum.get_or_insert(Sum::Int(0));
                        sum.add(v)?;
                    }
                    AggFunc::Min => {
                        if self.min.as_ref().is_none_or(|m| v < m) {
                            self.min = Some(v.clone());
                        }
                    }
                    AggFunc::Max => {
                        if self.max.as_ref().is_none_or(|m| v > m) {
                            self.max = Some(v.clone());
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// Produce the final value.
    pub fn finish(self) -> Value {
        match self.func {
            AggFunc::Count | AggFunc::CountStar => Value::Int(self.count),
            AggFunc::Sum => self.sum.map_or(Value::Null, Sum::value),
            AggFunc::Avg => match self.sum {
                None => Value::Null,
                Some(s) => {
                    let total = match s {
                        Sum::Int(i) => i as f64,
                        Sum::Float(f) => f,
                    };
                    Value::Float(total / self.count as f64)
                }
            },
            AggFunc::Min => self.min.unwrap_or(Value::Null),
            AggFunc::Max => self.max.unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggFunc, distinct: bool, vals: &[Value]) -> Value {
        let mut acc = Accumulator::new(func, distinct);
        for v in vals {
            acc.push(Some(v)).unwrap();
        }
        acc.finish()
    }

    #[test]
    fn count_ignores_nulls_count_star_does_not() {
        let vals = [Value::Int(1), Value::Null, Value::Int(2)];
        assert_eq!(run(AggFunc::Count, false, &vals), Value::Int(2));
        let mut star = Accumulator::new(AggFunc::CountStar, false);
        for _ in 0..3 {
            star.push(None).unwrap();
        }
        assert_eq!(star.finish(), Value::Int(3));
    }

    #[test]
    fn sum_stays_integer_until_float() {
        assert_eq!(
            run(AggFunc::Sum, false, &[Value::Int(1), Value::Int(2)]),
            Value::Int(3)
        );
        assert_eq!(
            run(AggFunc::Sum, false, &[Value::Int(1), Value::Float(0.5)]),
            Value::Float(1.5)
        );
        assert_eq!(run(AggFunc::Sum, false, &[Value::Null]), Value::Null);
    }

    #[test]
    fn avg_min_max() {
        let vals = [Value::Int(1), Value::Int(2), Value::Int(3), Value::Null];
        assert_eq!(run(AggFunc::Avg, false, &vals), Value::Float(2.0));
        assert_eq!(run(AggFunc::Min, false, &vals), Value::Int(1));
        assert_eq!(run(AggFunc::Max, false, &vals), Value::Int(3));
    }

    #[test]
    fn distinct_dedups() {
        let vals = [Value::Int(5), Value::Int(5), Value::Int(7)];
        assert_eq!(run(AggFunc::Count, true, &vals), Value::Int(2));
        assert_eq!(run(AggFunc::Sum, true, &vals), Value::Int(12));
    }

    #[test]
    fn empty_aggregates() {
        assert_eq!(run(AggFunc::Count, false, &[]), Value::Int(0));
        assert_eq!(run(AggFunc::Sum, false, &[]), Value::Null);
        assert_eq!(run(AggFunc::Avg, false, &[]), Value::Null);
        assert_eq!(run(AggFunc::Min, false, &[]), Value::Null);
    }

    #[test]
    fn sum_over_strings_errors() {
        let mut acc = Accumulator::new(AggFunc::Sum, false);
        assert!(acc.push(Some(&Value::str("x"))).is_err());
    }
}
