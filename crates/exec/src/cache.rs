//! The local answer stores: materialized-view rows for the planner's
//! `MatViewScan` nodes, and the semantic result cache that short-circuits
//! whole queries.
//!
//! Both are clone-shared (like [`FallbackStore`](crate::degrade::FallbackStore))
//! so the application, the matview manager, and the executor can hold the
//! same store.
//!
//! The result cache is *semantic*: its key is the normalized (optimized)
//! logical plan, so two syntactically different queries that optimize to
//! the same plan share an entry. Freshness is version-based — at fill time
//! the cache records each base table's change-log high watermark, and a
//! lookup re-probes them: all unchanged ⇒ a silent hit; changed or
//! unverifiable ⇒ the entry is stale, servable only within the configured
//! staleness budget and then reported exactly like stale fallback data
//! (per-source [`SourceReport`]s), composing with the degradation layer's
//! contract that "the answer" is never silently stale.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use eii_data::{Batch, Result, Row};
use eii_federation::{Federation, QueryCost};
use eii_obs::MetricsRegistry;

use crate::degrade::SourceReport;

/// Materialized rows for registered views, keyed by view name; shared by
/// cloning. The matview manager fills it on define/refresh; the executor
/// reads it to serve `MatViewScan` operators.
#[derive(Debug, Clone, Default)]
pub struct MatViewStore {
    inner: Arc<Mutex<BTreeMap<String, (Batch, i64)>>>,
}

impl MatViewStore {
    /// Empty store.
    pub fn new() -> Self {
        MatViewStore::default()
    }

    /// Insert (or replace) the materialization for `name`, stamped with the
    /// simulated time it was computed.
    pub fn put(&self, name: impl Into<String>, batch: Batch, as_of_ms: i64) {
        self.inner
            .lock()
            .expect("matview store lock")
            .insert(name.into(), (batch, as_of_ms));
    }

    /// The materialization for `name`, if present.
    pub fn get(&self, name: &str) -> Option<(Batch, i64)> {
        self.inner
            .lock()
            .expect("matview store lock")
            .get(name)
            .cloned()
    }

    /// Drop the materialization for `name`.
    pub fn remove(&self, name: &str) {
        self.inner.lock().expect("matview store lock").remove(name);
    }

    /// All stored view names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.inner
            .lock()
            .expect("matview store lock")
            .keys()
            .cloned()
            .collect()
    }
}

/// Re-shape a stored batch to `target`'s columns by name (qualifiers are
/// ignored — the stored rows come from a single relation). Lets one
/// materialization serve scans that project fewer columns or use a
/// different alias.
pub fn adapt_batch(stored: &Batch, target: &eii_data::SchemaRef) -> Result<Batch> {
    let from = stored.schema();
    let indices = target
        .fields()
        .iter()
        .map(|f| from.index_of(None, &f.name))
        .collect::<Result<Vec<_>>>()?;
    let identity = indices.len() == from.len() && indices.iter().enumerate().all(|(i, &j)| i == j);
    let rows: Vec<Row> = if identity {
        stored.rows().to_vec()
    } else {
        stored.rows().iter().map(|r| r.project(&indices)).collect()
    };
    Ok(Batch::new(target.clone(), rows))
}

/// Result-cache tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Maximum cached results; least-recently-used entries evict beyond it.
    pub capacity: usize,
    /// How old (simulated ms) a result whose base tables changed — or
    /// cannot be verified — may be and still be served, reported as stale.
    /// `0` means only version-verified hits are ever served.
    pub staleness_budget_ms: i64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 64,
            staleness_budget_ms: 0,
        }
    }
}

/// A result served from the cache.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// The memoized rows.
    pub batch: Batch,
    /// What the original federated execution cost — the spend this hit
    /// avoided.
    pub cost: QueryCost,
    /// Bytes the original execution shipped, per source; credited to the
    /// ledger's bytes-saved account on a hit.
    pub per_source_bytes: Vec<(String, usize)>,
    /// Simulated ms since the entry was filled.
    pub age_ms: i64,
}

/// Outcome of a cache probe.
#[derive(Debug, Clone)]
pub enum CacheLookup {
    /// Entry present and every base table's version verified unchanged.
    Hit(CachedResult),
    /// Entry present but base data changed (or could not be verified);
    /// still within the staleness budget, so it may be served — flagged
    /// with one report per suspect table, like stale fallback data.
    Stale(CachedResult, Vec<SourceReport>),
    /// No servable entry.
    Miss,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    batch: Batch,
    cost: QueryCost,
    per_source_bytes: Vec<(String, usize)>,
    /// `source.table` → change-log high watermark at fill time (`None`
    /// when the source exposes no change log).
    versions: Vec<(String, Option<u64>)>,
    filled_at_ms: i64,
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: BTreeMap<String, CacheEntry>,
    tick: u64,
    evictions: u64,
    invalidations: u64,
}

/// Bounded, freshness-aware semantic result cache, shared by cloning.
#[derive(Debug, Clone)]
pub struct ResultCache {
    inner: Arc<Mutex<CacheInner>>,
    config: CacheConfig,
    metrics: Option<MetricsRegistry>,
}

impl ResultCache {
    /// Empty cache with the given bounds.
    pub fn new(config: CacheConfig) -> Self {
        ResultCache {
            inner: Arc::new(Mutex::new(CacheInner::default())),
            config,
            metrics: None,
        }
    }

    /// Record cache events (`cache.hits`, `cache.misses`,
    /// `cache.stale_hits`, `cache.evictions`, `cache.invalidations`) into
    /// `metrics`.
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The configuration the cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    fn metric(&self, name: &str, delta: u64) {
        if let Some(m) = &self.metrics {
            m.add(name, delta);
        }
    }

    /// Current change-log high watermark of each `source.table`, probed
    /// through the federation (`None` where the source has no change log).
    /// Probes read connector metadata only — no rows ship, nothing is
    /// charged to the transfer ledger.
    pub fn probe_versions(
        federation: &Federation,
        tables: &[String],
    ) -> Vec<(String, Option<u64>)> {
        tables
            .iter()
            .map(|qualified| {
                let version = qualified.split_once('.').and_then(|(source, table)| {
                    let handle = federation.source(source).ok()?;
                    let (_, watermark) = handle.connector().changes_since(table, u64::MAX).ok()?;
                    Some(watermark)
                });
                (qualified.clone(), version)
            })
            .collect()
    }

    /// Probe the cache for `key` at simulated time `now_ms`, re-validating
    /// the entry's base-table versions against the federation.
    pub fn lookup(&self, key: &str, now_ms: i64, federation: &Federation) -> CacheLookup {
        self.lookup_with_budget(key, now_ms, federation, None)
    }

    /// [`ResultCache::lookup`] with a per-query staleness budget override
    /// (milliseconds a stale entry may still be served): sessions can relax
    /// or tighten the configured budget without touching the shared config.
    pub fn lookup_with_budget(
        &self,
        key: &str,
        now_ms: i64,
        federation: &Federation,
        staleness_budget_ms: Option<i64>,
    ) -> CacheLookup {
        let budget = staleness_budget_ms.unwrap_or(self.config.staleness_budget_ms);
        let mut inner = self.inner.lock().expect("result cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        let Some(entry) = inner.entries.get_mut(key) else {
            self.metric("cache.misses", 1);
            return CacheLookup::Miss;
        };
        entry.last_used = tick;
        let age_ms = (now_ms - entry.filled_at_ms).max(0);
        let mut suspect: Vec<SourceReport> = Vec::new();
        for (qualified, filled_version) in &entry.versions {
            let (source, table) = qualified
                .split_once('.')
                .unwrap_or((qualified.as_str(), ""));
            let current = federation
                .source(source)
                .ok()
                .and_then(|h| h.connector().changes_since(table, u64::MAX).ok())
                .map(|(_, watermark)| watermark);
            let verified = matches!((filled_version, current), (Some(a), Some(b)) if *a == b);
            if !verified {
                suspect.push(SourceReport {
                    source: source.to_string(),
                    table: table.to_string(),
                    stale_ms: Some(age_ms),
                    error: match (filled_version, current) {
                        (Some(a), Some(b)) => format!(
                            "cached result is stale: {qualified} changed \
                             (watermark {a} -> {b})"
                        ),
                        _ => format!("cached result age unverifiable for {qualified}"),
                    },
                });
            }
        }
        let result = CachedResult {
            batch: entry.batch.clone(),
            cost: entry.cost,
            per_source_bytes: entry.per_source_bytes.clone(),
            age_ms,
        };
        if suspect.is_empty() {
            self.metric("cache.hits", 1);
            CacheLookup::Hit(result)
        } else if budget > 0 && age_ms <= budget {
            self.metric("cache.stale_hits", 1);
            CacheLookup::Stale(result, suspect)
        } else {
            inner.entries.remove(key);
            inner.invalidations += 1;
            self.metric("cache.invalidations", 1);
            self.metric("cache.misses", 1);
            CacheLookup::Miss
        }
    }

    /// Memoize a freshly executed result under `key`, evicting the least
    /// recently used entries beyond capacity.
    pub fn fill(
        &self,
        key: impl Into<String>,
        batch: Batch,
        cost: QueryCost,
        per_source_bytes: Vec<(String, usize)>,
        versions: Vec<(String, Option<u64>)>,
        now_ms: i64,
    ) {
        let mut inner = self.inner.lock().expect("result cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.insert(
            key.into(),
            CacheEntry {
                batch,
                cost,
                per_source_bytes,
                versions,
                filled_at_ms: now_ms,
                last_used: tick,
            },
        );
        while inner.entries.len() > self.config.capacity.max(1) {
            let Some(lru) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            inner.entries.remove(&lru);
            inner.evictions += 1;
            self.metric("cache.evictions", 1);
        }
    }

    /// Refresh an existing entry in place: replace its batch and base-table
    /// versions and reset its fill time, without touching LRU order or
    /// capacity. Incremental view maintenance uses this to push a freshly
    /// maintained result into the cache instead of invalidating it —
    /// readers keep hitting instead of rerunning. Returns false (and does
    /// nothing) when `key` is not cached.
    pub fn refresh_entry(
        &self,
        key: &str,
        batch: Batch,
        versions: Vec<(String, Option<u64>)>,
        now_ms: i64,
    ) -> bool {
        let mut inner = self.inner.lock().expect("result cache lock");
        let Some(entry) = inner.entries.get_mut(key) else {
            return false;
        };
        entry.batch = batch;
        entry.versions = versions;
        entry.filled_at_ms = now_ms;
        self.metric("cache.refreshed", 1);
        true
    }

    /// Drop every entry that depends on `source.table` (a write landed
    /// there); returns how many were invalidated.
    pub fn invalidate_table(&self, qualified: &str) -> usize {
        let mut inner = self.inner.lock().expect("result cache lock");
        let doomed: Vec<String> = inner
            .entries
            .iter()
            .filter(|(_, e)| e.versions.iter().any(|(t, _)| t == qualified))
            .map(|(k, _)| k.clone())
            .collect();
        for k in &doomed {
            inner.entries.remove(k);
        }
        inner.invalidations += doomed.len() as u64;
        self.metric("cache.invalidations", doomed.len() as u64);
        doomed.len()
    }

    /// Cached entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("result cache lock").entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total LRU evictions so far.
    pub fn evictions(&self) -> u64 {
        self.inner.lock().expect("result cache lock").evictions
    }

    /// Total entries dropped for staleness or explicit invalidation.
    pub fn invalidations(&self) -> u64 {
        self.inner
            .lock()
            .expect("result cache lock")
            .invalidations
    }

    /// Drop everything.
    pub fn clear(&self) {
        self.inner
            .lock()
            .expect("result cache lock")
            .entries
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eii_data::{row, DataType, Field, Schema};
    use std::sync::Arc as StdArc;

    fn batch() -> Batch {
        let schema = StdArc::new(Schema::new(vec![
            Field::new("id", DataType::Int).with_relation("c"),
            Field::new("name", DataType::Str).with_relation("c"),
        ]));
        Batch::new(schema, vec![row![1i64, "alice"], row![2i64, "bob"]])
    }

    #[test]
    fn matview_store_round_trips() {
        let store = MatViewStore::new();
        assert!(store.get("top").is_none());
        store.put("top", batch(), 5);
        let (b, at) = store.get("top").unwrap();
        assert_eq!(b.num_rows(), 2);
        assert_eq!(at, 5);
        assert_eq!(store.names(), vec!["top".to_string()]);
        store.remove("top");
        assert!(store.get("top").is_none());
    }

    #[test]
    fn adapt_batch_projects_and_requalifies() {
        let target = StdArc::new(Schema::new(vec![
            Field::new("name", DataType::Str).with_relation("x")
        ]));
        let out = adapt_batch(&batch(), &target).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.schema().field(0).relation.as_deref(), Some("x"));
        assert_eq!(out.rows()[0], row!["alice"]);
    }

    #[test]
    fn adapt_batch_rejects_missing_columns() {
        let target = StdArc::new(Schema::new(vec![Field::new("ghost", DataType::Str)]));
        assert!(adapt_batch(&batch(), &target).is_err());
    }

    #[test]
    fn refresh_entry_replaces_in_place_without_eviction() {
        let fed = Federation::new();
        let cache = ResultCache::new(CacheConfig {
            capacity: 2,
            staleness_budget_ms: 0,
        });
        assert!(
            !cache.refresh_entry("ghost", batch(), vec![], 0),
            "absent keys are not created"
        );
        cache.fill("q1", batch(), QueryCost::default(), vec![], vec![], 0);
        let fresh = Batch::new(batch().schema().clone(), vec![row![9i64, "zoe"]]);
        assert!(cache.refresh_entry("q1", fresh, vec![], 50));
        match cache.lookup("q1", 50, &fed) {
            CacheLookup::Hit(r) => {
                assert_eq!(r.batch.rows()[0], row![9i64, "zoe"]);
                assert_eq!(r.age_ms, 0, "fill time was reset");
            }
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn cache_fill_hit_and_lru_eviction() {
        let fed = Federation::new();
        let cache = ResultCache::new(CacheConfig {
            capacity: 2,
            staleness_budget_ms: 0,
        });
        // No version tracking: empty versions always verify.
        cache.fill("q1", batch(), QueryCost::default(), vec![], vec![], 0);
        cache.fill("q2", batch(), QueryCost::default(), vec![], vec![], 0);
        assert!(matches!(cache.lookup("q1", 0, &fed), CacheLookup::Hit(_)));
        // q2 is now least-recently-used; a third fill evicts it.
        cache.fill("q3", batch(), QueryCost::default(), vec![], vec![], 0);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(matches!(cache.lookup("q2", 0, &fed), CacheLookup::Miss));
        assert!(matches!(cache.lookup("q1", 0, &fed), CacheLookup::Hit(_)));
    }

    #[test]
    fn unverifiable_entries_respect_the_staleness_budget() {
        let fed = Federation::new();
        let budget = ResultCache::new(CacheConfig {
            capacity: 8,
            staleness_budget_ms: 100,
        });
        // A version over a source the federation does not know: never
        // verifiable.
        let versions = vec![("ghost.t".to_string(), None)];
        budget.fill("q", batch(), QueryCost::default(), vec![], versions, 0);
        match budget.lookup("q", 50, &fed) {
            CacheLookup::Stale(res, reports) => {
                assert_eq!(res.age_ms, 50);
                assert_eq!(reports.len(), 1);
                assert_eq!(reports[0].source, "ghost");
                assert_eq!(reports[0].stale_ms, Some(50));
            }
            other => panic!("expected stale hit, got {other:?}"),
        }
        // Past the budget the entry dies.
        assert!(matches!(budget.lookup("q", 200, &fed), CacheLookup::Miss));
        assert_eq!(budget.invalidations(), 1);
        assert!(budget.is_empty());
    }

    #[test]
    fn invalidate_table_drops_dependents_only() {
        let cache = ResultCache::new(CacheConfig::default());
        cache.fill(
            "q1",
            batch(),
            QueryCost::default(),
            vec![],
            vec![("crm.customers".into(), Some(3))],
            0,
        );
        cache.fill(
            "q2",
            batch(),
            QueryCost::default(),
            vec![],
            vec![("sales.orders".into(), Some(7))],
            0,
        );
        assert_eq!(cache.invalidate_table("crm.customers"), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.invalidations(), 1);
    }
}
