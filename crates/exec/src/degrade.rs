//! Graceful degradation: what the executor does when a source stays down
//! after the federation's resilience layer gives up.
//!
//! Three policies: fail the query (default), substitute a registered stale
//! snapshot (annotated with its staleness), or keep the surviving branches
//! and report which sources went dark. Either way the caller sees a
//! per-source [`SourceReport`] in the query result, so "the answer" is
//! never silently partial.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use eii_data::{Batch, EiiError, Result, Row, SchemaRef};
use eii_expr::bind;
use eii_federation::SourceQuery;

/// What the executor does when a source request ultimately fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradationPolicy {
    /// Propagate the error; the query fails (strict, the default).
    #[default]
    Fail,
    /// Serve the component query from a registered stale snapshot; fail if
    /// none is registered for that table.
    Fallback,
    /// Substitute an empty answer for the dead source and return the
    /// surviving branches, flagged per source.
    PartialResults,
}

#[derive(Debug, Clone)]
struct Snapshot {
    batch: Batch,
    as_of_ms: i64,
}

/// Stale full-table snapshots keyed by `source.table`, shared by cloning.
///
/// Typically loaded from the last warehouse extract or a periodic cache
/// refresh; `as_of_ms` records the simulated time the copy was taken.
#[derive(Debug, Clone, Default)]
pub struct FallbackStore {
    inner: Arc<Mutex<BTreeMap<String, Snapshot>>>,
}

impl FallbackStore {
    /// Empty store.
    pub fn new() -> Self {
        FallbackStore::default()
    }

    /// Register (or replace) the snapshot for `source.table`.
    pub fn register(&self, qualified: impl Into<String>, batch: Batch, as_of_ms: i64) {
        self.inner
            .lock()
            .expect("fallback store lock")
            .insert(qualified.into(), Snapshot { batch, as_of_ms });
    }

    /// The snapshot for `source.table`, if one is registered.
    pub fn get(&self, qualified: &str) -> Option<(Batch, i64)> {
        self.inner
            .lock()
            .expect("fallback store lock")
            .get(qualified)
            .map(|s| (s.batch.clone(), s.as_of_ms))
    }

    /// All registered table names, sorted.
    pub fn tables(&self) -> Vec<String> {
        self.inner
            .lock()
            .expect("fallback store lock")
            .keys()
            .cloned()
            .collect()
    }
}

/// How one source fared during a query. Only degraded sources are reported;
/// an empty report list means every answer was live.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceReport {
    /// The source that failed.
    pub source: String,
    /// The table the component query addressed.
    pub table: String,
    /// How stale the substituted snapshot was, ms — `None` when the branch
    /// was dropped instead of served from a snapshot.
    pub stale_ms: Option<i64>,
    /// The error the resilience layer gave up with.
    pub error: String,
}

/// Evaluate a [`SourceQuery`] against an in-memory batch at the hub — the
/// same semantics a cooperative source applies: conjunctive filters,
/// binding lists, projection, then limit.
pub fn apply_source_query(batch: &Batch, q: &SourceQuery) -> Result<Batch> {
    let schema = batch.schema().clone();
    let bound_filters = q
        .filters
        .iter()
        .map(|f| bind(f, &schema))
        .collect::<Result<Vec<_>>>()?;
    let binding_idx = q
        .bindings
        .iter()
        .map(|(col, vals)| Ok((schema.index_of(None, col)?, vals)))
        .collect::<Result<Vec<_>>>()?;

    let mut rows: Vec<Row> = Vec::new();
    'rows: for row in batch.rows() {
        for f in &bound_filters {
            if !f.eval_predicate(row)? {
                continue 'rows;
            }
        }
        for (idx, vals) in &binding_idx {
            if !vals.contains(row.get(*idx)) {
                continue 'rows;
            }
        }
        rows.push(row.clone());
        if let Some(n) = q.limit {
            if rows.len() >= n {
                break;
            }
        }
    }

    match &q.projection {
        None => Ok(Batch::new(schema, rows)),
        Some(cols) => {
            let indices = cols
                .iter()
                .map(|c| schema.index_of(None, c))
                .collect::<Result<Vec<_>>>()?;
            let fields = indices
                .iter()
                .map(|&i| schema.field(i).clone())
                .collect::<Vec<_>>();
            let out_schema: SchemaRef = Arc::new(eii_data::Schema::new(fields));
            let rows = rows.into_iter().map(|r| r.project(&indices)).collect();
            Ok(Batch::new(out_schema, rows))
        }
    }
}

/// Resolve a degradation decision for one failed component query.
///
/// Returns the substitute batch (in the source's column layout) plus the
/// report entry, or propagates `err` when the policy does not cover it.
pub fn degrade(
    policy: DegradationPolicy,
    store: &FallbackStore,
    source: &str,
    q: &SourceQuery,
    expect_schema: &SchemaRef,
    now_ms: i64,
    err: EiiError,
) -> Result<(Batch, SourceReport)> {
    match policy {
        DegradationPolicy::Fail => Err(err),
        DegradationPolicy::Fallback => {
            let qualified = format!("{source}.{}", q.table);
            let Some((snapshot, as_of_ms)) = store.get(&qualified) else {
                return Err(EiiError::Execution(format!(
                    "source failed and no fallback snapshot registered for \
                     {qualified}: {err}"
                )));
            };
            let batch = apply_source_query(&snapshot, q)?;
            let report = SourceReport {
                source: source.to_string(),
                table: q.table.clone(),
                stale_ms: Some((now_ms - as_of_ms).max(0)),
                error: err.to_string(),
            };
            Ok((batch, report))
        }
        DegradationPolicy::PartialResults => {
            let report = SourceReport {
                source: source.to_string(),
                table: q.table.clone(),
                stale_ms: None,
                error: err.to_string(),
            };
            Ok((Batch::empty(expect_schema.clone()), report))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eii_data::{row, DataType, Field, Schema, Value};
    use eii_expr::Expr;

    fn batch() -> Batch {
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int).not_null(),
            Field::new("name", DataType::Str),
            Field::new("score", DataType::Int),
        ]));
        Batch::new(
            schema,
            vec![
                row![1i64, "alice", 10i64],
                row![2i64, "bob", 20i64],
                row![3i64, "carol", 30i64],
            ],
        )
    }

    #[test]
    fn applies_filters_projection_and_limit() {
        let q = SourceQuery {
            table: "t".into(),
            projection: Some(vec!["name".into()]),
            filters: vec![Expr::col("score").gt(Expr::lit(10i64))],
            bindings: vec![],
            limit: Some(1),
        };
        let out = apply_source_query(&batch(), &q).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.schema().len(), 1);
        assert_eq!(out.rows()[0], row!["bob"]);
    }

    #[test]
    fn applies_binding_lists() {
        let q = SourceQuery {
            table: "t".into(),
            projection: None,
            filters: vec![],
            bindings: vec![("id".into(), vec![Value::Int(1), Value::Int(3)])],
            limit: None,
        };
        let out = apply_source_query(&batch(), &q).unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn fallback_serves_snapshot_with_staleness() {
        let store = FallbackStore::new();
        store.register("crm.t", batch(), 100);
        let q = SourceQuery::full_table("t");
        let schema = batch().schema().clone();
        let (b, report) = degrade(
            DegradationPolicy::Fallback,
            &store,
            "crm",
            &q,
            &schema,
            450,
            EiiError::SourceUnavailable {
                source: "crm".into(),
                attempts: 3,
                elapsed_ms: 70,
            },
        )
        .unwrap();
        assert_eq!(b.num_rows(), 3);
        assert_eq!(report.stale_ms, Some(350));
        assert!(report.error.contains("source_unavailable"));
    }

    #[test]
    fn fallback_without_snapshot_fails() {
        let store = FallbackStore::new();
        let q = SourceQuery::full_table("ghost");
        let schema = batch().schema().clone();
        let err = degrade(
            DegradationPolicy::Fallback,
            &store,
            "crm",
            &q,
            &schema,
            0,
            EiiError::Source("down".into()),
        )
        .unwrap_err();
        assert_eq!(err.kind(), "execution");
        assert!(err.message().contains("crm.ghost"));
    }

    #[test]
    fn partial_results_substitutes_an_empty_branch() {
        let store = FallbackStore::new();
        let q = SourceQuery::full_table("t");
        let schema = batch().schema().clone();
        let (b, report) = degrade(
            DegradationPolicy::PartialResults,
            &store,
            "crm",
            &q,
            &schema,
            0,
            EiiError::Source("down".into()),
        )
        .unwrap();
        assert!(b.is_empty());
        assert_eq!(report.stale_ms, None);
    }

    #[test]
    fn fail_policy_propagates() {
        let store = FallbackStore::new();
        let q = SourceQuery::full_table("t");
        let schema = batch().schema().clone();
        let err = degrade(
            DegradationPolicy::Fail,
            &store,
            "crm",
            &q,
            &schema,
            0,
            EiiError::Source("down".into()),
        )
        .unwrap_err();
        assert_eq!(err.kind(), "source");
    }
}
