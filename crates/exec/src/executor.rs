//! The physical-plan interpreter.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use eii_data::{Batch, CancelToken, ColumnarBatch, EiiError, Result, Row, SchemaRef, Value};
use eii_expr::{bind, BoundExpr, Expr};
use eii_federation::{Federation, HedgeOutcome, QueryCost, RequestCtx, SourceQuery};
use eii_obs::MetricsRegistry;
use eii_planner::{CardinalityFeedback, CostModel, JoinSite, PhysicalPlan};
use eii_sql::JoinKind;

use crate::agg::Accumulator;
use crate::cache::{adapt_batch, MatViewStore};
use crate::degrade::{degrade, DegradationPolicy, FallbackStore, SourceReport};
use crate::profile::OperatorProfile;
use crate::vector::{drive, VecAggregate, VecFilter, VecHashJoin, VecProject};

/// Simulated ms to open a local materialization (mirrors the planner's
/// estimate for the chosen `MatViewScan` alternative).
const MATVIEW_OPEN_MS: f64 = 0.05;

/// The cancel reason the executor's internal abort token carries when one
/// parallel branch of the plan fails and the siblings are torn down. Errors
/// with this reason are collateral, not root causes, so error selection
/// prefers any other error over them.
const SIBLING_ABORT: &str = "sibling branch failed";

/// When and how the executor hedges a source fetch: once a source's observed
/// mean per-request latency crosses `threshold_ms`, plain scans against it
/// issue a deterministic backup request `delay_ms` (simulated) after the
/// primary and answer with whichever returns first on the virtual timeline
/// ([`eii_federation::SourceHandle::query_hedged`]). Hedging trades bytes
/// for tail latency: the loser's traffic is still charged in full.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgePolicy {
    /// Observed mean per-request latency (simulated ms) above which fetches
    /// from a source are hedged.
    pub threshold_ms: f64,
    /// How long after the primary the backup fires, simulated ms.
    pub delay_ms: f64,
}

impl Default for HedgePolicy {
    fn default() -> Self {
        HedgePolicy {
            threshold_ms: 50.0,
            delay_ms: 5.0,
        }
    }
}

/// Adaptive re-planning policy: at a hub hash join boundary, the executor
/// runs the probe (left) side first, compares its observed cardinality to
/// the feedback-corrected estimate, and when they diverge by more than
/// `factor` re-enters the plan for the remaining subtree — the build-side
/// scan is re-issued as a binding-filtered fetch (only rows matching an
/// observed probe key ship), which is answer-preserving for inner
/// equi-joins: build rows whose key matches no probe key can never reach
/// the output, and the filter keeps the survivors in scan order.
///
/// With a policy attached, eligible joins fetch their sides serially (the
/// probe side must finish before the decision); expect different simulated
/// timings — but byte-identical answers — versus the parallel default.
#[derive(Clone)]
pub struct ReplanPolicy {
    /// Cross-query cardinality corrections consulted for the estimate.
    pub feedback: Arc<CardinalityFeedback>,
    /// Divergence factor (in either direction) that triggers adaptation.
    pub factor: f64,
}

impl ReplanPolicy {
    /// Policy over a feedback store with the default 4x divergence factor.
    pub fn new(feedback: Arc<CardinalityFeedback>) -> Self {
        ReplanPolicy {
            feedback,
            factor: 4.0,
        }
    }
}

/// Errors that must abort the query rather than be absorbed by the
/// degradation policy: the caller cancelled, the scheduler shed the query,
/// or the deadline ran out — serving a stale snapshot then would be lying.
fn is_abortive(err: &EiiError) -> bool {
    matches!(err.kind(), "cancelled" | "deadline" | "shed")
}

/// Between two failed parallel branches, pick the root cause: an error that
/// is merely the sibling-abort echo loses to the error that tripped it, so
/// the surfaced error does not depend on which worker thread ran first.
fn prefer_root_cause(first: EiiError, second: EiiError) -> EiiError {
    let collateral =
        |e: &EiiError| matches!(e, EiiError::Cancelled(reason) if reason == SIBLING_ABORT);
    if collateral(&first) && !collateral(&second) {
        second
    } else {
        first
    }
}

/// The result of executing a plan: rows, simulated cost, and real wall time.
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub batch: Batch,
    /// Simulated cost (network + source + hub work).
    pub cost: QueryCost,
    /// Real elapsed time of the interpreter.
    pub wall: Duration,
    /// Sources that could not answer live, one entry per degraded
    /// component query. Empty when every answer was live and complete.
    pub degraded: Vec<SourceReport>,
    /// Per-operator actuals mirroring the plan tree; `None` when the
    /// executor ran with instrumentation disabled.
    pub profile: Option<OperatorProfile>,
    /// True when at least one source fetch fired a hedged backup request
    /// during this execution (see [`Executor::with_hedging`]).
    pub hedged: bool,
}

impl QueryResult {
    /// True when every source answered live (nothing stale or dropped).
    pub fn fully_live(&self) -> bool {
        self.degraded.is_empty()
    }
}

/// What flows between operators: rows for the adapter edges (connectors,
/// caches, change logs) and the operators that stayed row-at-a-time, columns
/// between vectorized operators. Converting is a full pivot, so adjacent
/// vectorized operators hand each other `Cols` without touching rows.
enum Flow {
    Rows(Batch),
    Cols(ColumnarBatch),
}

impl Flow {
    fn num_rows(&self) -> usize {
        match self {
            Flow::Rows(b) => b.num_rows(),
            Flow::Cols(c) => c.num_rows(),
        }
    }

    /// Materialize as rows (pivots columnar data once).
    fn into_batch(self) -> Batch {
        match self {
            Flow::Rows(b) => b,
            Flow::Cols(c) => c.to_batch(),
        }
    }

    /// View as columns (pivots row data once).
    fn into_cols(self) -> ColumnarBatch {
        match self {
            Flow::Rows(b) => ColumnarBatch::from_batch(&b),
            Flow::Cols(c) => c,
        }
    }

    fn schema(&self) -> &SchemaRef {
        match self {
            Flow::Rows(b) => b.schema(),
            Flow::Cols(c) => c.schema(),
        }
    }
}

/// What one finished operator measured; keyed by its path from the plan
/// root (child indexes), from which the profile tree is reassembled.
struct OpRecord {
    path: Vec<usize>,
    rows: usize,
    cost: QueryCost,
    wall: Duration,
}

/// Executes physical plans against a federation.
pub struct Executor<'a> {
    federation: &'a Federation,
    /// Hub-side processing cost per row touched, simulated ms.
    pub hub_ms_per_row: f64,
    degradation: DegradationPolicy,
    fallbacks: FallbackStore,
    matviews: MatViewStore,
    degraded: Mutex<Vec<SourceReport>>,
    instrument: bool,
    metrics: Option<MetricsRegistry>,
    ops: Mutex<Vec<OpRecord>>,
    /// Hedge outcomes of this run's fetches, keyed by the operator path
    /// that issued them, so profiles can flag the exact operator hedged.
    hedges: Mutex<BTreeMap<Vec<usize>, HedgeOutcome>>,
    /// Partition-parallel scan fan-out per source scan (1 = serial).
    scan_partitions: usize,
    /// Rows per columnar chunk for vectorized operators; 0 = the
    /// [`crate::vector::DEFAULT_BATCH_SIZE`] default.
    batch_size: usize,
    /// Caller-supplied request context (deadline budget + cancel token).
    base_ctx: RequestCtx,
    /// The effective context of the running query: `base_ctx` plus a fresh
    /// internal abort token, rebuilt at the top of every `execute`.
    run_ctx: Mutex<RequestCtx>,
    /// Tail-latency hedging policy for plain source scans, when enabled.
    hedge: Option<HedgePolicy>,
    /// Adaptive re-planning policy, when enabled (see [`ReplanPolicy`]).
    replan: Option<ReplanPolicy>,
    /// Paths of operators this run adapted, for `[REPLANNED]` provenance.
    replans: Mutex<BTreeSet<Vec<usize>>>,
}

impl<'a> Executor<'a> {
    /// New executor with the default hub speed (matching the cost model).
    /// Per-operator instrumentation is on; E14 measures it under 5%
    /// overhead, so it stays on unless an experiment turns it off.
    pub fn new(federation: &'a Federation) -> Self {
        Executor {
            federation,
            hub_ms_per_row: 0.0005,
            degradation: DegradationPolicy::Fail,
            fallbacks: FallbackStore::new(),
            matviews: MatViewStore::new(),
            degraded: Mutex::new(Vec::new()),
            instrument: true,
            metrics: None,
            ops: Mutex::new(Vec::new()),
            hedges: Mutex::new(BTreeMap::new()),
            scan_partitions: 1,
            batch_size: 0,
            base_ctx: RequestCtx::new(),
            run_ctx: Mutex::new(RequestCtx::new()),
            hedge: None,
            replan: None,
            replans: Mutex::new(BTreeSet::new()),
        }
    }

    /// Attach the request context every source interaction runs under: its
    /// deadline shrinks as fetches are charged against it, and its cancel
    /// token stops the plan at the next operator or batch boundary.
    pub fn with_request_ctx(mut self, ctx: RequestCtx) -> Self {
        self.base_ctx = ctx;
        self
    }

    /// Enable tail-latency hedging for plain source scans.
    pub fn with_hedging(mut self, policy: HedgePolicy) -> Self {
        self.hedge = Some(policy);
        self
    }

    /// Enable adaptive re-planning at hub hash-join boundaries (see
    /// [`ReplanPolicy`]). Adapted operators are flagged in the profile
    /// (`replanned`) and counted as `advisor.replans` when metrics are on.
    pub fn with_replan(mut self, policy: ReplanPolicy) -> Self {
        self.replan = Some(policy);
        self
    }

    /// Fan each source scan out into `n` partition-parallel workers,
    /// extending the parallel join machinery down into the scans. Only
    /// scans that keep the accounting exact actually partition: native wire
    /// format (per-row sizes, so partition bytes sum to the serial bytes),
    /// no limit, no bind values, and a connector that opts in
    /// ([`eii_federation::Connector::supports_partitioned_scans`]);
    /// everything else falls back to the serial path.
    pub fn with_scan_partitions(mut self, n: usize) -> Self {
        self.scan_partitions = n.max(1);
        self
    }

    /// Rows per columnar chunk for vectorized operators — each chunk
    /// boundary is a cancellation/deadline checkpoint. 0 keeps the default
    /// ([`crate::vector::DEFAULT_BATCH_SIZE`]).
    pub fn with_batch_size(mut self, n: usize) -> Self {
        self.batch_size = n;
        self
    }

    /// Enable graceful degradation: what to do when a source request fails
    /// past the federation's resilience layer, and which stale snapshots
    /// may stand in for dead sources.
    pub fn with_degradation(mut self, policy: DegradationPolicy, fallbacks: FallbackStore) -> Self {
        self.degradation = policy;
        self.fallbacks = fallbacks;
        self
    }

    /// Attach the materialized-view row store that `MatViewScan` operators
    /// (substituted by the planner's rewrite pass) are served from.
    pub fn with_matviews(mut self, matviews: MatViewStore) -> Self {
        self.matviews = matviews;
        self
    }

    /// Record query/operator metrics (`exec.queries`,
    /// `exec.rows_emitted.<op>`, `query.exec_sim_ms`, ...) into `metrics`
    /// after every execution.
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Disable per-operator instrumentation (the uninstrumented baseline of
    /// overhead experiment E14). [`QueryResult::profile`] will be `None`.
    pub fn without_instrumentation(mut self) -> Self {
        self.instrument = false;
        self
    }

    /// Execute a plan to completion.
    pub fn execute(&self, plan: &PhysicalPlan) -> Result<QueryResult> {
        let start = Instant::now();
        self.degraded.lock().expect("degraded lock").clear();
        self.ops.lock().expect("ops lock").clear();
        self.hedges.lock().expect("hedges lock").clear();
        self.replans.lock().expect("replans lock").clear();
        // A fresh internal abort token per run: a failed branch in THIS
        // query must not tear down the next one.
        let ctx = self.base_ctx.clone().with_abort(CancelToken::new());
        ctx.check()?;
        *self.run_ctx.lock().expect("ctx lock") = ctx;
        let (batch, cost) = self.run(plan)?;
        let degraded = std::mem::take(&mut *self.degraded.lock().expect("degraded lock"));
        let hedges = std::mem::take(&mut *self.hedges.lock().expect("hedges lock"));
        let replans = std::mem::take(&mut *self.replans.lock().expect("replans lock"));
        let hedged = hedges.values().any(|h| h.fired);
        let profile = if self.instrument {
            let records = std::mem::take(&mut *self.ops.lock().expect("ops lock"));
            Some(assemble_profile(plan, &records, &hedges, &replans, &mut Vec::new()))
        } else {
            None
        };
        let wall = start.elapsed();
        if let Some(m) = &self.metrics {
            m.inc("exec.queries");
            m.observe("query.exec_sim_ms", cost.sim_ms);
            m.observe("query.exec_wall_ms", wall.as_secs_f64() * 1000.0);
            if !degraded.is_empty() {
                m.add("exec.degraded_sources", degraded.len() as u64);
            }
            if let Some(p) = &profile {
                record_operator_metrics(m, p);
            }
        }
        Ok(QueryResult {
            batch,
            cost,
            wall,
            degraded,
            profile,
            hedged,
        })
    }

    /// Resolve one failed component query under the degradation policy:
    /// either a substitute batch (with the report recorded) or the error.
    fn degrade_source(
        &self,
        source: &str,
        q: &SourceQuery,
        expect_schema: &SchemaRef,
        err: EiiError,
    ) -> Result<(Batch, QueryCost)> {
        let now_ms = self.federation.clock().now_ms();
        let (batch, report) = degrade(
            self.degradation,
            &self.fallbacks,
            source,
            q,
            expect_schema,
            now_ms,
            err,
        )?;
        self.degraded.lock().expect("degraded lock").push(report);
        // A snapshot read is hub-local work: no network, no source scan.
        let cost = self.cpu(batch.num_rows());
        Ok((batch, cost))
    }

    fn cpu(&self, rows: usize) -> QueryCost {
        QueryCost {
            sim_ms: rows as f64 * self.hub_ms_per_row,
            ..QueryCost::default()
        }
    }

    /// The running query's effective request context.
    fn ctx(&self) -> RequestCtx {
        self.run_ctx.lock().expect("ctx lock").clone()
    }

    /// Trip the internal abort token when a parallel branch died with an
    /// *abortive* error (deadline, shed), so sibling branches stop at their
    /// next check instead of scanning to completion for an answer nobody
    /// will see. Plain source failures deliberately do NOT tear siblings
    /// down: degradation policies may still salvage the sibling answers,
    /// and racing a cancel against a sibling's next seeded fault draw would
    /// make the per-source fault-dice stream depend on thread timing —
    /// breaking bit-identical replay. Sibling-abort echoes (plain
    /// `Cancelled`) don't re-trip; the root cause already did.
    fn trip_abort_on_err(&self, res: &Result<(Flow, QueryCost)>) {
        if let Err(err) = res {
            if is_abortive(err) && !matches!(err, EiiError::Cancelled(_)) {
                if let Some(abort) = &self.ctx().abort {
                    abort.cancel(SIBLING_ABORT);
                }
            }
        }
    }

    /// Hedge a fetch from `source`? Only when a policy is set and the
    /// source's observed mean per-request latency has crossed its threshold.
    fn should_hedge(&self, source: &str) -> Option<HedgePolicy> {
        let policy = self.hedge?;
        let t = self.federation.ledger().traffic(source);
        if t.requests > 0 && t.sim_ms / t.requests as f64 >= policy.threshold_ms {
            Some(policy)
        } else {
            None
        }
    }

    /// One component fetch, hedged when [`Executor::should_hedge`] says the
    /// source looks slow. Used by every shipping fetch path (plain scans and
    /// bind joins) so a hedge can also rescue a transient primary failure.
    fn fetch_maybe_hedged(
        &self,
        handle: &eii_federation::SourceHandle,
        query: &SourceQuery,
        source: &str,
        path: &[usize],
    ) -> Result<(Batch, QueryCost)> {
        let ctx = self.ctx();
        match self.should_hedge(source) {
            Some(policy) => handle
                .query_hedged(query, &ctx, policy.delay_ms)
                .map(|(batch, cost, outcome)| {
                    if outcome.fired {
                        self.hedges
                            .lock()
                            .expect("hedges lock")
                            .insert(path.to_vec(), outcome);
                    }
                    if let Some(m) = &self.metrics {
                        m.inc("hedge.fired");
                        if outcome.backup_won {
                            m.inc("hedge.backup_wins");
                        }
                        if outcome.fired {
                            m.record_event(eii_obs::TelemetryEvent {
                                sim_ms: self.federation.clock().now_ms() as f64,
                                kind: "hedge.fired".to_string(),
                                source: source.to_string(),
                                trace_id: ctx.trace_id,
                                detail: format!("backup_won={}", outcome.backup_won),
                            });
                        }
                    }
                    (batch, cost)
                }),
            None => handle.query_ctx(query, &ctx),
        }
    }

    fn run(&self, plan: &PhysicalPlan) -> Result<(Batch, QueryCost)> {
        let (flow, cost) = self.run_node(plan, Vec::new())?;
        // The result-facing edge stays rows: one pivot per query.
        Ok((flow.into_batch(), cost))
    }

    /// Run one operator, recording its measurements under its path from the
    /// plan root when instrumentation is on. Every operator boundary is a
    /// cancellation point: a cancelled, aborted, or out-of-budget query
    /// stops here instead of starting more work (vectorized operators also
    /// check between chunks).
    fn run_node(&self, plan: &PhysicalPlan, path: Vec<usize>) -> Result<(Flow, QueryCost)> {
        self.ctx().check()?;
        if !self.instrument {
            return self.run_inner(plan, &path);
        }
        let start_wall = Instant::now();
        let (flow, cost) = self.run_inner(plan, &path)?;
        self.ops.lock().expect("ops lock").push(OpRecord {
            path,
            rows: flow.num_rows(),
            cost,
            wall: start_wall.elapsed(),
        });
        Ok((flow, cost))
    }

    fn run_inner(&self, plan: &PhysicalPlan, path: &[usize]) -> Result<(Flow, QueryCost)> {
        match plan {
            PhysicalPlan::Source {
                source,
                query,
                schema,
            } => {
                let handle = self.federation.source(source)?;
                let partitions = self.scan_partitions;
                let partitioned = partitions > 1
                    && query.bindings.is_empty()
                    && query.limit.is_none()
                    && matches!(handle.wire_format(), eii_federation::WireFormat::Native)
                    && handle.connector().supports_partitioned_scans();
                let answer = if partitioned {
                    handle.query_partitioned_ctx(query, partitions, &self.ctx())
                } else {
                    self.fetch_maybe_hedged(&handle, query, source, path)
                };
                let (batch, cost) = match answer {
                    Ok(ok) => ok,
                    Err(err) if is_abortive(&err) => return Err(err),
                    Err(err) => self.degrade_source(source, query, schema, err)?,
                };
                // Re-tag with the alias-qualified schema.
                Ok((
                    Flow::Rows(Batch::new(schema.clone(), batch.into_rows())),
                    cost,
                ))
            }
            PhysicalPlan::Values { schema, rows } => Ok((
                Flow::Rows(Batch::new(schema.clone(), rows.clone())),
                QueryCost::default(),
            )),
            PhysicalPlan::MatViewScan {
                name,
                schema,
                filters,
                limit,
                ..
            } => {
                let Some((stored, _)) = self.matviews.get(name) else {
                    return Err(EiiError::Execution(format!(
                        "plan scans materialized view '{name}' but the \
                         executor's store has no materialization for it"
                    )));
                };
                let scanned = stored.num_rows();
                // Compensating filters run over the full materialization
                // (it may hold columns the output projects away), then the
                // survivors are reshaped to the node's output columns.
                let stored = if filters.is_empty() {
                    stored
                } else {
                    let bound: Vec<_> = filters
                        .iter()
                        .map(|f| bind(f, stored.schema()))
                        .collect::<Result<_>>()?;
                    let in_schema = stored.schema().clone();
                    let mut rows = Vec::new();
                    for row in stored.into_rows() {
                        if bound
                            .iter()
                            .map(|b| b.eval_predicate(&row))
                            .collect::<Result<Vec<_>>>()?
                            .into_iter()
                            .all(|keep| keep)
                        {
                            rows.push(row);
                        }
                    }
                    Batch::new(in_schema, rows)
                };
                let mut batch = adapt_batch(&stored, schema)?;
                if let Some(n) = limit {
                    if batch.num_rows() > *n {
                        batch = Batch::new(
                            batch.schema().clone(),
                            batch.rows()[..*n].to_vec(),
                        );
                    }
                }
                // Hub-local read: no network, no source scan.
                let cost = QueryCost {
                    sim_ms: MATVIEW_OPEN_MS,
                    ..QueryCost::default()
                }
                .then(self.cpu(scanned));
                Ok((Flow::Rows(batch), cost))
            }
            PhysicalPlan::Filter {
                input,
                predicate,
                vectorized,
            } => {
                let (flow, cost) = self.run_node(input, child_path(path, 0))?;
                let n = flow.num_rows();
                if *vectorized {
                    let cols = flow.into_cols();
                    let bound = bind(predicate, cols.schema())?;
                    let mut op = VecFilter::new(bound);
                    let out = self.drive_op(&mut op, &cols, cols.schema().clone())?;
                    return Ok((Flow::Cols(out), cost.then(self.cpu(n))));
                }
                let batch = flow.into_batch();
                let bound = bind(predicate, batch.schema())?;
                let schema = batch.schema().clone();
                let mut rows = Vec::new();
                for row in batch.into_rows() {
                    if bound.eval_predicate(&row)? {
                        rows.push(row);
                    }
                }
                Ok((Flow::Rows(Batch::new(schema, rows)), cost.then(self.cpu(n))))
            }
            PhysicalPlan::Project {
                input,
                exprs,
                schema,
                vectorized,
            } => {
                let (flow, cost) = self.run_node(input, child_path(path, 0))?;
                let n = flow.num_rows();
                if *vectorized {
                    let cols = flow.into_cols();
                    let bound: Vec<BoundExpr> = exprs
                        .iter()
                        .map(|(e, _)| bind(e, cols.schema()))
                        .collect::<Result<_>>()?;
                    let mut op = VecProject::new(bound, schema.clone());
                    let out = self.drive_op(&mut op, &cols, schema.clone())?;
                    return Ok((Flow::Cols(out), cost.then(self.cpu(n))));
                }
                let batch = flow.into_batch();
                let bound: Vec<BoundExpr> = exprs
                    .iter()
                    .map(|(e, _)| bind(e, batch.schema()))
                    .collect::<Result<_>>()?;
                let mut rows = Vec::with_capacity(n);
                for row in batch.rows() {
                    let out: Row = bound
                        .iter()
                        .map(|b| b.eval(row))
                        .collect::<Result<_>>()?;
                    rows.push(out);
                }
                Ok((
                    Flow::Rows(Batch::new(schema.clone(), rows)),
                    cost.then(self.cpu(n)),
                ))
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                kind,
                residual,
                site,
                parallel,
                schema,
                vectorized,
            } => self.run_hash_join(
                left, right, left_keys, right_keys, *kind, residual, site, *parallel, schema,
                *vectorized, path,
            ),
            PhysicalPlan::NestedLoopJoin {
                left,
                right,
                kind,
                on,
                parallel,
                schema,
            } => {
                let ((lf, lc), (rf, rc)) = self.run_pair(left, right, *parallel, path)?;
                let (lb, rb) = (lf.into_batch(), rf.into_batch());
                let children_cost = if *parallel { lc.alongside(rc) } else { lc.then(rc) };
                let filtering = matches!(kind, JoinKind::Semi | JoinKind::Anti);
                // Semi/anti join conditions see both sides even though only
                // left columns flow out.
                let pred_schema: eii_data::SchemaRef = if filtering {
                    std::sync::Arc::new(lb.schema().join(rb.schema()))
                } else {
                    schema.clone()
                };
                let bound_on = match on {
                    Some(o) => Some(bind(o, &pred_schema)?),
                    None => None,
                };
                let mut rows = Vec::new();
                let right_width = rb.schema().len();
                for l in lb.rows() {
                    let mut matched = false;
                    for r in rb.rows() {
                        let combined = l.concat(r);
                        let ok = match &bound_on {
                            None => true,
                            Some(p) => p.eval_predicate(&combined)?,
                        };
                        if ok {
                            matched = true;
                            if filtering {
                                break;
                            }
                            rows.push(combined);
                        }
                    }
                    match kind {
                        JoinKind::Left if !matched => {
                            rows.push(null_extend(l, right_width));
                        }
                        JoinKind::Semi if matched => rows.push(l.clone()),
                        JoinKind::Anti if !matched => rows.push(l.clone()),
                        _ => {}
                    }
                }
                let work = lb.num_rows() * rb.num_rows().max(1);
                Ok((
                    Flow::Rows(Batch::new(schema.clone(), rows)),
                    children_cost.then(self.cpu(work)),
                ))
            }
            PhysicalPlan::BindJoin {
                left,
                left_key,
                source,
                template,
                bind_column,
                right_schema,
                residual,
                schema,
            } => {
                let (lf, lc) = self.run_node(left, child_path(path, 0))?;
                let lb = lf.into_batch();
                let key_expr = bind(left_key, lb.schema())?;
                let mut values: Vec<Value> = Vec::new();
                let mut seen: HashSet<Value> = HashSet::new();
                let mut left_keys_per_row: Vec<Value> = Vec::with_capacity(lb.num_rows());
                for row in lb.rows() {
                    let v = key_expr.eval(row)?;
                    if !v.is_null() && seen.insert(v.clone()) {
                        values.push(v.clone());
                    }
                    left_keys_per_row.push(v);
                }
                let handle = self.federation.source(source)?;
                let (rb, rc) = if values.is_empty() {
                    (
                        Batch::empty(right_schema.clone()),
                        QueryCost::default(),
                    )
                } else {
                    let mut q = template.clone();
                    q.bindings = vec![(bind_column.clone(), values)];
                    match self.fetch_maybe_hedged(&handle, &q, source, path) {
                        Ok(ok) => ok,
                        Err(err) if is_abortive(&err) => return Err(err),
                        Err(err) => self.degrade_source(source, &q, right_schema, err)?,
                    }
                };
                // Map returned columns onto the scan's output schema and
                // find the bind column among the returned fields.
                let ret_schema = rb.schema().clone();
                let bind_idx = ret_schema.index_of(None, bind_column)?;
                let out_indices: Vec<usize> = right_schema
                    .fields()
                    .iter()
                    .map(|f| ret_schema.index_of(None, &f.name))
                    .collect::<Result<_>>()?;
                let mut table: HashMap<Value, Vec<Row>> = HashMap::new();
                for row in rb.rows() {
                    let key = row.get(bind_idx).clone();
                    table
                        .entry(key)
                        .or_default()
                        .push(row.project(&out_indices));
                }
                let bound_residual = match residual {
                    Some(r) => Some(bind(r, schema)?),
                    None => None,
                };
                let mut rows = Vec::new();
                for (l, key) in lb.rows().iter().zip(&left_keys_per_row) {
                    if key.is_null() {
                        continue;
                    }
                    if let Some(matches) = table.get(key) {
                        for r in matches {
                            let combined = l.concat(r);
                            let ok = match &bound_residual {
                                None => true,
                                Some(p) => p.eval_predicate(&combined)?,
                            };
                            if ok {
                                rows.push(combined);
                            }
                        }
                    }
                }
                let work = lb.num_rows() + rb.num_rows() + rows.len();
                Ok((
                    Flow::Rows(Batch::new(schema.clone(), rows)),
                    lc.then(rc).then(self.cpu(work)),
                ))
            }
            PhysicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                schema,
                vectorized,
            } => {
                let (flow, cost) = self.run_node(input, child_path(path, 0))?;
                let n = flow.num_rows();
                if *vectorized {
                    let cols = flow.into_cols();
                    let in_schema = cols.schema().clone();
                    let bound_groups: Vec<BoundExpr> = group_by
                        .iter()
                        .map(|g| bind(g, &in_schema))
                        .collect::<Result<_>>()?;
                    let bound_args: Vec<Option<BoundExpr>> = aggs
                        .iter()
                        .map(|a| match &a.arg {
                            Some(e) => bind(e, &in_schema).map(Some),
                            None => Ok(None),
                        })
                        .collect::<Result<_>>()?;
                    let templates: Vec<_> = aggs.iter().map(|a| (a.func, a.distinct)).collect();
                    let mut op =
                        VecAggregate::new(bound_groups, bound_args, templates, schema.clone());
                    let out = self.drive_op(&mut op, &cols, schema.clone())?;
                    return Ok((Flow::Cols(out), cost.then(self.cpu(n))));
                }
                let batch = flow.into_batch();
                let in_schema = batch.schema().clone();
                let bound_groups: Vec<BoundExpr> = group_by
                    .iter()
                    .map(|g| bind(g, &in_schema))
                    .collect::<Result<_>>()?;
                let bound_args: Vec<Option<BoundExpr>> = aggs
                    .iter()
                    .map(|a| match &a.arg {
                        Some(e) => bind(e, &in_schema).map(Some),
                        None => Ok(None),
                    })
                    .collect::<Result<_>>()?;
                // Preserve first-seen group order for determinism.
                let mut order: Vec<Vec<Value>> = Vec::new();
                let mut groups: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
                for row in batch.rows() {
                    let key: Vec<Value> = bound_groups
                        .iter()
                        .map(|g| g.eval(row))
                        .collect::<Result<_>>()?;
                    let accs = match groups.get_mut(&key) {
                        Some(a) => a,
                        None => {
                            order.push(key.clone());
                            groups.entry(key.clone()).or_insert_with(|| {
                                aggs.iter()
                                    .map(|a| Accumulator::new(a.func, a.distinct))
                                    .collect()
                            })
                        }
                    };
                    for (acc, arg) in accs.iter_mut().zip(&bound_args) {
                        match arg {
                            None => acc.push(None)?,
                            Some(e) => {
                                let v = e.eval(row)?;
                                acc.push(Some(&v))?;
                            }
                        }
                    }
                }
                let mut rows = Vec::with_capacity(order.len().max(1));
                if order.is_empty() && group_by.is_empty() {
                    // Global aggregate over zero rows: one row of defaults.
                    let accs: Vec<Accumulator> = aggs
                        .iter()
                        .map(|a| Accumulator::new(a.func, a.distinct))
                        .collect();
                    let row: Row = accs.into_iter().map(Accumulator::finish).collect();
                    rows.push(row);
                } else {
                    for key in order {
                        let accs = groups.remove(&key).expect("group recorded");
                        let mut row: Row = key.into_iter().collect();
                        for acc in accs {
                            row.push(acc.finish());
                        }
                        rows.push(row);
                    }
                }
                Ok((
                    Flow::Rows(Batch::new(schema.clone(), rows)),
                    cost.then(self.cpu(n)),
                ))
            }
            PhysicalPlan::Distinct { input } => {
                let (flow, cost) = self.run_node(input, child_path(path, 0))?;
                let batch = flow.into_batch();
                let schema = batch.schema().clone();
                let n = batch.num_rows();
                let mut seen = HashSet::new();
                let mut rows = Vec::new();
                for row in batch.into_rows() {
                    if seen.insert(row.clone()) {
                        rows.push(row);
                    }
                }
                Ok((Flow::Rows(Batch::new(schema, rows)), cost.then(self.cpu(n))))
            }
            PhysicalPlan::Sort { input, keys } => {
                let (flow, cost) = self.run_node(input, child_path(path, 0))?;
                let batch = flow.into_batch();
                let schema = batch.schema().clone();
                let bound: Vec<(BoundExpr, bool)> = keys
                    .iter()
                    .map(|(e, asc)| Ok((bind(e, &schema)?, *asc)))
                    .collect::<Result<_>>()?;
                let n = batch.num_rows();
                let mut keyed: Vec<(Vec<Value>, Row)> = batch
                    .into_rows()
                    .into_iter()
                    .map(|row| {
                        let k: Vec<Value> = bound
                            .iter()
                            .map(|(e, _)| e.eval(&row))
                            .collect::<Result<_>>()?;
                        Ok((k, row))
                    })
                    .collect::<Result<_>>()?;
                keyed.sort_by(|(ka, _), (kb, _)| {
                    for (i, (_, asc)) in bound.iter().enumerate() {
                        let ord = ka[i].cmp(&kb[i]);
                        let ord = if *asc { ord } else { ord.reverse() };
                        if !ord.is_eq() {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                let rows = keyed.into_iter().map(|(_, r)| r).collect();
                Ok((Flow::Rows(Batch::new(schema, rows)), cost.then(self.cpu(n))))
            }
            PhysicalPlan::Limit { input, n } => {
                let (flow, cost) = self.run_node(input, child_path(path, 0))?;
                // Representation-preserving: a columnar input is truncated by
                // selection, a row input by truncating the row vector.
                match flow {
                    Flow::Cols(c) => {
                        let out = if c.num_rows() > *n {
                            c.select((0..*n as u32).collect())
                        } else {
                            c
                        };
                        Ok((Flow::Cols(out), cost))
                    }
                    Flow::Rows(batch) => {
                        let schema = batch.schema().clone();
                        let mut rows = batch.into_rows();
                        rows.truncate(*n);
                        Ok((Flow::Rows(Batch::new(schema, rows)), cost))
                    }
                }
            }
            PhysicalPlan::UnionAll {
                inputs,
                parallel,
                schema,
            } => {
                let results: Vec<(Flow, QueryCost)> = if *parallel {
                    let branch_results: Vec<Result<(Flow, QueryCost)>> =
                        std::thread::scope(|s| {
                            let handles: Vec<_> = inputs
                                .iter()
                                .enumerate()
                                .map(|(i, p)| {
                                    let cp = child_path(path, i);
                                    s.spawn(move || {
                                        let r = self.run_node(p, cp);
                                        self.trip_abort_on_err(&r);
                                        r
                                    })
                                })
                                .collect();
                            handles
                                .into_iter()
                                .map(|h| h.join().map_err(panic_err))
                                .collect::<Result<Vec<_>>>()
                        })?;
                    // Surface the root cause, not a sibling-abort echo: in
                    // input order, the first real error wins regardless of
                    // which worker thread happened to fail first.
                    let mut first_err: Option<EiiError> = None;
                    let mut oks = Vec::with_capacity(branch_results.len());
                    for r in branch_results {
                        match r {
                            Ok(v) => oks.push(v),
                            Err(e) => {
                                first_err = Some(match first_err {
                                    None => e,
                                    Some(prev) => prefer_root_cause(prev, e),
                                })
                            }
                        }
                    }
                    if let Some(e) = first_err {
                        return Err(e);
                    }
                    oks
                } else {
                    inputs
                        .iter()
                        .enumerate()
                        .map(|(i, p)| self.run_node(p, child_path(path, i)))
                        .collect::<Result<Vec<_>>>()?
                };
                let mut rows = Vec::new();
                let mut cost = QueryCost::default();
                for (flow, c) in results {
                    rows.extend(flow.into_batch().into_rows());
                    cost = if *parallel {
                        cost.alongside(c)
                    } else {
                        cost.then(c)
                    };
                }
                Ok((Flow::Rows(Batch::new(schema.clone(), rows)), cost))
            }
            PhysicalPlan::Rename { input, schema } => {
                let (flow, cost) = self.run_node(input, child_path(path, 0))?;
                // Representation-preserving re-tag.
                match flow {
                    Flow::Cols(c) => Ok((Flow::Cols(c.with_schema(schema.clone())), cost)),
                    Flow::Rows(b) => Ok((
                        Flow::Rows(Batch::new(schema.clone(), b.into_rows())),
                        cost,
                    )),
                }
            }
        }
    }

    /// Chunked drive of one vectorized operator with the run context checked
    /// at every chunk boundary.
    fn drive_op(
        &self,
        op: &mut dyn crate::vector::BatchOperator,
        input: &ColumnarBatch,
        out_schema: SchemaRef,
    ) -> Result<ColumnarBatch> {
        drive(op, input, out_schema, self.batch_size, || self.ctx().check())
    }

    fn run_pair(
        &self,
        left: &PhysicalPlan,
        right: &PhysicalPlan,
        parallel: bool,
        path: &[usize],
    ) -> Result<((Flow, QueryCost), (Flow, QueryCost))> {
        let (lp, rp) = (child_path(path, 0), child_path(path, 1));
        if parallel {
            std::thread::scope(|s| {
                let lh = s.spawn(move || {
                    let r = self.run_node(left, lp);
                    self.trip_abort_on_err(&r);
                    r
                });
                let rh = s.spawn(move || {
                    let r = self.run_node(right, rp);
                    self.trip_abort_on_err(&r);
                    r
                });
                let l = lh.join().map_err(panic_err)?;
                let r = rh.join().map_err(panic_err)?;
                match (l, r) {
                    (Ok(l), Ok(r)) => Ok((l, r)),
                    (Err(le), Err(re)) => Err(prefer_root_cause(le, re)),
                    (Err(e), Ok(_)) | (Ok(_), Err(e)) => Err(e),
                }
            })
        } else {
            Ok((self.run_node(left, lp)?, self.run_node(right, rp)?))
        }
    }

    /// Adaptive re-planning hook for hub hash joins (see [`ReplanPolicy`]).
    ///
    /// Returns `Ok(None)` when the join is ineligible (no policy attached,
    /// not an inner single-key equi-join, build side not a bare source scan,
    /// or the source cannot evaluate bindings) — the caller then takes the
    /// normal parallel path. When eligible, the probe (left) side runs
    /// first; if its observed cardinality diverges from the
    /// feedback-corrected estimate by the policy's factor, the build-side
    /// scan is re-issued as a binding-filtered fetch restricted to the
    /// distinct probe keys actually observed. Either way the sides ran
    /// serially, so the serial costs come back for the caller to combine.
    fn try_adaptive_join(
        &self,
        left: &PhysicalPlan,
        right: &PhysicalPlan,
        left_keys: &[Expr],
        right_keys: &[Expr],
        kind: JoinKind,
        path: &[usize],
    ) -> Result<Option<(Batch, QueryCost, Batch, QueryCost)>> {
        let Some(policy) = &self.replan else {
            return Ok(None);
        };
        // Only inner equi-joins on a single key pair are answer-preserving
        // under a build-side binding filter: removed build rows match no
        // probe key, so they could never reach the output.
        if !matches!(kind, JoinKind::Inner) || left_keys.len() != 1 || right_keys.len() != 1 {
            return Ok(None);
        }
        // The build side must be a bare scan we can re-issue: no existing
        // bindings (a bind join already filtered it) and no limit (a limit
        // under a new filter would keep a different set of rows).
        let PhysicalPlan::Source {
            source,
            query,
            schema,
        } = right
        else {
            return Ok(None);
        };
        if !query.bindings.is_empty() || query.limit.is_some() {
            return Ok(None);
        }
        let Expr::Column { name: bind_col, .. } = &right_keys[0] else {
            return Ok(None);
        };
        let handle = self.federation.source(source)?;
        if !handle.connector().capabilities().bindings {
            return Ok(None);
        }

        // Probe side first, serially: the adaptation decision needs its
        // actual cardinality.
        let (lf, lc) = self.run_node(left, child_path(path, 0))?;
        let lb = lf.into_batch();
        let diverged = match CostModel::new(self.federation)
            .with_feedback(policy.feedback.clone())
            .estimate_physical(left)
        {
            Ok(est) => {
                let est_rows = est.rows.max(1e-9);
                let actual = (lb.num_rows() as f64).max(1.0);
                actual / est_rows >= policy.factor || est_rows / actual >= policy.factor
            }
            // No estimate, no divergence signal: keep the planned scan.
            Err(_) => false,
        };
        if !diverged {
            let (rf, rc) = self.run_node(right, child_path(path, 1))?;
            return Ok(Some((lb, lc, rf.into_batch(), rc)));
        }

        // Re-plan the build side: ship only rows whose key matches a probe
        // key actually observed, in first-seen probe order.
        let lkey = bind(&left_keys[0], lb.schema())?;
        let mut seen: HashSet<Value> = HashSet::new();
        let mut keys: Vec<Value> = Vec::new();
        for row in lb.rows() {
            let v = lkey.eval(row)?;
            if !v.is_null() && seen.insert(v.clone()) {
                keys.push(v);
            }
        }
        let mut filtered = query.clone();
        filtered.bindings = vec![(bind_col.clone(), keys)];
        self.ctx().check()?;
        let rp = child_path(path, 1);
        let start_wall = Instant::now();
        let (rb, rc) = match self.fetch_maybe_hedged(&handle, &filtered, source, &rp) {
            Ok(ok) => ok,
            Err(err) if is_abortive(&err) => return Err(err),
            // Degrade against the *original* query so a dead source yields
            // the same substitute snapshot the un-adapted plan would get.
            Err(err) => self.degrade_source(source, query, schema, err)?,
        };
        let rb = Batch::new(schema.clone(), rb.into_rows());
        if self.instrument {
            // The adapted fetch bypasses `run_node`, so record it here.
            self.ops.lock().expect("ops lock").push(OpRecord {
                path: rp,
                rows: rb.num_rows(),
                cost: rc,
                wall: start_wall.elapsed(),
            });
        }
        self.replans
            .lock()
            .expect("replans lock")
            .insert(path.to_vec());
        if let Some(m) = &self.metrics {
            m.inc("advisor.replans");
        }
        Ok(Some((lb, lc, rb, rc)))
    }

    #[allow(clippy::too_many_arguments)]
    fn run_hash_join(
        &self,
        left: &PhysicalPlan,
        right: &PhysicalPlan,
        left_keys: &[Expr],
        right_keys: &[Expr],
        kind: JoinKind,
        residual: &Option<Expr>,
        site: &JoinSite,
        parallel: bool,
        schema: &eii_data::SchemaRef,
        vectorized: bool,
        path: &[usize],
    ) -> Result<(Flow, QueryCost)> {
        // Fetch inputs, honoring the assembly site's cost model. Columnar
        // children stay columnar through the fetch phase so a vectorized
        // join probes them without a pivot.
        let (lf, rf, mut cost, result_site) = match site {
            JoinSite::Hub => {
                match self.try_adaptive_join(left, right, left_keys, right_keys, kind, path)? {
                    Some((lb, lc, rb, rc)) => {
                        (Flow::Rows(lb), Flow::Rows(rb), lc.then(rc), None)
                    }
                    None => {
                        let ((lf, lc), (rf, rc)) = self.run_pair(left, right, parallel, path)?;
                        let c = if parallel { lc.alongside(rc) } else { lc.then(rc) };
                        (lf, rf, c, None)
                    }
                }
            }
            JoinSite::AtSource(site_name) => {
                // The child at the site scans locally and ships nothing; the
                // other child ships normally to the hub and is then
                // forwarded to the site.
                let (site_child, other_child, site_is_left) = match (left, right) {
                    (PhysicalPlan::Source { source, .. }, _) if source == site_name => {
                        (left, right, true)
                    }
                    _ => (right, left, false),
                };
                let PhysicalPlan::Source {
                    source,
                    query,
                    schema: site_schema,
                } = site_child
                else {
                    return Err(EiiError::Execution(
                        "assembly site join expects a source child at the site".into(),
                    ));
                };
                let handle = self.federation.source(source)?;
                let (site_batch, site_cost, site_live) =
                    match handle.query_staying_local_ctx(query, &self.ctx()) {
                        Ok((b, c)) => (b, c, true),
                        Err(err) if is_abortive(&err) => return Err(err),
                        Err(err) => {
                            let (b, c) =
                                self.degrade_source(source, query, site_schema, err)?;
                            (b, c, false)
                        }
                    };
                let site_batch = Batch::new(site_schema.clone(), site_batch.into_rows());
                let (site_idx, other_idx) = if site_is_left { (0, 1) } else { (1, 0) };
                if self.instrument {
                    // The site child bypasses `run_node` (it is queried
                    // in-place at the source), so record it here.
                    self.ops.lock().expect("ops lock").push(OpRecord {
                        path: child_path(path, site_idx),
                        rows: site_batch.num_rows(),
                        cost: site_cost,
                        wall: Duration::ZERO,
                    });
                }
                let (other_flow, other_cost) =
                    self.run_node(other_child, child_path(path, other_idx))?;
                // Forwarding to the site ships rows; materialize for the
                // byte charge (only selected rows survive to this point, so
                // pre- and post-vectorization byte counts agree).
                let other_batch = other_flow.into_batch();
                let fetch = if parallel {
                    site_cost.alongside(other_cost)
                } else {
                    site_cost.then(other_cost)
                };
                // A dead site degrades to a hub join: nothing is forwarded
                // to the site and the result needs no return shipment.
                let (cost, result_site) = if site_live {
                    (
                        fetch.then(handle.charge_shipment(&other_batch)),
                        Some(source.clone()),
                    )
                } else {
                    (fetch, None)
                };
                if site_is_left {
                    (
                        Flow::Rows(site_batch),
                        Flow::Rows(other_batch),
                        cost,
                        result_site,
                    )
                } else {
                    (
                        Flow::Rows(other_batch),
                        Flow::Rows(site_batch),
                        cost,
                        result_site,
                    )
                }
            }
        };

        let filtering = matches!(kind, JoinKind::Semi | JoinKind::Anti);
        // Semi/anti residuals see both sides even though only left columns
        // flow out.
        let pred_schema: eii_data::SchemaRef = if filtering {
            std::sync::Arc::new(lf.schema().join(rf.schema()))
        } else {
            schema.clone()
        };

        if vectorized {
            let (lcols, rcols) = (lf.into_cols(), rf.into_cols());
            let (l_in, r_in) = (lcols.num_rows(), rcols.num_rows());
            let build_keys: Vec<BoundExpr> = right_keys
                .iter()
                .map(|e| bind(e, rcols.schema()))
                .collect::<Result<_>>()?;
            let probe_keys: Vec<BoundExpr> = left_keys
                .iter()
                .map(|e| bind(e, lcols.schema()))
                .collect::<Result<_>>()?;
            let bound_residual = match residual {
                Some(r) => Some(bind(r, &pred_schema)?),
                None => None,
            };
            let mut op = VecHashJoin::new(
                &rcols,
                &build_keys,
                probe_keys,
                kind,
                bound_residual,
                pred_schema,
                schema.clone(),
            )?;
            let out = self.drive_op(&mut op, &lcols, schema.clone())?;
            // Identical accounting to the row path: both inputs plus the
            // emitted rows.
            let work = l_in + r_in + out.num_rows();
            cost = cost.then(self.cpu(work));
            if let Some(site_name) = result_site {
                let batch = out.to_batch();
                let handle = self.federation.source(&site_name)?;
                cost = cost.then(handle.charge_shipment(&batch));
                return Ok((Flow::Rows(batch), cost));
            }
            return Ok((Flow::Cols(out), cost));
        }

        let (lb, rb) = (lf.into_batch(), rf.into_batch());
        let lkeys: Vec<BoundExpr> = left_keys
            .iter()
            .map(|e| bind(e, lb.schema()))
            .collect::<Result<_>>()?;
        let rkeys: Vec<BoundExpr> = right_keys
            .iter()
            .map(|e| bind(e, rb.schema()))
            .collect::<Result<_>>()?;
        let bound_residual = match residual {
            Some(r) => Some(bind(r, &pred_schema)?),
            None => None,
        };

        // Build on the right.
        let mut table: HashMap<Vec<Value>, Vec<&Row>> = HashMap::new();
        'outer: for row in rb.rows() {
            let mut key = Vec::with_capacity(rkeys.len());
            for k in &rkeys {
                let v = k.eval(row)?;
                if v.is_null() {
                    continue 'outer; // NULL keys never join.
                }
                key.push(v);
            }
            table.entry(key).or_default().push(row);
        }

        let right_width = rb.schema().len();
        let mut rows = Vec::new();
        'probe: for l in lb.rows() {
            let mut key = Vec::with_capacity(lkeys.len());
            for k in &lkeys {
                let v = k.eval(l)?;
                if v.is_null() {
                    // NULL keys never match: left joins null-extend, anti
                    // joins keep the unmatched row, semi/inner drop it.
                    match kind {
                        JoinKind::Left => rows.push(null_extend(l, right_width)),
                        JoinKind::Anti => rows.push(l.clone()),
                        _ => {}
                    }
                    continue 'probe;
                }
                key.push(v);
            }
            let mut matched = false;
            if let Some(candidates) = table.get(&key) {
                for r in candidates {
                    let combined = l.concat(r);
                    let ok = match &bound_residual {
                        None => true,
                        Some(p) => p.eval_predicate(&combined)?,
                    };
                    if ok {
                        matched = true;
                        if filtering {
                            break;
                        }
                        rows.push(combined);
                    }
                }
            }
            match kind {
                JoinKind::Left if !matched => rows.push(null_extend(l, right_width)),
                JoinKind::Semi if matched => rows.push(l.clone()),
                JoinKind::Anti if !matched => rows.push(l.clone()),
                _ => {}
            }
        }

        let work = lb.num_rows() + rb.num_rows() + rows.len();
        cost = cost.then(self.cpu(work));
        let batch = Batch::new(schema.clone(), rows);
        // At a source site, the joined result still has to reach the hub.
        if let Some(site_name) = result_site {
            let handle = self.federation.source(&site_name)?;
            cost = cost.then(handle.charge_shipment(&batch));
        }
        Ok((Flow::Rows(batch), cost))
    }
}

fn null_extend(left: &Row, right_width: usize) -> Row {
    let mut row = left.clone();
    for _ in 0..right_width {
        row.push(Value::Null);
    }
    row
}

/// Turn a worker thread's panic payload into a real error instead of
/// swallowing it: `panic!` with a message carries a `&str` or `String`
/// payload, which callers (and tests) need to see to diagnose the failure.
fn panic_err(payload: Box<dyn std::any::Any + Send>) -> EiiError {
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        s.to_string()
    } else {
        match payload.downcast::<String>() {
            Ok(s) => *s,
            Err(_) => "non-string panic payload".to_string(),
        }
    };
    EiiError::Execution(format!("parallel worker panicked: {msg}"))
}

/// `path` extended by one child index: the address of `plan.children()[i]`.
fn child_path(path: &[usize], i: usize) -> Vec<usize> {
    let mut p = Vec::with_capacity(path.len() + 1);
    p.extend_from_slice(path);
    p.push(i);
    p
}

/// Rebuild the profile tree by walking the plan and matching each node's
/// path against the flat record list the (possibly parallel) workers
/// produced. An operator without a record — a branch short-circuited by an
/// error path, or the at-site child of a degraded site join — reports zeros.
fn assemble_profile(
    plan: &PhysicalPlan,
    records: &[OpRecord],
    hedges: &BTreeMap<Vec<usize>, HedgeOutcome>,
    replans: &BTreeSet<Vec<usize>>,
    path: &mut Vec<usize>,
) -> OperatorProfile {
    let rec = records.iter().find(|r| r.path == *path);
    let hedge = hedges.get(path.as_slice()).copied().unwrap_or_default();
    let source = match plan {
        PhysicalPlan::Source { source, .. } | PhysicalPlan::BindJoin { source, .. } => {
            Some(source.clone())
        }
        _ => None,
    };
    let children = plan
        .children()
        .into_iter()
        .enumerate()
        .map(|(i, child)| {
            path.push(i);
            let p = assemble_profile(child, records, hedges, replans, path);
            path.pop();
            p
        })
        .collect();
    OperatorProfile {
        label: plan.label(),
        source,
        rows: rec.map_or(0, |r| r.rows),
        cost: rec.map_or_else(QueryCost::default, |r| r.cost),
        wall: rec.map_or(Duration::ZERO, |r| r.wall),
        hedged: hedge.fired,
        backup_won: hedge.backup_won,
        replanned: replans.contains(path.as_slice()),
        children,
    }
}

/// Bump `exec.rows_emitted.<label>` for every operator in the profile.
fn record_operator_metrics(m: &MetricsRegistry, p: &OperatorProfile) {
    m.add(&format!("exec.rows_emitted.{}", p.label), p.rows as u64);
    for c in &p.children {
        record_operator_metrics(m, c);
    }
}
