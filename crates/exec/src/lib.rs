//! # eii-exec
//!
//! The federated executor: runs [`eii_planner::PhysicalPlan`]s against a
//! [`eii_federation::Federation`], fetching independent sources in parallel,
//! joining at the chosen assembly site, and accounting every byte and
//! simulated millisecond in a [`eii_federation::QueryCost`] — "critical EII
//! performance factors will relate to ... (a) maximize parallelism in inter
//! and intra query processing; (b) minimize the amount of data shipped for
//! assembly" (Bitton §3).

pub mod agg;
pub mod cache;
pub mod degrade;
pub mod executor;
pub mod profile;
pub mod scheduler;

pub use cache::{
    adapt_batch, CacheConfig, CacheLookup, CachedResult, MatViewStore, ResultCache,
};
pub use degrade::{apply_source_query, DegradationPolicy, FallbackStore, SourceReport};
pub use executor::{Executor, HedgePolicy, QueryResult, ReplanPolicy};
pub use profile::OperatorProfile;
pub use scheduler::{
    AdmissionConfig, BrownoutConfig, JobOutput, QueryTicket, Scheduler, SchedulerStats,
    ShedDecision,
};
