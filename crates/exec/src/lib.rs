//! # eii-exec
//!
//! The federated executor: runs [`eii_planner::PhysicalPlan`]s against a
//! [`eii_federation::Federation`], fetching independent sources in parallel,
//! joining at the chosen assembly site, and accounting every byte and
//! simulated millisecond in a [`eii_federation::QueryCost`] — "critical EII
//! performance factors will relate to ... (a) maximize parallelism in inter
//! and intra query processing; (b) minimize the amount of data shipped for
//! assembly" (Bitton §3).
//!
//! Hub-side hot operators (filter, project, hash join, aggregate) run either
//! row-at-a-time or over columnar batches through the [`BatchOperator`] API
//! in [`vector`], as chosen per operator by the planner's `vectorize` flag;
//! both paths produce byte-identical answers and simulated costs.
//!
//! The re-export list below is the crate's deliberate public surface — new
//! modules add their types here explicitly rather than via globs.

pub mod agg;
pub mod cache;
pub mod degrade;
pub mod executor;
pub mod profile;
pub mod scheduler;
pub mod vector;

// The columnar batch type crosses this crate's public API (operators consume
// and produce it), so callers get it without naming eii-data.
pub use eii_data::ColumnarBatch;

pub use cache::{
    adapt_batch, CacheConfig, CacheLookup, CachedResult, MatViewStore, ResultCache,
};
pub use degrade::{apply_source_query, DegradationPolicy, FallbackStore, SourceReport};
pub use executor::{Executor, HedgePolicy, QueryResult, ReplanPolicy};
pub use profile::OperatorProfile;
pub use scheduler::{
    AdmissionConfig, BrownoutConfig, JobOutput, QueryTicket, Scheduler, SchedulerStats,
    ShedDecision,
};
pub use vector::{
    drive, BatchOperator, FxBuildHasher, FxHasher, VecAggregate, VecFilter, VecHashJoin,
    VecProject, DEFAULT_BATCH_SIZE,
};
