//! Per-operator execution profiles: what each physical operator *actually*
//! did — rows emitted, bytes shipped, simulated and wall time — mirroring
//! the plan tree.
//!
//! The executor collects one [`OperatorProfile`] node per operator whenever
//! instrumentation is on (the default). `EXPLAIN ANALYZE` renders the
//! profile next to the cost model's per-operator estimates; the profile also
//! grafts into a query's trace as `op:<label>` spans.

use std::time::Duration;

use eii_federation::QueryCost;
use eii_obs::SpanRecord;

/// Actual execution measurements for one operator's subtree.
#[derive(Debug, Clone)]
pub struct OperatorProfile {
    /// Short operator name ([`eii_planner::PhysicalPlan::label`]).
    pub label: &'static str,
    /// Source the operator talks to (`Source` and `BindJoin` operators).
    pub source: Option<String>,
    /// Rows the operator emitted.
    pub rows: usize,
    /// Cumulative cost of this operator's subtree (simulated time, bytes
    /// shipped, rows scanned, round trips). Subtree-cumulative rather than
    /// exclusive because parallel children overlap in simulated time.
    pub cost: QueryCost,
    /// Real elapsed time of this operator's subtree.
    pub wall: Duration,
    /// True when this operator's source fetch fired a hedged backup.
    pub hedged: bool,
    /// True when the hedged backup answered first (implies `hedged`).
    pub backup_won: bool,
    /// True when the executor adapted this operator mid-flight (adaptive
    /// re-planning: observed cardinality diverged from the estimate, so
    /// the remaining subtree was re-entered — e.g. a hub hash join's
    /// shipped build side became a binding-filtered fetch).
    pub replanned: bool,
    /// Child operator profiles, mirroring the plan's children.
    pub children: Vec<OperatorProfile>,
}

impl OperatorProfile {
    /// Total operators in this subtree (including `self`).
    pub fn op_count(&self) -> usize {
        1 + self.children.iter().map(OperatorProfile::op_count).sum::<usize>()
    }

    /// Depth-first search for the first operator with this label.
    pub fn find(&self, label: &str) -> Option<&OperatorProfile> {
        if self.label == label {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(label))
    }

    /// Convert into a span subtree (`op:<label>` spans annotated with rows
    /// and bytes) for grafting into a query trace. An operator whose fetch
    /// fired a hedged backup grows an extra `hedge:backup` child span, so
    /// the hedge shows up in trace renders and Chrome-trace exports.
    pub fn to_span(&self) -> SpanRecord {
        let mut annotations = vec![
            ("rows".to_string(), self.rows.to_string()),
            ("bytes".to_string(), self.cost.bytes.to_string()),
        ];
        if let Some(s) = &self.source {
            annotations.push(("source".to_string(), s.clone()));
        }
        if self.replanned {
            // An annotation, not a child span: the span tree must stay
            // isomorphic to the physical plan whether or not the executor
            // adapted the operator.
            annotations.push(("replanned".to_string(), "true".to_string()));
        }
        let mut children: Vec<SpanRecord> =
            self.children.iter().map(OperatorProfile::to_span).collect();
        if self.hedged {
            children.push(SpanRecord {
                name: "hedge:backup".to_string(),
                start_sim_ms: 0,
                end_sim_ms: self.cost.sim_ms.round() as i64,
                wall: Duration::ZERO,
                annotations: vec![("backup_won".to_string(), self.backup_won.to_string())],
                children: Vec::new(),
            });
        }
        SpanRecord {
            name: format!("op:{}", self.label),
            start_sim_ms: 0,
            end_sim_ms: self.cost.sim_ms.round() as i64,
            wall: self.wall,
            annotations,
            children,
        }
    }
}
