//! The concurrent query scheduler: a fixed worker pool behind an admission
//! controller.
//!
//! Sessions submit jobs (closures producing a value plus its simulated
//! cost) and get back a [`QueryTicket`] to join on. The admission
//! controller enforces two limits under one lock: at most
//! [`AdmissionConfig::max_in_flight`] jobs executing at once, and at most
//! [`AdmissionConfig::per_source_permits`] concurrent jobs touching any one
//! source — so a slow or broken source (whose circuit breaker is busy
//! timing out) saturates its own permits, while queued jobs against healthy
//! sources are picked over its head and the pool keeps draining.
//!
//! Throughput accounting runs on a deterministic *virtual timeline*:
//! completed jobs' simulated costs are recorded against their submission
//! order, and at snapshot time each cost lands on the least-loaded of one
//! virtual busy-time slot per worker (a greedy multiprocessor schedule in
//! submission order). A job's virtual latency is its slot's accumulated
//! busy time after the assignment (every job in a batch is modeled as
//! submitted at t=0), and the pool's makespan is the busiest slot's total.
//! Deriving the schedule at snapshot time — never at completion — makes
//! the stats bit-identical run to run, keeping experiment E16's scaling
//! measurements exact and reproducible on a single-core CI container,
//! where real wall-clock speedup is unobservable and which OS thread
//! happens to pull a job is arbitrary.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;

use eii_data::{CancelToken, EiiError, Priority, Result};

/// Admission-control limits for a [`Scheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Maximum jobs executing concurrently (admitted, not merely queued).
    pub max_in_flight: usize,
    /// Maximum concurrent jobs touching any single source.
    pub per_source_permits: usize,
}

impl AdmissionConfig {
    /// A pool of `workers` threads admitting up to `workers` jobs with no
    /// per-source cap beyond the pool size.
    pub fn with_workers(workers: usize) -> Self {
        let workers = workers.max(1);
        AdmissionConfig {
            workers,
            max_in_flight: workers,
            per_source_permits: workers,
        }
    }

    /// Cap concurrent jobs per source.
    pub fn with_source_permits(mut self, permits: usize) -> Self {
        self.per_source_permits = permits.max(1);
        self
    }

    /// Cap concurrently executing jobs.
    pub fn with_max_in_flight(mut self, max: usize) -> Self {
        self.max_in_flight = max.max(1);
        self
    }
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig::with_workers(4)
    }
}

/// Brownout load shedding: a virtual-time token bucket consulted at
/// submission, in submission order, under the scheduler lock — so the
/// admit/degrade/shed decision for any submission sequence replays
/// bit-identically, independent of worker timing.
///
/// Every submission credits `refill_per_job_ms` (the sustainable service
/// rate) and an admission debits `cost_per_job_ms`; when arrivals outpace
/// the refill the bucket drains and the scheduler *browns out* instead of
/// failing everyone: low-priority work is shed with a typed
/// [`EiiError::Shed`], normal-priority work is admitted in degraded mode
/// (the caller serves partial results at half cost), and high-priority work
/// is always admitted, borrowing the bucket down to `-capacity_ms`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutConfig {
    /// Bucket capacity (and starting level): the burst of work, virtual ms,
    /// absorbed before the brownout begins.
    pub capacity_ms: f64,
    /// Tokens debited per admitted job.
    pub cost_per_job_ms: f64,
    /// Tokens credited per submission; below `cost_per_job_ms` sustained
    /// full-rate arrivals eventually drain the bucket.
    pub refill_per_job_ms: f64,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            capacity_ms: 200.0,
            cost_per_job_ms: 10.0,
            refill_per_job_ms: 5.0,
        }
    }
}

/// What the brownout controller decided for one submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedDecision {
    /// Full service.
    Admit,
    /// Admitted, but the caller should serve a cheaper, partial answer.
    Degrade,
    /// Turned away with [`EiiError::Shed`] before consuming any capacity.
    Shed,
}

/// One brownout decision, taken with the state lock held.
fn brownout_decision(cfg: &BrownoutConfig, level: &mut f64, priority: Priority) -> ShedDecision {
    *level = (*level + cfg.refill_per_job_ms).min(cfg.capacity_ms);
    if *level >= cfg.cost_per_job_ms {
        *level -= cfg.cost_per_job_ms;
        return ShedDecision::Admit;
    }
    match priority {
        // SLA traffic always runs, borrowing against future refills.
        Priority::High => {
            *level = (*level - cfg.cost_per_job_ms).max(-cfg.capacity_ms);
            ShedDecision::Admit
        }
        // Best-effort traffic browns out: half cost for a partial answer.
        Priority::Normal => {
            *level = (*level - cfg.cost_per_job_ms * 0.5).max(-cfg.capacity_ms);
            ShedDecision::Degrade
        }
        Priority::Low => ShedDecision::Shed,
    }
}

/// What a job returns to the scheduler: its value plus the simulated
/// milliseconds the work cost (drives the virtual timeline).
#[derive(Debug)]
pub struct JobOutput<T> {
    pub value: T,
    pub sim_ms: f64,
}

type Work<T> = Box<dyn FnOnce() -> Result<JobOutput<T>> + Send + 'static>;

struct Job<T> {
    seq: u64,
    priority: Priority,
    sources: Vec<String>,
    work: Work<T>,
    ticket: Arc<TicketInner<T>>,
}

struct TicketInner<T> {
    slot: Mutex<Option<Result<T>>>,
    done: Condvar,
}

/// A handle to one submitted query; [`QueryTicket::join`] blocks until the
/// worker pool delivers the result, and [`QueryTicket::cancel`] withdraws
/// the job — immediately if it is still queued, cooperatively (via its
/// [`CancelToken`]) if it is already running.
pub struct QueryTicket<T> {
    inner: Arc<TicketInner<T>>,
    seq: u64,
    cancel: CancelToken,
    shared: Weak<Shared<T>>,
}

impl<T> std::fmt::Debug for QueryTicket<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryTicket").finish_non_exhaustive()
    }
}

impl<T> QueryTicket<T> {
    /// Block until the job completes and take its result.
    pub fn join(self) -> Result<T> {
        let mut slot = self.inner.slot.lock().expect("ticket lock");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.inner.done.wait(slot).expect("ticket wait");
        }
    }

    /// Take the result if the job already completed (non-blocking).
    pub fn try_join(&self) -> Option<Result<T>> {
        self.inner.slot.lock().expect("ticket lock").take()
    }

    /// The job's cancellation token; the submitter threads it into the
    /// query's request context so a cancel reaches a *running* plan at its
    /// next operator or batch boundary.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Cancel the job. A still-queued job is removed on the spot — it never
    /// acquires a worker or permit, and its ticket completes with
    /// [`EiiError::Cancelled`] (returns `true`). A job already running (or
    /// finished) only has its token flagged, and stops cooperatively at its
    /// next cancellation point (returns `false`).
    pub fn cancel(&self, reason: &str) -> bool {
        self.cancel.cancel(reason);
        let Some(shared) = self.shared.upgrade() else {
            return false;
        };
        let removed = {
            let mut state = shared.state.lock().expect("scheduler lock");
            let pos = state.queue.iter().position(|j| j.seq == self.seq);
            pos.map(|pos| {
                let job = state.queue.remove(pos).expect("job at position");
                state.stats.cancelled += 1;
                job
            })
        };
        match removed {
            Some(job) => {
                *job.ticket.slot.lock().expect("ticket lock") =
                    Some(Err(EiiError::Cancelled(reason.to_string())));
                job.ticket.done.notify_all();
                true
            }
            None => false,
        }
    }
}

struct State<T> {
    queue: VecDeque<Job<T>>,
    next_seq: u64,
    running: usize,
    source_load: BTreeMap<String, usize>,
    shutdown: bool,
    /// Brownout token-bucket level; only meaningful when the scheduler was
    /// built [`Scheduler::with_brownout`].
    brownout_level: f64,
    stats: StatsInner,
}

#[derive(Default)]
struct StatsInner {
    /// `(submission seq, sim_ms, priority)` per completed job. The virtual
    /// timeline is derived from this at snapshot time in submission order,
    /// so the reported schedule is independent of which OS thread finished
    /// first — stats replay bit-identically run to run.
    job_costs: Vec<(u64, f64, Priority)>,
    completed: u64,
    failed: u64,
    rejected: u64,
    shed: u64,
    degraded: u64,
    cancelled: u64,
    peak_in_flight: usize,
    peak_source_load: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    work_ready: Condvar,
}

/// Point-in-time scheduler statistics on the virtual timeline.
#[derive(Debug, Clone, Default)]
pub struct SchedulerStats {
    /// Jobs that completed successfully.
    pub completed: u64,
    /// Jobs that returned an error (or panicked).
    pub failed: u64,
    /// Jobs `try_submit` turned away at admission.
    pub rejected: u64,
    /// Jobs the brownout controller shed before queueing.
    pub shed: u64,
    /// Jobs the brownout controller admitted in degraded mode.
    pub degraded: u64,
    /// Jobs cancelled while still queued (they never ran).
    pub cancelled: u64,
    /// Sum of completed jobs' simulated cost — the serial makespan.
    pub serial_sim_ms: f64,
    /// Busiest worker's accumulated simulated time — the parallel makespan.
    pub makespan_ms: f64,
    /// Most jobs ever executing at once.
    pub peak_in_flight: usize,
    /// Most concurrent jobs ever touching one source.
    pub peak_source_load: usize,
    /// Per-job virtual completion latency, in submission order.
    pub latencies_ms: Vec<f64>,
    /// Each completed job's priority, aligned with `latencies_ms`.
    pub priorities: Vec<Priority>,
}

impl SchedulerStats {
    /// Throughput scaling versus serial execution of the same jobs
    /// (`serial_sim_ms / makespan_ms`; 1.0 when nothing ran).
    pub fn speedup(&self) -> f64 {
        if self.makespan_ms > 0.0 {
            self.serial_sim_ms / self.makespan_ms
        } else {
            1.0
        }
    }

    /// The `p`-th percentile (0..=100) of per-job virtual latency.
    pub fn latency_percentile(&self, p: f64) -> f64 {
        percentile(self.latencies_ms.clone(), p)
    }

    /// The `p`-th percentile of virtual latency among jobs of `priority`.
    pub fn latency_percentile_for(&self, priority: Priority, p: f64) -> f64 {
        let lat: Vec<f64> = self
            .latencies_ms
            .iter()
            .zip(&self.priorities)
            .filter(|(_, pr)| **pr == priority)
            .map(|(l, _)| *l)
            .collect();
        percentile(lat, p)
    }
}

fn percentile(mut sorted: Vec<f64>, p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// A fixed pool of worker threads executing submitted jobs under admission
/// control. Generic over the job's value type; the SQL-facing wrapper lives
/// in the `eii` facade crate (`QueryScheduler`), which closes over an
/// `Arc<EiiSystem>` per job.
pub struct Scheduler<T: Send + 'static> {
    shared: Arc<Shared<T>>,
    config: AdmissionConfig,
    brownout: Option<BrownoutConfig>,
    workers: Vec<JoinHandle<()>>,
}

impl<T: Send + 'static> Scheduler<T> {
    /// Start the worker pool.
    pub fn new(config: AdmissionConfig) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                next_seq: 0,
                running: 0,
                source_load: BTreeMap::new(),
                shutdown: false,
                brownout_level: 0.0,
                stats: StatsInner::default(),
            }),
            work_ready: Condvar::new(),
        });
        let workers = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared, config))
            })
            .collect();
        Scheduler {
            shared,
            config,
            brownout: None,
            workers,
        }
    }

    /// Enable brownout load shedding for [`Scheduler::submit_prioritized`]
    /// submissions. The bucket starts full.
    pub fn with_brownout(mut self, brownout: BrownoutConfig) -> Self {
        self.shared
            .state
            .lock()
            .expect("scheduler lock")
            .brownout_level = brownout.capacity_ms;
        self.brownout = Some(brownout);
        self
    }

    /// The admission configuration the pool runs under.
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Enqueue a job touching the given sources; always accepted (admission
    /// gates execution, not queueing). Returns the ticket to join on.
    pub fn submit(
        &self,
        sources: Vec<String>,
        work: impl FnOnce() -> Result<JobOutput<T>> + Send + 'static,
    ) -> QueryTicket<T> {
        self.enqueue(sources, Priority::Normal, CancelToken::new(), Box::new(work))
    }

    /// Enqueue a job with an explicit priority tier, consulting the
    /// brownout controller (when configured) in submission order: the
    /// returned [`ShedDecision`] is `Admit` or `Degrade` (the caller should
    /// then serve a partial answer), while a shed job is turned away here
    /// with [`EiiError::Shed`] before it consumes a queue slot.
    ///
    /// Among queued runnable jobs, higher-priority ones start first.
    pub fn submit_prioritized(
        &self,
        sources: Vec<String>,
        priority: Priority,
        work: impl FnOnce() -> Result<JobOutput<T>> + Send + 'static,
    ) -> Result<(QueryTicket<T>, ShedDecision)> {
        let decision = self.admit(priority)?;
        Ok((
            self.enqueue(sources, priority, CancelToken::new(), Box::new(work)),
            decision,
        ))
    }

    /// Consult the brownout controller for one submission at `priority`,
    /// charging the token bucket. Callers that need the decision *before*
    /// building their work closure (to mark it degraded) use this and then
    /// [`Scheduler::submit_admitted`]; [`Scheduler::submit_prioritized`]
    /// composes the two. Without a brownout config everything is admitted.
    pub fn admit(&self, priority: Priority) -> Result<ShedDecision> {
        let Some(cfg) = &self.brownout else {
            return Ok(ShedDecision::Admit);
        };
        let mut state = self.shared.state.lock().expect("scheduler lock");
        let decision = brownout_decision(cfg, &mut state.brownout_level, priority);
        match decision {
            ShedDecision::Shed => {
                state.stats.shed += 1;
                Err(EiiError::Shed {
                    priority: priority.as_str().to_string(),
                    reason: "brownout: admission budget exhausted".to_string(),
                })
            }
            ShedDecision::Degrade => {
                state.stats.degraded += 1;
                Ok(decision)
            }
            ShedDecision::Admit => Ok(decision),
        }
    }

    /// Enqueue a job whose brownout decision was already taken via
    /// [`Scheduler::admit`]. The caller supplies the job's [`CancelToken`]
    /// so the same token can be threaded into the work closure (e.g. a
    /// query's request context): cancelling the returned ticket then stops
    /// even a running query cooperatively, not just scheduler bookkeeping.
    pub fn submit_admitted(
        &self,
        sources: Vec<String>,
        priority: Priority,
        cancel: CancelToken,
        work: impl FnOnce() -> Result<JobOutput<T>> + Send + 'static,
    ) -> QueryTicket<T> {
        self.enqueue(sources, priority, cancel, Box::new(work))
    }

    /// Enqueue a job only if the controller has capacity right now
    /// (executing + queued below `max_in_flight`); otherwise reject with an
    /// `Execution` error and count it.
    pub fn try_submit(
        &self,
        sources: Vec<String>,
        work: impl FnOnce() -> Result<JobOutput<T>> + Send + 'static,
    ) -> Result<QueryTicket<T>> {
        {
            let mut state = self.shared.state.lock().expect("scheduler lock");
            if state.running + state.queue.len() >= self.config.max_in_flight {
                state.stats.rejected += 1;
                return Err(EiiError::Execution(format!(
                    "admission rejected: {} in flight (max {})",
                    state.running + state.queue.len(),
                    self.config.max_in_flight
                )));
            }
        }
        Ok(self.enqueue(sources, Priority::Normal, CancelToken::new(), Box::new(work)))
    }

    fn enqueue(
        &self,
        sources: Vec<String>,
        priority: Priority,
        cancel: CancelToken,
        work: Work<T>,
    ) -> QueryTicket<T> {
        let ticket = Arc::new(TicketInner {
            slot: Mutex::new(None),
            done: Condvar::new(),
        });
        let seq = {
            let mut state = self.shared.state.lock().expect("scheduler lock");
            let seq = state.next_seq;
            state.next_seq += 1;
            state.queue.push_back(Job {
                seq,
                priority,
                sources,
                work,
                ticket: Arc::clone(&ticket),
            });
            seq
        };
        self.shared.work_ready.notify_all();
        QueryTicket {
            inner: ticket,
            seq,
            cancel,
            shared: Arc::downgrade(&self.shared),
        }
    }

    /// Current statistics (virtual timeline).
    pub fn stats(&self) -> SchedulerStats {
        let state = self.shared.state.lock().expect("scheduler lock");
        snapshot_stats(&state.stats, self.config.workers)
    }

    /// Drain the queue, stop the workers, and return the final statistics.
    pub fn join(mut self) -> SchedulerStats {
        {
            let mut state = self.shared.state.lock().expect("scheduler lock");
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let state = self.shared.state.lock().expect("scheduler lock");
        snapshot_stats(&state.stats, self.config.workers)
    }
}

impl<T: Send + 'static> Drop for Scheduler<T> {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("scheduler lock");
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn snapshot_stats(stats: &StatsInner, workers: usize) -> SchedulerStats {
    // Greedy virtual schedule, replayed in submission order: each job
    // lands on the least-loaded of `workers` slots. Deriving the timeline
    // here (not at completion) keeps it independent of OS thread timing.
    let mut costs = stats.job_costs.clone();
    costs.sort_unstable_by_key(|(seq, _, _)| *seq);
    let mut slots = vec![0.0f64; workers.max(1)];
    let mut latencies_ms = Vec::with_capacity(costs.len());
    let mut priorities = Vec::with_capacity(costs.len());
    for (_, sim_ms, priority) in &costs {
        let slot = slots
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite busy times"))
            .map(|(i, _)| i)
            .expect("at least one worker slot");
        slots[slot] += sim_ms;
        latencies_ms.push(slots[slot]);
        priorities.push(*priority);
    }
    SchedulerStats {
        completed: stats.completed,
        failed: stats.failed,
        rejected: stats.rejected,
        shed: stats.shed,
        degraded: stats.degraded,
        cancelled: stats.cancelled,
        serial_sim_ms: costs.iter().map(|(_, c, _)| c).sum::<f64>(),
        makespan_ms: slots.iter().cloned().fold(0.0, f64::max),
        peak_in_flight: stats.peak_in_flight,
        peak_source_load: stats.peak_source_load,
        latencies_ms,
        priorities,
    }
}

/// True when the job can start now without breaching either limit.
fn admissible<T>(job: &Job<T>, state: &State<T>, config: AdmissionConfig) -> bool {
    if state.running >= config.max_in_flight {
        return false;
    }
    job.sources.iter().all(|s| {
        state.source_load.get(s).copied().unwrap_or(0) < config.per_source_permits
    })
}

fn worker_loop<T: Send + 'static>(shared: Arc<Shared<T>>, config: AdmissionConfig) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("scheduler lock");
            loop {
                // Runnable selection: among jobs not blocked on per-source
                // permits (so a slow source cannot starve the queue behind
                // it), the highest-priority one starts first; within a tier,
                // submission order.
                let pos = {
                    let st: &State<T> = &state;
                    st.queue
                        .iter()
                        .enumerate()
                        .filter(|(_, j)| admissible(j, st, config))
                        .max_by_key(|(_, j)| (j.priority, std::cmp::Reverse(j.seq)))
                        .map(|(i, _)| i)
                };
                if let Some(pos) = pos {
                    let job = state.queue.remove(pos).expect("job at position");
                    state.running += 1;
                    state.stats.peak_in_flight =
                        state.stats.peak_in_flight.max(state.running);
                    for s in &job.sources {
                        let load = {
                            let l = state.source_load.entry(s.clone()).or_insert(0);
                            *l += 1;
                            *l
                        };
                        state.stats.peak_source_load =
                            state.stats.peak_source_load.max(load);
                    }
                    break job;
                }
                if state.shutdown && state.queue.is_empty() {
                    return;
                }
                state = shared.work_ready.wait(state).expect("scheduler wait");
            }
        };

        let outcome = catch_unwind(AssertUnwindSafe(job.work)).unwrap_or_else(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(EiiError::Execution(format!("scheduled job panicked: {msg}")))
        });

        {
            let mut state = shared.state.lock().expect("scheduler lock");
            state.running -= 1;
            for s in &job.sources {
                if let Some(load) = state.source_load.get_mut(s) {
                    *load = load.saturating_sub(1);
                }
            }
            match &outcome {
                Ok(out) => {
                    state
                        .stats
                        .job_costs
                        .push((job.seq, out.sim_ms, job.priority));
                    state.stats.completed += 1;
                }
                Err(_) => state.stats.failed += 1,
            }
        }
        // A freed permit may unblock queued jobs on other workers.
        shared.work_ready.notify_all();

        let result = outcome.map(|out| out.value);
        *job.ticket.slot.lock().expect("ticket lock") = Some(result);
        job.ticket.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_and_tickets_join() {
        let pool: Scheduler<usize> = Scheduler::new(AdmissionConfig::with_workers(4));
        let tickets: Vec<_> = (0..20)
            .map(|i| {
                pool.submit(vec!["crm".into()], move || {
                    Ok(JobOutput {
                        value: i * 2,
                        sim_ms: 1.0,
                    })
                })
            })
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.join().unwrap(), i * 2);
        }
        let stats = pool.join();
        assert_eq!(stats.completed, 20);
        assert!((stats.serial_sim_ms - 20.0).abs() < 1e-9);
        assert!(stats.makespan_ms <= 20.0);
        assert_eq!(stats.latencies_ms.len(), 20);
    }

    #[test]
    fn per_source_permits_are_never_breached() {
        let config = AdmissionConfig::with_workers(8).with_source_permits(2);
        let pool: Scheduler<()> = Scheduler::new(config);
        let in_source = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let tickets: Vec<_> = (0..40)
            .map(|_| {
                let in_source = Arc::clone(&in_source);
                let peak = Arc::clone(&peak);
                pool.submit(vec!["slow".into()], move || {
                    let now = in_source.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    in_source.fetch_sub(1, Ordering::SeqCst);
                    Ok(JobOutput {
                        value: (),
                        sim_ms: 1.0,
                    })
                })
            })
            .collect();
        for t in tickets {
            t.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "permit breached");
        let stats = pool.join();
        assert!(stats.peak_source_load <= 2);
        assert_eq!(stats.completed, 40);
    }

    #[test]
    fn slow_source_does_not_starve_other_queues() {
        // One permit for the slow source, plenty of workers: the slow jobs
        // serialize while the fast jobs all run.
        let config = AdmissionConfig::with_workers(4).with_source_permits(1);
        let pool: Scheduler<&'static str> = Scheduler::new(config);
        let mut tickets = Vec::new();
        for _ in 0..3 {
            tickets.push(pool.submit(vec!["slow".into()], move || {
                std::thread::sleep(std::time::Duration::from_millis(2));
                Ok(JobOutput {
                    value: "slow",
                    sim_ms: 100.0,
                })
            }));
        }
        for _ in 0..10 {
            tickets.push(pool.submit(vec!["fast".into()], move || {
                Ok(JobOutput {
                    value: "fast",
                    sim_ms: 1.0,
                })
            }));
        }
        for t in tickets {
            t.join().unwrap();
        }
        let stats = pool.join();
        assert_eq!(stats.completed, 13);
        assert_eq!(stats.peak_source_load, 1, "slow source held to one permit");
    }

    #[test]
    fn try_submit_rejects_past_max_in_flight() {
        let config = AdmissionConfig::with_workers(1).with_max_in_flight(1);
        let pool: Scheduler<()> = Scheduler::new(config);
        let gate = Arc::new(AtomicUsize::new(0));
        let g = Arc::clone(&gate);
        let first = pool.submit(vec![], move || {
            while g.load(Ordering::SeqCst) == 0 {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
            Ok(JobOutput {
                value: (),
                sim_ms: 1.0,
            })
        });
        // Wait for the first job to be admitted, then the pool is full.
        while pool.stats().peak_in_flight == 0 {
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        let err = pool
            .try_submit(vec![], || {
                Ok(JobOutput {
                    value: (),
                    sim_ms: 1.0,
                })
            })
            .unwrap_err();
        assert_eq!(err.kind(), "execution");
        gate.store(1, Ordering::SeqCst);
        first.join().unwrap();
        let stats = pool.join();
        assert_eq!(stats.rejected, 1);
    }

    #[test]
    fn panicking_job_fails_its_ticket_not_the_pool() {
        let pool: Scheduler<()> = Scheduler::new(AdmissionConfig::with_workers(2));
        let bad = pool.submit(vec![], || panic!("boom"));
        let good = pool.submit(vec![], || {
            Ok(JobOutput {
                value: (),
                sim_ms: 1.0,
            })
        });
        let err = bad.join().unwrap_err();
        assert!(err.to_string().contains("boom"), "{err}");
        good.join().unwrap();
        let stats = pool.join();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn brownout_sheds_low_priority_before_high_priority_suffers() {
        // Refill covers half the cost: the bucket drains after
        // capacity / (cost - refill) = 4 admissions at full service.
        let pool: Scheduler<()> = Scheduler::new(AdmissionConfig::with_workers(2))
            .with_brownout(BrownoutConfig {
                capacity_ms: 20.0,
                cost_per_job_ms: 10.0,
                refill_per_job_ms: 5.0,
            });
        let job = || {
            Ok(JobOutput {
                value: (),
                sim_ms: 1.0,
            })
        };
        let mut shed = 0;
        let mut degraded = 0;
        let mut tickets = Vec::new();
        for i in 0..12 {
            let priority = match i % 3 {
                0 => Priority::High,
                1 => Priority::Normal,
                _ => Priority::Low,
            };
            match pool.submit_prioritized(vec![], priority, job) {
                Ok((t, decision)) => {
                    if decision == ShedDecision::Degrade {
                        degraded += 1;
                        assert_eq!(priority, Priority::Normal, "only best-effort degrades");
                    }
                    tickets.push((priority, t));
                }
                Err(err) => {
                    assert_eq!(err.kind(), "shed");
                    assert_eq!(priority, Priority::Low, "only low priority sheds");
                    assert!(err.message().contains("low"), "{err}");
                    shed += 1;
                }
            }
        }
        for (priority, t) in tickets {
            t.join()
                .unwrap_or_else(|e| panic!("{priority:?} job failed: {e}"));
        }
        assert!(shed >= 1, "overload must shed some low-priority work");
        assert!(degraded >= 1, "overload must degrade some normal work");
        let stats = pool.join();
        assert_eq!(stats.shed, shed);
        assert_eq!(stats.degraded, degraded);
        assert_eq!(stats.completed, 12 - shed);
        assert_eq!(
            stats.priorities.iter().filter(|p| **p == Priority::High).count(),
            4,
            "every high-priority job ran"
        );
    }

    #[test]
    fn cancelling_a_queued_job_releases_nothing_and_completes_its_ticket() {
        let config = AdmissionConfig::with_workers(1).with_max_in_flight(1);
        let pool: Scheduler<&'static str> = Scheduler::new(config);
        let gate = Arc::new(AtomicUsize::new(0));
        let g = Arc::clone(&gate);
        let first = pool.submit(vec!["crm".into()], move || {
            while g.load(Ordering::SeqCst) == 0 {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
            Ok(JobOutput {
                value: "ran",
                sim_ms: 1.0,
            })
        });
        while pool.stats().peak_in_flight == 0 {
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        // The second job is stuck in the queue behind the gate; cancel it.
        let queued = pool.submit(vec!["crm".into()], || {
            panic!("a cancelled queued job must never run")
        });
        assert!(queued.cancel("user gave up"), "still queued: removed");
        let err = queued.join().unwrap_err();
        assert_eq!(err.kind(), "cancelled");
        assert!(err.message().contains("user gave up"));
        gate.store(1, Ordering::SeqCst);
        assert_eq!(first.join().unwrap(), "ran");
        // No permit leaked: the pool still runs jobs against the source.
        let after = pool.submit(vec!["crm".into()], || {
            Ok(JobOutput {
                value: "after",
                sim_ms: 1.0,
            })
        });
        assert_eq!(after.join().unwrap(), "after");
        let stats = pool.join();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.failed, 0, "the cancelled job never executed");
    }

    #[test]
    fn cancelling_a_running_job_flags_its_token_cooperatively() {
        let pool: Scheduler<()> = Scheduler::new(AdmissionConfig::with_workers(1));
        let started = Arc::new(AtomicUsize::new(0));
        let s = Arc::clone(&started);
        let ticket = pool.submit(vec![], move || {
            s.store(1, Ordering::SeqCst);
            while s.load(Ordering::SeqCst) == 1 {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
            Ok(JobOutput {
                value: (),
                sim_ms: 1.0,
            })
        });
        while started.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        let token = ticket.cancel_token();
        assert!(!ticket.cancel("too slow"), "already running: cooperative");
        assert!(token.is_cancelled());
        assert_eq!(token.reason().as_deref(), Some("too slow"));
        started.store(2, Ordering::SeqCst);
        // The job itself ignored the token here, so it completes normally —
        // wiring the token into the executor's request context is the
        // facade's job.
        ticket.try_join();
        let stats = pool.join();
        assert_eq!(stats.cancelled, 0, "running jobs are not force-removed");
    }

    #[test]
    fn high_priority_jobs_jump_the_queue() {
        let config = AdmissionConfig::with_workers(1).with_max_in_flight(1);
        let pool: Scheduler<()> = Scheduler::new(config);
        let gate = Arc::new(AtomicUsize::new(0));
        let order = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let g = Arc::clone(&gate);
        let first = pool.submit(vec![], move || {
            while g.load(Ordering::SeqCst) == 0 {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
            Ok(JobOutput {
                value: (),
                sim_ms: 1.0,
            })
        });
        while pool.stats().peak_in_flight == 0 {
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        // Queued while the worker is busy: low first, then high.
        let o1 = Arc::clone(&order);
        let (low, _) = pool
            .submit_prioritized(vec![], Priority::Low, move || {
                o1.lock().unwrap().push("low");
                Ok(JobOutput {
                    value: (),
                    sim_ms: 1.0,
                })
            })
            .unwrap();
        let o2 = Arc::clone(&order);
        let (high, _) = pool
            .submit_prioritized(vec![], Priority::High, move || {
                o2.lock().unwrap().push("high");
                Ok(JobOutput {
                    value: (),
                    sim_ms: 1.0,
                })
            })
            .unwrap();
        gate.store(1, Ordering::SeqCst);
        first.join().unwrap();
        high.join().unwrap();
        low.join().unwrap();
        assert_eq!(*order.lock().unwrap(), vec!["high", "low"]);
    }

    #[test]
    fn virtual_timeline_scales_with_workers() {
        for workers in [1usize, 4] {
            let pool: Scheduler<()> =
                Scheduler::new(AdmissionConfig::with_workers(workers));
            let tickets: Vec<_> = (0..32)
                .map(|_| {
                    pool.submit(vec![], || {
                        Ok(JobOutput {
                            value: (),
                            sim_ms: 10.0,
                        })
                    })
                })
                .collect();
            for t in tickets {
                t.join().unwrap();
            }
            let stats = pool.join();
            assert!((stats.serial_sim_ms - 320.0).abs() < 1e-9);
            assert!((stats.makespan_ms - 320.0 / workers as f64).abs() < 1e-9);
            assert!((stats.speedup() - workers as f64).abs() < 1e-9);
        }
    }
}
