//! Batch-first operator API: the vectorized counterparts of the executor's
//! hot row-at-a-time operators (filter, project, hash join, aggregate).
//!
//! Every operator implements [`BatchOperator`]: the executor pushes columnar
//! chunks through `push` and collects emitted chunks, then calls `finish`
//! for whatever the operator buffered (aggregates emit everything there).
//! Chunk boundaries are the executor's cancellation/deadline checkpoints —
//! see [`drive`].
//!
//! The contract with the row path is *exact semantic equivalence*: the same
//! output values in the same order, and the same errors, as the scalar
//! interpreter — byte-identical answers are what lets the planner flip
//! `vectorize` on without an answer-stability risk (experiment E21 gates
//! this). The places where that contract bites are spelled out inline:
//! NULL join keys, Semi/Anti residual short-circuiting, first-seen group
//! order, and the integral-until-float SUM ladder (reused from
//! [`crate::agg::Accumulator`]).

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};
use std::sync::Arc;

use eii_data::{Column, ColumnarBatch, Result, SchemaRef, Value};
use eii_expr::{eval_column, eval_filter, AggFunc, BoundExpr};
use eii_sql::JoinKind;

use crate::agg::Accumulator;

/// Default rows per chunk when the plan does not specify one.
pub const DEFAULT_BATCH_SIZE: usize = 4096;

/// A vectorized operator: consumes columnar chunks, produces columnar chunks.
///
/// Streaming operators (filter, project, join probe) answer from `push`;
/// blocking operators (aggregate) buffer and answer from `finish`.
pub trait BatchOperator {
    /// Feed one input chunk; `Ok(None)` means nothing to emit yet.
    fn push(&mut self, chunk: &ColumnarBatch) -> Result<Option<ColumnarBatch>>;

    /// Input exhausted; emit anything buffered.
    fn finish(&mut self) -> Result<Option<ColumnarBatch>>;
}

/// Feed `input` through `op` in `batch_size` chunks, calling `check` before
/// each chunk (the cancellation/deadline boundary), and concatenate the
/// emitted chunks into one compact batch of `out_schema`.
pub fn drive(
    op: &mut dyn BatchOperator,
    input: &ColumnarBatch,
    out_schema: SchemaRef,
    batch_size: usize,
    mut check: impl FnMut() -> Result<()>,
) -> Result<ColumnarBatch> {
    let size = if batch_size == 0 {
        DEFAULT_BATCH_SIZE
    } else {
        batch_size
    };
    let n = input.num_rows();
    let mut out = Vec::new();
    if n <= size {
        // Single chunk: skip the selection detour.
        check()?;
        if let Some(b) = op.push(input)? {
            out.push(b);
        }
    } else {
        let mut start = 0usize;
        while start < n {
            check()?;
            let end = (start + size).min(n);
            let chunk = input.select((start as u32..end as u32).collect());
            if let Some(b) = op.push(&chunk)? {
                out.push(b);
            }
            start = end;
        }
    }
    if let Some(b) = op.finish()? {
        out.push(b);
    }
    // A single emitted chunk passes through as-is, keeping its selection
    // vector lazy for the next operator; only multi-chunk output copies.
    if out.len() == 1 {
        return Ok(out.pop().expect("one chunk"));
    }
    Ok(ColumnarBatch::concat(out_schema, &out))
}

/// Vectorized filter: evaluates the predicate as a column and narrows the
/// chunk with a selection vector instead of materializing survivor rows.
pub struct VecFilter {
    pred: BoundExpr,
}

impl VecFilter {
    /// Filter by `pred` (already bound against the input schema).
    pub fn new(pred: BoundExpr) -> Self {
        VecFilter { pred }
    }
}

impl BatchOperator for VecFilter {
    fn push(&mut self, chunk: &ColumnarBatch) -> Result<Option<ColumnarBatch>> {
        let keep = eval_filter(&self.pred, chunk)?;
        Ok(Some(chunk.select(keep)))
    }

    fn finish(&mut self) -> Result<Option<ColumnarBatch>> {
        Ok(None)
    }
}

/// Vectorized projection: each output column is one kernel evaluation over
/// the whole chunk.
pub struct VecProject {
    exprs: Vec<BoundExpr>,
    schema: SchemaRef,
}

impl VecProject {
    /// Project to `exprs` (bound against the input schema) under `schema`.
    pub fn new(exprs: Vec<BoundExpr>, schema: SchemaRef) -> Self {
        VecProject { exprs, schema }
    }
}

impl BatchOperator for VecProject {
    fn push(&mut self, chunk: &ColumnarBatch) -> Result<Option<ColumnarBatch>> {
        let cols = self
            .exprs
            .iter()
            .map(|e| eval_column(e, chunk))
            .collect::<Result<Vec<_>>>()?;
        // Kernel outputs are compact (logical-row aligned), so the result
        // batch carries no selection.
        Ok(Some(ColumnarBatch::new(
            Arc::clone(&self.schema),
            cols,
            chunk.num_rows(),
        )))
    }

    fn finish(&mut self) -> Result<Option<ColumnarBatch>> {
        Ok(None)
    }
}

// ---------------------------------------------------------------------------
// Hashing: a multiply-rotate hasher (the rustc-hash construction) for join
// and group keys. SipHash's per-key setup dominates small-key hashing; this
// is the single biggest lever in the join build/probe loop. Written here by
// hand because the container bakes in no new dependencies.
// ---------------------------------------------------------------------------

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fast non-cryptographic hasher for hub-internal hash tables (join keys,
/// group keys). Not DoS-resistant; never use it on attacker-controlled keys
/// that outlive a query.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// [`BuildHasher`] for [`FxHasher`].
#[derive(Default, Clone)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

// ---------------------------------------------------------------------------
// Hash join
// ---------------------------------------------------------------------------

/// Sentinel in a build-side gather list meaning "no build row": the gathered
/// column gets NULL there (Left-join null extension).
const NO_ROW: u32 = u32::MAX;

/// The build-side hash table: physical build-row indices per key, in build
/// insertion order (the row path stores `Vec<&Row>` the same way, which is
/// what keeps output order identical).
enum KeyTable {
    /// Single integer key: hash raw `i64`s, no per-row `Vec<Value>`.
    Int(FxHashMap<i64, Vec<u32>>),
    /// General path: composite or non-integer keys as `Vec<Value>` (whose
    /// `Hash` makes `Int(2)` and `Float(2.0)` collide, as SQL equality
    /// demands).
    General(FxHashMap<Vec<Value>, Vec<u32>>),
}

impl KeyTable {
    fn lookup(&self, key: &ProbeKey) -> Option<&Vec<u32>> {
        match (self, key) {
            (KeyTable::Int(map), ProbeKey::Int(i)) => map.get(i),
            (KeyTable::General(map), ProbeKey::General(k)) => map.get(k),
            // NULL keys never join; an Int-keyed table only matches
            // integral probes (ProbeKey construction already folded exact
            // floats into Int).
            _ => None,
        }
    }
}

/// One probe row's key, shaped to match the table representation.
enum ProbeKey {
    /// Key is NULL (any component): never joins.
    Null,
    /// Integral single key for [`KeyTable::Int`].
    Int(i64),
    /// Key that cannot match an Int table (e.g. a string probe against an
    /// integer build column), or the general representation.
    NoMatch,
    /// General composite key.
    General(Vec<Value>),
}

/// Vectorized hash join: the build side is consumed whole at construction,
/// probe chunks stream through `push`. Matches the row path exactly:
/// probe-order × build-insertion-order output, NULL keys never join (Left
/// null-extends, Anti keeps, Semi/Inner drop), Semi/Anti residuals
/// short-circuit at the first matching candidate.
pub struct VecHashJoin {
    table: KeyTable,
    build: ColumnarBatch,
    build_width: usize,
    probe_keys: Vec<BoundExpr>,
    kind: JoinKind,
    residual: Option<BoundExpr>,
    /// Schema residuals are bound against (for Semi/Anti this is the
    /// concatenation of both sides even though only left columns flow out).
    pred_schema: SchemaRef,
    schema: SchemaRef,
}

impl VecHashJoin {
    /// Build the hash table over `build` (the right side, compacted) using
    /// `build_keys`/`probe_keys` bound against the respective schemas.
    /// `pred_schema` is what `residual` was bound against.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        build: &ColumnarBatch,
        build_keys: &[BoundExpr],
        probe_keys: Vec<BoundExpr>,
        kind: JoinKind,
        residual: Option<BoundExpr>,
        pred_schema: SchemaRef,
        schema: SchemaRef,
    ) -> Result<Self> {
        let build = build.compact();
        let key_cols = build_keys
            .iter()
            .map(|k| eval_column(k, &build))
            .collect::<Result<Vec<_>>>()?;
        let n = build.num_rows();
        // Single all-integer key: hash raw i64s. Scalar Int/Float equality
        // compares through f64 (`i as f64 == f`), while a float probe folds
        // onto this table via `f as i64`; the two agree only when every build
        // key is exactly representable as f64, so keys beyond ±2^53 take the
        // general Vec<Value> table whose Hash/Eq already implement the scalar
        // semantics.
        let int_col = match key_cols.as_slice() {
            [only] if only.no_nulls() => only
                .as_ints()
                .filter(|ints| ints.iter().all(|&i| i.unsigned_abs() <= 1 << 53)),
            _ => None,
        };
        let table = if let Some(ints) = int_col {
            let mut map: FxHashMap<i64, Vec<u32>> =
                HashMap::with_capacity_and_hasher(n, FxBuildHasher);
            for (i, &k) in ints.iter().enumerate() {
                map.entry(k).or_default().push(i as u32);
            }
            KeyTable::Int(map)
        } else {
            let mut map: FxHashMap<Vec<Value>, Vec<u32>> =
                HashMap::with_capacity_and_hasher(n, FxBuildHasher);
            'row: for i in 0..n {
                let mut key = Vec::with_capacity(key_cols.len());
                for col in &key_cols {
                    if col.is_null(i) {
                        continue 'row; // NULL keys never join.
                    }
                    key.push(col.value(i));
                }
                map.entry(key).or_default().push(i as u32);
            }
            KeyTable::General(map)
        };
        let build_width = build.schema().len();
        Ok(VecHashJoin {
            table,
            build,
            build_width,
            probe_keys,
            kind,
            residual,
            pred_schema,
            schema,
        })
    }

    /// Shape one probe row's key for the table representation.
    fn probe_key(&self, key_cols: &[Arc<Column>], row: usize) -> ProbeKey {
        if key_cols.iter().any(|c| c.is_null(row)) {
            return ProbeKey::Null;
        }
        match &self.table {
            KeyTable::Int(_) => match key_cols[0].value(row) {
                Value::Int(i) => ProbeKey::Int(i),
                // SQL equality folds exact floats onto integers.
                Value::Float(f) if (f as i64) as f64 == f => ProbeKey::Int(f as i64),
                _ => ProbeKey::NoMatch,
            },
            KeyTable::General(_) => {
                ProbeKey::General(key_cols.iter().map(|c| c.value(row)).collect())
            }
        }
    }

    /// Inner/Left probe: pair lists + vectorized residual, then gather.
    fn probe_pairs(&self, chunk: &ColumnarBatch) -> Result<ColumnarBatch> {
        let key_cols = self
            .probe_keys
            .iter()
            .map(|k| eval_column(k, chunk))
            .collect::<Result<Vec<_>>>()?;
        let n = chunk.num_rows();
        let left = matches!(self.kind, JoinKind::Left);
        // Candidate pairs, grouped contiguously per probe row.
        let mut pair_probe: Vec<u32> = Vec::new();
        let mut pair_build: Vec<u32> = Vec::new();
        /// What one probe row contributed.
        enum Entry {
            /// NULL key or empty bucket: Left null-extends, Inner drops.
            NoCandidates,
            /// Pair-list range `start..end`.
            Pairs(u32, u32),
        }
        let mut entries: Vec<(u32, Entry)> = Vec::with_capacity(n);
        for row in 0..n {
            let phys = chunk.physical_index(row) as u32;
            let candidates = match self.probe_key(&key_cols, row) {
                ProbeKey::Null | ProbeKey::NoMatch => None,
                key => self.table.lookup(&key),
            };
            match candidates {
                None => entries.push((phys, Entry::NoCandidates)),
                Some(rows) => {
                    let start = pair_probe.len() as u32;
                    for &b in rows {
                        pair_probe.push(phys);
                        pair_build.push(b);
                    }
                    entries.push((phys, Entry::Pairs(start, pair_probe.len() as u32)));
                }
            }
        }

        // Vectorized residual over all candidate pairs at once. The row path
        // evaluates the residual on every candidate too (no short-circuit
        // for Inner/Left), so errors surface identically.
        let survives: Option<Vec<bool>> = match &self.residual {
            None => None,
            Some(pred) => {
                let cand = self.pair_batch(chunk, &pair_probe, &pair_build);
                let kept = eval_filter(pred, &cand)?;
                let mut mask = vec![false; pair_probe.len()];
                for k in kept {
                    mask[k as usize] = true;
                }
                Some(mask)
            }
        };

        // Emit in probe order: surviving pairs in candidate order, else a
        // null-extension for Left.
        let mut out_probe: Vec<u32> = Vec::new();
        let mut out_build: Vec<u32> = Vec::new();
        for (phys, entry) in entries {
            match entry {
                Entry::NoCandidates => {
                    if left {
                        out_probe.push(phys);
                        out_build.push(NO_ROW);
                    }
                }
                Entry::Pairs(start, end) => {
                    let mut matched = false;
                    for p in start..end {
                        let ok = survives.as_ref().is_none_or(|m| m[p as usize]);
                        if ok {
                            matched = true;
                            out_probe.push(pair_probe[p as usize]);
                            out_build.push(pair_build[p as usize]);
                        }
                    }
                    if left && !matched {
                        out_probe.push(phys);
                        out_build.push(NO_ROW);
                    }
                }
            }
        }
        Ok(self.gather_joined(chunk, &out_probe, &out_build))
    }

    /// Materialize the candidate-pair batch residuals are evaluated over.
    fn pair_batch(
        &self,
        chunk: &ColumnarBatch,
        pair_probe: &[u32],
        pair_build: &[u32],
    ) -> ColumnarBatch {
        let mut cols: Vec<Arc<Column>> = Vec::with_capacity(self.pred_schema.len());
        for c in chunk.columns() {
            cols.push(Arc::new(c.gather(pair_probe)));
        }
        for c in self.build.columns() {
            cols.push(Arc::new(c.gather(pair_build)));
        }
        ColumnarBatch::new(Arc::clone(&self.pred_schema), cols, pair_probe.len())
    }

    /// Gather the output batch from probe/build index lists (`NO_ROW` in the
    /// build list null-extends).
    fn gather_joined(
        &self,
        chunk: &ColumnarBatch,
        out_probe: &[u32],
        out_build: &[u32],
    ) -> ColumnarBatch {
        let mut cols: Vec<Arc<Column>> = Vec::with_capacity(self.schema.len());
        for c in chunk.columns() {
            cols.push(Arc::new(c.gather(out_probe)));
        }
        for c in self.build.columns() {
            cols.push(Arc::new(c.gather_opt(out_build)));
        }
        ColumnarBatch::new(Arc::clone(&self.schema), cols, out_probe.len())
    }

    /// Semi/Anti probe: candidate scan with the row path's short-circuit —
    /// a residual error on a later candidate is unreachable once an earlier
    /// candidate matched, so this stays row-at-a-time over candidates.
    fn probe_filtering(&self, chunk: &ColumnarBatch) -> Result<ColumnarBatch> {
        let key_cols = self
            .probe_keys
            .iter()
            .map(|k| eval_column(k, chunk))
            .collect::<Result<Vec<_>>>()?;
        let n = chunk.num_rows();
        let anti = matches!(self.kind, JoinKind::Anti);
        let mut keep: Vec<u32> = Vec::new();
        for row in 0..n {
            let candidates = match self.probe_key(&key_cols, row) {
                // NULL keys never match: anti keeps the row, semi drops it.
                ProbeKey::Null | ProbeKey::NoMatch => None,
                key => self.table.lookup(&key),
            };
            let mut matched = false;
            if let Some(rows) = candidates {
                match &self.residual {
                    None => matched = !rows.is_empty(),
                    Some(pred) => {
                        let l = chunk.row(row);
                        for &b in rows {
                            let combined = l.concat(&self.build.row(b as usize));
                            if pred.eval_predicate(&combined)? {
                                matched = true;
                                break;
                            }
                        }
                    }
                }
            }
            if matched != anti {
                keep.push(row as u32);
            }
        }
        Ok(chunk.select(keep).with_schema(Arc::clone(&self.schema)))
    }

    /// The right side's column count (for callers sizing null extensions).
    pub fn build_width(&self) -> usize {
        self.build_width
    }
}

impl BatchOperator for VecHashJoin {
    fn push(&mut self, chunk: &ColumnarBatch) -> Result<Option<ColumnarBatch>> {
        let out = match self.kind {
            // A keyless Cross join degenerates correctly: every build row
            // sits under the empty key, which every probe row carries.
            JoinKind::Inner | JoinKind::Left | JoinKind::Cross => self.probe_pairs(chunk)?,
            JoinKind::Semi | JoinKind::Anti => self.probe_filtering(chunk)?,
        };
        Ok(Some(out))
    }

    fn finish(&mut self) -> Result<Option<ColumnarBatch>> {
        Ok(None)
    }
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// The group-key → group-index map. Single integer group keys skip the
/// per-row `Vec<Value>`; the moment a non-integer key value appears the map
/// migrates to the general representation (group identity is unaffected —
/// both follow `Value` equality, under which `Int(2)` equals `Float(2.0)`).
enum GroupMap {
    Int {
        map: FxHashMap<i64, u32>,
        null_slot: Option<u32>,
    },
    General(FxHashMap<Vec<Value>, u32>),
}

/// Vectorized hash aggregation: buffers group state across chunks, emits one
/// batch from `finish`. Group order is first-seen, like the row path; the
/// accumulators ARE the row path's ([`crate::agg::Accumulator`]), so SUM's
/// integral-until-float ladder and DISTINCT behave identically.
pub struct VecAggregate {
    groups: Vec<BoundExpr>,
    /// One per aggregate; `None` is `COUNT(*)`.
    args: Vec<Option<BoundExpr>>,
    templates: Vec<(AggFunc, bool)>,
    map: GroupMap,
    /// First-seen-order group keys.
    keys: Vec<Vec<Value>>,
    /// `[group][agg]` state.
    accs: Vec<Vec<Accumulator>>,
    schema: SchemaRef,
}

impl VecAggregate {
    /// Aggregate `args` per `groups` (all bound against the input schema),
    /// producing `schema` (group columns then aggregate columns).
    pub fn new(
        groups: Vec<BoundExpr>,
        args: Vec<Option<BoundExpr>>,
        templates: Vec<(AggFunc, bool)>,
        schema: SchemaRef,
    ) -> Self {
        let map = if groups.len() == 1 {
            GroupMap::Int {
                map: HashMap::with_hasher(FxBuildHasher),
                null_slot: None,
            }
        } else {
            GroupMap::General(HashMap::with_hasher(FxBuildHasher))
        };
        VecAggregate {
            groups,
            args,
            templates,
            map,
            keys: Vec::new(),
            accs: Vec::new(),
            schema,
        }
    }

    fn fresh_accs(&self) -> Vec<Accumulator> {
        self.templates
            .iter()
            .map(|&(func, distinct)| Accumulator::new(func, distinct))
            .collect()
    }

    /// Resolve the group index for one row's key columns, creating the group
    /// on first sight.
    fn group_index(&mut self, key_cols: &[Arc<Column>], row: usize) -> u32 {
        // Single-key integer fast path, with on-the-fly migration.
        if let GroupMap::Int { map, null_slot } = &mut self.map {
            let col = &key_cols[0];
            if col.is_null(row) {
                return *null_slot.get_or_insert_with(|| {
                    self.keys.push(vec![Value::Null]);
                    self.accs.push(
                        self.templates
                            .iter()
                            .map(|&(f, d)| Accumulator::new(f, d))
                            .collect(),
                    );
                    (self.keys.len() - 1) as u32
                });
            }
            if let Value::Int(i) = col.value(row) {
                if let Some(&idx) = map.get(&i) {
                    return idx;
                }
                let idx = self.keys.len() as u32;
                map.insert(i, idx);
                self.keys.push(vec![Value::Int(i)]);
                self.accs.push(
                    self.templates
                        .iter()
                        .map(|&(f, d)| Accumulator::new(f, d))
                        .collect(),
                );
                return idx;
            }
            // Non-integer key seen: rebuild as a general map over the keys
            // recorded so far (first-seen order and identity preserved).
            let mut general: FxHashMap<Vec<Value>, u32> =
                HashMap::with_capacity_and_hasher(self.keys.len(), FxBuildHasher);
            for (i, k) in self.keys.iter().enumerate() {
                general.insert(k.clone(), i as u32);
            }
            self.map = GroupMap::General(general);
        }
        let GroupMap::General(map) = &mut self.map else {
            unreachable!("migrated above")
        };
        let key: Vec<Value> = key_cols.iter().map(|c| c.value(row)).collect();
        if let Some(&idx) = map.get(&key) {
            return idx;
        }
        let idx = self.keys.len() as u32;
        map.insert(key.clone(), idx);
        self.keys.push(key);
        self.accs.push(
            self.templates
                .iter()
                .map(|&(f, d)| Accumulator::new(f, d))
                .collect(),
        );
        idx
    }
}

impl BatchOperator for VecAggregate {
    fn push(&mut self, chunk: &ColumnarBatch) -> Result<Option<ColumnarBatch>> {
        let key_cols = self
            .groups
            .iter()
            .map(|g| eval_column(g, chunk))
            .collect::<Result<Vec<_>>>()?;
        let arg_cols = self
            .args
            .iter()
            .map(|a| a.as_ref().map(|e| eval_column(e, chunk)).transpose())
            .collect::<Result<Vec<_>>>()?;
        for row in 0..chunk.num_rows() {
            let idx = if key_cols.is_empty() {
                // Global aggregate: one implicit group.
                if self.keys.is_empty() {
                    self.keys.push(Vec::new());
                    self.accs.push(self.fresh_accs());
                }
                0
            } else {
                self.group_index(&key_cols, row) as usize
            };
            for (acc, arg) in self.accs[idx].iter_mut().zip(&arg_cols) {
                match arg {
                    None => acc.push(None)?,
                    Some(col) => {
                        let v = col.value(row);
                        acc.push(Some(&v))?;
                    }
                }
            }
        }
        Ok(None)
    }

    fn finish(&mut self) -> Result<Option<ColumnarBatch>> {
        let group_width = self.groups.len();
        let mut keys = std::mem::take(&mut self.keys);
        let mut accs = std::mem::take(&mut self.accs);
        if keys.is_empty() && group_width == 0 {
            // Global aggregate over zero rows: one row of defaults.
            keys.push(Vec::new());
            accs.push(self.fresh_accs());
        }
        let n = keys.len();
        let mut out: Vec<Vec<Value>> =
            (0..self.schema.len()).map(|_| Vec::with_capacity(n)).collect();
        for (key, group_accs) in keys.into_iter().zip(accs) {
            for (c, v) in key.into_iter().enumerate() {
                out[c].push(v);
            }
            for (a, acc) in group_accs.into_iter().enumerate() {
                out[group_width + a].push(acc.finish());
            }
        }
        let cols: Vec<Arc<Column>> = out
            .into_iter()
            .zip(self.schema.fields())
            .map(|(vals, f)| Arc::new(Column::from_values(&vals, f.data_type)))
            .collect();
        Ok(Some(ColumnarBatch::new(
            Arc::clone(&self.schema),
            cols,
            n,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eii_data::{row, Batch, DataType, Field, Schema};
    use eii_expr::{bind, BinaryOp, Expr};

    fn schema(fields: &[(&str, DataType)]) -> SchemaRef {
        Arc::new(Schema::new(
            fields.iter().map(|(n, t)| Field::new(*n, *t)).collect(),
        ))
    }

    fn ints(name: &str, vals: &[i64]) -> ColumnarBatch {
        let s = schema(&[(name, DataType::Int)]);
        let rows = vals.iter().map(|&v| row![v]).collect();
        ColumnarBatch::from_batch(&Batch::new(s, rows))
    }

    #[test]
    fn fx_hasher_is_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(42);
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write_u64(43);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn filter_drops_rows() {
        let batch = ints("x", &[1, 5, 2, 8]);
        let pred = bind(&Expr::col("x").gt(Expr::lit(2i64)), batch.schema()).unwrap();
        let mut op = VecFilter::new(pred);
        let out = op.push(&batch).unwrap().unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value_at(0, 0), Value::Int(5));
        assert_eq!(out.value_at(1, 0), Value::Int(8));
    }

    #[test]
    fn project_computes_columns() {
        let batch = ints("x", &[1, 2]);
        let out_schema = schema(&[("y", DataType::Int)]);
        let expr = bind(
            &Expr::col("x").binary(BinaryOp::Multiply, Expr::lit(10i64)),
            batch.schema(),
        )
        .unwrap();
        let mut op = VecProject::new(vec![expr], out_schema);
        let out = op.push(&batch).unwrap().unwrap();
        assert_eq!(out.value_at(0, 0), Value::Int(10));
        assert_eq!(out.value_at(1, 0), Value::Int(20));
    }

    #[test]
    fn join_matches_and_preserves_order() {
        let left = ints("a", &[1, 2, 3, 2]);
        let right_schema = schema(&[("b", DataType::Int), ("c", DataType::Int)]);
        let right = ColumnarBatch::from_batch(&Batch::new(
            right_schema.clone(),
            vec![row![2i64, 20i64], row![3i64, 30i64], row![2i64, 21i64]],
        ));
        let joined = Arc::new(left.schema().join(&right_schema));
        let bkey = bind(&Expr::col("b"), &right_schema).unwrap();
        let pkey = bind(&Expr::col("a"), left.schema()).unwrap();
        let mut op = VecHashJoin::new(
            &right,
            &[bkey],
            vec![pkey],
            JoinKind::Inner,
            None,
            Arc::clone(&joined),
            joined,
        )
        .unwrap();
        let out = op.push(&left).unwrap().unwrap();
        // Probe order, then build insertion order within a key.
        let got: Vec<(Value, Value)> = (0..out.num_rows())
            .map(|i| (out.value_at(i, 0), out.value_at(i, 2)))
            .collect();
        assert_eq!(
            got,
            vec![
                (Value::Int(2), Value::Int(20)),
                (Value::Int(2), Value::Int(21)),
                (Value::Int(3), Value::Int(30)),
                (Value::Int(2), Value::Int(20)),
                (Value::Int(2), Value::Int(21)),
            ]
        );
    }

    #[test]
    fn float_probe_beyond_f64_precision_matches_scalar_semantics() {
        // Int(2^53 + 1) == Float(2^53) under scalar Value equality (which
        // compares through f64), so a build key beyond ±2^53 must keep the
        // join off the raw-i64 fast path or the probe would miss.
        let big = (1i64 << 53) + 1;
        let right = ints("b", &[big]);
        let left = {
            let s = schema(&[("a", DataType::Float)]);
            ColumnarBatch::from_batch(&Batch::new(s, vec![row![9_007_199_254_740_992.0f64]]))
        };
        let joined = Arc::new(left.schema().join(right.schema()));
        let bkey = bind(&Expr::col("b"), right.schema()).unwrap();
        let pkey = bind(&Expr::col("a"), left.schema()).unwrap();
        let mut op = VecHashJoin::new(
            &right,
            &[bkey],
            vec![pkey],
            JoinKind::Inner,
            None,
            Arc::clone(&joined),
            joined,
        )
        .unwrap();
        let out = op.push(&left).unwrap().unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value_at(0, 1), Value::Int(big));
    }

    #[test]
    fn left_join_null_extends() {
        let left = ints("a", &[1, 2]);
        let right = {
            let s = schema(&[("b", DataType::Int)]);
            ColumnarBatch::from_batch(&Batch::new(s, vec![row![2i64]]))
        };
        let joined = Arc::new(left.schema().join(right.schema()));
        let bkey = bind(&Expr::col("b"), right.schema()).unwrap();
        let pkey = bind(&Expr::col("a"), left.schema()).unwrap();
        let mut op = VecHashJoin::new(
            &right,
            &[bkey],
            vec![pkey],
            JoinKind::Left,
            None,
            Arc::clone(&joined),
            joined,
        )
        .unwrap();
        let out = op.push(&left).unwrap().unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value_at(0, 1), Value::Null);
        assert_eq!(out.value_at(1, 1), Value::Int(2));
    }

    #[test]
    fn aggregate_groups_in_first_seen_order() {
        let s = schema(&[("g", DataType::Int), ("v", DataType::Int)]);
        let batch = ColumnarBatch::from_batch(&Batch::new(
            Arc::clone(&s),
            vec![row![2i64, 10i64], row![1i64, 5i64], row![2i64, 1i64]],
        ));
        let out_schema = schema(&[("g", DataType::Int), ("s", DataType::Int)]);
        let g = bind(&Expr::col("g"), &s).unwrap();
        let v = bind(&Expr::col("v"), &s).unwrap();
        let mut op = VecAggregate::new(
            vec![g],
            vec![Some(v)],
            vec![(AggFunc::Sum, false)],
            out_schema,
        );
        op.push(&batch).unwrap();
        let out = op.finish().unwrap().unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value_at(0, 0), Value::Int(2));
        assert_eq!(out.value_at(0, 1), Value::Int(11));
        assert_eq!(out.value_at(1, 0), Value::Int(1));
        assert_eq!(out.value_at(1, 1), Value::Int(5));
    }

    #[test]
    fn drive_chunks_and_checks() {
        let batch = ints("x", &[1, 2, 3, 4, 5]);
        let pred = bind(&Expr::col("x").gt(Expr::lit(1i64)), batch.schema()).unwrap();
        let mut op = VecFilter::new(pred);
        let mut checks = 0;
        let out = drive(&mut op, &batch, batch.schema().clone(), 2, || {
            checks += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(checks, 3); // ceil(5/2)
        assert_eq!(out.num_rows(), 4);
        assert_eq!(out.value_at(0, 0), Value::Int(2));
    }
}
