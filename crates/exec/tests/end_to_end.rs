//! End-to-end tests: SQL text → plan → federated execution, across
//! heterogeneous sources, with naive-vs-optimized result equivalence.

use std::sync::Arc;

use eii_catalog::Catalog;
use eii_data::{row, DataType, Field, Schema, SimClock, Value};
use eii_docstore::{DocStore, Document};
use eii_exec::Executor;
use eii_federation::{
    adapters::document::VirtualTable, CsvConnector, DocumentConnector, Federation, LinkProfile,
    RelationalConnector, WebServiceConnector, WireFormat,
};
use eii_planner::{plan_query, PlannerConfig};
use eii_sql::parse_query;
use eii_storage::{Database, TableDef};

/// A four-source enterprise: relational CRM, web-service orders, document
/// support tickets, and a legacy payments file.
fn setup() -> (Catalog, Federation) {
    let clock = SimClock::new();

    // crm (relational)
    let crm = Database::new("crm", clock.clone());
    let cschema = Arc::new(Schema::new(vec![
        Field::new("id", DataType::Int).not_null(),
        Field::new("name", DataType::Str),
        Field::new("region", DataType::Str),
    ]));
    let ct = crm
        .create_table(TableDef::new("customers", cschema).with_primary_key(0))
        .unwrap();
    {
        let mut t = ct.write();
        for (i, (name, region)) in [
            ("alice", "west"),
            ("bob", "east"),
            ("carol", "west"),
            ("dave", "north"),
            ("erin", "east"),
        ]
        .iter()
        .enumerate()
        {
            t.insert(row![i as i64 + 1, *name, *region]).unwrap();
        }
    }

    // orders (web service requiring customer_id binding)
    let orders = Database::new("orders", clock.clone());
    let oschema = Arc::new(Schema::new(vec![
        Field::new("order_id", DataType::Int).not_null(),
        Field::new("customer_id", DataType::Int),
        Field::new("total", DataType::Float),
    ]));
    let ot = orders
        .create_table(TableDef::new("orders", oschema).with_primary_key(0))
        .unwrap();
    {
        let mut t = ot.write();
        t.create_hash_index(1);
        for i in 0..20i64 {
            t.insert(row![i, i % 5 + 1, (i as f64 + 1.0) * 10.0]).unwrap();
        }
    }

    // support (documents)
    let store = DocStore::new();
    store.insert(Document::from_records(
        "tickets",
        &[
            vec![("ticket_id", "100".into()), ("customer_id", "1".into()), ("sev", "2".into())],
            vec![("ticket_id", "101".into()), ("customer_id", "2".into()), ("sev", "1".into())],
            vec![("ticket_id", "102".into()), ("customer_id", "1".into()), ("sev", "3".into())],
        ],
    ));
    let support = DocumentConnector::new("support", store).define_table(VirtualTable {
        name: "tickets".into(),
        columns: vec![
            ("ticket_id".into(), "//row/ticket_id".into(), DataType::Int),
            ("customer_id".into(), "//row/customer_id".into(), DataType::Int),
            ("sev".into(), "//row/sev".into(), DataType::Int),
        ],
    });

    // files (flat file)
    let files = CsvConnector::new("files")
        .add_file(
            "payments",
            "payment_id,customer_id,amount\n1,1,50.0\n2,2,75.0\n3,1,25.0\n",
            ',',
            &[DataType::Int, DataType::Int, DataType::Float],
        )
        .unwrap();

    let fed = Federation::new();
    fed.register(
        Arc::new(RelationalConnector::new(crm)),
        LinkProfile::lan(),
        WireFormat::Native,
    )
    .unwrap();
    fed.register(
        Arc::new(WebServiceConnector::new("orders", orders).require_binding("orders", "customer_id")),
        LinkProfile::wan(),
        WireFormat::Native,
    )
    .unwrap();
    fed.register(
        Arc::new(support),
        LinkProfile::lan(),
        WireFormat::Native,
    )
    .unwrap();
    fed.register(Arc::new(files), LinkProfile::wan(), WireFormat::Native)
        .unwrap();

    let catalog = Catalog::new();
    (catalog, fed)
}

fn run_sql(sql: &str, cat: &Catalog, fed: &Federation, cfg: &PlannerConfig) -> eii_data::Batch {
    let q = parse_query(sql).unwrap();
    let plan = plan_query(&q, cat, fed, cfg).unwrap_or_else(|e| panic!("plan {sql}: {e}"));
    let exec = Executor::new(fed);
    exec.execute(&plan)
        .unwrap_or_else(|e| panic!("exec {sql}: {e}"))
        .batch
}

fn sorted_rows(batch: &eii_data::Batch) -> Vec<eii_data::Row> {
    let mut rows = batch.rows().to_vec();
    rows.sort();
    rows
}

#[test]
fn single_source_filter_and_project() {
    let (cat, fed) = setup();
    let b = run_sql(
        "SELECT name FROM crm.customers WHERE region = 'west' ORDER BY name",
        &cat,
        &fed,
        &PlannerConfig::optimized(),
    );
    let names: Vec<&str> = b.rows().iter().map(|r| r.get(0).as_str().unwrap()).collect();
    assert_eq!(names, vec!["alice", "carol"]);
}

#[test]
fn cross_source_join_document_and_relational() {
    let (cat, fed) = setup();
    let b = run_sql(
        "SELECT c.name, t.sev FROM crm.customers c JOIN support.tickets t \
         ON c.id = t.customer_id WHERE t.sev >= 2 ORDER BY t.sev",
        &cat,
        &fed,
        &PlannerConfig::optimized(),
    );
    assert_eq!(b.num_rows(), 2);
    assert_eq!(b.rows()[0].get(0), &Value::str("alice"));
}

#[test]
fn web_service_requires_bind_join_and_gets_one() {
    let (cat, fed) = setup();
    let sql = "SELECT c.name, o.total FROM crm.customers c JOIN orders.orders o \
               ON c.id = o.customer_id WHERE c.region = 'west'";
    // Works under every config because the access pattern forces a bind join.
    for cfg in [PlannerConfig::optimized(), PlannerConfig::naive()] {
        let b = run_sql(sql, &cat, &fed, &cfg);
        assert_eq!(b.num_rows(), 8, "west customers 1 and 3 have 4 orders each");
    }
}

#[test]
fn bare_scan_of_access_limited_source_is_a_plan_error() {
    let (cat, fed) = setup();
    let q = parse_query("SELECT * FROM orders.orders").unwrap();
    let err = plan_query(&q, &cat, &fed, &PlannerConfig::optimized()).unwrap_err();
    assert_eq!(err.kind(), "plan");
    assert!(err.message().contains("customer_id"));
}

#[test]
fn flat_file_join_ships_everything_but_answers() {
    let (cat, fed) = setup();
    let b = run_sql(
        "SELECT c.name, p.amount FROM crm.customers c JOIN files.payments p \
         ON c.id = p.customer_id ORDER BY p.amount",
        &cat,
        &fed,
        &PlannerConfig::optimized(),
    );
    assert_eq!(b.num_rows(), 3);
    assert_eq!(b.rows()[0].get(1), &Value::Float(25.0));
}

#[test]
fn aggregation_group_by_having() {
    let (cat, fed) = setup();
    let b = run_sql(
        "SELECT region, COUNT(*) AS n FROM crm.customers GROUP BY region HAVING n > 1 ORDER BY region",
        &cat,
        &fed,
        &PlannerConfig::optimized(),
    );
    assert_eq!(b.num_rows(), 2);
    assert_eq!(b.rows()[0].get(0), &Value::str("east"));
    assert_eq!(b.rows()[0].get(1), &Value::Int(2));
}

#[test]
fn left_join_null_extends() {
    let (cat, fed) = setup();
    let b = run_sql(
        "SELECT c.name, t.ticket_id FROM crm.customers c LEFT JOIN support.tickets t \
         ON c.id = t.customer_id ORDER BY c.name",
        &cat,
        &fed,
        &PlannerConfig::optimized(),
    );
    // alice has 2 tickets, bob 1, carol/dave/erin none -> 6 rows.
    assert_eq!(b.num_rows(), 6);
    let carol = b
        .rows()
        .iter()
        .find(|r| r.get(0) == &Value::str("carol"))
        .unwrap();
    assert!(carol.get(1).is_null());
}

#[test]
fn union_all_over_sources() {
    let (cat, fed) = setup();
    let b = run_sql(
        "SELECT id AS k FROM crm.customers UNION ALL SELECT payment_id AS k FROM files.payments",
        &cat,
        &fed,
        &PlannerConfig::optimized(),
    );
    assert_eq!(b.num_rows(), 8);
}

#[test]
fn view_over_three_sources() {
    let (cat, fed) = setup();
    cat.create_view_sql(
        "CREATE VIEW customer360 AS \
         SELECT c.id, c.name, c.region, t.ticket_id, t.sev \
         FROM crm.customers c LEFT JOIN support.tickets t ON c.id = t.customer_id",
    )
    .unwrap();
    let b = run_sql(
        "SELECT name, sev FROM customer360 WHERE region = 'west' ORDER BY name",
        &cat,
        &fed,
        &PlannerConfig::optimized(),
    );
    assert_eq!(b.num_rows(), 3); // alice x2 tickets + carol null
}

#[test]
fn naive_and_optimized_agree_on_results() {
    let (cat, fed) = setup();
    cat.create_view_sql(
        "CREATE VIEW v AS SELECT c.id, c.name, t.sev FROM crm.customers c \
         JOIN support.tickets t ON c.id = t.customer_id",
    )
    .unwrap();
    let queries = [
        "SELECT name FROM crm.customers WHERE region = 'east'",
        "SELECT c.name, p.amount FROM crm.customers c JOIN files.payments p ON c.id = p.customer_id",
        "SELECT name, sev FROM v WHERE sev > 1",
        "SELECT region, COUNT(*) AS n, AVG(id) AS a FROM crm.customers GROUP BY region",
        "SELECT DISTINCT region FROM crm.customers",
        "SELECT name FROM crm.customers WHERE name LIKE 'a%' OR name LIKE 'e%'",
    ];
    for sql in queries {
        let naive = run_sql(sql, &cat, &fed, &PlannerConfig::naive());
        let optimized = run_sql(sql, &cat, &fed, &PlannerConfig::optimized());
        assert_eq!(
            sorted_rows(&naive),
            sorted_rows(&optimized),
            "result mismatch for {sql}"
        );
    }
}

#[test]
fn optimized_ships_fewer_bytes() {
    let (cat, fed) = setup();
    let sql = "SELECT c.name FROM crm.customers c JOIN files.payments p \
               ON c.id = p.customer_id WHERE c.region = 'west'";
    fed.ledger().reset();
    let _ = run_sql(sql, &cat, &fed, &PlannerConfig::naive());
    let naive_bytes = fed.ledger().total().bytes;
    fed.ledger().reset();
    let _ = run_sql(sql, &cat, &fed, &PlannerConfig::optimized());
    let opt_bytes = fed.ledger().total().bytes;
    assert!(
        opt_bytes < naive_bytes,
        "optimized {opt_bytes} >= naive {naive_bytes}"
    );
}

#[test]
fn expressions_in_select_list() {
    let (cat, fed) = setup();
    let b = run_sql(
        "SELECT UPPER(name) AS shout, id * 10 AS id10 FROM crm.customers WHERE id = 1",
        &cat,
        &fed,
        &PlannerConfig::optimized(),
    );
    assert_eq!(b.rows()[0].get(0), &Value::str("ALICE"));
    assert_eq!(b.rows()[0].get(1), &Value::Int(10));
}

#[test]
fn limit_and_distinct() {
    let (cat, fed) = setup();
    let b = run_sql(
        "SELECT DISTINCT region FROM crm.customers ORDER BY region LIMIT 2",
        &cat,
        &fed,
        &PlannerConfig::optimized(),
    );
    assert_eq!(b.num_rows(), 2);
    assert_eq!(b.rows()[0].get(0), &Value::str("east"));
}

#[test]
fn count_star_over_empty_filter() {
    let (cat, fed) = setup();
    let b = run_sql(
        "SELECT COUNT(*) AS n FROM crm.customers WHERE region = 'nowhere'",
        &cat,
        &fed,
        &PlannerConfig::optimized(),
    );
    assert_eq!(b.rows()[0].get(0), &Value::Int(0));
}

#[test]
fn cost_accounting_reports_traffic() {
    let (cat, fed) = setup();
    fed.ledger().reset();
    let q = parse_query("SELECT name FROM crm.customers").unwrap();
    let plan = plan_query(&q, &cat, &fed, &PlannerConfig::optimized()).unwrap();
    let exec = Executor::new(&fed);
    let res = exec.execute(&plan).unwrap();
    assert_eq!(res.batch.num_rows(), 5);
    assert!(res.cost.sim_ms > 0.0);
    assert!(res.cost.bytes > 0);
    assert_eq!(fed.ledger().traffic("crm").requests, 1);
}
