//! Operator-level tests: plan shapes and cost accounting that the
//! end-to-end suite doesn't pin down — assembly-site selection, parallel
//! cost composition, NULL join keys, swapped and residual bind joins.

use std::sync::Arc;

use eii_catalog::Catalog;
use eii_data::{row, DataType, Field, Row, Schema, SimClock, Value};
use eii_exec::Executor;
use eii_federation::{
    Federation, LinkProfile, RelationalConnector, WebServiceConnector, WireFormat,
};
use eii_planner::{plan_query, PlannerConfig};
use eii_sql::parse_query;
use eii_storage::{Database, TableDef};

fn relational(
    fed: &mut Federation,
    clock: &SimClock,
    source: &str,
    table: &str,
    fields: Vec<Field>,
    rows: Vec<Row>,
    link: LinkProfile,
) {
    let db = Database::new(source, clock.clone());
    let t = db
        .create_table(TableDef::new(table, Arc::new(Schema::new(fields))).with_primary_key(0))
        .unwrap();
    {
        let mut t = t.write();
        for r in rows {
            t.insert(r).unwrap();
        }
    }
    fed.register(
        Arc::new(RelationalConnector::new(db)),
        link,
        WireFormat::Native,
    )
    .unwrap();
}

/// A big WAN source and a tiny LAN source, joined.
fn big_small() -> (Catalog, Federation) {
    let clock = SimClock::new();
    let mut fed = Federation::new();
    relational(
        &mut fed,
        &clock,
        "big",
        "facts",
        vec![
            Field::new("id", DataType::Int).not_null(),
            Field::new("k", DataType::Int),
            Field::new("payload", DataType::Str),
        ],
        (0..2000i64)
            .map(|i| row![i, i % 50, format!("payload payload payload {i}")])
            .collect(),
        LinkProfile::wan(),
    );
    relational(
        &mut fed,
        &clock,
        "small",
        "dims",
        vec![
            Field::new("k", DataType::Int).not_null(),
            Field::new("label", DataType::Str),
        ],
        (0..50i64).map(|i| row![i, format!("dim{i}")]).collect(),
        LinkProfile::wan(),
    );
    (Catalog::new(), fed)
}

const JOIN_SQL: &str = "SELECT f.id, d.label FROM big.facts f \
                        JOIN small.dims d ON f.k = d.k WHERE d.k < 5";

fn run(
    cat: &Catalog,
    fed: &Federation,
    cfg: &PlannerConfig,
    sql: &str,
) -> (eii_data::Batch, eii_federation::QueryCost) {
    let q = parse_query(sql).unwrap();
    let plan = plan_query(&q, cat, fed, cfg).unwrap();
    let exec = Executor::new(fed);
    let res = exec.execute(&plan).unwrap();
    (res.batch, res.cost)
}

#[test]
fn assembly_site_selection_moves_the_join_to_the_big_source() {
    let (cat, fed) = big_small();
    let q = parse_query(JOIN_SQL).unwrap();
    let plan = plan_query(&q, &cat, &fed, &PlannerConfig::optimized()).unwrap();
    let text = plan.display();
    // The optimizer may pick a bind join (small side drives) or an at-source
    // hash join; either way the big table must NOT ship wholesale.
    assert!(
        text.contains("site=@big") || text.contains("BindJoin"),
        "{text}"
    );

    fed.ledger().reset();
    let (batch, _) = run(&cat, &fed, &PlannerConfig::optimized(), JOIN_SQL);
    let smart_bytes = fed.ledger().total().bytes;

    // Hub assembly with no bind joins: the big side crosses the WAN.
    let mut hub_cfg = PlannerConfig::optimized();
    hub_cfg.choose_assembly_site = false;
    hub_cfg.use_bind_joins = false;
    fed.ledger().reset();
    let (hub_batch, _) = run(&cat, &fed, &hub_cfg, JOIN_SQL);
    let hub_bytes = fed.ledger().total().bytes;

    let mut a = batch.rows().to_vec();
    let mut b = hub_batch.rows().to_vec();
    a.sort();
    b.sort();
    assert_eq!(a, b, "same answer either way");
    assert!(
        smart_bytes * 2 < hub_bytes,
        "smart={smart_bytes} hub={hub_bytes}"
    );
}

#[test]
fn parallel_fetch_cuts_simulated_time_not_bytes() {
    let (cat, fed) = big_small();
    // Force hub assembly so both sides genuinely transfer.
    let mut seq = PlannerConfig::optimized();
    seq.parallel_fetch = false;
    seq.choose_assembly_site = false;
    seq.use_bind_joins = false;
    let mut par = seq.clone();
    par.parallel_fetch = true;

    fed.ledger().reset();
    let (_, seq_cost) = run(&cat, &fed, &seq, JOIN_SQL);
    let seq_bytes = fed.ledger().total().bytes;
    fed.ledger().reset();
    let (_, par_cost) = run(&cat, &fed, &par, JOIN_SQL);
    let par_bytes = fed.ledger().total().bytes;

    assert_eq!(seq_bytes, par_bytes, "parallelism moves no extra bytes");
    assert!(
        par_cost.sim_ms < seq_cost.sim_ms,
        "par={} seq={}",
        par_cost.sim_ms,
        seq_cost.sim_ms
    );
}

#[test]
fn null_join_keys_never_match_but_left_join_keeps_them() {
    let clock = SimClock::new();
    let mut fed = Federation::new();
    relational(
        &mut fed,
        &clock,
        "l",
        "t",
        vec![
            Field::new("id", DataType::Int).not_null(),
            Field::new("k", DataType::Int),
        ],
        vec![
            row![1i64, 10i64],
            Row::new(vec![Value::Int(2), Value::Null]),
        ],
        LinkProfile::local(),
    );
    relational(
        &mut fed,
        &clock,
        "r",
        "t",
        vec![
            Field::new("id", DataType::Int).not_null(),
            Field::new("k", DataType::Int),
        ],
        vec![
            row![7i64, 10i64],
            Row::new(vec![Value::Int(8), Value::Null]),
        ],
        LinkProfile::local(),
    );
    let cat = Catalog::new();
    let (inner, _) = run(
        &cat,
        &fed,
        &PlannerConfig::optimized(),
        "SELECT a.id, b.id FROM l.t a JOIN r.t b ON a.k = b.k",
    );
    assert_eq!(inner.num_rows(), 1, "NULL = NULL does not match");

    let (left, _) = run(
        &cat,
        &fed,
        &PlannerConfig::optimized(),
        "SELECT a.id, b.id FROM l.t a LEFT JOIN r.t b ON a.k = b.k ORDER BY a.id",
    );
    assert_eq!(left.num_rows(), 2);
    assert!(left.rows()[1].get(1).is_null(), "null-key row null-extends");
}

/// An access-limited service on the LEFT side of the join exercises the
/// swapped bind-join path (the service is probed, the relational side
/// builds).
#[test]
fn swapped_bind_join_preserves_column_order_and_rows() {
    let clock = SimClock::new();
    let mut fed = Federation::new();
    relational(
        &mut fed,
        &clock,
        "crm",
        "customers",
        vec![
            Field::new("id", DataType::Int).not_null(),
            Field::new("name", DataType::Str),
        ],
        (0..10i64).map(|i| row![i, format!("c{i}")]).collect(),
        LinkProfile::lan(),
    );
    let svc_db = Database::new("svc", clock.clone());
    let t = svc_db
        .create_table(
            TableDef::new(
                "ratings",
                Arc::new(Schema::new(vec![
                    Field::new("customer_id", DataType::Int).not_null(),
                    Field::new("rating", DataType::Str),
                ])),
            )
            .with_primary_key(0),
        )
        .unwrap();
    for i in 0..10i64 {
        t.write()
            .insert(row![i, if i % 2 == 0 { "good" } else { "bad" }])
            .unwrap();
    }
    fed.register(
        Arc::new(WebServiceConnector::new("svc", svc_db).require_binding("ratings", "customer_id")),
        LinkProfile::wan(),
        WireFormat::Native,
    )
    .unwrap();

    let cat = Catalog::new();
    // Service FIRST in the join order.
    let (batch, _) = run(
        &cat,
        &fed,
        &PlannerConfig::optimized(),
        "SELECT r.rating, c.name FROM svc.ratings r \
         JOIN crm.customers c ON r.customer_id = c.id WHERE c.id < 4 ORDER BY c.name",
    );
    assert_eq!(batch.num_rows(), 4);
    // Column order must follow the SELECT list despite the swap.
    assert_eq!(batch.schema().field(0).name, "rating");
    assert_eq!(batch.rows()[0].get(0), &Value::str("good"));
    assert_eq!(batch.rows()[0].get(1), &Value::str("c0"));
}

/// A bind join with an extra non-equi residual condition.
#[test]
fn bind_join_applies_residual_predicates() {
    let clock = SimClock::new();
    let mut fed = Federation::new();
    relational(
        &mut fed,
        &clock,
        "crm",
        "customers",
        vec![
            Field::new("id", DataType::Int).not_null(),
            Field::new("min_total", DataType::Float),
        ],
        (0..5i64).map(|i| row![i, (i as f64) * 10.0]).collect(),
        LinkProfile::lan(),
    );
    let svc_db = Database::new("orders", clock.clone());
    let t = svc_db
        .create_table(
            TableDef::new(
                "orders",
                Arc::new(Schema::new(vec![
                    Field::new("order_id", DataType::Int).not_null(),
                    Field::new("customer_id", DataType::Int),
                    Field::new("total", DataType::Float),
                ])),
            )
            .with_primary_key(0),
        )
        .unwrap();
    for i in 0..25i64 {
        t.write().insert(row![i, i % 5, (i as f64) * 2.0]).unwrap();
    }
    fed.register(
        Arc::new(
            WebServiceConnector::new("orders", svc_db).require_binding("orders", "customer_id"),
        ),
        LinkProfile::wan(),
        WireFormat::Native,
    )
    .unwrap();

    let cat = Catalog::new();
    let sql = "SELECT c.id, o.total FROM crm.customers c \
               JOIN orders.orders o ON c.id = o.customer_id \
               WHERE o.total > c.min_total";
    let (batch, _) = run(&cat, &fed, &PlannerConfig::optimized(), sql);
    // Oracle: count pairs satisfying both conditions.
    let mut expected = 0;
    for c in 0..5i64 {
        for o in 0..25i64 {
            if o % 5 == c && (o as f64) * 2.0 > (c as f64) * 10.0 {
                expected += 1;
            }
        }
    }
    assert_eq!(batch.num_rows(), expected);
}

/// Empty build side: the bind join must not call the service at all.
#[test]
fn bind_join_with_empty_left_side_skips_the_service() {
    let clock = SimClock::new();
    let mut fed = Federation::new();
    relational(
        &mut fed,
        &clock,
        "crm",
        "customers",
        vec![
            Field::new("id", DataType::Int).not_null(),
            Field::new("region", DataType::Str),
        ],
        vec![row![1i64, "west"]],
        LinkProfile::lan(),
    );
    let svc_db = Database::new("svc", clock.clone());
    svc_db
        .create_table(
            TableDef::new(
                "ratings",
                Arc::new(Schema::new(vec![
                    Field::new("customer_id", DataType::Int).not_null(),
                    Field::new("rating", DataType::Str),
                ])),
            )
            .with_primary_key(0),
        )
        .unwrap();
    fed.register(
        Arc::new(WebServiceConnector::new("svc", svc_db).require_binding("ratings", "customer_id")),
        LinkProfile::wan(),
        WireFormat::Native,
    )
    .unwrap();

    let cat = Catalog::new();
    fed.ledger().reset();
    let (batch, _) = run(
        &cat,
        &fed,
        &PlannerConfig::optimized(),
        "SELECT c.id, r.rating FROM crm.customers c \
         JOIN svc.ratings r ON c.id = r.customer_id WHERE c.region = 'nowhere'",
    );
    assert_eq!(batch.num_rows(), 0);
    assert_eq!(
        fed.ledger().traffic("svc").requests,
        0,
        "no keys, no service calls"
    );
}
