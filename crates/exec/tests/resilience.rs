//! Fault tolerance through the whole executor: injected source faults,
//! retry healing, stale-snapshot fallback, partial results, and panic
//! propagation from parallel workers.

use std::sync::Arc;

use eii_catalog::Catalog;
use eii_data::{row, CancelToken, DataType, Deadline, Field, Result, Row, Schema, SimClock};
use eii_exec::{DegradationPolicy, Executor, FallbackStore, HedgePolicy};
use eii_federation::{
    CircuitBreakerConfig, Connector, FaultProfile, Federation, LinkProfile,
    RelationalConnector, RequestCtx, RetryPolicy, SourceAnswer, SourceQuery, WireFormat,
};
use eii_planner::{plan_query, PlannerConfig};
use eii_sql::parse_query;
use eii_storage::{Database, TableDef};

const JOIN_SQL: &str = "SELECT c.name, o.total FROM crm.customers c \
                        JOIN sales.orders o ON c.id = o.customer_id \
                        WHERE o.total > 15";

fn relational(
    fed: &mut Federation,
    clock: &SimClock,
    source: &str,
    table: &str,
    fields: Vec<Field>,
    rows: Vec<Row>,
) {
    let db = Database::new(source, clock.clone());
    let t = db
        .create_table(TableDef::new(table, Arc::new(Schema::new(fields))).with_primary_key(0))
        .unwrap();
    {
        let mut t = t.write();
        for r in rows {
            t.insert(r).unwrap();
        }
    }
    fed.register(
        Arc::new(RelationalConnector::new(db)),
        LinkProfile::lan(),
        WireFormat::Native,
    )
    .unwrap();
}

/// Two-source federation on a shared clock; crm x sales join.
fn federation(clock: &SimClock) -> Federation {
    let mut fed = Federation::with_clock(clock.clone());
    relational(
        &mut fed,
        clock,
        "crm",
        "customers",
        vec![
            Field::new("id", DataType::Int).not_null(),
            Field::new("name", DataType::Str),
        ],
        (0..20i64).map(|i| row![i, format!("cust{i}")]).collect(),
    );
    relational(
        &mut fed,
        clock,
        "sales",
        "orders",
        vec![
            Field::new("order_id", DataType::Int).not_null(),
            Field::new("customer_id", DataType::Int),
            Field::new("total", DataType::Float),
        ],
        (0..60i64)
            .map(|i| row![i, i % 20, (i as f64) * 1.5])
            .collect(),
    );
    fed
}

fn run(fed: &Federation, exec: &Executor<'_>, sql: &str) -> Result<eii_exec::QueryResult> {
    let q = parse_query(sql)?;
    let plan = plan_query(&q, &Catalog::new(), fed, &PlannerConfig::optimized())?;
    exec.execute(&plan)
}

/// Snapshot every table of every source (taken before faults start).
fn snapshot_all(fed: &Federation, store: &FallbackStore) {
    for qualified in fed.all_tables() {
        let (h, table) = fed.resolve(&qualified).unwrap();
        let (batch, _) = h.query(&SourceQuery::full_table(table)).unwrap();
        store.register(qualified, batch, fed.clock().now_ms());
    }
    fed.ledger().reset();
}

#[test]
fn dead_source_fails_strict_queries() {
    let clock = SimClock::new();
    let fed = federation(&clock);
    fed.inject_faults("sales", FaultProfile::failing(1.0, 3)).unwrap();
    let exec = Executor::new(&fed);
    let err = run(&fed, &exec, JOIN_SQL).unwrap_err();
    assert_eq!(err.kind(), "source");
}

#[test]
fn retries_heal_a_transient_outage_with_identical_results() {
    let clock = SimClock::new();
    let fed = federation(&clock);
    let exec = Executor::new(&fed);
    let expect = run(&fed, &exec, JOIN_SQL).unwrap();
    assert!(expect.fully_live());

    let clock2 = SimClock::new();
    let fed2 = federation(&clock2);
    fed2.inject_faults("sales", FaultProfile::none().with_outage(0, 30))
        .unwrap();
    fed2.harden(
        "sales",
        RetryPolicy::standard().with_attempts(5),
        CircuitBreakerConfig::default(),
    )
    .unwrap();
    let exec2 = Executor::new(&fed2);
    let got = run(&fed2, &exec2, JOIN_SQL).unwrap();
    assert!(got.fully_live(), "healed answers are live, not degraded");
    assert_eq!(got.batch.rows(), expect.batch.rows(), "byte-identical rows");
    assert!(fed2.ledger().traffic("sales").retries >= 1);
}

#[test]
fn fallback_serves_stale_snapshot_when_source_dies() {
    let clock = SimClock::new();
    let fed_live = federation(&clock);
    let exec_live = Executor::new(&fed_live);
    let expect = run(&fed_live, &exec_live, JOIN_SQL).unwrap();

    let clock2 = SimClock::new();
    let fed = federation(&clock2);
    let store = FallbackStore::new();
    snapshot_all(&fed, &store);
    clock2.advance_ms(5_000); // snapshots age before the outage
    fed.inject_faults("sales", FaultProfile::failing(1.0, 3)).unwrap();
    let exec = Executor::new(&fed).with_degradation(DegradationPolicy::Fallback, store);
    let got = run(&fed, &exec, JOIN_SQL).unwrap();
    // The data didn't change between snapshot and outage, so the stale
    // answer happens to be complete — and it is labeled stale.
    assert_eq!(got.batch.rows(), expect.batch.rows());
    assert!(!got.fully_live());
    assert_eq!(got.degraded.len(), 1);
    let report = &got.degraded[0];
    assert_eq!((report.source.as_str(), report.table.as_str()), ("sales", "orders"));
    assert_eq!(report.stale_ms, Some(5_000));
    assert!(report.error.contains("injected fault"));
}

#[test]
fn partial_results_keep_surviving_branches() {
    let clock = SimClock::new();
    let fed = federation(&clock);
    fed.inject_faults("sales", FaultProfile::failing(1.0, 3)).unwrap();
    let exec =
        Executor::new(&fed).with_degradation(DegradationPolicy::PartialResults, FallbackStore::new());

    // The union's crm branch survives; the sales branch comes back empty.
    let sql = "SELECT name FROM crm.customers WHERE id < 3 \
               UNION ALL SELECT name FROM crm.customers WHERE id >= 18";
    let ok = run(&fed, &exec, sql).unwrap();
    assert_eq!(ok.batch.num_rows(), 5);
    assert!(ok.fully_live());

    let joined = run(&fed, &exec, JOIN_SQL).unwrap();
    assert_eq!(joined.batch.num_rows(), 0, "dead join side yields no matches");
    assert_eq!(joined.degraded.len(), 1);
    assert_eq!(joined.degraded[0].stale_ms, None, "dropped, not stale");
}

#[test]
fn degradation_report_resets_between_queries() {
    let clock = SimClock::new();
    let fed = federation(&clock);
    let store = FallbackStore::new();
    snapshot_all(&fed, &store);
    fed.inject_faults("sales", FaultProfile::failing(1.0, 3)).unwrap();
    let exec = Executor::new(&fed).with_degradation(DegradationPolicy::Fallback, store);
    let first = run(&fed, &exec, JOIN_SQL).unwrap();
    assert_eq!(first.degraded.len(), 1);
    // A crm-only query touches no dead source: its report must be clean.
    let second = run(&fed, &exec, "SELECT name FROM crm.customers WHERE id = 1").unwrap();
    assert!(second.fully_live());
}

/// A connector that panics inside `execute` — drives the worker-panic path.
struct PanickingConnector;

impl Connector for PanickingConnector {
    fn name(&self) -> &str {
        "haywire"
    }

    fn tables(&self) -> Vec<String> {
        vec!["t".into()]
    }

    fn table_schema(&self, _table: &str) -> Result<eii_data::SchemaRef> {
        Ok(Arc::new(Schema::new(vec![Field::new(
            "x",
            DataType::Str,
        )])))
    }

    fn capabilities(&self) -> eii_federation::SourceCapabilities {
        eii_federation::SourceCapabilities::relational()
    }

    fn dialect(&self) -> eii_federation::Dialect {
        eii_federation::Dialect::ansi_full()
    }

    fn execute(&self, _query: &SourceQuery) -> Result<SourceAnswer> {
        panic!("haywire wrapper bug: lost connection state");
    }
}

#[test]
fn a_cancelled_query_never_reaches_the_sources() {
    let clock = SimClock::new();
    let fed = federation(&clock);
    let cancel = CancelToken::new();
    cancel.cancel("caller navigated away");
    let exec = Executor::new(&fed).with_request_ctx(RequestCtx::new().with_cancel(cancel));
    let err = run(&fed, &exec, JOIN_SQL).unwrap_err();
    assert_eq!(err.kind(), "cancelled");
    assert!(err.message().contains("caller navigated away"));
    assert_eq!(fed.ledger().total().requests, 0, "no fetch was issued");
}

#[test]
fn a_blown_deadline_fails_the_query_instead_of_degrading() {
    let clock = SimClock::new();
    let fed = federation(&clock);
    let store = FallbackStore::new();
    snapshot_all(&fed, &store);
    // A budget far below one WAN round trip: the first fetch's charge blows
    // it. Degradation must NOT swallow that into a stale answer.
    fed.set_scan_speed("crm", 10.0).unwrap();
    let deadline = Deadline::new(clock.clone(), 1);
    let exec = Executor::new(&fed)
        .with_degradation(DegradationPolicy::Fallback, store)
        .with_request_ctx(RequestCtx::new().with_deadline(deadline.clone()));
    let err = run(&fed, &exec, JOIN_SQL).unwrap_err();
    assert_eq!(err.kind(), "deadline");
    assert!(deadline.expired());
}

#[test]
fn hedging_fires_once_a_source_looks_slow_and_keeps_results_identical() {
    let clock = SimClock::new();
    let fed = federation(&clock);
    let sql = "SELECT name FROM crm.customers WHERE id < 5";

    let plain = Executor::new(&fed);
    let expect = run(&fed, &plain, sql).unwrap();

    let hedged = Executor::new(&fed).with_hedging(HedgePolicy {
        threshold_ms: 0.01,
        delay_ms: 0.5,
    });
    // The first run recorded crm's observed latency, so this one hedges.
    let got = run(&fed, &hedged, sql).unwrap();
    assert_eq!(got.batch.rows(), expect.batch.rows(), "identical answers");
    assert_eq!(fed.ledger().traffic("crm").hedges, 1);
    assert!(
        got.cost.bytes > expect.cost.bytes,
        "the losing request's bytes are charged"
    );
}

#[test]
fn worker_panic_payload_reaches_the_caller() {
    let clock = SimClock::new();
    let fed = federation(&clock);
    fed.register(
        Arc::new(PanickingConnector),
        LinkProfile::lan(),
        WireFormat::Native,
    )
    .unwrap();
    let exec = Executor::new(&fed);
    // Parallel union: one branch panics in its worker thread.
    let sql = "SELECT name FROM crm.customers WHERE id < 2 \
               UNION ALL SELECT x FROM haywire.t";
    let err = run(&fed, &exec, sql).unwrap_err();
    assert_eq!(err.kind(), "execution");
    assert!(
        err.message().contains("haywire wrapper bug"),
        "panic payload must not be swallowed: {err}"
    );
}
