//! Randomized-interleaving smoke test for the scheduler's admission
//! logic, in the spirit of a model checker like shuttle but driven by
//! seeded sleep/yield perturbation points (the container has no model-
//! checking dependency). Across many seeds, jobs independently verify —
//! with their own atomic tracker, not the scheduler's bookkeeping — that
//! `max_in_flight` and per-source permits are never breached, and that
//! every job completes (no lost wakeups, no deadlock).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use eii_exec::{AdmissionConfig, JobOutput, Scheduler};

const SEEDS: u64 = 24;
const JOBS: usize = 40;
const MAX_IN_FLIGHT: isize = 3;
const PER_SOURCE: isize = 2;

/// xorshift so each seed drives a distinct schedule perturbation.
fn rng(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[derive(Default)]
struct Tracker {
    per_source: BTreeMap<String, isize>,
    in_flight: isize,
}

#[test]
fn permits_hold_under_randomized_interleavings() {
    for seed in 0..SEEDS {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let scheduler = Scheduler::new(
            AdmissionConfig::with_workers(4)
                .with_source_permits(PER_SOURCE as usize)
                .with_max_in_flight(MAX_IN_FLIGHT as usize),
        );
        let tracker = Arc::new(Mutex::new(Tracker::default()));

        let mut tickets = Vec::new();
        for j in 0..JOBS {
            let sources = match rng(&mut state) % 3 {
                0 => vec!["a".to_string()],
                1 => vec!["b".to_string()],
                _ => vec!["a".to_string(), "b".to_string()],
            };
            let sleep_us = rng(&mut state) % 200;
            let tracker = Arc::clone(&tracker);
            let held = sources.clone();
            tickets.push(scheduler.submit(sources, move || {
                {
                    let mut t = tracker.lock().unwrap();
                    t.in_flight += 1;
                    assert!(
                        t.in_flight <= MAX_IN_FLIGHT,
                        "max_in_flight breached: {}",
                        t.in_flight
                    );
                    for s in &held {
                        let load = t.per_source.entry(s.clone()).or_insert(0);
                        *load += 1;
                        assert!(*load <= PER_SOURCE, "source {s} permit breached: {load}");
                    }
                }
                // The perturbation point: hold the permits for a seeded
                // interval so admissions race this job's completion.
                std::thread::sleep(Duration::from_micros(sleep_us));
                std::thread::yield_now();
                {
                    let mut t = tracker.lock().unwrap();
                    t.in_flight -= 1;
                    for s in &held {
                        *t.per_source.get_mut(s).expect("held source") -= 1;
                    }
                }
                Ok(JobOutput {
                    value: j,
                    sim_ms: 1.0,
                })
            }));
        }

        let mut values: Vec<usize> = tickets
            .into_iter()
            .map(|t| t.join().expect("job completes"))
            .collect();
        values.sort_unstable();
        assert_eq!(values, (0..JOBS).collect::<Vec<_>>(), "seed {seed}: lost jobs");

        let stats = scheduler.join();
        assert_eq!(stats.completed, JOBS as u64, "seed {seed}");
        assert_eq!(stats.failed, 0, "seed {seed}");
        assert!(stats.peak_in_flight <= MAX_IN_FLIGHT as usize, "seed {seed}");
        assert!(stats.peak_source_load <= PER_SOURCE as usize, "seed {seed}");
    }
}
