//! End-to-end tests for `IN (SELECT ...)` / `EXISTS` desugared to federated
//! semi/anti joins.

use std::sync::Arc;

use eii_catalog::Catalog;
use eii_data::{row, DataType, Field, Row, Schema, SimClock, Value};
use eii_exec::Executor;
use eii_federation::{Federation, LinkProfile, RelationalConnector, WireFormat};
use eii_planner::{plan_query, PlannerConfig};
use eii_sql::parse_query;
use eii_storage::{Database, TableDef};

fn setup() -> (Catalog, Federation) {
    let clock = SimClock::new();

    let crm = Database::new("crm", clock.clone());
    let t = crm
        .create_table(
            TableDef::new(
                "customers",
                Arc::new(Schema::new(vec![
                    Field::new("id", DataType::Int).not_null(),
                    Field::new("name", DataType::Str),
                    Field::new("region", DataType::Str),
                ])),
            )
            .with_primary_key(0),
        )
        .unwrap();
    {
        let mut t = t.write();
        for (i, (n, r)) in [
            ("alice", "west"),
            ("bob", "east"),
            ("carol", "west"),
            ("dave", "north"),
        ]
        .iter()
        .enumerate()
        {
            t.insert(row![i as i64 + 1, *n, *r]).unwrap();
        }
    }

    let sales = Database::new("sales", clock.clone());
    let ot = sales
        .create_table(
            TableDef::new(
                "orders",
                Arc::new(Schema::new(vec![
                    Field::new("order_id", DataType::Int).not_null(),
                    Field::new("customer_id", DataType::Int),
                    Field::new("total", DataType::Float),
                ])),
            )
            .with_primary_key(0),
        )
        .unwrap();
    {
        let mut t = ot.write();
        // Customers 1 and 2 have orders; 2's are small.
        t.insert(row![100i64, 1i64, 500.0]).unwrap();
        t.insert(row![101i64, 1i64, 20.0]).unwrap();
        t.insert(row![102i64, 2i64, 30.0]).unwrap();
        // An orphan order (customer 99 does not exist).
        t.insert(row![103i64, 99i64, 900.0]).unwrap();
    }

    let fed = Federation::new();
    fed.register(
        Arc::new(RelationalConnector::new(crm)),
        LinkProfile::lan(),
        WireFormat::Native,
    )
    .unwrap();
    fed.register(
        Arc::new(RelationalConnector::new(sales)),
        LinkProfile::wan(),
        WireFormat::Native,
    )
    .unwrap();
    (Catalog::new(), fed)
}

fn names(cat: &Catalog, fed: &Federation, cfg: &PlannerConfig, sql: &str) -> Vec<String> {
    let q = parse_query(sql).unwrap();
    let plan = plan_query(&q, cat, fed, cfg).unwrap_or_else(|e| panic!("plan {sql}: {e}"));
    let exec = Executor::new(fed);
    let batch = exec
        .execute(&plan)
        .unwrap_or_else(|e| panic!("exec {sql}: {e}"))
        .batch;
    let mut out: Vec<String> = batch
        .rows()
        .iter()
        .map(|r| r.get(0).as_str().unwrap().to_string())
        .collect();
    out.sort();
    out
}

#[test]
fn in_subquery_is_a_semi_join() {
    let (cat, fed) = setup();
    let got = names(
        &cat,
        &fed,
        &PlannerConfig::optimized(),
        "SELECT name FROM crm.customers WHERE id IN (SELECT customer_id FROM sales.orders)",
    );
    assert_eq!(got, vec!["alice", "bob"]);
}

#[test]
fn not_in_subquery_is_an_anti_join() {
    let (cat, fed) = setup();
    let got = names(
        &cat,
        &fed,
        &PlannerConfig::optimized(),
        "SELECT name FROM crm.customers WHERE id NOT IN (SELECT customer_id FROM sales.orders)",
    );
    assert_eq!(got, vec!["carol", "dave"]);
}

#[test]
fn subquery_own_filters_push_down() {
    let (cat, fed) = setup();
    let sql = "SELECT name FROM crm.customers WHERE region = 'west' AND \
               id IN (SELECT customer_id FROM sales.orders WHERE total > 100)";
    let got = names(&cat, &fed, &PlannerConfig::optimized(), sql);
    assert_eq!(got, vec!["alice"]);
    // The subquery's filter reaches the sales source as a component query.
    let q = parse_query(sql).unwrap();
    let plan = plan_query(&q, &cat, &fed, &PlannerConfig::optimized()).unwrap();
    let text = plan.display();
    assert!(
        text.contains("(total > 100)") && text.contains("SourceQuery sales"),
        "{text}"
    );
}

#[test]
fn uncorrelated_exists_gates_all_rows() {
    let (cat, fed) = setup();
    let all = names(
        &cat,
        &fed,
        &PlannerConfig::optimized(),
        "SELECT name FROM crm.customers WHERE EXISTS (SELECT order_id FROM sales.orders WHERE total > 800)",
    );
    assert_eq!(all.len(), 4, "a match exists, every row passes");
    let none = names(
        &cat,
        &fed,
        &PlannerConfig::optimized(),
        "SELECT name FROM crm.customers WHERE EXISTS (SELECT order_id FROM sales.orders WHERE total > 9999)",
    );
    assert!(none.is_empty());
    let not_exists = names(
        &cat,
        &fed,
        &PlannerConfig::optimized(),
        "SELECT name FROM crm.customers WHERE NOT EXISTS (SELECT order_id FROM sales.orders WHERE total > 9999)",
    );
    assert_eq!(not_exists.len(), 4);
}

#[test]
fn naive_and_optimized_agree_on_subqueries() {
    let (cat, fed) = setup();
    for sql in [
        "SELECT name FROM crm.customers WHERE id IN (SELECT customer_id FROM sales.orders)",
        "SELECT name FROM crm.customers WHERE id NOT IN (SELECT customer_id FROM sales.orders WHERE total < 100)",
        "SELECT name FROM crm.customers WHERE region = 'west' AND id IN (SELECT customer_id FROM sales.orders)",
    ] {
        let a = names(&cat, &fed, &PlannerConfig::optimized(), sql);
        let b = names(&cat, &fed, &PlannerConfig::naive(), sql);
        assert_eq!(a, b, "{sql}");
    }
}

#[test]
fn multi_column_subquery_is_a_plan_error() {
    let (cat, fed) = setup();
    let q = parse_query(
        "SELECT name FROM crm.customers WHERE id IN (SELECT order_id, customer_id FROM sales.orders)",
    )
    .unwrap();
    let err = plan_query(&q, &cat, &fed, &PlannerConfig::optimized()).unwrap_err();
    assert_eq!(err.kind(), "plan");
    assert!(err.message().contains("exactly one column"));
}

#[test]
fn null_probe_values_follow_anti_join_semantics() {
    // A customer with NULL id-like key: use a nullable column as the probe.
    let clock = SimClock::new();
    let fed = Federation::new();
    let db = Database::new("l", clock.clone());
    let t = db
        .create_table(
            TableDef::new(
                "t",
                Arc::new(Schema::new(vec![
                    Field::new("id", DataType::Int).not_null(),
                    Field::new("k", DataType::Int),
                ])),
            )
            .with_primary_key(0),
        )
        .unwrap();
    t.write().insert(row![1i64, 10i64]).unwrap();
    t.write()
        .insert(Row::new(vec![Value::Int(2), Value::Null]))
        .unwrap();
    let rdb = Database::new("r", clock.clone());
    let rt = rdb
        .create_table(
            TableDef::new(
                "t",
                Arc::new(Schema::new(vec![Field::new("k", DataType::Int).not_null()])),
            )
            .with_primary_key(0),
        )
        .unwrap();
    rt.write().insert(row![10i64]).unwrap();
    fed.register(
        Arc::new(RelationalConnector::new(db)),
        LinkProfile::local(),
        WireFormat::Native,
    )
    .unwrap();
    fed.register(
        Arc::new(RelationalConnector::new(rdb)),
        LinkProfile::local(),
        WireFormat::Native,
    )
    .unwrap();
    let cat = Catalog::new();

    let q = parse_query("SELECT id FROM l.t WHERE k IN (SELECT k FROM r.t)").unwrap();
    let plan = plan_query(&q, &cat, &fed, &PlannerConfig::optimized()).unwrap();
    let batch = Executor::new(&fed).execute(&plan).unwrap().batch;
    assert_eq!(batch.num_rows(), 1, "NULL probe never matches IN");

    // Documented dialect deviation: NOT IN keeps NULL-probe rows
    // (anti-join semantics), unlike standard SQL's three-valued NOT IN.
    let q = parse_query("SELECT id FROM l.t WHERE k NOT IN (SELECT k FROM r.t)").unwrap();
    let plan = plan_query(&q, &cat, &fed, &PlannerConfig::optimized()).unwrap();
    let batch = Executor::new(&fed).execute(&plan).unwrap().batch;
    assert_eq!(batch.num_rows(), 1);
    assert_eq!(batch.rows()[0].get(0), &Value::Int(2));
}
