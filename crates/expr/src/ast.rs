//! The scalar expression AST.
//!
//! The same AST is produced by the SQL parser, transformed by the optimizer,
//! and — crucially for a federated system — *rendered back to SQL text* when a
//! predicate is pushed down to a remote source (`Display` produces canonical
//! SQL; per-vendor dialect rendering lives in `eii-federation`).

use std::fmt;

use serde::{Deserialize, Serialize};

use eii_data::{DataType, Value};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Plus,
    Minus,
    Multiply,
    Divide,
    Modulo,
}

impl BinaryOp {
    /// True for comparison operators producing booleans from any comparable
    /// operands.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }

    /// True for AND/OR.
    pub fn is_logical(self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or)
    }

    /// True for arithmetic operators.
    pub fn is_arithmetic(self) -> bool {
        !self.is_comparison() && !self.is_logical()
    }

    /// SQL token for the operator.
    pub fn sql(self) -> &'static str {
        match self {
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Plus => "+",
            BinaryOp::Minus => "-",
            BinaryOp::Multiply => "*",
            BinaryOp::Divide => "/",
            BinaryOp::Modulo => "%",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnaryOp {
    /// Logical negation (three-valued).
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScalarFunc {
    Lower,
    Upper,
    Length,
    Abs,
    /// `COALESCE(a, b, ...)` — first non-null argument.
    Coalesce,
    /// `SUBSTR(s, start [, len])`, 1-based like SQL.
    Substr,
    /// `CONCAT(a, b, ...)`.
    Concat,
    /// `ROUND(x [, digits])`.
    Round,
    /// `TRIM(s)`.
    Trim,
}

impl ScalarFunc {
    /// SQL name of the function.
    pub fn name(self) -> &'static str {
        match self {
            ScalarFunc::Lower => "LOWER",
            ScalarFunc::Upper => "UPPER",
            ScalarFunc::Length => "LENGTH",
            ScalarFunc::Abs => "ABS",
            ScalarFunc::Coalesce => "COALESCE",
            ScalarFunc::Substr => "SUBSTR",
            ScalarFunc::Concat => "CONCAT",
            ScalarFunc::Round => "ROUND",
            ScalarFunc::Trim => "TRIM",
        }
    }

    /// Look a function up by (case-insensitive) name.
    pub fn from_name(name: &str) -> Option<Self> {
        let up = name.to_ascii_uppercase();
        Some(match up.as_str() {
            "LOWER" => ScalarFunc::Lower,
            "UPPER" => ScalarFunc::Upper,
            "LENGTH" | "LEN" => ScalarFunc::Length,
            "ABS" => ScalarFunc::Abs,
            "COALESCE" => ScalarFunc::Coalesce,
            "SUBSTR" | "SUBSTRING" => ScalarFunc::Substr,
            "CONCAT" => ScalarFunc::Concat,
            "ROUND" => ScalarFunc::Round,
            "TRIM" => ScalarFunc::Trim,
            _ => return None,
        })
    }
}

/// Aggregate functions (used by the plan layer; listed here so the parser and
/// pushdown rules can reason about them alongside scalar expressions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    Count,
    /// `COUNT(*)`.
    CountStar,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    /// SQL name of the aggregate.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count | AggFunc::CountStar => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }

    /// Look an aggregate up by (case-insensitive) name.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name.to_ascii_uppercase().as_str() {
            "COUNT" => AggFunc::Count,
            "SUM" => AggFunc::Sum,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            "AVG" => AggFunc::Avg,
            _ => return None,
        })
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// A (possibly qualified) column reference.
    Column {
        relation: Option<String>,
        name: String,
    },
    /// A literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        left: Box<Expr>,
        op: BinaryOp,
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary { op: UnaryOp, expr: Box<Expr> },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull { expr: Box<Expr>, negated: bool },
    /// `expr [NOT] LIKE pattern` with `%` and `_` wildcards.
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, ...)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    /// `CASE WHEN c1 THEN r1 ... [ELSE e] END`.
    Case {
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    /// `CAST(expr AS type)`.
    Cast { expr: Box<Expr>, to: DataType },
    /// Scalar function call.
    Func { func: ScalarFunc, args: Vec<Expr> },
}

impl Expr {
    /// Unqualified column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            relation: None,
            name: name.into(),
        }
    }

    /// Qualified column reference.
    pub fn qcol(relation: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column {
            relation: Some(relation.into()),
            name: name.into(),
        }
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Build `self OP other`.
    pub fn binary(self, op: BinaryOp, other: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(self),
            op,
            right: Box::new(other),
        }
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Eq, other)
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Lt, other)
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Gt, other)
    }

    /// `self <= other`.
    pub fn lt_eq(self, other: Expr) -> Expr {
        self.binary(BinaryOp::LtEq, other)
    }

    /// `self >= other`.
    pub fn gt_eq(self, other: Expr) -> Expr {
        self.binary(BinaryOp::GtEq, other)
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        self.binary(BinaryOp::And, other)
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Or, other)
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(self),
        }
    }

    /// True iff the expression contains no column references (it can be
    /// evaluated to a constant).
    pub fn is_constant(&self) -> bool {
        let mut constant = true;
        self.visit(&mut |e| {
            if matches!(e, Expr::Column { .. }) {
                constant = false;
            }
        });
        constant
    }

    /// Pre-order visit of the expression tree.
    pub fn visit<'a, F: FnMut(&'a Expr)>(&'a self, f: &mut F) {
        f(self);
        match self {
            Expr::Column { .. } | Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
                expr.visit(f);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.visit(f);
                pattern.visit(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.visit(f);
                low.visit(f);
                high.visit(f);
            }
            Expr::Case {
                branches,
                else_expr,
            } => {
                for (c, r) in branches {
                    c.visit(f);
                    r.visit(f);
                }
                if let Some(e) = else_expr {
                    e.visit(f);
                }
            }
            Expr::Func { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
        }
    }

    /// Rewrite the tree bottom-up with `f` applied to every node.
    pub fn transform<F: Fn(Expr) -> Expr + Copy>(self, f: F) -> Expr {
        let rebuilt = match self {
            e @ (Expr::Column { .. } | Expr::Literal(_)) => e,
            Expr::Binary { left, op, right } => Expr::Binary {
                left: Box::new(left.transform(f)),
                op,
                right: Box::new(right.transform(f)),
            },
            Expr::Unary { op, expr } => Expr::Unary {
                op,
                expr: Box::new(expr.transform(f)),
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.transform(f)),
                negated,
            },
            Expr::Cast { expr, to } => Expr::Cast {
                expr: Box::new(expr.transform(f)),
                to,
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(expr.transform(f)),
                pattern: Box::new(pattern.transform(f)),
                negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(expr.transform(f)),
                list: list.into_iter().map(|e| e.transform(f)).collect(),
                negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(expr.transform(f)),
                low: Box::new(low.transform(f)),
                high: Box::new(high.transform(f)),
                negated,
            },
            Expr::Case {
                branches,
                else_expr,
            } => Expr::Case {
                branches: branches
                    .into_iter()
                    .map(|(c, r)| (c.transform(f), r.transform(f)))
                    .collect(),
                else_expr: else_expr.map(|e| Box::new(e.transform(f))),
            },
            Expr::Func { func, args } => Expr::Func {
                func,
                args: args.into_iter().map(|e| e.transform(f)).collect(),
            },
        };
        f(rebuilt)
    }

    /// A short display name used when the expression becomes an output
    /// column without an explicit alias.
    pub fn output_name(&self) -> String {
        match self {
            Expr::Column { name, .. } => name.clone(),
            other => other.to_string(),
        }
    }
}

fn fmt_sql_str(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "'{}'", s.replace('\'', "''"))
}

impl fmt::Display for Expr {
    /// Canonical SQL rendering (parenthesized conservatively so the output is
    /// unambiguous when pushed to a source).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column { relation, name } => match relation {
                Some(r) => write!(f, "{r}.{name}"),
                None => write!(f, "{name}"),
            },
            Expr::Literal(Value::Str(s)) => fmt_sql_str(s, f),
            Expr::Literal(Value::Null) => write!(f, "NULL"),
            Expr::Literal(Value::Bool(b)) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary { left, op, right } => write!(f, "({left} {} {right})", op.sql()),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not => write!(f, "(NOT {expr})"),
                UnaryOp::Neg => write!(f, "(-{expr})"),
            },
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "({expr} {}LIKE {pattern})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Case {
                branches,
                else_expr,
            } => {
                write!(f, "CASE")?;
                for (c, r) in branches {
                    write!(f, " WHEN {c} THEN {r}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            Expr::Cast { expr, to } => write!(f, "CAST({expr} AS {to})"),
            Expr::Func { func, args } => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_display() {
        let e = Expr::qcol("c", "age")
            .gt_eq(Expr::lit(18i64))
            .and(Expr::col("name").eq(Expr::lit("alice")));
        assert_eq!(e.to_string(), "((c.age >= 18) AND (name = 'alice'))");
    }

    #[test]
    fn string_literals_escape_quotes() {
        let e = Expr::lit("o'brien");
        assert_eq!(e.to_string(), "'o''brien'");
    }

    #[test]
    fn is_constant_detects_columns() {
        assert!(Expr::lit(1i64).binary(BinaryOp::Plus, Expr::lit(2i64)).is_constant());
        assert!(!Expr::col("x").eq(Expr::lit(1i64)).is_constant());
    }

    #[test]
    fn transform_rewrites_columns() {
        let e = Expr::col("a").eq(Expr::col("b"));
        let renamed = e.transform(|node| match node {
            Expr::Column { relation, name } => Expr::Column {
                relation,
                name: format!("{name}_renamed"),
            },
            other => other,
        });
        assert_eq!(renamed.to_string(), "(a_renamed = b_renamed)");
    }

    #[test]
    fn visit_counts_nodes() {
        let e = Expr::col("a").eq(Expr::lit(1i64)).and(Expr::col("b").not());
        let mut n = 0;
        e.visit(&mut |_| n += 1);
        assert_eq!(n, 6);
    }

    #[test]
    fn func_lookup_is_case_insensitive() {
        assert_eq!(ScalarFunc::from_name("lower"), Some(ScalarFunc::Lower));
        assert_eq!(ScalarFunc::from_name("SUBSTRING"), Some(ScalarFunc::Substr));
        assert_eq!(ScalarFunc::from_name("nope"), None);
        assert_eq!(AggFunc::from_name("avg"), Some(AggFunc::Avg));
    }

    #[test]
    fn case_displays() {
        let e = Expr::Case {
            branches: vec![(Expr::col("x").gt(Expr::lit(0i64)), Expr::lit("pos"))],
            else_expr: Some(Box::new(Expr::lit("neg"))),
        };
        assert_eq!(e.to_string(), "CASE WHEN (x > 0) THEN 'pos' ELSE 'neg' END");
    }
}
