//! Binding and evaluation of expressions against rows.
//!
//! [`bind`] resolves column names against a [`Schema`] once, producing a
//! [`BoundExpr`] whose column references are positional — evaluation in the
//! executor's inner loop then never touches name resolution. Evaluation
//! implements SQL three-valued logic: comparisons with NULL yield NULL, and
//! AND/OR follow Kleene semantics.

use eii_data::{DataType, EiiError, Result, Row, Schema, Value};

use crate::ast::{BinaryOp, Expr, ScalarFunc, UnaryOp};
use crate::functions::{eval_scalar, like_match};

/// An expression whose column references have been resolved to positions.
#[derive(Debug, Clone)]
pub enum BoundExpr {
    Column(usize),
    Literal(Value),
    Binary {
        left: Box<BoundExpr>,
        op: BinaryOp,
        right: Box<BoundExpr>,
    },
    Unary {
        op: UnaryOp,
        expr: Box<BoundExpr>,
    },
    IsNull {
        expr: Box<BoundExpr>,
        negated: bool,
    },
    Like {
        expr: Box<BoundExpr>,
        pattern: Box<BoundExpr>,
        negated: bool,
    },
    InList {
        expr: Box<BoundExpr>,
        list: Vec<BoundExpr>,
        negated: bool,
    },
    Between {
        expr: Box<BoundExpr>,
        low: Box<BoundExpr>,
        high: Box<BoundExpr>,
        negated: bool,
    },
    Case {
        branches: Vec<(BoundExpr, BoundExpr)>,
        else_expr: Option<Box<BoundExpr>>,
    },
    Cast {
        expr: Box<BoundExpr>,
        to: DataType,
    },
    Func {
        func: ScalarFunc,
        args: Vec<BoundExpr>,
    },
}

/// Resolve every column reference in `expr` against `schema`.
pub fn bind(expr: &Expr, schema: &Schema) -> Result<BoundExpr> {
    Ok(match expr {
        Expr::Column { relation, name } => {
            BoundExpr::Column(schema.index_of(relation.as_deref(), name)?)
        }
        Expr::Literal(v) => BoundExpr::Literal(v.clone()),
        Expr::Binary { left, op, right } => BoundExpr::Binary {
            left: Box::new(bind(left, schema)?),
            op: *op,
            right: Box::new(bind(right, schema)?),
        },
        Expr::Unary { op, expr } => BoundExpr::Unary {
            op: *op,
            expr: Box::new(bind(expr, schema)?),
        },
        Expr::IsNull { expr, negated } => BoundExpr::IsNull {
            expr: Box::new(bind(expr, schema)?),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => BoundExpr::Like {
            expr: Box::new(bind(expr, schema)?),
            pattern: Box::new(bind(pattern, schema)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => BoundExpr::InList {
            expr: Box::new(bind(expr, schema)?),
            list: list
                .iter()
                .map(|e| bind(e, schema))
                .collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => BoundExpr::Between {
            expr: Box::new(bind(expr, schema)?),
            low: Box::new(bind(low, schema)?),
            high: Box::new(bind(high, schema)?),
            negated: *negated,
        },
        Expr::Case {
            branches,
            else_expr,
        } => BoundExpr::Case {
            branches: branches
                .iter()
                .map(|(c, r)| Ok((bind(c, schema)?, bind(r, schema)?)))
                .collect::<Result<_>>()?,
            else_expr: match else_expr {
                Some(e) => Some(Box::new(bind(e, schema)?)),
                None => None,
            },
        },
        Expr::Cast { expr, to } => BoundExpr::Cast {
            expr: Box::new(bind(expr, schema)?),
            to: *to,
        },
        Expr::Func { func, args } => BoundExpr::Func {
            func: *func,
            args: args
                .iter()
                .map(|e| bind(e, schema))
                .collect::<Result<_>>()?,
        },
    })
}

impl BoundExpr {
    /// Evaluate against a row, producing a [`Value`].
    pub fn eval(&self, row: &Row) -> Result<Value> {
        match self {
            BoundExpr::Column(i) => Ok(row.get(*i).clone()),
            BoundExpr::Literal(v) => Ok(v.clone()),
            BoundExpr::Binary { left, op, right } => {
                // Kleene short-circuit for AND/OR must inspect both sides'
                // nullness, so evaluate lazily only where safe.
                match op {
                    BinaryOp::And => {
                        let l = left.eval(row)?;
                        if l == Value::Bool(false) {
                            return Ok(Value::Bool(false));
                        }
                        let r = right.eval(row)?;
                        eval_and(&l, &r)
                    }
                    BinaryOp::Or => {
                        let l = left.eval(row)?;
                        if l == Value::Bool(true) {
                            return Ok(Value::Bool(true));
                        }
                        let r = right.eval(row)?;
                        eval_or(&l, &r)
                    }
                    _ => {
                        let l = left.eval(row)?;
                        let r = right.eval(row)?;
                        eval_binary(&l, *op, &r)
                    }
                }
            }
            BoundExpr::Unary { op, expr } => {
                let v = expr.eval(row)?;
                match op {
                    UnaryOp::Not => Ok(match v {
                        Value::Null => Value::Null,
                        Value::Bool(b) => Value::Bool(!b),
                        other => {
                            return Err(EiiError::Type(format!("NOT applied to {other}")));
                        }
                    }),
                    UnaryOp::Neg => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Int(i) => Ok(Value::Int(i.wrapping_neg())),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        other => Err(EiiError::Type(format!("negation applied to {other}"))),
                    },
                }
            }
            BoundExpr::IsNull { expr, negated } => {
                let v = expr.eval(row)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            BoundExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = expr.eval(row)?;
                let p = pattern.eval(row)?;
                if v.is_null() || p.is_null() {
                    return Ok(Value::Null);
                }
                let (Some(text), Some(pat)) = (v.as_str(), p.as_str()) else {
                    return Err(EiiError::Type("LIKE expects string operands".into()));
                };
                Ok(Value::Bool(like_match(text, pat) != *negated))
            }
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let iv = item.eval(row)?;
                    if iv.is_null() {
                        saw_null = true;
                    } else if iv == v {
                        return Ok(Value::Bool(!negated));
                    }
                }
                // SQL: x IN (..., NULL) is NULL when no match was found.
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            BoundExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = expr.eval(row)?;
                let lo = low.eval(row)?;
                let hi = high.eval(row)?;
                if v.is_null() || lo.is_null() || hi.is_null() {
                    return Ok(Value::Null);
                }
                let inside = lo <= v && v <= hi;
                Ok(Value::Bool(inside != *negated))
            }
            BoundExpr::Case {
                branches,
                else_expr,
            } => {
                for (cond, result) in branches {
                    if cond.eval(row)?.is_true() {
                        return result.eval(row);
                    }
                }
                match else_expr {
                    Some(e) => e.eval(row),
                    None => Ok(Value::Null),
                }
            }
            BoundExpr::Cast { expr, to } => {
                let v = expr.eval(row)?;
                v.cast(*to)
                    .ok_or_else(|| EiiError::Type(format!("cannot cast {v} to {to}")))
            }
            BoundExpr::Func { func, args } => {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| a.eval(row))
                    .collect::<Result<_>>()?;
                eval_scalar(*func, &vals)
            }
        }
    }

    /// Evaluate as a predicate: true iff the result is `Bool(true)`
    /// (NULL and false both reject, per SQL WHERE semantics).
    pub fn eval_predicate(&self, row: &Row) -> Result<bool> {
        Ok(self.eval(row)?.is_true())
    }
}

pub(crate) fn eval_and(l: &Value, r: &Value) -> Result<Value> {
    Ok(match (l.as_bool(), r.as_bool()) {
        (Some(false), _) | (_, Some(false)) => Value::Bool(false),
        (Some(true), Some(true)) => Value::Bool(true),
        _ if l.is_null() || r.is_null() => Value::Null,
        _ => return Err(EiiError::Type("AND expects boolean operands".into())),
    })
}

pub(crate) fn eval_or(l: &Value, r: &Value) -> Result<Value> {
    Ok(match (l.as_bool(), r.as_bool()) {
        (Some(true), _) | (_, Some(true)) => Value::Bool(true),
        (Some(false), Some(false)) => Value::Bool(false),
        _ if l.is_null() || r.is_null() => Value::Null,
        _ => return Err(EiiError::Type("OR expects boolean operands".into())),
    })
}

/// Evaluate a non-logical binary operator with SQL NULL propagation.
pub fn eval_binary(l: &Value, op: BinaryOp, r: &Value) -> Result<Value> {
    if op.is_comparison() {
        if l.is_null() || r.is_null() {
            return Ok(Value::Null);
        }
        let ord = l.cmp(r);
        let b = match op {
            BinaryOp::Eq => ord.is_eq(),
            BinaryOp::NotEq => !ord.is_eq(),
            BinaryOp::Lt => ord.is_lt(),
            BinaryOp::LtEq => ord.is_le(),
            BinaryOp::Gt => ord.is_gt(),
            BinaryOp::GtEq => ord.is_ge(),
            _ => unreachable!(),
        };
        return Ok(Value::Bool(b));
    }
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // Arithmetic. Int op Int stays Int (except division by zero handling);
    // anything involving Float widens.
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => {
            let v = match op {
                BinaryOp::Plus => Value::Int(a.wrapping_add(*b)),
                BinaryOp::Minus => Value::Int(a.wrapping_sub(*b)),
                BinaryOp::Multiply => Value::Int(a.wrapping_mul(*b)),
                BinaryOp::Divide => {
                    if *b == 0 {
                        return Err(EiiError::Execution("division by zero".into()));
                    }
                    Value::Int(a.wrapping_div(*b))
                }
                BinaryOp::Modulo => {
                    if *b == 0 {
                        return Err(EiiError::Execution("division by zero".into()));
                    }
                    Value::Int(a.wrapping_rem(*b))
                }
                _ => unreachable!(),
            };
            Ok(v)
        }
        _ => {
            let (Some(a), Some(b)) = (l.as_float(), r.as_float()) else {
                if let (Value::Str(a), Value::Str(b), BinaryOp::Plus) = (l, r, op) {
                    return Ok(Value::str(format!("{a}{b}")));
                }
                return Err(EiiError::Type(format!(
                    "arithmetic {} on non-numeric operands {l} and {r}",
                    op.sql()
                )));
            };
            let v = match op {
                BinaryOp::Plus => a + b,
                BinaryOp::Minus => a - b,
                BinaryOp::Multiply => a * b,
                BinaryOp::Divide => {
                    if b == 0.0 {
                        return Err(EiiError::Execution("division by zero".into()));
                    }
                    a / b
                }
                BinaryOp::Modulo => {
                    if b == 0.0 {
                        return Err(EiiError::Execution("division by zero".into()));
                    }
                    a % b
                }
                _ => unreachable!(),
            };
            Ok(Value::Float(v))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr;
    use eii_data::{row, Field};
    use proptest::prelude::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Str),
            Field::new("c", DataType::Float),
        ])
    }

    fn eval(e: &Expr, r: &Row) -> Value {
        bind(e, &schema()).unwrap().eval(r).unwrap()
    }

    #[test]
    fn column_and_arithmetic() {
        let r = row![10i64, "x", 2.5];
        let e = Expr::col("a").binary(BinaryOp::Plus, Expr::lit(5i64));
        assert_eq!(eval(&e, &r), Value::Int(15));
        let e = Expr::col("a").binary(BinaryOp::Multiply, Expr::col("c"));
        assert_eq!(eval(&e, &r), Value::Float(25.0));
    }

    #[test]
    fn null_propagates_through_comparison() {
        let r = Row::new(vec![Value::Null, Value::str("x"), Value::Float(1.0)]);
        let e = Expr::col("a").eq(Expr::lit(1i64));
        assert_eq!(eval(&e, &r), Value::Null);
        assert!(!bind(&e, &schema()).unwrap().eval_predicate(&r).unwrap());
    }

    #[test]
    fn kleene_and_or() {
        let r = Row::new(vec![Value::Null, Value::str("x"), Value::Float(1.0)]);
        // NULL AND FALSE = FALSE
        let e = Expr::col("a")
            .eq(Expr::lit(1i64))
            .and(Expr::lit(false));
        assert_eq!(eval(&e, &r), Value::Bool(false));
        // NULL OR TRUE = TRUE
        let e = Expr::col("a").eq(Expr::lit(1i64)).or(Expr::lit(true));
        assert_eq!(eval(&e, &r), Value::Bool(true));
        // NULL AND TRUE = NULL
        let e = Expr::col("a").eq(Expr::lit(1i64)).and(Expr::lit(true));
        assert_eq!(eval(&e, &r), Value::Null);
    }

    #[test]
    fn in_list_with_null_semantics() {
        let r = row![2i64, "x", 0.0];
        let e = Expr::InList {
            expr: Box::new(Expr::col("a")),
            list: vec![Expr::lit(1i64), Expr::lit(2i64)],
            negated: false,
        };
        assert_eq!(eval(&e, &r), Value::Bool(true));
        let e = Expr::InList {
            expr: Box::new(Expr::col("a")),
            list: vec![Expr::lit(1i64), Expr::Literal(Value::Null)],
            negated: false,
        };
        assert_eq!(eval(&e, &r), Value::Null, "no match + NULL in list is NULL");
    }

    #[test]
    fn between_and_like() {
        let r = row![5i64, "hello world", 0.0];
        let e = Expr::Between {
            expr: Box::new(Expr::col("a")),
            low: Box::new(Expr::lit(1i64)),
            high: Box::new(Expr::lit(10i64)),
            negated: false,
        };
        assert_eq!(eval(&e, &r), Value::Bool(true));
        let e = Expr::Like {
            expr: Box::new(Expr::col("b")),
            pattern: Box::new(Expr::lit("hello%")),
            negated: false,
        };
        assert_eq!(eval(&e, &r), Value::Bool(true));
    }

    #[test]
    fn division_by_zero_is_execution_error() {
        let r = row![1i64, "x", 0.0];
        let e = Expr::col("a").binary(BinaryOp::Divide, Expr::lit(0i64));
        let err = bind(&e, &schema()).unwrap().eval(&r).unwrap_err();
        assert_eq!(err.kind(), "execution");
    }

    #[test]
    fn case_expression() {
        let r = row![5i64, "x", 0.0];
        let e = Expr::Case {
            branches: vec![
                (Expr::col("a").lt(Expr::lit(0i64)), Expr::lit("neg")),
                (Expr::col("a").eq(Expr::lit(5i64)), Expr::lit("five")),
            ],
            else_expr: None,
        };
        assert_eq!(eval(&e, &r), Value::str("five"));
        let r0 = row![1i64, "x", 0.0];
        assert_eq!(eval(&e, &r0), Value::Null, "no ELSE yields NULL");
    }

    #[test]
    fn cast_in_expression() {
        let r = row![5i64, "37", 0.0];
        let e = Expr::Cast {
            expr: Box::new(Expr::col("b")),
            to: DataType::Int,
        };
        assert_eq!(eval(&e, &r), Value::Int(37));
    }

    #[test]
    fn binding_unknown_column_fails() {
        let e = Expr::col("zzz");
        assert_eq!(bind(&e, &schema()).unwrap_err().kind(), "not_found");
    }

    #[test]
    fn string_concat_with_plus() {
        let r = row![1i64, "ab", 0.0];
        let e = Expr::col("b").binary(BinaryOp::Plus, Expr::lit("cd"));
        assert_eq!(eval(&e, &r), Value::str("abcd"));
    }

    proptest! {
        #[test]
        fn comparison_agrees_with_native(a in -1000i64..1000, b in -1000i64..1000) {
            let r = row![a, "x", 0.0];
            let e = Expr::col("a").lt(Expr::lit(b));
            prop_assert_eq!(eval(&e, &r), Value::Bool(a < b));
        }

        #[test]
        fn arithmetic_agrees_with_native(a in -10_000i64..10_000, b in 1i64..10_000) {
            let r = row![a, "x", 0.0];
            for (op, want) in [
                (BinaryOp::Plus, a + b),
                (BinaryOp::Minus, a - b),
                (BinaryOp::Multiply, a * b),
                (BinaryOp::Divide, a / b),
                (BinaryOp::Modulo, a % b),
            ] {
                let e = Expr::col("a").binary(op, Expr::lit(b));
                prop_assert_eq!(eval(&e, &r), Value::Int(want));
            }
        }

        #[test]
        fn not_not_is_identity(a in any::<bool>()) {
            let r = row![1i64, "x", 0.0];
            let e = Expr::lit(a).not().not();
            prop_assert_eq!(eval(&e, &r), Value::Bool(a));
        }
    }
}
