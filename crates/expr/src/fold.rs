//! Expression simplification and predicate analysis utilities.
//!
//! These are the building blocks of the planner's rewrite rules: constant
//! folding, conjunction splitting/joining (for predicate pushdown), and
//! column-reference collection (for projection pruning and for deciding
//! which source a predicate can be pushed to).

use std::collections::BTreeSet;

use eii_data::{Row, Value};

use crate::ast::{BinaryOp, Expr};
use crate::eval::{bind, BoundExpr};

/// A (relation, column) reference appearing in an expression.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColumnRef {
    pub relation: Option<String>,
    pub name: String,
}

impl std::fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.relation {
            Some(r) => write!(f, "{r}.{}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// Collect every column reference in the expression (deduplicated, ordered).
pub fn referenced_columns(expr: &Expr) -> BTreeSet<ColumnRef> {
    let mut out = BTreeSet::new();
    expr.visit(&mut |e| {
        if let Expr::Column { relation, name } = e {
            out.insert(ColumnRef {
                relation: relation.clone(),
                name: name.clone(),
            });
        }
    });
    out
}

/// Split a predicate into its top-level AND conjuncts.
pub fn conjuncts(expr: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    fn rec(e: &Expr, out: &mut Vec<Expr>) {
        match e {
            Expr::Binary {
                left,
                op: BinaryOp::And,
                right,
            } => {
                rec(left, out);
                rec(right, out);
            }
            other => out.push(other.clone()),
        }
    }
    rec(expr, &mut out);
    out
}

/// Combine conjuncts back into a single predicate; `None` when empty.
pub fn conjoin(mut preds: Vec<Expr>) -> Option<Expr> {
    let first = if preds.is_empty() {
        return None;
    } else {
        preds.remove(0)
    };
    Some(preds.into_iter().fold(first, Expr::and))
}

/// Fold constant sub-expressions to literals and apply cheap logical
/// simplifications (`TRUE AND p → p`, `FALSE AND p → FALSE`, double
/// negation, ...). The result is semantically equivalent under SQL
/// three-valued logic.
pub fn fold_constants(expr: Expr) -> Expr {
    expr.transform(|e| {
        // First: evaluate fully-constant subtrees.
        if e.is_constant() && !matches!(e, Expr::Literal(_)) {
            let empty_schema = eii_data::Schema::empty();
            if let Ok(bound) = bind(&e, &empty_schema) {
                if let Ok(v) = BoundExpr::eval(&bound, &Row::default()) {
                    return Expr::Literal(v);
                }
            }
            return e;
        }
        // Then: logical identities that need only one constant side. These
        // are exactly the Kleene-safe ones (TRUE AND p ≡ p even when p is
        // NULL, etc.).
        match e {
            Expr::Binary {
                left,
                op: BinaryOp::And,
                right,
            } => match (*left, *right) {
                (Expr::Literal(Value::Bool(true)), p) | (p, Expr::Literal(Value::Bool(true))) => p,
                (Expr::Literal(Value::Bool(false)), _) | (_, Expr::Literal(Value::Bool(false))) => {
                    Expr::Literal(Value::Bool(false))
                }
                (l, r) => l.and(r),
            },
            Expr::Binary {
                left,
                op: BinaryOp::Or,
                right,
            } => match (*left, *right) {
                (Expr::Literal(Value::Bool(false)), p)
                | (p, Expr::Literal(Value::Bool(false))) => p,
                (Expr::Literal(Value::Bool(true)), _) | (_, Expr::Literal(Value::Bool(true))) => {
                    Expr::Literal(Value::Bool(true))
                }
                (l, r) => l.or(r),
            },
            Expr::Unary {
                op: crate::ast::UnaryOp::Not,
                expr,
            } => match *expr {
                Expr::Unary {
                    op: crate::ast::UnaryOp::Not,
                    expr: inner,
                } => *inner,
                Expr::Literal(Value::Bool(b)) => Expr::Literal(Value::Bool(!b)),
                other => other.not(),
            },
            other => other,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eii_data::{DataType, Field, Schema};
    use proptest::prelude::*;

    #[test]
    fn conjuncts_split_nested_ands() {
        let p = Expr::col("a")
            .eq(Expr::lit(1i64))
            .and(Expr::col("b").eq(Expr::lit(2i64)))
            .and(Expr::col("c").eq(Expr::lit(3i64)));
        let cs = conjuncts(&p);
        assert_eq!(cs.len(), 3);
        // ORs are not split.
        let p = Expr::col("a")
            .eq(Expr::lit(1i64))
            .or(Expr::col("b").eq(Expr::lit(2i64)));
        assert_eq!(conjuncts(&p).len(), 1);
    }

    #[test]
    fn conjoin_round_trips() {
        let p = Expr::col("a")
            .eq(Expr::lit(1i64))
            .and(Expr::col("b").eq(Expr::lit(2i64)));
        let rebuilt = conjoin(conjuncts(&p)).unwrap();
        assert_eq!(rebuilt, p);
        assert_eq!(conjoin(vec![]), None);
    }

    #[test]
    fn referenced_columns_dedup() {
        let p = Expr::col("a")
            .eq(Expr::qcol("t", "b"))
            .and(Expr::col("a").gt(Expr::lit(0i64)));
        let cols = referenced_columns(&p);
        assert_eq!(cols.len(), 2);
        assert!(cols.iter().any(|c| c.name == "a" && c.relation.is_none()));
        assert!(cols
            .iter()
            .any(|c| c.name == "b" && c.relation.as_deref() == Some("t")));
    }

    #[test]
    fn folds_constant_arithmetic() {
        let e = Expr::lit(2i64)
            .binary(BinaryOp::Plus, Expr::lit(3i64))
            .binary(BinaryOp::Multiply, Expr::lit(4i64));
        assert_eq!(fold_constants(e), Expr::lit(20i64));
    }

    #[test]
    fn true_and_p_simplifies() {
        let p = Expr::col("x").eq(Expr::lit(1i64));
        let e = Expr::lit(true).and(p.clone());
        assert_eq!(fold_constants(e), p);
        let e = p.clone().and(Expr::lit(1i64).lt(Expr::lit(2i64)));
        assert_eq!(fold_constants(e), p);
    }

    #[test]
    fn false_and_p_is_false() {
        let p = Expr::col("x").eq(Expr::lit(1i64));
        assert_eq!(
            fold_constants(Expr::lit(false).and(p)),
            Expr::lit(false)
        );
    }

    #[test]
    fn double_negation_removed() {
        let p = Expr::col("x").eq(Expr::lit(1i64));
        assert_eq!(fold_constants(p.clone().not().not()), p);
    }

    #[test]
    fn fold_keeps_division_by_zero_unfolded() {
        // 1/0 must stay an expression (it errors at runtime, not plan time).
        let e = Expr::lit(1i64).binary(BinaryOp::Divide, Expr::lit(0i64));
        assert!(matches!(fold_constants(e), Expr::Binary { .. }));
    }

    proptest! {
        /// Folding never changes the value of a predicate on random rows.
        #[test]
        fn folding_preserves_semantics(
            a in -5i64..5,
            b in -5i64..5,
            k in -5i64..5,
        ) {
            let schema = Schema::new(vec![
                Field::new("a", DataType::Int),
                Field::new("b", DataType::Int),
            ]);
            let row = eii_data::row![a, b];
            let exprs = [
                Expr::col("a").eq(Expr::lit(k)).and(Expr::lit(true)),
                Expr::col("a").lt(Expr::col("b")).or(Expr::lit(false)),
                Expr::lit(k).binary(BinaryOp::Plus, Expr::lit(1i64)).lt(Expr::col("a")),
                Expr::col("a").eq(Expr::lit(k)).not().not(),
            ];
            for e in exprs {
                let before = bind(&e, &schema).unwrap().eval(&row).unwrap();
                let folded = fold_constants(e);
                let after = bind(&folded, &schema).unwrap().eval(&row).unwrap();
                prop_assert_eq!(before, after);
            }
        }
    }
}
