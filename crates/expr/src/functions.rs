//! Implementations of built-in scalar functions and SQL LIKE matching.

use eii_data::{EiiError, Result, Value};

use crate::ast::ScalarFunc;

/// Evaluate a scalar function over already-evaluated arguments.
///
/// NULL handling follows SQL: most functions are strict (NULL in → NULL out);
/// `COALESCE` and `CONCAT` have their usual special semantics.
pub fn eval_scalar(func: ScalarFunc, args: &[Value]) -> Result<Value> {
    match func {
        ScalarFunc::Coalesce => Ok(args
            .iter()
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(Value::Null)),
        ScalarFunc::Concat => {
            let mut out = String::new();
            for a in args {
                if !a.is_null() {
                    out.push_str(&a.to_string());
                }
            }
            Ok(Value::str(out))
        }
        _ if args.iter().any(Value::is_null) => Ok(Value::Null),
        ScalarFunc::Lower => str_arg(func, args, 0).map(|s| Value::str(s.to_lowercase())),
        ScalarFunc::Upper => str_arg(func, args, 0).map(|s| Value::str(s.to_uppercase())),
        ScalarFunc::Trim => str_arg(func, args, 0).map(|s| Value::str(s.trim())),
        ScalarFunc::Length => {
            str_arg(func, args, 0).map(|s| Value::Int(s.chars().count() as i64))
        }
        ScalarFunc::Abs => match args.first() {
            Some(Value::Int(i)) => Ok(Value::Int(i.wrapping_abs())),
            Some(Value::Float(f)) => Ok(Value::Float(f.abs())),
            _ => Err(arg_error(func, "numeric argument")),
        },
        ScalarFunc::Round => {
            let x = args
                .first()
                .and_then(Value::as_float)
                .ok_or_else(|| arg_error(func, "numeric argument"))?;
            let digits = match args.get(1) {
                None => 0,
                Some(v) => v.as_int().ok_or_else(|| arg_error(func, "integer digits"))? as i32,
            };
            let scale = 10f64.powi(digits);
            Ok(Value::Float((x * scale).round() / scale))
        }
        ScalarFunc::Substr => {
            let s = str_arg(func, args, 0)?;
            let start = args
                .get(1)
                .and_then(Value::as_int)
                .ok_or_else(|| arg_error(func, "integer start"))?;
            let chars: Vec<char> = s.chars().collect();
            // SQL 1-based start; clamp out-of-range.
            let begin = (start.max(1) - 1).min(chars.len() as i64) as usize;
            let end = match args.get(2) {
                None => chars.len(),
                Some(v) => {
                    let len = v.as_int().ok_or_else(|| arg_error(func, "integer length"))?;
                    (begin + len.max(0) as usize).min(chars.len())
                }
            };
            Ok(Value::str(chars[begin..end].iter().collect::<String>()))
        }
    }
}

fn str_arg(func: ScalarFunc, args: &[Value], i: usize) -> Result<&str> {
    args.get(i)
        .and_then(Value::as_str)
        .ok_or_else(|| arg_error(func, "string argument"))
}

fn arg_error(func: ScalarFunc, want: &str) -> EiiError {
    EiiError::Type(format!("{} expects {want}", func.name()))
}

/// SQL LIKE matching: `%` matches any sequence, `_` any single character.
/// Matching is case-sensitive, per the SQL standard.
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[char], p: &[char]) -> bool {
        match p.split_first() {
            None => t.is_empty(),
            Some(('%', rest)) => {
                // Greedy-with-backtracking: try every split point.
                (0..=t.len()).any(|i| rec(&t[i..], rest))
            }
            Some(('_', rest)) => !t.is_empty() && rec(&t[1..], rest),
            Some((c, rest)) => t.first() == Some(c) && rec(&t[1..], rest),
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&t, &p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_basic() {
        assert!(like_match("alice", "alice"));
        assert!(like_match("alice", "a%"));
        assert!(like_match("alice", "%ice"));
        assert!(like_match("alice", "%lic%"));
        assert!(like_match("alice", "_lice"));
        assert!(!like_match("alice", "b%"));
        assert!(!like_match("alice", "alice_"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
    }

    #[test]
    fn like_multiple_wildcards() {
        assert!(like_match("a-b-c", "%-%-%"));
        assert!(like_match("abc", "%%%"));
        assert!(!like_match("ab", "a_c"));
    }

    #[test]
    fn coalesce_picks_first_non_null() {
        let v = eval_scalar(
            ScalarFunc::Coalesce,
            &[Value::Null, Value::Int(2), Value::Int(3)],
        )
        .unwrap();
        assert_eq!(v, Value::Int(2));
        assert_eq!(
            eval_scalar(ScalarFunc::Coalesce, &[Value::Null]).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn strict_functions_propagate_null() {
        assert_eq!(
            eval_scalar(ScalarFunc::Lower, &[Value::Null]).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval_scalar(ScalarFunc::Abs, &[Value::Null]).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn substr_is_one_based_and_clamped() {
        let s = Value::str("hello");
        assert_eq!(
            eval_scalar(ScalarFunc::Substr, &[s.clone(), Value::Int(2), Value::Int(3)]).unwrap(),
            Value::str("ell")
        );
        assert_eq!(
            eval_scalar(ScalarFunc::Substr, &[s.clone(), Value::Int(1)]).unwrap(),
            Value::str("hello")
        );
        assert_eq!(
            eval_scalar(ScalarFunc::Substr, &[s.clone(), Value::Int(99)]).unwrap(),
            Value::str("")
        );
        assert_eq!(
            eval_scalar(ScalarFunc::Substr, &[s, Value::Int(0), Value::Int(2)]).unwrap(),
            Value::str("he")
        );
    }

    #[test]
    fn concat_skips_nulls() {
        let v = eval_scalar(
            ScalarFunc::Concat,
            &[Value::str("a"), Value::Null, Value::Int(1)],
        )
        .unwrap();
        assert_eq!(v, Value::str("a1"));
    }

    #[test]
    fn round_with_digits() {
        assert_eq!(
            eval_scalar(ScalarFunc::Round, &[Value::Float(1.23456), Value::Int(2)]).unwrap(),
            Value::Float(1.23)
        );
        assert_eq!(
            eval_scalar(ScalarFunc::Round, &[Value::Float(2.5)]).unwrap(),
            Value::Float(3.0)
        );
    }

    #[test]
    fn length_counts_chars() {
        assert_eq!(
            eval_scalar(ScalarFunc::Length, &[Value::str("héllo")]).unwrap(),
            Value::Int(5)
        );
    }

    #[test]
    fn type_errors_are_reported() {
        let err = eval_scalar(ScalarFunc::Lower, &[Value::Int(1)]).unwrap_err();
        assert_eq!(err.kind(), "type");
    }
}
