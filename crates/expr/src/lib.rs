//! # eii-expr
//!
//! Scalar expressions for the `eii` platform: the [`Expr`] AST shared by the
//! SQL front end and the planner, SQL three-valued evaluation against rows,
//! type inference, constant folding, and the predicate utilities (conjunction
//! splitting, column-reference analysis) that the federated planner's pushdown
//! rules are built on.

pub mod ast;
pub mod eval;
pub mod fold;
pub mod functions;
pub mod typecheck;
pub mod vector;

pub use ast::{AggFunc, BinaryOp, Expr, ScalarFunc, UnaryOp};
pub use eval::{bind, BoundExpr};
pub use vector::{eval_column, eval_filter};
pub use fold::{conjuncts, conjoin, fold_constants, referenced_columns, ColumnRef};
pub use typecheck::infer_type;
