//! Static type inference for expressions.
//!
//! Used by the planner to compute output schemas for projections and to
//! reject ill-typed queries before execution.

use eii_data::{DataType, EiiError, Result, Schema};

use crate::ast::{BinaryOp, Expr, ScalarFunc, UnaryOp};

/// Infer the result type of `expr` against `schema`. `Ok(None)` means the
/// expression is the untyped NULL literal (which inhabits every type).
pub fn infer_type(expr: &Expr, schema: &Schema) -> Result<Option<DataType>> {
    match expr {
        Expr::Column { relation, name } => {
            let idx = schema.index_of(relation.as_deref(), name)?;
            Ok(Some(schema.field(idx).data_type))
        }
        Expr::Literal(v) => Ok(v.data_type()),
        Expr::Binary { left, op, right } => {
            let lt = infer_type(left, schema)?;
            let rt = infer_type(right, schema)?;
            if op.is_comparison() {
                check_comparable(lt, rt)?;
                return Ok(Some(DataType::Bool));
            }
            if op.is_logical() {
                for t in [lt, rt].into_iter().flatten() {
                    if t != DataType::Bool {
                        return Err(EiiError::Type(format!(
                            "{} expects boolean operands, got {t}",
                            op.sql()
                        )));
                    }
                }
                return Ok(Some(DataType::Bool));
            }
            // Arithmetic (string + string is concat).
            match (lt, rt) {
                (None, other) | (other, None) => Ok(other),
                (Some(DataType::Str), Some(DataType::Str)) if *op == BinaryOp::Plus => {
                    Ok(Some(DataType::Str))
                }
                (Some(a), Some(b)) if a.is_numeric() && b.is_numeric() => {
                    Ok(Some(a.unify(b).expect("numeric types unify")))
                }
                (Some(a), Some(b)) => Err(EiiError::Type(format!(
                    "arithmetic {} on {a} and {b}",
                    op.sql()
                ))),
            }
        }
        Expr::Unary { op, expr } => {
            let t = infer_type(expr, schema)?;
            match op {
                UnaryOp::Not => {
                    if let Some(t) = t {
                        if t != DataType::Bool {
                            return Err(EiiError::Type(format!("NOT applied to {t}")));
                        }
                    }
                    Ok(Some(DataType::Bool))
                }
                UnaryOp::Neg => match t {
                    None => Ok(None),
                    Some(t) if t.is_numeric() => Ok(Some(t)),
                    Some(t) => Err(EiiError::Type(format!("negation applied to {t}"))),
                },
            }
        }
        Expr::IsNull { expr, .. } => {
            infer_type(expr, schema)?;
            Ok(Some(DataType::Bool))
        }
        Expr::Like { expr, pattern, .. } => {
            for e in [expr, pattern] {
                if let Some(t) = infer_type(e, schema)? {
                    if t != DataType::Str {
                        return Err(EiiError::Type(format!("LIKE expects strings, got {t}")));
                    }
                }
            }
            Ok(Some(DataType::Bool))
        }
        Expr::InList { expr, list, .. } => {
            let t = infer_type(expr, schema)?;
            for item in list {
                let it = infer_type(item, schema)?;
                check_comparable(t, it)?;
            }
            Ok(Some(DataType::Bool))
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            let t = infer_type(expr, schema)?;
            check_comparable(t, infer_type(low, schema)?)?;
            check_comparable(t, infer_type(high, schema)?)?;
            Ok(Some(DataType::Bool))
        }
        Expr::Case {
            branches,
            else_expr,
        } => {
            let mut result: Option<DataType> = None;
            for (cond, val) in branches {
                if let Some(t) = infer_type(cond, schema)? {
                    if t != DataType::Bool {
                        return Err(EiiError::Type(format!("CASE condition is {t}, not BOOL")));
                    }
                }
                result = merge_result(result, infer_type(val, schema)?)?;
            }
            if let Some(e) = else_expr {
                result = merge_result(result, infer_type(e, schema)?)?;
            }
            Ok(result)
        }
        Expr::Cast { expr, to } => {
            infer_type(expr, schema)?;
            Ok(Some(*to))
        }
        Expr::Func { func, args } => {
            for a in args {
                infer_type(a, schema)?;
            }
            Ok(Some(match func {
                ScalarFunc::Lower
                | ScalarFunc::Upper
                | ScalarFunc::Trim
                | ScalarFunc::Substr
                | ScalarFunc::Concat => DataType::Str,
                ScalarFunc::Length => DataType::Int,
                ScalarFunc::Round => DataType::Float,
                ScalarFunc::Abs => match infer_type(&args[0], schema)? {
                    Some(DataType::Float) => DataType::Float,
                    _ => DataType::Int,
                },
                ScalarFunc::Coalesce => {
                    let mut t = None;
                    for a in args {
                        t = merge_result(t, infer_type(a, schema)?)?;
                    }
                    return Ok(t);
                }
            }))
        }
    }
}

fn check_comparable(a: Option<DataType>, b: Option<DataType>) -> Result<()> {
    match (a, b) {
        (Some(a), Some(b)) if a.unify(b).is_none() => Err(EiiError::Type(format!(
            "cannot compare {a} with {b}"
        ))),
        _ => Ok(()),
    }
}

fn merge_result(a: Option<DataType>, b: Option<DataType>) -> Result<Option<DataType>> {
    match (a, b) {
        (None, x) | (x, None) => Ok(x),
        (Some(a), Some(b)) => a.unify(b).map(Some).ok_or_else(|| {
            EiiError::Type(format!("incompatible branch types {a} and {b}"))
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eii_data::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("n", DataType::Int),
            Field::new("s", DataType::Str),
            Field::new("f", DataType::Float),
            Field::new("b", DataType::Bool),
        ])
    }

    #[test]
    fn arithmetic_widens() {
        let e = Expr::col("n").binary(BinaryOp::Plus, Expr::col("f"));
        assert_eq!(infer_type(&e, &schema()).unwrap(), Some(DataType::Float));
        let e = Expr::col("n").binary(BinaryOp::Plus, Expr::lit(1i64));
        assert_eq!(infer_type(&e, &schema()).unwrap(), Some(DataType::Int));
    }

    #[test]
    fn comparisons_yield_bool() {
        let e = Expr::col("n").lt(Expr::lit(3i64));
        assert_eq!(infer_type(&e, &schema()).unwrap(), Some(DataType::Bool));
    }

    #[test]
    fn incomparable_types_rejected() {
        let e = Expr::col("n").eq(Expr::col("s"));
        assert_eq!(infer_type(&e, &schema()).unwrap_err().kind(), "type");
    }

    #[test]
    fn logical_on_non_bool_rejected() {
        let e = Expr::col("n").and(Expr::col("b"));
        assert_eq!(infer_type(&e, &schema()).unwrap_err().kind(), "type");
    }

    #[test]
    fn null_literal_is_polymorphic() {
        let e = Expr::col("n").eq(Expr::Literal(eii_data::Value::Null));
        assert_eq!(infer_type(&e, &schema()).unwrap(), Some(DataType::Bool));
        assert_eq!(
            infer_type(&Expr::Literal(eii_data::Value::Null), &schema()).unwrap(),
            None
        );
    }

    #[test]
    fn case_merges_branch_types() {
        let e = Expr::Case {
            branches: vec![(Expr::col("b"), Expr::col("n"))],
            else_expr: Some(Box::new(Expr::col("f"))),
        };
        assert_eq!(infer_type(&e, &schema()).unwrap(), Some(DataType::Float));
        let bad = Expr::Case {
            branches: vec![(Expr::col("b"), Expr::col("n"))],
            else_expr: Some(Box::new(Expr::col("s"))),
        };
        assert_eq!(infer_type(&bad, &schema()).unwrap_err().kind(), "type");
    }

    #[test]
    fn function_types() {
        let e = Expr::Func {
            func: ScalarFunc::Length,
            args: vec![Expr::col("s")],
        };
        assert_eq!(infer_type(&e, &schema()).unwrap(), Some(DataType::Int));
        let e = Expr::Func {
            func: ScalarFunc::Coalesce,
            args: vec![Expr::col("n"), Expr::col("f")],
        };
        assert_eq!(infer_type(&e, &schema()).unwrap(), Some(DataType::Float));
    }
}
