//! Vectorized expression kernels: evaluate a [`BoundExpr`] over a whole
//! [`ColumnarBatch`] at once instead of row-at-a-time.
//!
//! The contract with the scalar path is *exact semantic equivalence*: for any
//! expression and any batch, [`eval_column`] must produce, position by
//! position, the same [`Value`]s (and the same errors) as calling
//! [`BoundExpr::eval`] on each materialized row. The executor's E21 gate and
//! the `vectorized_equals_row_at_a_time` proptest hold this line. Four rules
//! keep it honest:
//!
//! - **NULL propagation and Kleene AND/OR** are re-implemented over columns,
//!   but AND/OR evaluate their right side only on the *sub-selection* of rows
//!   the scalar path would have reached (short-circuiting is observable:
//!   a row the scalar path skips must not be able to raise an error here);
//! - **type-specialized fast paths** (Int/Float/Str comparisons, Int and
//!   Float arithmetic) fall back to the scalar kernels of
//!   [`crate::eval::eval_binary`] element-wise whenever operand columns are
//!   not cleanly typed, so `Mixed` columns cost speed, never correctness;
//! - operators with row-dependent control flow (`CASE`, `IN` with non-literal
//!   list items) materialize rows and delegate to the scalar evaluator;
//! - **error identity**: column-at-a-time order can trip over a different
//!   failing row than the scalar path when distinct rows fail in distinct
//!   subexpressions, so on any kernel error [`eval_column`] re-runs the
//!   expression row-at-a-time and reports the scalar path's first error.

// The kernel loops below walk several parallel structures in lockstep by
// index (output vector, null bitmap, one or more operand columns, and for
// Kleene AND/OR a separate cursor into a sub-selected right-hand side);
// iterator rewrites would obscure that alignment.
#![allow(clippy::needless_range_loop)]

use std::sync::Arc;

use eii_data::columnar::{Column, ColumnData, ColumnarBatch, NullBitmap};
use eii_data::{EiiError, Result, Value};

use crate::ast::{BinaryOp, UnaryOp};
use crate::eval::{eval_and, eval_binary, eval_or, BoundExpr};
use crate::functions::{eval_scalar, like_match};

/// Evaluate `expr` for every live row of `batch`, producing a compact column
/// whose position `k` holds the value for logical row `k`.
pub fn eval_column(expr: &BoundExpr, batch: &ColumnarBatch) -> Result<Arc<Column>> {
    match eval_column_typed(expr, batch) {
        Ok(c) => Ok(c),
        // The kernels evaluate column-at-a-time (all of the left operand,
        // then all of the right), so when different rows fail in different
        // subexpressions the first error they hit can differ from the one
        // the scalar path reports. Re-running row-at-a-time surfaces exactly
        // the scalar path's first error — and, defensively, the scalar
        // result should only the kernel have erred.
        Err(_) => eval_by_rows(expr, batch),
    }
}

/// The typed kernel dispatch behind [`eval_column`]; may surface errors in a
/// different order than the scalar path (the wrapper reconciles that).
fn eval_column_typed(expr: &BoundExpr, batch: &ColumnarBatch) -> Result<Arc<Column>> {
    let n = batch.num_rows();
    match expr {
        BoundExpr::Column(i) => Ok(match batch.selection() {
            None => Arc::clone(batch.column(*i)),
            Some(sel) => Arc::new(batch.column(*i).gather(sel)),
        }),
        BoundExpr::Literal(v) => Ok(Arc::new(Column::broadcast(v, n))),
        BoundExpr::Binary { left, op, right } => match op {
            BinaryOp::And => eval_logical(left, right, batch, true),
            BinaryOp::Or => eval_logical(left, right, batch, false),
            _ => {
                let l = eval_column(left, batch)?;
                let r = eval_column(right, batch)?;
                if op.is_comparison() {
                    Ok(Arc::new(cmp_kernel(&l, *op, &r, n)))
                } else {
                    Ok(Arc::new(arith_kernel(&l, *op, &r, n)?))
                }
            }
        },
        BoundExpr::Unary { op, expr } => {
            let c = eval_column(expr, batch)?;
            let vals = (0..n)
                .map(|i| {
                    let v = c.value(i);
                    match op {
                        UnaryOp::Not => match v {
                            Value::Null => Ok(Value::Null),
                            Value::Bool(b) => Ok(Value::Bool(!b)),
                            other => Err(EiiError::Type(format!("NOT applied to {other}"))),
                        },
                        UnaryOp::Neg => match v {
                            Value::Null => Ok(Value::Null),
                            Value::Int(i) => Ok(Value::Int(i.wrapping_neg())),
                            Value::Float(f) => Ok(Value::Float(-f)),
                            other => {
                                Err(EiiError::Type(format!("negation applied to {other}")))
                            }
                        },
                    }
                })
                .collect::<Result<Vec<_>>>()?;
            Ok(Arc::new(from_values_auto(&vals)))
        }
        BoundExpr::IsNull { expr, negated } => {
            let c = eval_column(expr, batch)?;
            let out: Vec<bool> = (0..n).map(|i| c.is_null(i) != *negated).collect();
            Ok(Arc::new(Column::new(ColumnData::Bool(out), None)))
        }
        BoundExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let c = eval_column(expr, batch)?;
            let p = eval_column(pattern, batch)?;
            let mut out = vec![false; n];
            let mut nulls = NullBitmap::new_valid(n);
            let mut any_null = false;
            for i in 0..n {
                if c.is_null(i) || p.is_null(i) {
                    nulls.set_null(i);
                    any_null = true;
                    continue;
                }
                let (v, pv) = (c.value(i), p.value(i));
                let (Some(text), Some(pat)) = (v.as_str(), pv.as_str()) else {
                    return Err(EiiError::Type("LIKE expects string operands".into()));
                };
                out[i] = like_match(text, pat) != *negated;
            }
            Ok(Arc::new(Column::new(
                ColumnData::Bool(out),
                any_null.then_some(nulls),
            )))
        }
        BoundExpr::InList {
            expr: inner,
            list,
            negated,
        } => {
            // Scalar IN short-circuits across list items per row; with
            // non-literal items a skipped item could otherwise error here.
            if !list.iter().all(|e| matches!(e, BoundExpr::Literal(_))) {
                return eval_by_rows(expr, batch);
            }
            let c = eval_column(inner, batch)?;
            let items: Vec<Value> = list
                .iter()
                .map(|e| match e {
                    BoundExpr::Literal(v) => v.clone(),
                    _ => unreachable!("checked above"),
                })
                .collect();
            let saw_null = items.iter().any(Value::is_null);
            let mut out = vec![false; n];
            let mut nulls = NullBitmap::new_valid(n);
            let mut any_null = false;
            for i in 0..n {
                if c.is_null(i) {
                    nulls.set_null(i);
                    any_null = true;
                    continue;
                }
                let v = c.value(i);
                if items.iter().any(|item| !item.is_null() && *item == v) {
                    out[i] = !*negated;
                } else if saw_null {
                    nulls.set_null(i);
                    any_null = true;
                } else {
                    out[i] = *negated;
                }
            }
            Ok(Arc::new(Column::new(
                ColumnData::Bool(out),
                any_null.then_some(nulls),
            )))
        }
        BoundExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let c = eval_column(expr, batch)?;
            let lo = eval_column(low, batch)?;
            let hi = eval_column(high, batch)?;
            let mut out = vec![false; n];
            let mut nulls = NullBitmap::new_valid(n);
            let mut any_null = false;
            for i in 0..n {
                if c.is_null(i) || lo.is_null(i) || hi.is_null(i) {
                    nulls.set_null(i);
                    any_null = true;
                    continue;
                }
                let (v, l, h) = (c.value(i), lo.value(i), hi.value(i));
                out[i] = (l <= v && v <= h) != *negated;
            }
            Ok(Arc::new(Column::new(
                ColumnData::Bool(out),
                any_null.then_some(nulls),
            )))
        }
        // CASE has per-row control flow (later branches must not be
        // evaluated once one matches); delegate to the scalar evaluator.
        BoundExpr::Case { .. } => eval_by_rows(expr, batch),
        BoundExpr::Cast { expr, to } => {
            let c = eval_column(expr, batch)?;
            let vals = (0..n)
                .map(|i| {
                    let v = c.value(i);
                    v.cast(*to)
                        .ok_or_else(|| EiiError::Type(format!("cannot cast {v} to {to}")))
                })
                .collect::<Result<Vec<_>>>()?;
            Ok(Arc::new(from_values_auto(&vals)))
        }
        BoundExpr::Func { func, args } => {
            let cols = args
                .iter()
                .map(|a| eval_column(a, batch))
                .collect::<Result<Vec<_>>>()?;
            let mut scratch = Vec::with_capacity(cols.len());
            let vals = (0..n)
                .map(|i| {
                    scratch.clear();
                    scratch.extend(cols.iter().map(|c| c.value(i)));
                    eval_scalar(*func, &scratch)
                })
                .collect::<Result<Vec<_>>>()?;
            Ok(Arc::new(from_values_auto(&vals)))
        }
    }
}

/// Evaluate a predicate over the batch, returning the logical indices of rows
/// where it is `Bool(true)` (NULL and false both reject, per SQL WHERE).
pub fn eval_filter(pred: &BoundExpr, batch: &ColumnarBatch) -> Result<Vec<u32>> {
    let c = eval_column(pred, batch)?;
    let n = batch.num_rows();
    let mut keep = Vec::new();
    match c.data() {
        ColumnData::Bool(v) => match c.nulls() {
            None => {
                for (i, &b) in v.iter().enumerate().take(n) {
                    if b {
                        keep.push(i as u32);
                    }
                }
            }
            Some(nulls) => {
                for (i, &b) in v.iter().enumerate().take(n) {
                    if b && !nulls.is_null(i) {
                        keep.push(i as u32);
                    }
                }
            }
        },
        _ => {
            for i in 0..n {
                if c.value(i).is_true() {
                    keep.push(i as u32);
                }
            }
        }
    }
    Ok(keep)
}

/// Row-materializing fallback: semantically the scalar path by construction.
fn eval_by_rows(expr: &BoundExpr, batch: &ColumnarBatch) -> Result<Arc<Column>> {
    let vals = (0..batch.num_rows())
        .map(|i| expr.eval(&batch.row(i)))
        .collect::<Result<Vec<_>>>()?;
    Ok(Arc::new(from_values_auto(&vals)))
}

/// Kleene AND/OR with observable short-circuiting: the right side is
/// evaluated only over the sub-selection of rows whose left value does not
/// already decide the result, mirroring the scalar path's lazy `eval`.
fn eval_logical(
    left: &BoundExpr,
    right: &BoundExpr,
    batch: &ColumnarBatch,
    is_and: bool,
) -> Result<Arc<Column>> {
    let n = batch.num_rows();
    let l = eval_column(left, batch)?;
    let decided = |i: usize| -> bool {
        !l.is_null(i)
            && match l.value(i) {
                Value::Bool(b) => b != is_and,
                _ => false,
            }
    };
    let need: Vec<u32> = (0..n as u32).filter(|&i| !decided(i as usize)).collect();
    let r = if need.is_empty() {
        None
    } else if need.len() == n {
        Some(eval_column(right, batch)?)
    } else {
        Some(eval_column(right, &batch.select(need.clone()))?)
    };
    let mut out = vec![false; n];
    let mut nulls = NullBitmap::new_valid(n);
    let mut any_null = false;
    let mut k = 0usize;
    for i in 0..n {
        if decided(i) {
            out[i] = !is_and;
            continue;
        }
        let rv = r.as_ref().expect("undecided row implies rhs").value(k);
        k += 1;
        let lv = l.value(i);
        let merged = if is_and {
            eval_and(&lv, &rv)?
        } else {
            eval_or(&lv, &rv)?
        };
        match merged {
            Value::Bool(b) => out[i] = b,
            Value::Null => {
                nulls.set_null(i);
                any_null = true;
            }
            other => unreachable!("AND/OR produced {other}"),
        }
    }
    Ok(Arc::new(Column::new(
        ColumnData::Bool(out),
        any_null.then_some(nulls),
    )))
}

fn cmp_ord(ord: std::cmp::Ordering, op: BinaryOp) -> bool {
    match op {
        BinaryOp::Eq => ord.is_eq(),
        BinaryOp::NotEq => !ord.is_eq(),
        BinaryOp::Lt => ord.is_lt(),
        BinaryOp::LtEq => ord.is_le(),
        BinaryOp::Gt => ord.is_gt(),
        BinaryOp::GtEq => ord.is_ge(),
        _ => unreachable!("comparison op"),
    }
}

/// Comparison kernel: NULL on either side propagates, otherwise total-order
/// compare. Typed fast paths mirror `Value::cmp` exactly (Int/Float
/// cross-compare through `total_cmp`).
fn cmp_kernel(l: &Column, op: BinaryOp, r: &Column, n: usize) -> Column {
    let mut out = vec![false; n];
    let mut nulls = NullBitmap::new_valid(n);
    let mut any_null = false;
    macro_rules! typed {
        ($a:expr, $b:expr, $cmp:expr) => {{
            for i in 0..n {
                if l.is_null(i) || r.is_null(i) {
                    nulls.set_null(i);
                    any_null = true;
                } else {
                    #[allow(clippy::redundant_closure_call)]
                    {
                        out[i] = cmp_ord($cmp(&$a[i], &$b[i]), op);
                    }
                }
            }
        }};
    }
    match (l.data(), r.data()) {
        (ColumnData::Int(a), ColumnData::Int(b)) => typed!(a, b, |x: &i64, y: &i64| x.cmp(y)),
        (ColumnData::Float(a), ColumnData::Float(b)) => {
            typed!(a, b, |x: &f64, y: &f64| x.total_cmp(y))
        }
        (ColumnData::Int(a), ColumnData::Float(b)) => {
            typed!(a, b, |x: &i64, y: &f64| (*x as f64).total_cmp(y))
        }
        (ColumnData::Float(a), ColumnData::Int(b)) => {
            typed!(a, b, |x: &f64, y: &i64| x.total_cmp(&(*y as f64)))
        }
        (ColumnData::Str(a), ColumnData::Str(b)) => {
            typed!(a, b, |x: &Arc<str>, y: &Arc<str>| x.cmp(y))
        }
        (ColumnData::Timestamp(a), ColumnData::Timestamp(b)) => {
            typed!(a, b, |x: &i64, y: &i64| x.cmp(y))
        }
        _ => {
            for i in 0..n {
                if l.is_null(i) || r.is_null(i) {
                    nulls.set_null(i);
                    any_null = true;
                } else {
                    out[i] = cmp_ord(l.value(i).cmp(&r.value(i)), op);
                }
            }
        }
    }
    Column::new(ColumnData::Bool(out), any_null.then_some(nulls))
}

/// Arithmetic kernel with the scalar path's widening rules: Int op Int stays
/// Int (wrapping, zero-divide errors), any Float widens to f64, Str + Str
/// concatenates; everything else defers to `eval_binary` element-wise.
fn arith_kernel(l: &Column, op: BinaryOp, r: &Column, n: usize) -> Result<Column> {
    match (l.data(), r.data()) {
        (ColumnData::Int(a), ColumnData::Int(b)) => {
            let mut out = vec![0i64; n];
            let mut nulls = NullBitmap::new_valid(n);
            let mut any_null = false;
            for i in 0..n {
                if l.is_null(i) || r.is_null(i) {
                    nulls.set_null(i);
                    any_null = true;
                    continue;
                }
                let (x, y) = (a[i], b[i]);
                out[i] = match op {
                    BinaryOp::Plus => x.wrapping_add(y),
                    BinaryOp::Minus => x.wrapping_sub(y),
                    BinaryOp::Multiply => x.wrapping_mul(y),
                    BinaryOp::Divide | BinaryOp::Modulo => {
                        if y == 0 {
                            return Err(EiiError::Execution("division by zero".into()));
                        }
                        if matches!(op, BinaryOp::Divide) {
                            x.wrapping_div(y)
                        } else {
                            x.wrapping_rem(y)
                        }
                    }
                    _ => unreachable!("arithmetic op"),
                };
            }
            Ok(Column::new(
                ColumnData::Int(out),
                any_null.then_some(nulls),
            ))
        }
        (ColumnData::Int(_) | ColumnData::Float(_), ColumnData::Int(_) | ColumnData::Float(_)) => {
            let at = |c: &Column, i: usize| -> f64 {
                match c.data() {
                    ColumnData::Int(v) => v[i] as f64,
                    ColumnData::Float(v) => v[i],
                    _ => unreachable!("numeric checked"),
                }
            };
            let mut out = vec![0f64; n];
            let mut nulls = NullBitmap::new_valid(n);
            let mut any_null = false;
            for i in 0..n {
                if l.is_null(i) || r.is_null(i) {
                    nulls.set_null(i);
                    any_null = true;
                    continue;
                }
                let (x, y) = (at(l, i), at(r, i));
                out[i] = match op {
                    BinaryOp::Plus => x + y,
                    BinaryOp::Minus => x - y,
                    BinaryOp::Multiply => x * y,
                    BinaryOp::Divide | BinaryOp::Modulo => {
                        if y == 0.0 {
                            return Err(EiiError::Execution("division by zero".into()));
                        }
                        if matches!(op, BinaryOp::Divide) {
                            x / y
                        } else {
                            x % y
                        }
                    }
                    _ => unreachable!("arithmetic op"),
                };
            }
            Ok(Column::new(
                ColumnData::Float(out),
                any_null.then_some(nulls),
            ))
        }
        _ => {
            let vals = (0..n)
                .map(|i| {
                    let (lv, rv) = (l.value(i), r.value(i));
                    if lv.is_null() || rv.is_null() {
                        return Ok(Value::Null);
                    }
                    eval_binary(&lv, op, &rv)
                })
                .collect::<Result<Vec<_>>>()?;
            Ok(from_values_auto(&vals))
        }
    }
}

/// Build a column from computed values, picking a typed layout when the
/// non-null values share one variant (Mixed otherwise).
fn from_values_auto(values: &[Value]) -> Column {
    let mut ty = None;
    for v in values {
        if let Some(t) = v.data_type() {
            match ty {
                None => ty = Some(t),
                Some(prev) if prev == t => {}
                Some(_) => {
                    return Column::new(ColumnData::Mixed(values.to_vec()), None);
                }
            }
        }
    }
    match ty {
        Some(t) => Column::from_values(values, t),
        // All NULL (or empty): an Int vector under an all-null bitmap.
        None => Column::broadcast(&Value::Null, values.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr;
    use crate::eval::bind;
    use eii_data::{row, Batch, DataType, Field, Row, Schema};
    use proptest::prelude::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Str),
            Field::new("c", DataType::Float),
        ])
    }

    fn batch(rows: Vec<Row>) -> ColumnarBatch {
        ColumnarBatch::from_batch(&Batch::new(Arc::new(schema()), rows))
    }

    /// Assert vectorized == scalar, value by value (or both error).
    fn check(e: &Expr, rows: Vec<Row>) {
        let bound = bind(e, &schema()).unwrap();
        let cb = batch(rows.clone());
        let vec_result = eval_column(&bound, &cb);
        let row_results: Vec<Result<Value>> = rows.iter().map(|r| bound.eval(r)).collect();
        match vec_result {
            Ok(col) => {
                for (i, rr) in row_results.iter().enumerate() {
                    assert_eq!(col.value(i), *rr.as_ref().unwrap(), "row {i} for {e:?}");
                }
            }
            Err(ve) => {
                let re = row_results
                    .into_iter()
                    .find_map(Result::err)
                    .expect("scalar path should also error");
                assert_eq!(ve.kind(), re.kind());
            }
        }
    }

    fn sample_rows() -> Vec<Row> {
        vec![
            row![10i64, "alpha", 1.5f64],
            Row::new(vec![Value::Null, Value::str("beta"), Value::Float(2.0)]),
            row![-3i64, "gamma", -0.5f64],
            Row::new(vec![Value::Int(7), Value::Null, Value::Null]),
        ]
    }

    #[test]
    fn comparisons_match_scalar_path() {
        for op in [
            BinaryOp::Eq,
            BinaryOp::NotEq,
            BinaryOp::Lt,
            BinaryOp::LtEq,
            BinaryOp::Gt,
            BinaryOp::GtEq,
        ] {
            check(
                &Expr::col("a").binary(op, Expr::lit(5i64)),
                sample_rows(),
            );
            check(
                &Expr::col("a").binary(op, Expr::col("c")),
                sample_rows(),
            );
            check(
                &Expr::col("b").binary(op, Expr::lit("beta")),
                sample_rows(),
            );
        }
    }

    #[test]
    fn arithmetic_matches_scalar_path() {
        for op in [
            BinaryOp::Plus,
            BinaryOp::Minus,
            BinaryOp::Multiply,
            BinaryOp::Divide,
            BinaryOp::Modulo,
        ] {
            check(&Expr::col("a").binary(op, Expr::lit(3i64)), sample_rows());
            check(&Expr::col("c").binary(op, Expr::col("a")), sample_rows());
        }
    }

    #[test]
    fn error_surfaces_scalar_paths_first_failing_row() {
        // Left operand errors on row 1, right operand on row 0. Column-at-a-
        // time evaluation hits the left error first; the surfaced error must
        // nonetheless be the scalar path's (row 0's right-operand failure).
        let rows = vec![
            Row::new(vec![Value::Int(1), Value::str("s"), Value::Float(1.0)]),
            Row::new(vec![Value::str("x"), Value::str("t"), Value::Float(2.0)]),
        ];
        let e = Expr::col("a").binary(BinaryOp::Plus, Expr::lit(1i64)).binary(
            BinaryOp::Plus,
            Expr::col("b").binary(BinaryOp::Plus, Expr::lit(1i64)),
        );
        let bound = bind(&e, &schema()).unwrap();
        let ve = eval_column(&bound, &batch(rows.clone())).unwrap_err();
        let re = rows
            .iter()
            .map(|r| bound.eval(r))
            .find_map(Result::err)
            .expect("scalar path errors");
        assert_eq!(ve.to_string(), re.to_string());
    }

    #[test]
    fn kleene_logic_matches_and_short_circuits() {
        let e = Expr::col("a")
            .gt(Expr::lit(0i64))
            .and(Expr::col("c").lt(Expr::lit(1.0f64)));
        check(&e, sample_rows());
        let e = Expr::col("a")
            .lt(Expr::lit(0i64))
            .or(Expr::col("b").eq(Expr::lit("beta")));
        check(&e, sample_rows());
        // Short-circuit shields the rhs: a != 0 AND 10/a > 1 must not
        // divide by zero on the a = 0 row.
        let rows = vec![row![0i64, "x", 1.0f64], row![5i64, "y", 1.0f64]];
        let e = Expr::col("a").binary(BinaryOp::NotEq, Expr::lit(0i64)).and(
            Expr::lit(10i64)
                .binary(BinaryOp::Divide, Expr::col("a"))
                .gt(Expr::lit(1i64)),
        );
        check(&e, rows.clone());
        let bound = bind(&e, &schema()).unwrap();
        let col = eval_column(&bound, &batch(rows)).unwrap();
        assert_eq!(col.value(0), Value::Bool(false));
        assert_eq!(col.value(1), Value::Bool(true));
    }

    #[test]
    fn misc_operators_match_scalar_path() {
        let rows = sample_rows();
        check(
            &Expr::IsNull {
                expr: Box::new(Expr::col("a")),
                negated: false,
            },
            rows.clone(),
        );
        check(
            &Expr::IsNull {
                expr: Box::new(Expr::col("b")),
                negated: true,
            },
            rows.clone(),
        );
        check(
            &Expr::Like {
                expr: Box::new(Expr::col("b")),
                pattern: Box::new(Expr::lit("%a%")),
                negated: false,
            },
            rows.clone(),
        );
        check(
            &Expr::InList {
                expr: Box::new(Expr::col("a")),
                list: vec![Expr::lit(7i64), Expr::Literal(Value::Null)],
                negated: false,
            },
            rows.clone(),
        );
        check(
            &Expr::Between {
                expr: Box::new(Expr::col("a")),
                low: Box::new(Expr::lit(0i64)),
                high: Box::new(Expr::lit(8i64)),
                negated: true,
            },
            rows.clone(),
        );
        check(
            &Expr::Case {
                branches: vec![(Expr::col("a").gt(Expr::lit(0i64)), Expr::lit("pos"))],
                else_expr: Some(Box::new(Expr::lit("neg"))),
            },
            rows.clone(),
        );
        check(
            &Expr::Cast {
                expr: Box::new(Expr::col("a")),
                to: DataType::Str,
            },
            rows.clone(),
        );
        check(
            &Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(Expr::col("a")),
            },
            rows.clone(),
        );
        check(&Expr::col("a").gt(Expr::lit(0i64)).not(), rows);
    }

    #[test]
    fn filter_selection_matches_predicate() {
        let rows = sample_rows();
        let e = Expr::col("a").gt(Expr::lit(0i64));
        let bound = bind(&e, &schema()).unwrap();
        let keep = eval_filter(&bound, &batch(rows.clone())).unwrap();
        let expect: Vec<u32> = rows
            .iter()
            .enumerate()
            .filter(|(_, r)| bound.eval_predicate(r).unwrap())
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(keep, expect);
    }

    proptest! {
        #[test]
        fn vectorized_agrees_on_random_int_exprs(
            vals in proptest::collection::vec(-100i64..100, 1..40),
            lit in -100i64..100,
        ) {
            // Every fifth value stands in for NULL to exercise the bitmaps.
            let rows: Vec<Row> = vals
                .iter()
                .map(|&v| Row::new(vec![
                    if v % 5 == 0 { Value::Null } else { Value::Int(v) },
                    Value::str("s"),
                    Value::Float(0.25),
                ]))
                .collect();
            let e = Expr::col("a")
                .gt(Expr::lit(lit))
                .and(Expr::col("a").binary(BinaryOp::Plus, Expr::lit(1i64))
                    .lt(Expr::lit(50i64)));
            check(&e, rows);
        }
    }
}
