//! Adapter for delimited-file sources ("delimited files" in Carey's list of
//! Liquid Data source types).
//!
//! A flat file has no query engine: nothing can be pushed down, every row
//! ships to the assembly site, and updates are impossible. This is the
//! source type that makes pushdown-aware planning visibly matter in the
//! experiments.

use std::collections::BTreeMap;
use std::sync::Arc;

use eii_data::{DataType, EiiError, Field, Result, Row, Schema, SchemaRef, Value};
use eii_storage::TableStats;

use crate::adapters::reject_unsupported;
use crate::capability::SourceCapabilities;
use crate::connector::{Connector, SourceAnswer, SourceQuery};
use crate::dialect::Dialect;

/// One parsed delimited file exposed as a table.
#[derive(Debug, Clone)]
struct CsvTable {
    schema: SchemaRef,
    rows: Vec<Row>,
}

/// A wrapped directory of delimited files.
#[derive(Debug)]
pub struct CsvConnector {
    name: String,
    tables: BTreeMap<String, CsvTable>,
}

impl CsvConnector {
    /// Empty source.
    pub fn new(name: impl Into<String>) -> Self {
        CsvConnector {
            name: name.into(),
            tables: BTreeMap::new(),
        }
    }

    /// Register a file's content under `table`. `text` is delimiter-
    /// separated with a header line; column types are declared by the
    /// caller (flat files carry no type metadata).
    pub fn add_file(
        mut self,
        table: impl Into<String>,
        text: &str,
        delimiter: char,
        types: &[DataType],
    ) -> Result<Self> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines
            .next()
            .ok_or_else(|| EiiError::Source("empty delimited file".into()))?;
        let names: Vec<&str> = header.split(delimiter).map(str::trim).collect();
        if names.len() != types.len() {
            return Err(EiiError::Source(format!(
                "header has {} columns but {} types were declared",
                names.len(),
                types.len()
            )));
        }
        let schema = Arc::new(Schema::new(
            names
                .iter()
                .zip(types)
                .map(|(n, ty)| Field::new(*n, *ty))
                .collect(),
        ));
        let mut rows = Vec::new();
        for (lineno, line) in lines.enumerate() {
            let cells: Vec<&str> = line.split(delimiter).map(str::trim).collect();
            if cells.len() != names.len() {
                return Err(EiiError::Source(format!(
                    "line {}: expected {} cells, found {}",
                    lineno + 2,
                    names.len(),
                    cells.len()
                )));
            }
            let row: Row = cells
                .iter()
                .zip(types)
                .map(|(cell, ty)| {
                    if cell.is_empty() {
                        Value::Null
                    } else {
                        Value::str(*cell).cast(*ty).unwrap_or(Value::Null)
                    }
                })
                .collect();
            rows.push(row);
        }
        let table = table.into();
        self.tables.insert(table, CsvTable { schema, rows });
        Ok(self)
    }

    fn table(&self, name: &str) -> Result<&CsvTable> {
        self.tables.get(name).ok_or_else(|| {
            EiiError::NotFound(format!("file table {name} in source {}", self.name))
        })
    }
}

impl Connector for CsvConnector {
    fn name(&self) -> &str {
        &self.name
    }

    fn tables(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    fn table_schema(&self, table: &str) -> Result<SchemaRef> {
        Ok(self.table(table)?.schema.clone())
    }

    fn capabilities(&self) -> SourceCapabilities {
        SourceCapabilities::flat_file()
    }

    fn dialect(&self) -> Dialect {
        // Nothing is pushable; an empty dialect would also do, but LCD keeps
        // the planner's invariant "dialect ⊆ capabilities" simple.
        Dialect::lowest_common_denominator()
    }

    fn statistics(&self, table: &str) -> Result<TableStats> {
        let t = self.table(table)?;
        Ok(TableStats::analyze(t.schema.len(), t.rows.iter()))
    }

    fn execute(&self, query: &SourceQuery) -> Result<SourceAnswer> {
        reject_unsupported(&self.name, &query.filters, &query.bindings)?;
        if query.projection.is_some() || query.limit.is_some() {
            return Err(EiiError::Source(format!(
                "source {} ships whole files; projection/limit must run at the assembly site",
                self.name
            )));
        }
        let t = self.table(&query.table)?;
        let batch = eii_data::Batch::new(t.schema.clone(), t.rows.clone());
        let n = batch.num_rows();
        Ok(SourceAnswer::one_shot(batch, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FILE: &str = "id,name,amount\n1,alice,10.5\n2,bob,\n3,carol,7.25\n";

    fn setup() -> CsvConnector {
        CsvConnector::new("legacy_export")
            .add_file(
                "payments",
                FILE,
                ',',
                &[DataType::Int, DataType::Str, DataType::Float],
            )
            .unwrap()
    }

    #[test]
    fn parses_with_types_and_nulls() {
        let c = setup();
        let ans = c.execute(&SourceQuery::full_table("payments")).unwrap();
        assert_eq!(ans.batch.num_rows(), 3);
        assert_eq!(ans.batch.rows()[1].get(2), &Value::Null);
        assert_eq!(ans.batch.rows()[2].get(2), &Value::Float(7.25));
    }

    #[test]
    fn rejects_pushdown_attempts() {
        let c = setup();
        let q = SourceQuery {
            table: "payments".into(),
            projection: Some(vec!["id".into()]),
            ..SourceQuery::default()
        };
        assert_eq!(c.execute(&q).unwrap_err().kind(), "source");
        let q = SourceQuery {
            table: "payments".into(),
            filters: vec![eii_expr::Expr::col("id").eq(eii_expr::Expr::lit(1i64))],
            ..SourceQuery::default()
        };
        assert_eq!(c.execute(&q).unwrap_err().kind(), "source");
    }

    #[test]
    fn malformed_files_error() {
        let bad = "id,name\n1\n";
        let err = CsvConnector::new("x")
            .add_file("t", bad, ',', &[DataType::Int, DataType::Str])
            .unwrap_err();
        assert_eq!(err.kind(), "source");
        let err = CsvConnector::new("x")
            .add_file("t", "id,name\n", ',', &[DataType::Int])
            .unwrap_err();
        assert_eq!(err.kind(), "source");
    }

    #[test]
    fn unknown_table_not_found() {
        let c = setup();
        assert_eq!(
            c.execute(&SourceQuery::full_table("ghost"))
                .unwrap_err()
                .kind(),
            "not_found"
        );
    }

    #[test]
    fn statistics_from_parsed_rows() {
        let c = setup();
        let s = c.statistics("payments").unwrap();
        assert_eq!(s.row_count, 3);
        assert_eq!(s.columns[2].null_count, 1);
    }
}
