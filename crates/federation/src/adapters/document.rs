//! Adapter exposing a schema-less [`DocStore`] as relational virtual tables.
//!
//! The *wrapper* holds the schema (a set of path-extraction rules per
//! virtual table); the store itself stays schema-less. Filtering and
//! projection run wrapper-side, which still counts as source-site work for
//! the network — the wrapper is co-located with the store.

use std::collections::BTreeMap;
use std::sync::Arc;

use eii_data::{DataType, EiiError, Result, Schema, SchemaRef};
use eii_docstore::DocStore;
use eii_storage::TableStats;

use crate::adapters::apply_query_locally;
use crate::capability::SourceCapabilities;
use crate::connector::{Connector, SourceAnswer, SourceQuery};
use crate::dialect::Dialect;

/// A virtual table: a name plus the path rules that impose its schema on
/// the documents at read time.
#[derive(Debug, Clone)]
pub struct VirtualTable {
    pub name: String,
    /// `(column name, extraction path, type)` triples.
    pub columns: Vec<(String, String, DataType)>,
}

/// A wrapped document store.
pub struct DocumentConnector {
    name: String,
    store: DocStore,
    tables: BTreeMap<String, VirtualTable>,
}

impl DocumentConnector {
    /// Wrap a store under a source name.
    pub fn new(name: impl Into<String>, store: DocStore) -> Self {
        DocumentConnector {
            name: name.into(),
            store,
            tables: BTreeMap::new(),
        }
    }

    /// Define a virtual table (client-side schema imposition).
    pub fn define_table(mut self, vt: VirtualTable) -> Self {
        self.tables.insert(vt.name.clone(), vt);
        self
    }

    /// Access the underlying store (for the search substrate).
    pub fn store(&self) -> &DocStore {
        &self.store
    }

    fn table(&self, name: &str) -> Result<&VirtualTable> {
        self.tables.get(name).ok_or_else(|| {
            EiiError::NotFound(format!("virtual table {name} in source {}", self.name))
        })
    }
}

impl Connector for DocumentConnector {
    fn name(&self) -> &str {
        &self.name
    }

    fn tables(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    fn table_schema(&self, table: &str) -> Result<SchemaRef> {
        let vt = self.table(table)?;
        Ok(Arc::new(Schema::new(
            vt.columns
                .iter()
                .map(|(n, _, ty)| eii_data::Field::new(n.clone(), *ty))
                .collect(),
        )))
    }

    fn capabilities(&self) -> SourceCapabilities {
        SourceCapabilities::document()
    }

    fn dialect(&self) -> Dialect {
        // The wrapper evaluates predicates itself (it is our code, not a
        // remote engine), so the full dialect applies.
        Dialect::ansi_full()
    }

    fn statistics(&self, table: &str) -> Result<TableStats> {
        let vt = self.table(table)?;
        let cols: Vec<(&str, &str, DataType)> = vt
            .columns
            .iter()
            .map(|(n, p, ty)| (n.as_str(), p.as_str(), *ty))
            .collect();
        let batch = self.store.extract(&cols)?;
        Ok(TableStats::analyze(
            batch.schema().len(),
            batch.rows().iter(),
        ))
    }

    fn execute(&self, query: &SourceQuery) -> Result<SourceAnswer> {
        let vt = self.table(&query.table)?;
        let cols: Vec<(&str, &str, DataType)> = vt
            .columns
            .iter()
            .map(|(n, p, ty)| (n.as_str(), p.as_str(), *ty))
            .collect();
        let extracted = self.store.extract(&cols)?;
        let schema = extracted.schema().clone();
        let scanned = extracted.num_rows();
        let batch = apply_query_locally(
            &schema,
            extracted.into_rows(),
            &query.filters,
            &query.bindings,
            query.projection.as_deref(),
            query.limit,
        )?;
        Ok(SourceAnswer::one_shot(batch, scanned))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eii_data::Value;
    use eii_docstore::Document;
    use eii_expr::Expr;

    fn setup() -> DocumentConnector {
        let store = DocStore::new();
        store.insert(Document::from_records(
            "tickets week 1",
            &[
                vec![
                    ("ticket_id", "100".into()),
                    ("customer", "alice".into()),
                    ("severity", "3".into()),
                ],
                vec![
                    ("ticket_id", "101".into()),
                    ("customer", "bob".into()),
                    ("severity", "1".into()),
                ],
            ],
        ));
        DocumentConnector::new("support", store).define_table(VirtualTable {
            name: "tickets".into(),
            columns: vec![
                ("ticket_id".into(), "//row/ticket_id".into(), DataType::Int),
                ("customer".into(), "//row/customer".into(), DataType::Str),
                ("severity".into(), "//row/severity".into(), DataType::Int),
            ],
        })
    }

    #[test]
    fn virtual_table_schema() {
        let c = setup();
        let s = c.table_schema("tickets").unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.field(0).data_type, DataType::Int);
        assert_eq!(c.tables(), vec!["tickets"]);
        assert_eq!(c.table_schema("nope").unwrap_err().kind(), "not_found");
    }

    #[test]
    fn filters_apply_after_extraction() {
        let c = setup();
        let q = SourceQuery {
            table: "tickets".into(),
            projection: Some(vec!["customer".into()]),
            filters: vec![Expr::col("severity").lt(Expr::lit(2i64))],
            bindings: vec![],
            limit: None,
        };
        let ans = c.execute(&q).unwrap();
        assert_eq!(ans.batch.num_rows(), 1);
        assert_eq!(ans.batch.rows()[0].get(0), &Value::str("bob"));
        assert_eq!(ans.rows_scanned, 2);
    }

    #[test]
    fn statistics_computed_on_extraction() {
        let c = setup();
        let s = c.statistics("tickets").unwrap();
        assert_eq!(s.row_count, 2);
        assert_eq!(s.columns[1].ndv, 2);
    }

    #[test]
    fn updates_are_rejected() {
        let c = setup();
        let err = c
            .update(&crate::connector::UpdateOp::DeleteByKey {
                table: "tickets".into(),
                key: Value::Int(100),
            })
            .unwrap_err();
        assert_eq!(err.kind(), "source");
    }
}
