//! Concrete source adapters.

pub mod csv;
pub mod document;
pub mod relational;
pub mod webservice;

use eii_data::{Batch, EiiError, Result, Row, SchemaRef, Value};
use eii_expr::{bind, Expr};

/// Shared helper: apply a component query's filters, bindings, projection,
/// and limit to rows already materialized at the wrapper. Used by adapters
/// whose underlying store cannot evaluate these itself.
pub(crate) fn apply_query_locally(
    schema: &SchemaRef,
    rows: Vec<Row>,
    filters: &[Expr],
    bindings: &[(String, Vec<Value>)],
    projection: Option<&[String]>,
    limit: Option<usize>,
) -> Result<Batch> {
    let bound_filters = filters
        .iter()
        .map(|f| bind(f, schema))
        .collect::<Result<Vec<_>>>()?;
    let binding_cols = bindings
        .iter()
        .map(|(col, vals)| Ok((schema.index_of(None, col)?, vals)))
        .collect::<Result<Vec<_>>>()?;
    let mut out = Vec::new();
    for row in rows {
        let mut keep = true;
        for (col, vals) in &binding_cols {
            if !vals.contains(row.get(*col)) {
                keep = false;
                break;
            }
        }
        if keep {
            for f in &bound_filters {
                if !f.eval_predicate(&row)? {
                    keep = false;
                    break;
                }
            }
        }
        if keep {
            out.push(row);
            if limit.is_some_and(|n| out.len() >= n) {
                break;
            }
        }
    }
    project_batch(schema, out, projection)
}

/// Project rows to the named columns (or all when `None`).
pub(crate) fn project_batch(
    schema: &SchemaRef,
    rows: Vec<Row>,
    projection: Option<&[String]>,
) -> Result<Batch> {
    match projection {
        None => Ok(Batch::new(schema.clone(), rows)),
        Some(cols) => {
            let indices = cols
                .iter()
                .map(|c| schema.index_of(None, c))
                .collect::<Result<Vec<_>>>()?;
            let out_schema = std::sync::Arc::new(eii_data::Schema::new(
                indices.iter().map(|&i| schema.field(i).clone()).collect(),
            ));
            let projected = rows.into_iter().map(|r| r.project(&indices)).collect();
            Ok(Batch::new(out_schema, projected))
        }
    }
}

/// Defensive check used by adapters that cannot evaluate filters/bindings.
pub(crate) fn reject_unsupported(
    source: &str,
    filters: &[Expr],
    bindings: &[(String, Vec<Value>)],
) -> Result<()> {
    if !filters.is_empty() || !bindings.is_empty() {
        return Err(EiiError::Source(format!(
            "source {source} cannot evaluate filters or bindings; plan must assemble locally"
        )));
    }
    Ok(())
}
