//! Adapter for relational sources backed by [`eii_storage::Database`].
//!
//! This is the workhorse wrapper: it pushes the dialect-supported subset of
//! filters into the source engine (index-assisted where possible), honors
//! projections, limits and bind-join batches, and routes EAI updates.

use eii_data::{EiiError, Result, SchemaRef, Value};
use eii_expr::bind;
use eii_storage::{Database, TableStats};

use crate::adapters::apply_query_locally;
use crate::capability::SourceCapabilities;
use crate::connector::{Connector, SourceAnswer, SourceQuery, UpdateOp, UpdateResult};
use crate::dialect::Dialect;

/// A wrapped relational database.
pub struct RelationalConnector {
    db: Database,
    dialect: Dialect,
    capabilities: SourceCapabilities,
}

impl RelationalConnector {
    /// Wrap `db` with a full ANSI dialect.
    pub fn new(db: Database) -> Self {
        RelationalConnector {
            db,
            dialect: Dialect::ansi_full(),
            capabilities: SourceCapabilities::relational(),
        }
    }

    /// Wrap with a specific vendor dialect (the fine-grained modeling of
    /// Draper §5 — or a deliberately degraded one for experiment E11).
    pub fn with_dialect(mut self, dialect: Dialect) -> Self {
        self.dialect = dialect;
        self
    }

    /// Override capabilities (e.g. mark the source non-queryable to model
    /// an administrator who refuses external queries).
    pub fn with_capabilities(mut self, caps: SourceCapabilities) -> Self {
        self.capabilities = caps;
        self
    }

    /// Access to the underlying database (for seeding and for the ETL
    /// extract path, which reads change logs directly).
    pub fn database(&self) -> &Database {
        &self.db
    }
}

impl Connector for RelationalConnector {
    fn name(&self) -> &str {
        self.db.name()
    }

    fn tables(&self) -> Vec<String> {
        self.db.table_names()
    }

    fn table_schema(&self, table: &str) -> Result<SchemaRef> {
        Ok(self.db.table(table)?.read().schema().clone())
    }

    fn capabilities(&self) -> SourceCapabilities {
        self.capabilities.clone()
    }

    fn dialect(&self) -> Dialect {
        self.dialect.clone()
    }

    fn statistics(&self, table: &str) -> Result<TableStats> {
        Ok(self.db.table(table)?.write().stats().clone())
    }

    fn execute(&self, query: &SourceQuery) -> Result<SourceAnswer> {
        if !self.capabilities.queryable {
            return Err(EiiError::Source(format!(
                "source {} refuses external queries",
                self.name()
            )));
        }
        // Defensive dialect check: the planner should never push an
        // unsupported predicate, but a remote engine would reject it, so we
        // do too.
        for f in &query.filters {
            if !self.dialect.supports(f) {
                return Err(EiiError::Source(format!(
                    "source {} dialect '{}' rejects predicate {f}",
                    self.name(),
                    self.dialect.name
                )));
            }
        }
        let handle = self.db.table(&query.table)?;
        let t = handle.read();
        let schema = t.schema().clone();

        // Choose the cheapest access path: a single equality binding with
        // few values uses point lookups; otherwise scan.
        let (candidate_rows, rows_scanned) = match query.bindings.as_slice() {
            [(col, vals)] => {
                let col_idx = schema.index_of(None, col)?;
                let mut rows = Vec::new();
                for v in vals {
                    rows.extend(t.lookup_eq(col_idx, v));
                }
                let scanned = rows.len();
                (rows, scanned)
            }
            _ => {
                let rows = t.all_rows();
                let scanned = rows.len();
                (rows, scanned)
            }
        };
        drop(t);

        let remaining_bindings: Vec<(String, Vec<Value>)> = if query.bindings.len() == 1 {
            Vec::new() // already applied via lookup
        } else {
            query.bindings.clone()
        };
        let batch = apply_query_locally(
            &schema,
            candidate_rows,
            &query.filters,
            &remaining_bindings,
            query.projection.as_deref(),
            query.limit,
        )?;
        Ok(SourceAnswer::one_shot(batch, rows_scanned))
    }

    fn supports_partitioned_scans(&self) -> bool {
        true
    }

    fn execute_partition(&self, query: &SourceQuery, part: usize, of: usize) -> Result<SourceAnswer> {
        if of == 0 || part >= of {
            return Err(EiiError::Execution(format!(
                "bad partition {part} of {of}"
            )));
        }
        if !query.bindings.is_empty() || query.limit.is_some() {
            return Err(EiiError::Source(format!(
                "source {} only partitions unbound, unlimited scans",
                self.name()
            )));
        }
        if !self.capabilities.queryable {
            return Err(EiiError::Source(format!(
                "source {} refuses external queries",
                self.name()
            )));
        }
        for f in &query.filters {
            if !self.dialect.supports(f) {
                return Err(EiiError::Source(format!(
                    "source {} dialect '{}' rejects predicate {f}",
                    self.name(),
                    self.dialect.name
                )));
            }
        }
        let handle = self.db.table(&query.table)?;
        let t = handle.read();
        let schema = t.schema().clone();
        let rows = t.all_rows();
        drop(t);
        // Balanced contiguous ranges: partition i owns [i*n/of, (i+1)*n/of),
        // so the ranges are disjoint, cover every row, and concatenate back
        // in scan order.
        let n = rows.len();
        let (start, end) = (part * n / of, (part + 1) * n / of);
        let slice = rows[start..end].to_vec();
        let scanned = slice.len();
        let batch = apply_query_locally(
            &schema,
            slice,
            &query.filters,
            &[],
            query.projection.as_deref(),
            None,
        )?;
        Ok(SourceAnswer::one_shot(batch, scanned))
    }

    fn changes_since(
        &self,
        table: &str,
        after_seq: u64,
    ) -> Result<(Vec<eii_storage::Change>, u64)> {
        let handle = self.db.table(table)?;
        let t = handle.read();
        let log = t.changelog();
        Ok((log.since(after_seq).to_vec(), log.high_watermark()))
    }

    fn update(&self, op: &UpdateOp) -> Result<UpdateResult> {
        if !self.capabilities.updatable {
            return Err(EiiError::Source(format!(
                "source {} is read-only",
                self.name()
            )));
        }
        let handle = self.db.table(op.table())?;
        let mut t = handle.write();
        match op {
            UpdateOp::Insert { row, .. } => {
                t.insert(row.clone())?;
                Ok(UpdateResult { affected: 1 })
            }
            UpdateOp::UpdateByKey {
                key, assignments, ..
            } => {
                let schema = t.schema().clone();
                let resolved = assignments
                    .iter()
                    .map(|(col, v)| Ok((schema.index_of(None, col)?, v.clone())))
                    .collect::<Result<Vec<_>>>()?;
                let hit = t.update_by_pk(key, &resolved)?;
                Ok(UpdateResult {
                    affected: usize::from(hit),
                })
            }
            UpdateOp::DeleteByKey { key, .. } => {
                let hit = t.delete_by_pk(key);
                Ok(UpdateResult {
                    affected: usize::from(hit),
                })
            }
        }
    }
}

/// Convenience for tests and generators: evaluate an arbitrary predicate
/// locally against a table (not via the wrapper).
pub fn scan_with_predicate(
    db: &Database,
    table: &str,
    pred: &eii_expr::Expr,
) -> Result<Vec<eii_data::Row>> {
    let handle = db.table(table)?;
    let t = handle.read();
    let bound = bind(pred, t.schema())?;
    let mut out = Vec::new();
    for (_, row) in t.iter() {
        if bound.eval_predicate(row)? {
            out.push(row.clone());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eii_data::{row, DataType, Field, Schema, SimClock};
    use eii_expr::Expr;
    use eii_storage::TableDef;
    use std::sync::Arc;

    fn setup() -> RelationalConnector {
        let db = Database::new("crm", SimClock::new());
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int).not_null(),
            Field::new("name", DataType::Str),
            Field::new("region", DataType::Str),
        ]));
        let t = db
            .create_table(TableDef::new("customers", schema).with_primary_key(0))
            .unwrap();
        {
            let mut t = t.write();
            t.insert(row![1i64, "alice", "west"]).unwrap();
            t.insert(row![2i64, "bob", "east"]).unwrap();
            t.insert(row![3i64, "carol", "west"]).unwrap();
        }
        RelationalConnector::new(db)
    }

    #[test]
    fn pushes_filters_and_projection() {
        let c = setup();
        let q = SourceQuery {
            table: "customers".into(),
            projection: Some(vec!["name".into()]),
            filters: vec![Expr::col("region").eq(Expr::lit("west"))],
            bindings: vec![],
            limit: None,
        };
        let ans = c.execute(&q).unwrap();
        assert_eq!(ans.batch.num_rows(), 2);
        assert_eq!(ans.batch.schema().len(), 1);
        assert_eq!(ans.rows_scanned, 3, "no index help: full scan");
    }

    #[test]
    fn binding_lookup_uses_pk_index() {
        let c = setup();
        let q = SourceQuery {
            table: "customers".into(),
            projection: None,
            filters: vec![],
            bindings: vec![("id".into(), vec![Value::Int(1), Value::Int(3)])],
            limit: None,
        };
        let ans = c.execute(&q).unwrap();
        assert_eq!(ans.batch.num_rows(), 2);
        assert_eq!(ans.rows_scanned, 2, "point lookups, not a scan");
    }

    #[test]
    fn dialect_rejection_is_defensive() {
        let c = setup().with_dialect(Dialect::lowest_common_denominator());
        let q = SourceQuery {
            table: "customers".into(),
            projection: None,
            filters: vec![Expr::col("id").lt(Expr::lit(2i64))],
            bindings: vec![],
            limit: None,
        };
        assert_eq!(c.execute(&q).unwrap_err().kind(), "source");
    }

    #[test]
    fn non_queryable_source_refuses() {
        let mut caps = SourceCapabilities::relational();
        caps.queryable = false;
        let c = setup().with_capabilities(caps);
        let err = c.execute(&SourceQuery::full_table("customers")).unwrap_err();
        assert_eq!(err.kind(), "source");
    }

    #[test]
    fn updates_route_to_storage() {
        let c = setup();
        c.update(&UpdateOp::Insert {
            table: "customers".into(),
            row: row![4i64, "dave", "north"],
        })
        .unwrap();
        let r = c
            .update(&UpdateOp::UpdateByKey {
                table: "customers".into(),
                key: Value::Int(4),
                assignments: vec![("region".into(), Value::str("south"))],
            })
            .unwrap();
        assert_eq!(r.affected, 1);
        let r = c
            .update(&UpdateOp::DeleteByKey {
                table: "customers".into(),
                key: Value::Int(4),
            })
            .unwrap();
        assert_eq!(r.affected, 1);
        // Missing key affects zero rows.
        let r = c
            .update(&UpdateOp::DeleteByKey {
                table: "customers".into(),
                key: Value::Int(99),
            })
            .unwrap();
        assert_eq!(r.affected, 0);
    }

    #[test]
    fn limit_is_honored() {
        let c = setup();
        let q = SourceQuery {
            table: "customers".into(),
            projection: None,
            filters: vec![],
            bindings: vec![],
            limit: Some(2),
        };
        assert_eq!(c.execute(&q).unwrap().batch.num_rows(), 2);
    }

    #[test]
    fn statistics_reflect_table() {
        let c = setup();
        let s = c.statistics("customers").unwrap();
        assert_eq!(s.row_count, 3);
        assert_eq!(s.columns[2].ndv, 2);
    }
}
