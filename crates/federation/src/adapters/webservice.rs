//! Adapter for web-service sources with access limitations.
//!
//! A web service exposes operations like `get_orders(customer_id)`: it only
//! answers when the required parameter is bound, and it pays one round trip
//! *per bound value*. The planner must therefore feed it through a bind
//! join. This models Carey's "access to data locked inside applications
//! and/or web services".

use std::collections::BTreeMap;

use eii_data::{EiiError, Result, Row, SchemaRef, Value};
use eii_storage::{Database, TableStats};

use crate::adapters::{apply_query_locally, project_batch};
use crate::capability::{BindingPattern, SourceCapabilities};
use crate::connector::{Connector, SourceAnswer, SourceQuery};
use crate::dialect::Dialect;

/// A wrapped web-service application. Internally backed by a database (the
/// application's hidden store), but reachable only through its operations.
pub struct WebServiceConnector {
    name: String,
    backing: Database,
    /// table -> column that must be bound per call.
    required: BTreeMap<String, String>,
}

impl WebServiceConnector {
    /// Wrap `backing` as a service named `name`.
    pub fn new(name: impl Into<String>, backing: Database) -> Self {
        WebServiceConnector {
            name: name.into(),
            backing,
            required: BTreeMap::new(),
        }
    }

    /// Declare that `table` is only reachable with `column` bound.
    pub fn require_binding(
        mut self,
        table: impl Into<String>,
        column: impl Into<String>,
    ) -> Self {
        self.required.insert(table.into(), column.into());
        self
    }

    /// The backing database (for seeding).
    pub fn database(&self) -> &Database {
        &self.backing
    }
}

impl Connector for WebServiceConnector {
    fn name(&self) -> &str {
        &self.name
    }

    fn tables(&self) -> Vec<String> {
        self.backing.table_names()
    }

    fn table_schema(&self, table: &str) -> Result<SchemaRef> {
        Ok(self.backing.table(table)?.read().schema().clone())
    }

    fn capabilities(&self) -> SourceCapabilities {
        SourceCapabilities::web_service(
            self.required
                .iter()
                .map(|(t, c)| BindingPattern {
                    table: t.clone(),
                    required_columns: vec![c.clone()],
                })
                .collect(),
        )
    }

    fn dialect(&self) -> Dialect {
        Dialect::lowest_common_denominator()
    }

    fn statistics(&self, table: &str) -> Result<TableStats> {
        // A service does not publish statistics; expose row count only
        // (modeling the planner's uncertainty about opaque sources).
        let rows = self.backing.table(table)?.read().row_count();
        Ok(TableStats {
            row_count: rows,
            columns: Vec::new(),
        })
    }

    fn execute(&self, query: &SourceQuery) -> Result<SourceAnswer> {
        if !query.filters.is_empty() {
            return Err(EiiError::Source(format!(
                "service {} does not evaluate predicates",
                self.name
            )));
        }
        let required = self.required.get(&query.table);
        let handle = self.backing.table(&query.table)?;
        let t = handle.read();
        let schema = t.schema().clone();

        match required {
            None => {
                // Unrestricted operation: one call dumps the table.
                let rows = t.all_rows();
                let scanned = rows.len();
                drop(t);
                let batch = project_batch(&schema, rows, query.projection.as_deref())?;
                Ok(SourceAnswer::one_shot(batch, scanned))
            }
            Some(col) => {
                let Some((_, values)) = query
                    .bindings
                    .iter()
                    .find(|(c, _)| c.eq_ignore_ascii_case(col))
                else {
                    return Err(EiiError::Source(format!(
                        "service {}.{} requires {col} to be bound (access limitation)",
                        self.name, query.table
                    )));
                };
                let col_idx = schema.index_of(None, col)?;
                let mut rows: Vec<Row> = Vec::new();
                // One call per bound value.
                let calls = values.len().max(1);
                for v in values {
                    rows.extend(t.lookup_eq(col_idx, v));
                }
                let scanned = rows.len();
                drop(t);
                // Apply any *other* bindings locally, then project.
                let other: Vec<(String, Vec<Value>)> = query
                    .bindings
                    .iter()
                    .filter(|(c, _)| !c.eq_ignore_ascii_case(col))
                    .cloned()
                    .collect();
                let batch = apply_query_locally(
                    &schema,
                    rows,
                    &[],
                    &other,
                    query.projection.as_deref(),
                    query.limit,
                )?;
                Ok(SourceAnswer {
                    batch,
                    rows_scanned: scanned,
                    calls,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eii_data::{row, DataType, Field, Schema, SimClock};
    use eii_storage::TableDef;
    use std::sync::Arc;

    fn setup() -> WebServiceConnector {
        let db = Database::new("orders_svc", SimClock::new());
        let schema = Arc::new(Schema::new(vec![
            Field::new("order_id", DataType::Int).not_null(),
            Field::new("customer_id", DataType::Int),
            Field::new("total", DataType::Float),
        ]));
        let t = db
            .create_table(TableDef::new("orders", schema).with_primary_key(0))
            .unwrap();
        {
            let mut t = t.write();
            t.create_hash_index(1);
            for i in 0..10i64 {
                t.insert(row![i, i % 3, (i as f64) * 10.0]).unwrap();
            }
        }
        WebServiceConnector::new("orders_svc", db).require_binding("orders", "customer_id")
    }

    #[test]
    fn unbound_access_is_refused() {
        let c = setup();
        let err = c.execute(&SourceQuery::full_table("orders")).unwrap_err();
        assert_eq!(err.kind(), "source");
        assert!(err.message().contains("customer_id"));
    }

    #[test]
    fn bound_access_pays_one_call_per_value() {
        let c = setup();
        let q = SourceQuery {
            table: "orders".into(),
            bindings: vec![(
                "customer_id".into(),
                vec![Value::Int(0), Value::Int(1)],
            )],
            ..SourceQuery::default()
        };
        let ans = c.execute(&q).unwrap();
        assert_eq!(ans.calls, 2);
        assert_eq!(ans.batch.num_rows(), 7); // customers 0 and 1 have 4+3 orders
    }

    #[test]
    fn capabilities_expose_binding_pattern() {
        let c = setup();
        let caps = c.capabilities();
        let p = caps.pattern_for("orders").unwrap();
        assert_eq!(p.required_columns, vec!["customer_id"]);
    }

    #[test]
    fn filters_are_rejected() {
        let c = setup();
        let q = SourceQuery {
            table: "orders".into(),
            filters: vec![eii_expr::Expr::col("total").gt(eii_expr::Expr::lit(5.0))],
            bindings: vec![("customer_id".into(), vec![Value::Int(0)])],
            ..SourceQuery::default()
        };
        assert_eq!(c.execute(&q).unwrap_err().kind(), "source");
    }
}
