//! Source capability descriptions.
//!
//! Beyond the expression dialect, a source has coarse-grained capabilities:
//! can it project columns, apply filters at all, honor LIMIT, answer only
//! when certain columns are bound (web-service style access limitations)?
//! The planner consults these when decomposing a federated query — "an
//! engine that created plans that span multiple data sources and dealt with
//! the limitations and capabilities of each source" (Halevy §1).

/// Access-pattern restriction: the source answers only when each of the
/// listed columns is bound to a set of values (e.g. a web service
/// `get_orders(customer_id)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindingPattern {
    /// Table the restriction applies to.
    pub table: String,
    /// Column names that must be bound in every request.
    pub required_columns: Vec<String>,
}

/// What a wrapped source can do server-side.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceCapabilities {
    /// Source evaluates pushed filter predicates (those its dialect
    /// supports). When false, every row ships.
    pub filters: bool,
    /// Source returns only requested columns. When false, whole rows ship.
    pub projection: bool,
    /// Source honors LIMIT.
    pub limit: bool,
    /// Source accepts batched equality bindings (enables bind joins).
    pub bindings: bool,
    /// Access-pattern restrictions, if any.
    pub binding_patterns: Vec<BindingPattern>,
    /// Source permits external queries at all. Administrators sometimes
    /// refuse ("would not even consider allowing a query from an external
    /// query engine to hit them" — Halevy §1); such sources can only be
    /// reached via ETL extracts.
    pub queryable: bool,
    /// Source accepts updates (relational sources do; files don't).
    pub updatable: bool,
}

impl SourceCapabilities {
    /// Full-featured relational source.
    pub fn relational() -> Self {
        SourceCapabilities {
            filters: true,
            projection: true,
            limit: true,
            bindings: true,
            binding_patterns: Vec::new(),
            queryable: true,
            updatable: true,
        }
    }

    /// Document source: wrapper-side filtering and projection, no updates.
    pub fn document() -> Self {
        SourceCapabilities {
            filters: true,
            projection: true,
            limit: true,
            bindings: false,
            binding_patterns: Vec::new(),
            queryable: true,
            updatable: false,
        }
    }

    /// Delimited file: everything ships; nothing is evaluated at the source.
    pub fn flat_file() -> Self {
        SourceCapabilities {
            filters: false,
            projection: false,
            limit: false,
            bindings: false,
            binding_patterns: Vec::new(),
            queryable: true,
            updatable: false,
        }
    }

    /// Web service with access limitations.
    pub fn web_service(patterns: Vec<BindingPattern>) -> Self {
        SourceCapabilities {
            filters: false,
            projection: false,
            limit: false,
            bindings: true,
            binding_patterns: patterns,
            queryable: true,
            updatable: false,
        }
    }

    /// Binding pattern for `table`, if one applies.
    pub fn pattern_for(&self, table: &str) -> Option<&BindingPattern> {
        self.binding_patterns.iter().find(|p| p.table == table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct() {
        assert!(SourceCapabilities::relational().filters);
        assert!(!SourceCapabilities::flat_file().filters);
        assert!(!SourceCapabilities::document().updatable);
        assert!(SourceCapabilities::relational().updatable);
    }

    #[test]
    fn pattern_lookup() {
        let caps = SourceCapabilities::web_service(vec![BindingPattern {
            table: "orders".into(),
            required_columns: vec!["customer_id".into()],
        }]);
        assert!(caps.pattern_for("orders").is_some());
        assert!(caps.pattern_for("other").is_none());
    }
}
