//! The [`Connector`] trait: the adapter every source implements, plus the
//! component-query and update request types that travel through it.

use eii_data::{Batch, EiiError, Result, SchemaRef, Value};
use eii_expr::Expr;
use eii_storage::TableStats;

use crate::capability::SourceCapabilities;
use crate::dialect::Dialect;

/// A component query decomposed out of a federated plan, addressed to one
/// table of one source. The planner guarantees it respects the source's
/// capabilities; connectors re-check and reject violations defensively.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SourceQuery {
    /// Table name within the source.
    pub table: String,
    /// Columns to return (by name), or `None` for all.
    pub projection: Option<Vec<String>>,
    /// Conjunctive filters to evaluate at the source. Each must be
    /// supported by the source's dialect.
    pub filters: Vec<Expr>,
    /// Equality bindings: `(column, values)` — return rows whose column is
    /// any of the values. Used by bind joins and web-service access
    /// patterns.
    pub bindings: Vec<(String, Vec<Value>)>,
    /// Maximum rows to return.
    pub limit: Option<usize>,
}

impl SourceQuery {
    /// Query returning a whole table.
    pub fn full_table(table: impl Into<String>) -> Self {
        SourceQuery {
            table: table.into(),
            ..SourceQuery::default()
        }
    }

    /// Render as source SQL text (diagnostics / EXPLAIN output).
    pub fn to_sql(&self) -> String {
        let cols = match &self.projection {
            Some(p) => p.join(", "),
            None => "*".to_string(),
        };
        let mut sql = format!("SELECT {cols} FROM {}", self.table);
        let mut preds: Vec<String> = self.filters.iter().map(|f| f.to_string()).collect();
        for (col, vals) in &self.bindings {
            let list = vals
                .iter()
                .map(|v| Expr::Literal(v.clone()).to_string())
                .collect::<Vec<_>>()
                .join(", ");
            preds.push(format!("{col} IN ({list})"));
        }
        if !preds.is_empty() {
            sql.push_str(" WHERE ");
            sql.push_str(&preds.join(" AND "));
        }
        if let Some(n) = self.limit {
            sql.push_str(&format!(" LIMIT {n}"));
        }
        sql
    }
}

/// Result of a component query before it crosses the network: the rows plus
/// how much work the source did (for the cost ledger).
#[derive(Debug, Clone)]
pub struct SourceAnswer {
    pub batch: Batch,
    /// Rows the source engine examined (scan effort).
    pub rows_scanned: usize,
    /// Round trips the interaction needed (web services pay one per bound
    /// value; set-oriented sources answer in one).
    pub calls: usize,
}

impl SourceAnswer {
    /// Single-round-trip answer.
    pub fn one_shot(batch: Batch, rows_scanned: usize) -> Self {
        SourceAnswer {
            batch,
            rows_scanned,
            calls: 1,
        }
    }
}

/// A write operation routed to a source (the EAI substrate's verbs).
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    Insert {
        table: String,
        row: eii_data::Row,
    },
    UpdateByKey {
        table: String,
        key: Value,
        assignments: Vec<(String, Value)>,
    },
    DeleteByKey {
        table: String,
        key: Value,
    },
}

impl UpdateOp {
    /// Table the operation touches.
    pub fn table(&self) -> &str {
        match self {
            UpdateOp::Insert { table, .. }
            | UpdateOp::UpdateByKey { table, .. }
            | UpdateOp::DeleteByKey { table, .. } => table,
        }
    }
}

/// Outcome of an update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateResult {
    /// Rows affected.
    pub affected: usize,
}

/// The adapter contract. One `Connector` wraps one enterprise source.
pub trait Connector: Send + Sync {
    /// Source name (unique within a federation).
    fn name(&self) -> &str;

    /// Tables (or virtual tables) this source exposes.
    fn tables(&self) -> Vec<String>;

    /// Schema of a table.
    fn table_schema(&self, table: &str) -> Result<SchemaRef>;

    /// Coarse capabilities.
    fn capabilities(&self) -> SourceCapabilities;

    /// Expression dialect for pushdown decisions.
    fn dialect(&self) -> Dialect;

    /// Statistics for the cost model. Default: unknown (empty) stats.
    fn statistics(&self, _table: &str) -> Result<TableStats> {
        Ok(TableStats::default())
    }

    /// Execute a component query at the source.
    fn execute(&self, query: &SourceQuery) -> Result<SourceAnswer>;

    /// Whether [`Connector::execute_partition`] is implemented. Wrapper
    /// connectors (fault injection, resilience) deliberately leave this
    /// `false` so partitioned scans only run against the plain transport;
    /// the executor falls back to the serial path everywhere else.
    fn supports_partitioned_scans(&self) -> bool {
        false
    }

    /// Execute partition `part` of `of` contiguous, disjoint partitions of
    /// a component query: concatenating all partitions' rows in partition
    /// order must be row-identical to [`Connector::execute`], and the
    /// partitions' scan efforts must sum to the serial scan's. Default: not
    /// supported.
    fn execute_partition(
        &self,
        _query: &SourceQuery,
        _part: usize,
        _of: usize,
    ) -> Result<SourceAnswer> {
        Err(EiiError::Source(format!(
            "source {} does not support partitioned scans",
            self.name()
        )))
    }

    /// Apply an update. Default: not supported.
    fn update(&self, op: &UpdateOp) -> Result<UpdateResult> {
        Err(EiiError::Source(format!(
            "source {} does not accept updates ({:?})",
            self.name(),
            op.table()
        )))
    }

    /// Change-data capture: every change to `table` after sequence
    /// `after_seq`, plus the new high watermark. The warehouse's incremental
    /// ETL refresh reads this. Default: not supported (such sources can only
    /// be refreshed by full re-extract).
    fn changes_since(
        &self,
        table: &str,
        _after_seq: u64,
    ) -> Result<(Vec<eii_storage::Change>, u64)> {
        Err(EiiError::Source(format!(
            "source {} does not expose a change log for {table}",
            self.name()
        )))
    }

    /// Circuit-breaker snapshot, when a breaker protects this connector
    /// somewhere in the wrapper chain. Default: none.
    fn breaker_status(&self) -> Option<crate::resilience::BreakerStatus> {
        None
    }

    /// Message of the most recent failed request, when tracked. Default:
    /// none.
    fn last_error(&self) -> Option<String> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_query_renders_sql() {
        let q = SourceQuery {
            table: "customers".into(),
            projection: Some(vec!["id".into(), "name".into()]),
            filters: vec![Expr::col("region").eq(Expr::lit("west"))],
            bindings: vec![("id".into(), vec![Value::Int(1), Value::Int(2)])],
            limit: Some(10),
        };
        assert_eq!(
            q.to_sql(),
            "SELECT id, name FROM customers WHERE (region = 'west') AND id IN (1, 2) LIMIT 10"
        );
    }

    #[test]
    fn full_table_query_renders_star() {
        assert_eq!(
            SourceQuery::full_table("t").to_sql(),
            "SELECT * FROM t"
        );
    }
}
