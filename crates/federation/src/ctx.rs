//! Ambient per-request context: the deadline budget and cancellation tokens
//! a query carries into every connector call.
//!
//! The [`Connector`](crate::Connector) trait is implemented by a dozen
//! adapters and wrappers; threading a context parameter through all of them
//! would churn every implementation for a cross-cutting concern. Instead the
//! executor installs a [`RequestCtx`] in a scoped thread-local around each
//! source interaction ([`with_request_ctx`]), and the fault / resilience
//! wrappers consult it via [`current_ctx`] — so a hung request stops waiting
//! when the query budget (not just the per-source deadline) runs out, and a
//! retry loop stops backing off the moment the query is cancelled.
//!
//! Partition-scan workers install the context inside their own threads, so
//! cancelling a query tears down sibling partition scans at their next
//! check.

use std::cell::RefCell;

use eii_data::{CancelToken, Deadline, Result};

/// Everything a source interaction needs to know about the query it serves.
#[derive(Debug, Clone, Default)]
pub struct RequestCtx {
    /// The query's shrinking virtual-time budget.
    pub deadline: Option<Deadline>,
    /// Caller-visible cancellation (user gave up, scheduler shed the query).
    pub cancel: Option<CancelToken>,
    /// Executor-internal teardown: tripped when a sibling branch of the
    /// plan fails, so the rest of the plan stops doing useless work.
    pub abort: Option<CancelToken>,
    /// The statement's trace ID, when its trace was retained: resilience
    /// events (hedge fired, breaker transitions, shed) stamp this into the
    /// telemetry event log so an event references its owning trace.
    pub trace_id: Option<u64>,
}

impl RequestCtx {
    /// An empty context (no budget, not cancellable).
    pub fn new() -> Self {
        RequestCtx::default()
    }

    /// Attach a deadline budget.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attach a caller cancellation token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Attach the executor's internal abort token.
    pub fn with_abort(mut self, abort: CancelToken) -> Self {
        self.abort = Some(abort);
        self
    }

    /// Attach the owning statement's trace ID.
    pub fn with_trace_id(mut self, trace_id: u64) -> Self {
        self.trace_id = Some(trace_id);
        self
    }

    /// Is there anything to enforce or propagate at all? A trace ID counts:
    /// a trace-only context still needs installing so resilience events can
    /// be stamped with their owning trace.
    pub fn is_empty(&self) -> bool {
        self.deadline.is_none()
            && self.cancel.is_none()
            && self.abort.is_none()
            && self.trace_id.is_none()
    }

    /// Fail fast if the query was cancelled, aborted, or ran out of budget
    /// (checked in that order, so an explicit cancel reason wins over the
    /// generic deadline error).
    pub fn check(&self) -> Result<()> {
        if let Some(c) = &self.cancel {
            c.check()?;
        }
        if let Some(a) = &self.abort {
            a.check()?;
        }
        if let Some(d) = &self.deadline {
            d.check()?;
        }
        Ok(())
    }

    /// Simulated milliseconds of budget left, if a deadline is attached.
    pub fn remaining_ms(&self) -> Option<i64> {
        self.deadline.as_ref().map(|d| d.remaining_ms())
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<RequestCtx>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with `ctx` installed as the ambient request context on this
/// thread. Nests: the innermost installation wins, and the previous context
/// is restored on exit (even on panic, since the guard pops on drop).
pub fn with_request_ctx<R>(ctx: &RequestCtx, f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            CURRENT.with(|c| {
                c.borrow_mut().pop();
            });
        }
    }
    CURRENT.with(|c| c.borrow_mut().push(ctx.clone()));
    let _guard = Guard;
    f()
}

/// The ambient request context installed on this thread, if any.
pub fn current_ctx() -> Option<RequestCtx> {
    CURRENT.with(|c| c.borrow().last().cloned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use eii_data::SimClock;

    #[test]
    fn ambient_context_is_scoped_and_nested() {
        assert!(current_ctx().is_none());
        let outer = RequestCtx::new().with_cancel(CancelToken::new());
        with_request_ctx(&outer, || {
            assert!(current_ctx().unwrap().cancel.is_some());
            let inner = RequestCtx::new();
            with_request_ctx(&inner, || {
                assert!(current_ctx().unwrap().cancel.is_none(), "innermost wins");
            });
            assert!(current_ctx().unwrap().cancel.is_some(), "outer restored");
        });
        assert!(current_ctx().is_none());
    }

    #[test]
    fn check_prefers_cancel_over_deadline() {
        let clock = SimClock::new();
        let deadline = Deadline::new(clock.clone(), 10);
        clock.advance_ms(20);
        let cancel = CancelToken::new();
        cancel.cancel("caller hung up");
        let ctx = RequestCtx::new().with_deadline(deadline).with_cancel(cancel);
        assert_eq!(ctx.check().unwrap_err().kind(), "cancelled");
    }

    #[test]
    fn check_surfaces_expired_deadline() {
        let clock = SimClock::new();
        let deadline = Deadline::new(clock.clone(), 10);
        clock.advance_ms(20);
        let ctx = RequestCtx::new().with_deadline(deadline);
        assert_eq!(ctx.check().unwrap_err().kind(), "deadline");
        assert_eq!(ctx.remaining_ms(), Some(0));
    }

    #[test]
    fn empty_context_always_passes() {
        let ctx = RequestCtx::new();
        assert!(ctx.is_empty());
        assert!(ctx.check().is_ok());
        assert_eq!(ctx.remaining_ms(), None);
    }

    #[test]
    fn trace_id_rides_the_ambient_context() {
        let ctx = RequestCtx::new().with_trace_id(42);
        assert!(!ctx.is_empty(), "a trace-only ctx must still install");
        assert!(ctx.check().is_ok(), "trace id enforces nothing");
        with_request_ctx(&ctx, || {
            assert_eq!(current_ctx().unwrap().trace_id, Some(42));
        });
    }
}
