//! Per-vendor SQL dialect modeling.
//!
//! A [`Dialect`] describes exactly which expression shapes a source's query
//! engine accepts, and renders pushable expressions to the source's SQL text.
//! The planner asks the dialect before pushing a predicate; anything the
//! dialect rejects must be evaluated at the assembly site instead — so the
//! fidelity of this model directly controls bytes shipped (Draper §5's
//! "decisive impact on performance on every comparison we were ever able to
//! make"). Experiment E11 compares fine-grained dialects against a
//! lowest-common-denominator model.

use eii_expr::{BinaryOp, Expr, ScalarFunc};

/// A vendor dialect: the pushdown contract of one source engine.
#[derive(Debug, Clone, PartialEq)]
pub struct Dialect {
    /// Human-readable vendor tag ("ansi", "legacy92", ...).
    pub name: String,
    /// Comparison operators the engine accepts in WHERE.
    pub comparisons: Vec<BinaryOp>,
    /// Arithmetic allowed inside pushed predicates.
    pub arithmetic: bool,
    /// `LIKE` supported.
    pub like: bool,
    /// `IN (list)` supported, with a maximum list length.
    pub in_list: Option<usize>,
    /// `BETWEEN` supported.
    pub between: bool,
    /// `IS NULL` supported.
    pub is_null: bool,
    /// `OR` allowed (some ancient gateways only take conjunctions).
    pub disjunction: bool,
    /// Scalar functions the engine evaluates.
    pub functions: Vec<ScalarFunc>,
    /// `CASE` expressions supported.
    pub case_expr: bool,
}

impl Dialect {
    /// Full ANSI-ish dialect: everything our expression language has.
    pub fn ansi_full() -> Self {
        Dialect {
            name: "ansi".into(),
            comparisons: vec![
                BinaryOp::Eq,
                BinaryOp::NotEq,
                BinaryOp::Lt,
                BinaryOp::LtEq,
                BinaryOp::Gt,
                BinaryOp::GtEq,
            ],
            arithmetic: true,
            like: true,
            in_list: Some(1000),
            between: true,
            is_null: true,
            disjunction: true,
            functions: vec![
                ScalarFunc::Lower,
                ScalarFunc::Upper,
                ScalarFunc::Length,
                ScalarFunc::Abs,
                ScalarFunc::Coalesce,
                ScalarFunc::Substr,
                ScalarFunc::Concat,
                ScalarFunc::Round,
                ScalarFunc::Trim,
            ],
            case_expr: true,
        }
    }

    /// A 1992-vintage engine: comparisons and BETWEEN only; no LIKE pushdown,
    /// no functions, no OR, short IN lists.
    pub fn legacy_minimal() -> Self {
        Dialect {
            name: "legacy92".into(),
            comparisons: vec![BinaryOp::Eq, BinaryOp::Lt, BinaryOp::Gt],
            arithmetic: false,
            like: false,
            in_list: Some(16),
            between: true,
            is_null: false,
            disjunction: false,
            functions: vec![],
            case_expr: false,
        }
    }

    /// The lowest common denominator a naive multi-vendor wrapper assumes:
    /// equality on a column vs a literal, nothing else. This is the
    /// "other systems" baseline of Draper's comparison.
    pub fn lowest_common_denominator() -> Self {
        Dialect {
            name: "lcd".into(),
            comparisons: vec![BinaryOp::Eq],
            arithmetic: false,
            like: false,
            in_list: None,
            between: false,
            is_null: false,
            disjunction: false,
            functions: vec![],
            case_expr: false,
        }
    }

    /// A mid-1990s engine: everything except LIKE and functions.
    pub fn no_like() -> Self {
        let mut d = Dialect::ansi_full();
        d.name = "nolike".into();
        d.like = false;
        d.functions.clear();
        d
    }

    /// Can the whole expression be evaluated by this source?
    pub fn supports(&self, expr: &Expr) -> bool {
        match expr {
            Expr::Column { .. } | Expr::Literal(_) => true,
            Expr::Binary { left, op, right } => {
                let op_ok = if op.is_comparison() {
                    self.comparisons.contains(op)
                } else if *op == BinaryOp::And {
                    true
                } else if *op == BinaryOp::Or {
                    self.disjunction
                } else {
                    self.arithmetic
                };
                op_ok && self.supports(left) && self.supports(right)
            }
            Expr::Unary { expr, .. } => self.supports(expr),
            Expr::IsNull { expr, .. } => self.is_null && self.supports(expr),
            Expr::Like { expr, pattern, .. } => {
                self.like && self.supports(expr) && self.supports(pattern)
            }
            Expr::InList { expr, list, .. } => match self.in_list {
                Some(max) => {
                    list.len() <= max
                        && self.supports(expr)
                        && list.iter().all(|e| self.supports(e))
                }
                None => false,
            },
            Expr::Between {
                expr, low, high, ..
            } => {
                self.between
                    && self.supports(expr)
                    && self.supports(low)
                    && self.supports(high)
            }
            Expr::Case {
                branches,
                else_expr,
            } => {
                self.case_expr
                    && branches
                        .iter()
                        .all(|(c, r)| self.supports(c) && self.supports(r))
                    && else_expr.as_ref().is_none_or(|e| self.supports(e))
            }
            Expr::Cast { expr, .. } => self.arithmetic && self.supports(expr),
            Expr::Func { func, args } => {
                self.functions.contains(func) && args.iter().all(|a| self.supports(a))
            }
        }
    }

    /// Render a supported expression as this source's SQL text (what goes on
    /// the wire in the component query). Returns `None` when unsupported.
    pub fn render(&self, expr: &Expr) -> Option<String> {
        if self.supports(expr) {
            Some(expr.to_string())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eii_expr::Expr;

    fn like(col: &str, pat: &str) -> Expr {
        Expr::Like {
            expr: Box::new(Expr::col(col)),
            pattern: Box::new(Expr::lit(pat)),
            negated: false,
        }
    }

    #[test]
    fn ansi_supports_everything_reasonable() {
        let d = Dialect::ansi_full();
        let e = Expr::col("a")
            .eq(Expr::lit(1i64))
            .and(like("name", "a%"))
            .or(Expr::col("b").lt(Expr::lit(2i64)));
        assert!(d.supports(&e));
        assert!(d.render(&e).is_some());
    }

    #[test]
    fn legacy_rejects_like_and_or() {
        let d = Dialect::legacy_minimal();
        assert!(!d.supports(&like("n", "a%")));
        let disj = Expr::col("a")
            .eq(Expr::lit(1i64))
            .or(Expr::col("a").eq(Expr::lit(2i64)));
        assert!(!d.supports(&disj));
        // Conjunctions of plain comparisons are fine.
        let conj = Expr::col("a")
            .eq(Expr::lit(1i64))
            .and(Expr::col("b").lt(Expr::lit(2i64)));
        assert!(d.supports(&conj));
        // <= is not in its comparison set.
        assert!(!d.supports(&Expr::col("a").lt_eq(Expr::lit(1i64))));
    }

    #[test]
    fn in_list_length_limits() {
        let d = Dialect::legacy_minimal();
        let short = Expr::InList {
            expr: Box::new(Expr::col("a")),
            list: (0..10i64).map(Expr::lit).collect(),
            negated: false,
        };
        let long = Expr::InList {
            expr: Box::new(Expr::col("a")),
            list: (0..100i64).map(Expr::lit).collect(),
            negated: false,
        };
        assert!(d.supports(&short));
        assert!(!d.supports(&long));
        assert!(!Dialect::lowest_common_denominator().supports(&short));
    }

    #[test]
    fn lcd_only_takes_simple_equality() {
        let d = Dialect::lowest_common_denominator();
        assert!(d.supports(&Expr::col("a").eq(Expr::lit(1i64))));
        assert!(!d.supports(&Expr::col("a").lt(Expr::lit(1i64))));
        // Conjunctions of equalities still push.
        let conj = Expr::col("a")
            .eq(Expr::lit(1i64))
            .and(Expr::col("b").eq(Expr::lit(2i64)));
        assert!(d.supports(&conj));
    }

    #[test]
    fn functions_gate_pushdown() {
        let call = Expr::Func {
            func: ScalarFunc::Lower,
            args: vec![Expr::col("name")],
        }
        .eq(Expr::lit("alice"));
        assert!(Dialect::ansi_full().supports(&call));
        assert!(!Dialect::no_like().supports(&call));
    }

    #[test]
    fn render_produces_sql_text() {
        let d = Dialect::ansi_full();
        let e = Expr::col("age").gt_eq(Expr::lit(21i64));
        assert_eq!(d.render(&e).unwrap(), "(age >= 21)");
        assert_eq!(Dialect::lowest_common_denominator().render(&e), None);
    }
}
