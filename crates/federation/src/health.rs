//! Source-health introspection: one unified view per source combining the
//! [`TransferLedger`](crate::net::TransferLedger)'s accumulated traffic,
//! fault outcomes (failures, retries), and — for hardened sources — the
//! circuit breaker's state and the last observed error.
//!
//! Built by [`Federation::source_health`](crate::registry::Federation::source_health);
//! surfaced to applications through `EiiSystem::source_health()`.

use serde::Serialize;

use crate::net::SourceTraffic;
use crate::resilience::{BreakerState, BreakerStatus};

/// Health snapshot of one registered source.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SourceHealth {
    /// Source name.
    pub source: String,
    /// Accumulated traffic: requests, bytes, rows, failures, retries.
    pub traffic: SourceTraffic,
    /// Breaker snapshot, when the source is hardened.
    pub breaker: Option<BreakerStatus>,
    /// Message of the most recent failed request, when tracked.
    pub last_error: Option<String>,
}

impl SourceHealth {
    /// Is the source currently usable? True unless its breaker is open.
    pub fn available(&self) -> bool {
        !matches!(
            self.breaker,
            Some(BreakerStatus {
                state: BreakerState::Open,
                ..
            })
        )
    }

    /// One-line human-readable rendering for dashboards and logs.
    pub fn render(&self) -> String {
        let mut line = format!(
            "{}: requests={} bytes={} rows={} failures={} retries={}",
            self.source,
            self.traffic.requests,
            self.traffic.bytes,
            self.traffic.rows,
            self.traffic.failures,
            self.traffic.retries,
        );
        if let Some(b) = &self.breaker {
            line.push_str(&format!(
                " breaker={:?} consecutive_failures={} trips={}",
                b.state, b.consecutive_failures, b.to_open
            ));
        }
        if let Some(err) = &self.last_error {
            line.push_str(&format!(" last_error={err:?}"));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn health(breaker: Option<BreakerStatus>) -> SourceHealth {
        SourceHealth {
            source: "crm".into(),
            traffic: SourceTraffic {
                requests: 3,
                bytes: 1024,
                rows: 42,
                sim_ms: 7.5,
                failures: 2,
                retries: 1,
                bytes_saved: 0,
                hedges: 0,
            },
            breaker,
            last_error: Some("injected fault: crm refused the request".into()),
        }
    }

    fn status(state: BreakerState) -> BreakerStatus {
        BreakerStatus {
            state,
            consecutive_failures: 2,
            opened_at_ms: 10,
            to_open: 1,
            to_half_open: 0,
            to_closed: 0,
        }
    }

    #[test]
    fn availability_follows_breaker_state() {
        assert!(health(None).available());
        assert!(health(Some(status(BreakerState::Closed))).available());
        assert!(health(Some(status(BreakerState::HalfOpen))).available());
        assert!(!health(Some(status(BreakerState::Open))).available());
    }

    #[test]
    fn render_mentions_traffic_breaker_and_error() {
        let line = health(Some(status(BreakerState::Open))).render();
        assert!(line.contains("crm:"), "{line}");
        assert!(line.contains("failures=2"), "{line}");
        assert!(line.contains("breaker=Open"), "{line}");
        assert!(line.contains("refused the request"), "{line}");
    }

    #[test]
    fn health_serializes() {
        let json = serde_json::to_string(&health(Some(status(BreakerState::Closed)))).unwrap();
        assert!(json.contains("\"source\":\"crm\""), "{json}");
        assert!(json.contains("\"state\":\"Closed\""), "{json}");
    }
}
