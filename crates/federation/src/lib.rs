//! # eii-federation
//!
//! The wrapper layer of the EII engine: everything between the federated
//! planner/executor and the heterogeneous sources.
//!
//! - [`Connector`]: the adapter trait a source implements ("data wrappers
//!   that push down RDBMS-specific SQL queries to the sources" — Bitton §3).
//! - [`Dialect`]: fine-grained per-vendor SQL capability modeling — Draper
//!   §5: "we modeled the individual quirks of different vendors and versions
//!   of databases to a much finer degree ... it meant we could push
//!   predicates that other systems wouldn't".
//! - [`SourceCapabilities`] and binding patterns: what a source can evaluate
//!   (web-service sources only answer given bound inputs).
//! - [`LinkProfile`] + [`TransferLedger`]: the simulated network that makes
//!   bytes-shipped and latency measurable and deterministic.
//! - [`FaultProfile`] + [`ResilientConnector`]: deterministic source fault
//!   injection (failures, timeouts, latency spikes, outage windows) and the
//!   retry/backoff + circuit-breaker machinery that survives it.
//! - [`SourceHealth`]: per-source introspection unifying ledger traffic,
//!   fault outcomes, breaker state, and the last observed error.
//! - Adapters: relational ([`RelationalConnector`]), document
//!   ([`DocumentConnector`]), delimited-file ([`CsvConnector`]), and
//!   web-service ([`WebServiceConnector`]) sources.
//! - [`Federation`]: the registry of wrapped sources the engine talks to.

pub mod adapters;
pub mod capability;
pub mod connector;
pub mod ctx;
pub mod dialect;
pub mod health;
pub mod net;
pub mod registry;
pub mod resilience;

pub use adapters::csv::CsvConnector;
pub use adapters::document::DocumentConnector;
pub use adapters::relational::RelationalConnector;
pub use adapters::webservice::WebServiceConnector;
pub use capability::{BindingPattern, SourceCapabilities};
pub use connector::{Connector, SourceAnswer, SourceQuery, UpdateOp, UpdateResult};
pub use ctx::{current_ctx, with_request_ctx, RequestCtx};
pub use dialect::Dialect;
pub use net::{
    FaultDecision, FaultInjector, FaultProfile, FaultyConnector, LinkProfile, QueryCost,
    SourceTraffic, TransferLedger, WireFormat,
};
pub use health::SourceHealth;
pub use registry::{Federation, HedgeOutcome, SourceHandle};
pub use resilience::{
    BreakerState, BreakerStatus, CircuitBreaker, CircuitBreakerConfig, ResilientConnector,
    RetryPolicy,
};
