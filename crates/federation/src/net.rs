//! The simulated network.
//!
//! Every byte that leaves a source crosses a [`LinkProfile`] (fixed per-
//! request latency plus bandwidth-proportional transfer time) and is recorded
//! in a [`TransferLedger`]. The pushdown experiments (E3, E11) read the
//! ledger; the executor uses [`QueryCost`] to compute a plan's simulated
//! elapsed time (parallel branches take the max, sequential steps add).

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use eii_data::Batch;

/// How result rows are serialized on the wire.
///
/// `Xml` models the early-EII architecture Bitton criticizes: "Each table
/// would be converted to XML, increasing its size about 3 times".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    #[default]
    Native,
    Xml,
}

impl WireFormat {
    /// Bytes this batch occupies on the wire in this format.
    pub fn bytes_of(self, batch: &Batch) -> usize {
        match self {
            WireFormat::Native => batch.wire_size(),
            WireFormat::Xml => batch.xml_wire_size(),
        }
    }
}

/// Performance characteristics of the link between the EII server and a
/// source (or between two sources, for source-to-source shipping during
/// assembly-site selection).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProfile {
    /// Fixed cost per request round trip, simulated milliseconds.
    pub latency_ms: f64,
    /// Transfer rate, bytes per simulated millisecond.
    pub bandwidth_bytes_per_ms: f64,
}

impl LinkProfile {
    /// A LAN-ish default: 2 ms round trip, 100 KB/ms.
    pub fn lan() -> Self {
        LinkProfile {
            latency_ms: 2.0,
            bandwidth_bytes_per_ms: 100_000.0,
        }
    }

    /// A WAN-ish link: 40 ms round trip, 5 KB/ms.
    pub fn wan() -> Self {
        LinkProfile {
            latency_ms: 40.0,
            bandwidth_bytes_per_ms: 5_000.0,
        }
    }

    /// Zero-cost link (co-located source; also useful in unit tests).
    pub fn local() -> Self {
        LinkProfile {
            latency_ms: 0.0,
            bandwidth_bytes_per_ms: f64::INFINITY,
        }
    }

    /// Simulated time to move `bytes` over this link in one request.
    pub fn transfer_ms(&self, bytes: usize) -> f64 {
        if self.bandwidth_bytes_per_ms.is_infinite() {
            self.latency_ms
        } else {
            self.latency_ms + bytes as f64 / self.bandwidth_bytes_per_ms
        }
    }
}

/// Cost of one source interaction (or an aggregate of several).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QueryCost {
    /// Simulated elapsed milliseconds.
    pub sim_ms: f64,
    /// Bytes shipped over the network.
    pub bytes: usize,
    /// Rows shipped to the assembly site.
    pub rows_shipped: usize,
    /// Rows the source engine examined to answer.
    pub rows_scanned: usize,
    /// Requests issued.
    pub requests: usize,
}

impl QueryCost {
    /// Sequential composition: costs add.
    pub fn then(self, other: QueryCost) -> QueryCost {
        QueryCost {
            sim_ms: self.sim_ms + other.sim_ms,
            bytes: self.bytes + other.bytes,
            rows_shipped: self.rows_shipped + other.rows_shipped,
            rows_scanned: self.rows_scanned + other.rows_scanned,
            requests: self.requests + other.requests,
        }
    }

    /// Parallel composition: elapsed time is the max, volumes add.
    pub fn alongside(self, other: QueryCost) -> QueryCost {
        QueryCost {
            sim_ms: self.sim_ms.max(other.sim_ms),
            bytes: self.bytes + other.bytes,
            rows_shipped: self.rows_shipped + other.rows_shipped,
            rows_scanned: self.rows_scanned + other.rows_scanned,
            requests: self.requests + other.requests,
        }
    }
}

/// Per-source accumulated transfer statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize)]
pub struct SourceTraffic {
    pub requests: usize,
    pub bytes: usize,
    pub rows: usize,
    pub sim_ms: f64,
    /// Requests that failed (injected fault, outage, or timeout).
    pub failures: usize,
    /// Requests that were re-issued after a failure.
    pub retries: usize,
    /// Bytes a federated plan *would* have shipped from this source but did
    /// not, because a materialized view or the semantic result cache
    /// answered instead.
    pub bytes_saved: usize,
    /// Backup (hedged) requests launched against this source. The losing
    /// fetch's bytes and requests are in the plain counters — hedging pays
    /// real traffic for latency — this counts how often it fired.
    pub hedges: usize,
}

/// A shared ledger recording all traffic by source name. Cloning shares the
/// underlying ledger.
#[derive(Debug, Clone, Default)]
pub struct TransferLedger {
    inner: Arc<Mutex<BTreeMap<String, SourceTraffic>>>,
}

impl TransferLedger {
    /// New empty ledger.
    pub fn new() -> Self {
        TransferLedger::default()
    }

    /// Record one transfer from `source`.
    pub fn record(&self, source: &str, bytes: usize, rows: usize, sim_ms: f64) {
        let mut inner = self.inner.lock();
        let t = inner.entry(source.to_string()).or_default();
        t.requests += 1;
        t.bytes += bytes;
        t.rows += rows;
        t.sim_ms += sim_ms;
    }

    /// Record one failed request from `source`.
    pub fn record_failure(&self, source: &str) {
        self.inner.lock().entry(source.to_string()).or_default().failures += 1;
    }

    /// Record one retry (a request re-issued after a failure) to `source`.
    pub fn record_retry(&self, source: &str) {
        self.inner.lock().entry(source.to_string()).or_default().retries += 1;
    }

    /// Record one hedged (backup) request launched against `source`.
    pub fn record_hedge(&self, source: &str) {
        self.inner.lock().entry(source.to_string()).or_default().hedges += 1;
    }

    /// Record bytes a query avoided shipping from `source` (served from a
    /// materialized view or the result cache instead of the live source).
    /// These bytes do NOT count toward [`SourceTraffic::bytes`].
    pub fn record_saved(&self, source: &str, bytes: usize) {
        self.inner
            .lock()
            .entry(source.to_string())
            .or_default()
            .bytes_saved += bytes;
    }

    /// Traffic attributed to one source.
    pub fn traffic(&self, source: &str) -> SourceTraffic {
        self.inner.lock().get(source).copied().unwrap_or_default()
    }

    /// Sum over all sources.
    pub fn total(&self) -> SourceTraffic {
        let inner = self.inner.lock();
        inner.values().fold(SourceTraffic::default(), |a, b| {
            SourceTraffic {
                requests: a.requests + b.requests,
                bytes: a.bytes + b.bytes,
                rows: a.rows + b.rows,
                sim_ms: a.sim_ms + b.sim_ms,
                failures: a.failures + b.failures,
                retries: a.retries + b.retries,
                bytes_saved: a.bytes_saved + b.bytes_saved,
                hedges: a.hedges + b.hedges,
            }
        })
    }

    /// Snapshot of all per-source entries, sorted by source name.
    pub fn snapshot(&self) -> Vec<(String, SourceTraffic)> {
        self.inner
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Clear all counters (between experiment trials).
    pub fn reset(&self) {
        self.inner.lock().clear();
    }
}

// ── Fault injection ─────────────────────────────────────────────────────
//
// Sources in a real enterprise go away: machines reboot, WANs partition,
// engines hang. The fault layer makes that observable and *deterministic* —
// content-addressed dice (a pure function of profile seed, request
// fingerprint, and attempt number) decide each request's fate, and
// transient outages are windows on the simulated clock, so every
// experiment replays exactly, even with branches racing in parallel.

use eii_data::{EiiError, Result, SimClock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::connector::{Connector, SourceAnswer, SourceQuery, UpdateOp, UpdateResult};

/// Deterministic fault model for one source.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Probability an individual request fails outright (connection
    /// refused, engine error).
    pub fail_prob: f64,
    /// Probability an individual request hangs until the client deadline.
    pub timeout_prob: f64,
    /// Probability a request succeeds but suffers a latency spike.
    pub spike_prob: f64,
    /// Extra simulated latency a spike adds, ms.
    pub spike_ms: i64,
    /// How long a caller waits on a hung request before declaring a
    /// timeout, simulated ms.
    pub deadline_ms: i64,
    /// Transient outage windows `[start_ms, end_ms)` on the simulated
    /// clock. Every request inside a window fails regardless of the dice;
    /// once the window passes, the source heals.
    pub outages: Vec<(i64, i64)>,
    /// RNG seed: same profile, same request sequence, same faults.
    pub seed: u64,
}

impl FaultProfile {
    /// A profile that never faults (useful as a baseline control).
    pub fn none() -> Self {
        FaultProfile {
            fail_prob: 0.0,
            timeout_prob: 0.0,
            spike_prob: 0.0,
            spike_ms: 0,
            deadline_ms: 1_000,
            outages: Vec::new(),
            seed: 0,
        }
    }

    /// Each request fails independently with probability `fail_prob`.
    pub fn failing(fail_prob: f64, seed: u64) -> Self {
        FaultProfile {
            fail_prob,
            seed,
            ..FaultProfile::none()
        }
    }

    /// Add a transient outage window `[start_ms, end_ms)`.
    pub fn with_outage(mut self, start_ms: i64, end_ms: i64) -> Self {
        assert!(start_ms <= end_ms, "outage window must not be inverted");
        self.outages.push((start_ms, end_ms));
        self
    }

    /// Requests additionally hang (then time out) with this probability.
    pub fn with_timeouts(mut self, timeout_prob: f64, deadline_ms: i64) -> Self {
        self.timeout_prob = timeout_prob;
        self.deadline_ms = deadline_ms;
        self
    }

    /// Requests additionally suffer latency spikes with this probability.
    pub fn with_spikes(mut self, spike_prob: f64, spike_ms: i64) -> Self {
        self.spike_prob = spike_prob;
        self.spike_ms = spike_ms;
        self
    }

    /// Reseed the fault dice (same profile + seed → same fault sequence).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// True if `now_ms` falls inside an outage window.
    pub fn in_outage(&self, now_ms: i64) -> bool {
        self.outages.iter().any(|&(s, e)| now_ms >= s && now_ms < e)
    }
}

/// One request's fate, as decided by a [`FaultInjector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// The request goes through, with `extra_ms` of added latency.
    Deliver { extra_ms: i64 },
    /// The request fails immediately.
    Fail,
    /// The request hangs; the caller gives up at its deadline.
    Timeout,
}

/// Mix (seed, fingerprint, attempt) into one word — a splitmix64-style
/// finalizer, so nearby inputs land far apart in roll space.
fn mix3(seed: u64, fingerprint: u64, attempt: u64) -> u64 {
    let mut x = seed ^ fingerprint.rotate_left(25) ^ attempt.rotate_left(47);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Rolls the dice for each request against a [`FaultProfile`].
///
/// Rolls are **content-addressed**, not drawn from one sequential stream:
/// a request's fate is a pure function of `(profile seed, request
/// fingerprint, per-fingerprint attempt number)`. Concurrent requests —
/// parallel plan branches, racing partition fetches — therefore get the
/// same fates regardless of which thread asks first, which is what keeps
/// chaos traces bit-identical under real parallelism. Retries of the same
/// request advance its private attempt counter, so backoff still heals.
#[derive(Debug)]
pub struct FaultInjector {
    profile: FaultProfile,
    attempts: Mutex<BTreeMap<u64, u64>>,
}

impl FaultInjector {
    /// Injector for the given profile.
    pub fn new(profile: FaultProfile) -> Self {
        FaultInjector {
            profile,
            attempts: Mutex::new(BTreeMap::new()),
        }
    }

    /// The profile this injector rolls against.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Decide the fate of one request issued at simulated time `now_ms`,
    /// where `fingerprint` identifies the request's content (same query,
    /// same fingerprint; retries share it and are sequenced by an attempt
    /// counter).
    ///
    /// Outage windows override the dice (and do not consume a roll), so
    /// retry behavior around an outage is independent of its timing.
    pub fn decide(&self, now_ms: i64, fingerprint: u64) -> FaultDecision {
        if self.profile.in_outage(now_ms) {
            return FaultDecision::Fail;
        }
        let p = &self.profile;
        if p.fail_prob <= 0.0 && p.timeout_prob <= 0.0 && p.spike_prob <= 0.0 {
            return FaultDecision::Deliver { extra_ms: 0 };
        }
        let attempt = {
            let mut attempts = self.attempts.lock();
            let n = attempts.entry(fingerprint).or_insert(0);
            let a = *n;
            *n += 1;
            a
        };
        let roll: f64 = StdRng::seed_from_u64(mix3(p.seed, fingerprint, attempt))
            .gen_range(0.0..1.0);
        if roll < p.fail_prob {
            FaultDecision::Fail
        } else if roll < p.fail_prob + p.timeout_prob {
            FaultDecision::Timeout
        } else if roll < p.fail_prob + p.timeout_prob + p.spike_prob {
            FaultDecision::Deliver {
                extra_ms: p.spike_ms,
            }
        } else {
            FaultDecision::Deliver { extra_ms: 0 }
        }
    }
}

/// Stable fingerprint of a request's content: FNV-1a over its `Debug`
/// rendering. Identical requests (e.g. a retry of the same pushed-down
/// query) share a fingerprint; any difference in table, filters, bindings,
/// or limit separates them, so each distinct request rolls independent
/// fault dice no matter what order threads issue them in.
fn request_fingerprint(request: &impl std::fmt::Debug) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in format!("{request:?}").bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A connector wrapper that subjects every `execute`/`update` to a
/// [`FaultProfile`]. Metadata calls (schemas, statistics, capabilities) are
/// never faulted — they model locally cached catalog information.
pub struct FaultyConnector {
    inner: Arc<dyn Connector>,
    injector: FaultInjector,
    clock: SimClock,
    ledger: TransferLedger,
}

impl FaultyConnector {
    /// Wrap `inner`, rolling faults from `profile` on the given clock and
    /// recording failures in `ledger`.
    pub fn new(
        inner: Arc<dyn Connector>,
        profile: FaultProfile,
        clock: SimClock,
        ledger: TransferLedger,
    ) -> Self {
        FaultyConnector {
            inner,
            injector: FaultInjector::new(profile),
            clock,
            ledger,
        }
    }

    /// The wrapped connector.
    pub fn inner(&self) -> &Arc<dyn Connector> {
        &self.inner
    }

    fn gate(&self, fingerprint: u64) -> Result<i64> {
        // A cancelled or out-of-budget query never reaches the source; that
        // is a caller decision, not a source failure, so nothing is rolled
        // and nothing is recorded against the source.
        let ctx = crate::ctx::current_ctx();
        if let Some(ctx) = &ctx {
            ctx.check()?;
        }
        match self.injector.decide(self.clock.now_ms(), fingerprint) {
            FaultDecision::Deliver { extra_ms } => Ok(extra_ms),
            FaultDecision::Fail => {
                self.ledger.record_failure(self.inner.name());
                Err(EiiError::Source(format!(
                    "injected fault: {} refused the request",
                    self.inner.name()
                )))
            }
            FaultDecision::Timeout => {
                let deadline = self.injector.profile().deadline_ms;
                // The caller waits out its full per-request deadline — or
                // only its remaining query budget, whichever runs out first
                // (a shrinking sub-budget: no point waiting on a hung
                // request past the point the whole query is already late).
                let wait = match ctx.as_ref().and_then(|c| c.remaining_ms()) {
                    Some(remaining) => deadline.min(remaining),
                    None => deadline,
                };
                self.clock.advance_ms(wait);
                self.ledger.record_failure(self.inner.name());
                Err(EiiError::Timeout {
                    source: self.inner.name().to_string(),
                    deadline_ms: deadline,
                    attempts: 1,
                    elapsed_ms: wait,
                })
            }
        }
    }
}

impl Connector for FaultyConnector {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn tables(&self) -> Vec<String> {
        self.inner.tables()
    }

    fn table_schema(&self, table: &str) -> Result<eii_data::SchemaRef> {
        self.inner.table_schema(table)
    }

    fn capabilities(&self) -> crate::capability::SourceCapabilities {
        self.inner.capabilities()
    }

    fn dialect(&self) -> crate::dialect::Dialect {
        self.inner.dialect()
    }

    fn statistics(&self, table: &str) -> Result<eii_storage::TableStats> {
        self.inner.statistics(table)
    }

    fn execute(&self, query: &SourceQuery) -> Result<SourceAnswer> {
        let extra_ms = self.gate(request_fingerprint(&query))?;
        if extra_ms > 0 {
            self.clock.advance_ms(extra_ms);
        }
        self.inner.execute(query)
    }

    fn update(&self, op: &UpdateOp) -> Result<UpdateResult> {
        let extra_ms = self.gate(request_fingerprint(&op))?;
        if extra_ms > 0 {
            self.clock.advance_ms(extra_ms);
        }
        self.inner.update(op)
    }

    fn changes_since(
        &self,
        table: &str,
        after_seq: u64,
    ) -> Result<(Vec<eii_storage::Change>, u64)> {
        let extra_ms = self.gate(request_fingerprint(&(table, after_seq)))?;
        if extra_ms > 0 {
            self.clock.advance_ms(extra_ms);
        }
        self.inner.changes_since(table, after_seq)
    }

    fn breaker_status(&self) -> Option<crate::resilience::BreakerStatus> {
        self.inner.breaker_status()
    }

    fn last_error(&self) -> Option<String> {
        self.inner.last_error()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eii_data::{row, DataType, Field, Schema};
    use std::sync::Arc as StdArc;

    #[test]
    fn link_cost_includes_latency_and_bandwidth() {
        let link = LinkProfile {
            latency_ms: 10.0,
            bandwidth_bytes_per_ms: 100.0,
        };
        assert!((link.transfer_ms(1000) - 20.0).abs() < 1e-9);
        assert!((LinkProfile::local().transfer_ms(1 << 30) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn xml_format_inflates_bytes() {
        let schema = StdArc::new(Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("name", DataType::Str),
        ]));
        let b = Batch::new(schema, vec![row![1i64, "alice"], row![2i64, "bob"]]);
        assert!(WireFormat::Xml.bytes_of(&b) > WireFormat::Native.bytes_of(&b));
    }

    #[test]
    fn cost_composition() {
        let a = QueryCost {
            sim_ms: 10.0,
            bytes: 100,
            rows_shipped: 1,
            rows_scanned: 5,
            requests: 1,
        };
        let b = QueryCost {
            sim_ms: 4.0,
            bytes: 50,
            rows_shipped: 2,
            rows_scanned: 3,
            requests: 1,
        };
        let seq = a.then(b);
        assert!((seq.sim_ms - 14.0).abs() < 1e-9);
        assert_eq!(seq.bytes, 150);
        let par = a.alongside(b);
        assert!((par.sim_ms - 10.0).abs() < 1e-9);
        assert_eq!(par.requests, 2);
    }

    #[test]
    fn ledger_accumulates_per_source() {
        let ledger = TransferLedger::new();
        ledger.record("crm", 100, 2, 5.0);
        ledger.record("crm", 50, 1, 2.0);
        ledger.record("orders", 10, 1, 1.0);
        let crm = ledger.traffic("crm");
        assert_eq!(crm.requests, 2);
        assert_eq!(crm.bytes, 150);
        assert_eq!(ledger.total().bytes, 160);
        ledger.reset();
        assert_eq!(ledger.total().requests, 0);
    }

    #[test]
    fn ledger_clones_share_state() {
        let a = TransferLedger::new();
        let b = a.clone();
        a.record("s", 1, 1, 1.0);
        assert_eq!(b.traffic("s").bytes, 1);
    }

    #[test]
    fn ledger_counts_failures_and_retries() {
        let ledger = TransferLedger::new();
        ledger.record_failure("crm");
        ledger.record_failure("crm");
        ledger.record_retry("crm");
        let t = ledger.traffic("crm");
        assert_eq!((t.failures, t.retries), (2, 1));
        assert_eq!(ledger.total().failures, 2);
    }

    #[test]
    fn ledger_counts_hedges() {
        let ledger = TransferLedger::new();
        ledger.record_hedge("crm");
        ledger.record_hedge("crm");
        assert_eq!(ledger.traffic("crm").hedges, 2);
        assert_eq!(ledger.total().hedges, 2);
        assert_eq!(ledger.traffic("crm").requests, 0, "hedge count is separate");
    }

    #[test]
    fn ledger_tracks_saved_bytes_separately() {
        let ledger = TransferLedger::new();
        ledger.record("crm", 100, 2, 5.0);
        ledger.record_saved("crm", 400);
        ledger.record_saved("sales", 50);
        assert_eq!(ledger.traffic("crm").bytes_saved, 400);
        assert_eq!(ledger.traffic("crm").bytes, 100, "saved bytes never shipped");
        assert_eq!(ledger.total().bytes_saved, 450);
    }

    #[test]
    fn fault_injector_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<FaultDecision> {
            let inj = FaultInjector::new(
                FaultProfile::failing(0.3, seed).with_timeouts(0.2, 100),
            );
            (0..50).map(|fp| inj.decide(0, fp)).collect()
        };
        assert_eq!(run(9), run(9), "same seed, same fault sequence");
        assert_ne!(run(9), run(10), "different seeds diverge");
        let faults = run(9)
            .iter()
            .filter(|d| !matches!(d, FaultDecision::Deliver { .. }))
            .count();
        assert!(faults > 0, "a 50% combined fault rate must fire in 50 rolls");
    }

    #[test]
    fn fault_rolls_are_independent_of_draw_order() {
        // Concurrent branches may ask in any order; each request's fate
        // must not depend on who rolled first.
        let make = || FaultInjector::new(FaultProfile::failing(0.5, 42));
        let forward = make();
        let a1 = forward.decide(0, 7);
        let b1 = forward.decide(0, 8);
        let reversed = make();
        let b2 = reversed.decide(0, 8);
        let a2 = reversed.decide(0, 7);
        assert_eq!(a1, a2, "request 7's fate is order-independent");
        assert_eq!(b1, b2, "request 8's fate is order-independent");
        // Retries of the SAME request advance its private attempt counter.
        let retry = make();
        let rolls: Vec<_> = (0..20).map(|_| retry.decide(0, 7)).collect();
        assert!(
            rolls.contains(&FaultDecision::Fail)
                && rolls
                    .iter()
                    .any(|d| matches!(d, FaultDecision::Deliver { .. })),
            "repeated attempts at p=0.5 must mix outcomes: {rolls:?}"
        );
    }

    #[test]
    fn outage_windows_override_the_dice() {
        let inj = FaultInjector::new(FaultProfile::none().with_outage(100, 200));
        assert_eq!(inj.decide(99, 0), FaultDecision::Deliver { extra_ms: 0 });
        assert_eq!(inj.decide(100, 0), FaultDecision::Fail);
        assert_eq!(inj.decide(199, 0), FaultDecision::Fail);
        assert_eq!(inj.decide(200, 0), FaultDecision::Deliver { extra_ms: 0 });
    }
}
