//! The simulated network.
//!
//! Every byte that leaves a source crosses a [`LinkProfile`] (fixed per-
//! request latency plus bandwidth-proportional transfer time) and is recorded
//! in a [`TransferLedger`]. The pushdown experiments (E3, E11) read the
//! ledger; the executor uses [`QueryCost`] to compute a plan's simulated
//! elapsed time (parallel branches take the max, sequential steps add).

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use eii_data::Batch;

/// How result rows are serialized on the wire.
///
/// `Xml` models the early-EII architecture Bitton criticizes: "Each table
/// would be converted to XML, increasing its size about 3 times".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    #[default]
    Native,
    Xml,
}

impl WireFormat {
    /// Bytes this batch occupies on the wire in this format.
    pub fn bytes_of(self, batch: &Batch) -> usize {
        match self {
            WireFormat::Native => batch.wire_size(),
            WireFormat::Xml => batch.xml_wire_size(),
        }
    }
}

/// Performance characteristics of the link between the EII server and a
/// source (or between two sources, for source-to-source shipping during
/// assembly-site selection).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProfile {
    /// Fixed cost per request round trip, simulated milliseconds.
    pub latency_ms: f64,
    /// Transfer rate, bytes per simulated millisecond.
    pub bandwidth_bytes_per_ms: f64,
}

impl LinkProfile {
    /// A LAN-ish default: 2 ms round trip, 100 KB/ms.
    pub fn lan() -> Self {
        LinkProfile {
            latency_ms: 2.0,
            bandwidth_bytes_per_ms: 100_000.0,
        }
    }

    /// A WAN-ish link: 40 ms round trip, 5 KB/ms.
    pub fn wan() -> Self {
        LinkProfile {
            latency_ms: 40.0,
            bandwidth_bytes_per_ms: 5_000.0,
        }
    }

    /// Zero-cost link (co-located source; also useful in unit tests).
    pub fn local() -> Self {
        LinkProfile {
            latency_ms: 0.0,
            bandwidth_bytes_per_ms: f64::INFINITY,
        }
    }

    /// Simulated time to move `bytes` over this link in one request.
    pub fn transfer_ms(&self, bytes: usize) -> f64 {
        if self.bandwidth_bytes_per_ms.is_infinite() {
            self.latency_ms
        } else {
            self.latency_ms + bytes as f64 / self.bandwidth_bytes_per_ms
        }
    }
}

/// Cost of one source interaction (or an aggregate of several).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QueryCost {
    /// Simulated elapsed milliseconds.
    pub sim_ms: f64,
    /// Bytes shipped over the network.
    pub bytes: usize,
    /// Rows shipped to the assembly site.
    pub rows_shipped: usize,
    /// Rows the source engine examined to answer.
    pub rows_scanned: usize,
    /// Requests issued.
    pub requests: usize,
}

impl QueryCost {
    /// Sequential composition: costs add.
    pub fn then(self, other: QueryCost) -> QueryCost {
        QueryCost {
            sim_ms: self.sim_ms + other.sim_ms,
            bytes: self.bytes + other.bytes,
            rows_shipped: self.rows_shipped + other.rows_shipped,
            rows_scanned: self.rows_scanned + other.rows_scanned,
            requests: self.requests + other.requests,
        }
    }

    /// Parallel composition: elapsed time is the max, volumes add.
    pub fn alongside(self, other: QueryCost) -> QueryCost {
        QueryCost {
            sim_ms: self.sim_ms.max(other.sim_ms),
            bytes: self.bytes + other.bytes,
            rows_shipped: self.rows_shipped + other.rows_shipped,
            rows_scanned: self.rows_scanned + other.rows_scanned,
            requests: self.requests + other.requests,
        }
    }
}

/// Per-source accumulated transfer statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SourceTraffic {
    pub requests: usize,
    pub bytes: usize,
    pub rows: usize,
    pub sim_ms: f64,
}

/// A shared ledger recording all traffic by source name. Cloning shares the
/// underlying ledger.
#[derive(Debug, Clone, Default)]
pub struct TransferLedger {
    inner: Arc<Mutex<BTreeMap<String, SourceTraffic>>>,
}

impl TransferLedger {
    /// New empty ledger.
    pub fn new() -> Self {
        TransferLedger::default()
    }

    /// Record one transfer from `source`.
    pub fn record(&self, source: &str, bytes: usize, rows: usize, sim_ms: f64) {
        let mut inner = self.inner.lock();
        let t = inner.entry(source.to_string()).or_default();
        t.requests += 1;
        t.bytes += bytes;
        t.rows += rows;
        t.sim_ms += sim_ms;
    }

    /// Traffic attributed to one source.
    pub fn traffic(&self, source: &str) -> SourceTraffic {
        self.inner.lock().get(source).copied().unwrap_or_default()
    }

    /// Sum over all sources.
    pub fn total(&self) -> SourceTraffic {
        let inner = self.inner.lock();
        inner.values().fold(SourceTraffic::default(), |a, b| {
            SourceTraffic {
                requests: a.requests + b.requests,
                bytes: a.bytes + b.bytes,
                rows: a.rows + b.rows,
                sim_ms: a.sim_ms + b.sim_ms,
            }
        })
    }

    /// Snapshot of all per-source entries, sorted by source name.
    pub fn snapshot(&self) -> Vec<(String, SourceTraffic)> {
        self.inner
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Clear all counters (between experiment trials).
    pub fn reset(&self) {
        self.inner.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eii_data::{row, DataType, Field, Schema};
    use std::sync::Arc as StdArc;

    #[test]
    fn link_cost_includes_latency_and_bandwidth() {
        let link = LinkProfile {
            latency_ms: 10.0,
            bandwidth_bytes_per_ms: 100.0,
        };
        assert!((link.transfer_ms(1000) - 20.0).abs() < 1e-9);
        assert!((LinkProfile::local().transfer_ms(1 << 30) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn xml_format_inflates_bytes() {
        let schema = StdArc::new(Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("name", DataType::Str),
        ]));
        let b = Batch::new(schema, vec![row![1i64, "alice"], row![2i64, "bob"]]);
        assert!(WireFormat::Xml.bytes_of(&b) > WireFormat::Native.bytes_of(&b));
    }

    #[test]
    fn cost_composition() {
        let a = QueryCost {
            sim_ms: 10.0,
            bytes: 100,
            rows_shipped: 1,
            rows_scanned: 5,
            requests: 1,
        };
        let b = QueryCost {
            sim_ms: 4.0,
            bytes: 50,
            rows_shipped: 2,
            rows_scanned: 3,
            requests: 1,
        };
        let seq = a.then(b);
        assert!((seq.sim_ms - 14.0).abs() < 1e-9);
        assert_eq!(seq.bytes, 150);
        let par = a.alongside(b);
        assert!((par.sim_ms - 10.0).abs() < 1e-9);
        assert_eq!(par.requests, 2);
    }

    #[test]
    fn ledger_accumulates_per_source() {
        let ledger = TransferLedger::new();
        ledger.record("crm", 100, 2, 5.0);
        ledger.record("crm", 50, 1, 2.0);
        ledger.record("orders", 10, 1, 1.0);
        let crm = ledger.traffic("crm");
        assert_eq!(crm.requests, 2);
        assert_eq!(crm.bytes, 150);
        assert_eq!(ledger.total().bytes, 160);
        ledger.reset();
        assert_eq!(ledger.total().requests, 0);
    }

    #[test]
    fn ledger_clones_share_state() {
        let a = TransferLedger::new();
        let b = a.clone();
        a.record("s", 1, 1, 1.0);
        assert_eq!(b.traffic("s").bytes, 1);
    }
}
