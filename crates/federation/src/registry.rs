//! The federation registry: every wrapped source the EII engine can reach,
//! each behind its simulated network link.

use std::collections::BTreeMap;
use std::sync::Arc;

use eii_data::{Batch, EiiError, Result, SchemaRef, SimClock};
use eii_obs::MetricsRegistry;
use eii_storage::TableStats;
use parking_lot::RwLock;

use crate::connector::{Connector, SourceQuery, UpdateOp, UpdateResult};
use crate::ctx::{with_request_ctx, RequestCtx};
use crate::health::SourceHealth;
use crate::net::{FaultProfile, FaultyConnector, LinkProfile, QueryCost, TransferLedger, WireFormat};
use crate::resilience::{CircuitBreakerConfig, ResilientConnector, RetryPolicy};

/// What a hedged fetch ([`SourceHandle::query_hedged`]) actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HedgeOutcome {
    /// A backup request was launched.
    pub fired: bool,
    /// The backup's answer won the race (arrived before the primary's).
    pub backup_won: bool,
}

/// Callback fired after a successful write routed through a
/// [`SourceHandle`], with the source and table names. Listeners run on the
/// writer's thread with no federation lock held; they must not issue
/// further writes through the federation (re-entrant maintenance would
/// recurse).
pub type WriteListener = Arc<dyn Fn(&str, &str) + Send + Sync>;

/// A registered source: connector + link + wire format.
#[derive(Clone)]
pub struct SourceHandle {
    connector: Arc<dyn Connector>,
    link: LinkProfile,
    wire: WireFormat,
    ledger: TransferLedger,
    metrics: MetricsRegistry,
    /// Source-engine scan speed, simulated ms per row examined.
    scan_ms_per_row: f64,
    /// Shared with the owning [`Federation`]: listeners registered after
    /// this handle was cloned out still fire.
    write_listeners: Arc<RwLock<Vec<WriteListener>>>,
}

impl SourceHandle {
    /// The wrapped connector.
    pub fn connector(&self) -> &Arc<dyn Connector> {
        &self.connector
    }

    /// The link profile.
    pub fn link(&self) -> LinkProfile {
        self.link
    }

    /// The wire format results ship in.
    pub fn wire_format(&self) -> WireFormat {
        self.wire
    }

    /// Execute a component query, paying for source work and the network,
    /// and recording the traffic in the federation's ledger.
    pub fn query(&self, q: &SourceQuery) -> Result<(Batch, QueryCost)> {
        let ans = self.connector.execute(q)?;
        let bytes = self.wire.bytes_of(&ans.batch);
        let transfer = if self.link.bandwidth_bytes_per_ms.is_infinite() {
            0.0
        } else {
            bytes as f64 / self.link.bandwidth_bytes_per_ms
        };
        let sim_ms = self.link.latency_ms * ans.calls as f64
            + transfer
            + ans.rows_scanned as f64 * self.scan_ms_per_row;
        let cost = QueryCost {
            sim_ms,
            bytes,
            rows_shipped: ans.batch.num_rows(),
            rows_scanned: ans.rows_scanned,
            requests: ans.calls,
        };
        self.ledger
            .record(self.connector.name(), bytes, ans.batch.num_rows(), sim_ms);
        self.note_traffic(bytes, ans.calls, sim_ms);
        Ok((ans.batch, cost))
    }

    /// [`SourceHandle::query`] under a request context: the fetch is skipped
    /// when the query is already cancelled or out of budget, the context is
    /// visible to the fault/resilience wrappers (so a hung request waits
    /// only the remaining budget and a retry loop stops when cancelled), and
    /// the fetch's simulated cost is charged against the deadline.
    pub fn query_ctx(&self, q: &SourceQuery, ctx: &RequestCtx) -> Result<(Batch, QueryCost)> {
        if ctx.is_empty() {
            return self.query(q);
        }
        ctx.check()?;
        let (batch, cost) = with_request_ctx(ctx, || self.query(q))?;
        if let Some(deadline) = &ctx.deadline {
            deadline.charge(cost.sim_ms);
            deadline.check()?;
        }
        Ok((batch, cost))
    }

    /// A hedged fetch: issue the primary request and a deterministic backup
    /// `delay_ms` (simulated) later, and answer with whichever returns
    /// first on the virtual timeline. Both requests really run — the
    /// loser's bytes, rows, and round trips are charged to the ledger
    /// exactly as any other fetch (hedging buys latency with traffic) and
    /// the hedge itself is counted via [`TransferLedger::record_hedge`].
    /// The race is resolved on simulated time, so the winner — and the
    /// combined cost — replays identically across runs.
    ///
    /// A hedge also papers over a transient fault: if one of the two
    /// requests fails, the surviving answer is used.
    pub fn query_hedged(
        &self,
        q: &SourceQuery,
        ctx: &RequestCtx,
        delay_ms: f64,
    ) -> Result<(Batch, QueryCost, HedgeOutcome)> {
        ctx.check()?;
        let primary = with_request_ctx(ctx, || self.query(q));
        self.ledger.record_hedge(self.connector.name());
        let backup = with_request_ctx(ctx, || self.query(q));
        let outcome = |backup_won| HedgeOutcome {
            fired: true,
            backup_won,
        };
        let (batch, cost, out) = match (primary, backup) {
            (Ok((pb, pc)), Ok((bb, bc))) => {
                // Both answered: the race is decided on virtual time. The
                // loser's volumes still count — those bytes really moved.
                let backup_arrival = delay_ms + bc.sim_ms;
                let backup_won = backup_arrival < pc.sim_ms;
                let combined = QueryCost {
                    sim_ms: pc.sim_ms.min(backup_arrival),
                    bytes: pc.bytes + bc.bytes,
                    rows_shipped: pc.rows_shipped + bc.rows_shipped,
                    rows_scanned: pc.rows_scanned + bc.rows_scanned,
                    requests: pc.requests + bc.requests,
                };
                let batch = if backup_won { bb } else { pb };
                (batch, combined, outcome(backup_won))
            }
            (Err(_), Ok((bb, bc))) => {
                let cost = QueryCost {
                    sim_ms: delay_ms + bc.sim_ms,
                    ..bc
                };
                (bb, cost, outcome(true))
            }
            (Ok((pb, pc)), Err(_)) => (pb, pc, outcome(false)),
            (Err(pe), Err(_)) => return Err(pe),
        };
        if let Some(deadline) = &ctx.deadline {
            deadline.charge(cost.sim_ms);
            deadline.check()?;
        }
        Ok((batch, cost, out))
    }

    /// Record shipped bytes and round trips as per-source counters, and
    /// the interaction's simulated latency into the per-source quantile
    /// sketch (`source.<name>.latency_ms`). Latencies are simulated, so
    /// the sketch's percentiles are deterministic across same-seed runs.
    fn note_traffic(&self, bytes: usize, requests: usize, sim_ms: f64) {
        let name = self.connector.name();
        self.metrics
            .add(&format!("source.{name}.bytes_shipped"), bytes as u64);
        self.metrics
            .add(&format!("source.{name}.requests"), requests as u64);
        self.metrics
            .record_quantile(&format!("source.{name}.latency_ms"), sim_ms);
    }

    /// Execute a component query whose results STAY at the source site
    /// (the source is hosting an at-site join): the source does its scan
    /// work and pays one request round trip, but ships nothing.
    pub fn query_staying_local(&self, q: &SourceQuery) -> Result<(Batch, QueryCost)> {
        let ans = self.connector.execute(q)?;
        let sim_ms = self.link.latency_ms * ans.calls as f64
            + ans.rows_scanned as f64 * self.scan_ms_per_row;
        let cost = QueryCost {
            sim_ms,
            bytes: 0,
            rows_shipped: 0,
            rows_scanned: ans.rows_scanned,
            requests: ans.calls,
        };
        self.ledger
            .record(self.connector.name(), 0, 0, sim_ms);
        self.note_traffic(0, ans.calls, sim_ms);
        Ok((ans.batch, cost))
    }

    /// [`SourceHandle::query_staying_local`] under a request context: same
    /// skip/visibility/charging semantics as [`SourceHandle::query_ctx`].
    pub fn query_staying_local_ctx(
        &self,
        q: &SourceQuery,
        ctx: &RequestCtx,
    ) -> Result<(Batch, QueryCost)> {
        if ctx.is_empty() {
            return self.query_staying_local(q);
        }
        ctx.check()?;
        let (batch, cost) = with_request_ctx(ctx, || self.query_staying_local(q))?;
        if let Some(deadline) = &ctx.deadline {
            deadline.charge(cost.sim_ms);
            deadline.check()?;
        }
        Ok((batch, cost))
    }

    /// Charge a shipment of `batch` across this source's link (used when an
    /// intermediate result moves to or from this site during an at-source
    /// join). Records the traffic and returns its cost.
    pub fn charge_shipment(&self, batch: &Batch) -> QueryCost {
        let bytes = self.wire.bytes_of(batch);
        let sim_ms = self.link.transfer_ms(bytes);
        let cost = QueryCost {
            sim_ms,
            bytes,
            rows_shipped: batch.num_rows(),
            rows_scanned: 0,
            requests: 1,
        };
        self.ledger
            .record(self.connector.name(), bytes, batch.num_rows(), sim_ms);
        self.note_traffic(bytes, 1, sim_ms);
        cost
    }

    /// Execute a component query as `partitions` parallel partition scans,
    /// one worker thread per partition, reassembling the rows in partition
    /// order (so the result is row-identical to the serial scan). Each
    /// partition pays its own link latency and ships its own bytes; the
    /// combined cost overlaps the partitions in simulated time
    /// ([`QueryCost::alongside`]) while bytes, rows, and scan effort add up
    /// exactly as the serial scan would record them.
    ///
    /// The connector must support partitioned scans
    /// ([`Connector::supports_partitioned_scans`]); callers gate on that.
    pub fn query_partitioned(
        &self,
        q: &SourceQuery,
        partitions: usize,
    ) -> Result<(Batch, QueryCost)> {
        self.query_partitioned_ctx(q, partitions, &RequestCtx::new())
    }

    /// [`SourceHandle::query_partitioned`] under a request context. The
    /// context is installed inside every partition worker, so each sibling
    /// scan checks for cancellation before it issues its request — the
    /// moment the query is cancelled or a parallel branch fails, the
    /// remaining partitions stop instead of scanning to completion.
    pub fn query_partitioned_ctx(
        &self,
        q: &SourceQuery,
        partitions: usize,
        ctx: &RequestCtx,
    ) -> Result<(Batch, QueryCost)> {
        if partitions <= 1 {
            return self.query_ctx(q, ctx);
        }
        ctx.check()?;
        let answers: Vec<crate::connector::SourceAnswer> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..partitions)
                .map(|part| {
                    s.spawn(move || {
                        with_request_ctx(ctx, || {
                            ctx.check()?;
                            self.connector.execute_partition(q, part, partitions)
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(_) => Err(EiiError::Execution(
                        "partition scan worker panicked".into(),
                    )),
                })
                .collect::<Result<Vec<_>>>()
        })?;
        let mut total = QueryCost::default();
        let mut rows = Vec::new();
        let mut schema = None;
        for ans in answers {
            let bytes = self.wire.bytes_of(&ans.batch);
            let transfer = if self.link.bandwidth_bytes_per_ms.is_infinite() {
                0.0
            } else {
                bytes as f64 / self.link.bandwidth_bytes_per_ms
            };
            let sim_ms = self.link.latency_ms * ans.calls as f64
                + transfer
                + ans.rows_scanned as f64 * self.scan_ms_per_row;
            let cost = QueryCost {
                sim_ms,
                bytes,
                rows_shipped: ans.batch.num_rows(),
                rows_scanned: ans.rows_scanned,
                requests: ans.calls,
            };
            self.ledger
                .record(self.connector.name(), bytes, ans.batch.num_rows(), sim_ms);
            self.note_traffic(bytes, ans.calls, sim_ms);
            total = total.alongside(cost);
            schema.get_or_insert_with(|| ans.batch.schema().clone());
            rows.extend(ans.batch.into_rows());
        }
        let schema = schema.ok_or_else(|| {
            EiiError::Execution("partitioned scan produced no partitions".into())
        })?;
        if let Some(deadline) = &ctx.deadline {
            deadline.charge(total.sim_ms);
            deadline.check()?;
        }
        Ok((Batch::new(schema, rows), total))
    }

    /// Route an update through the wrapper (one round trip). Successful
    /// writes notify the federation's [`WriteListener`]s — the hook eager
    /// (`RefreshPolicy::Live`-style) view maintenance rides.
    pub fn update(&self, op: &UpdateOp) -> Result<(UpdateResult, QueryCost)> {
        let res = self.connector.update(op)?;
        let cost = QueryCost {
            sim_ms: self.link.latency_ms,
            bytes: 64, // request envelope
            rows_shipped: 0,
            rows_scanned: 0,
            requests: 1,
        };
        self.ledger.record(self.connector.name(), 64, 0, cost.sim_ms);
        let listeners: Vec<WriteListener> = self.write_listeners.read().clone();
        for listener in listeners {
            listener(self.connector.name(), op.table());
        }
        Ok((res, cost))
    }
}

/// The set of sources participating in an integration application.
///
/// The registry is interior-mutable: registration, fault injection,
/// hardening, and wire-format switches all take `&self` (a short write
/// lock), so a `Federation` inside an `Arc<EiiSystem>` can be reconfigured
/// while concurrent queries hold only read locks. Cloning snapshots the
/// source map (the ledger, clock, and metrics stay shared), which is what
/// the materialized-view manager relies on to pin the source topology it
/// refreshes against.
#[derive(Default)]
pub struct Federation {
    sources: RwLock<BTreeMap<String, SourceHandle>>,
    ledger: TransferLedger,
    clock: SimClock,
    metrics: MetricsRegistry,
    /// Fired after every successful write through any handle; shared (like
    /// the ledger) across clones and cloned-out handles.
    write_listeners: Arc<RwLock<Vec<WriteListener>>>,
}

impl Clone for Federation {
    fn clone(&self) -> Self {
        Federation {
            sources: RwLock::new(self.sources.read().clone()),
            ledger: self.ledger.clone(),
            clock: self.clock.clone(),
            metrics: self.metrics.clone(),
            write_listeners: self.write_listeners.clone(),
        }
    }
}

impl Federation {
    /// Empty federation on its own clock.
    pub fn new() -> Self {
        Federation::default()
    }

    /// Empty federation telling time through `clock` (fault windows,
    /// retry backoff, and breaker cooldowns all read it).
    pub fn with_clock(clock: SimClock) -> Self {
        Federation {
            clock,
            ..Federation::default()
        }
    }

    /// The shared traffic ledger.
    pub fn ledger(&self) -> &TransferLedger {
        &self.ledger
    }

    /// The clock the federation's fault and resilience machinery reads.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The shared metrics registry every source and breaker records into.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Unified health view of every source, sorted by name: accumulated
    /// traffic from the [`TransferLedger`] plus, for hardened sources,
    /// breaker state and the last observed error.
    pub fn source_health(&self) -> Vec<SourceHealth> {
        self.sources
            .read()
            .iter()
            .map(|(name, h)| SourceHealth {
                source: name.clone(),
                traffic: self.ledger.traffic(name),
                breaker: h.connector.breaker_status(),
                last_error: h.connector.last_error(),
            })
            .collect()
    }

    /// Register a connector behind a link. The source name comes from the
    /// connector.
    pub fn register(
        &self,
        connector: Arc<dyn Connector>,
        link: LinkProfile,
        wire: WireFormat,
    ) -> Result<()> {
        let name = connector.name().to_string();
        let mut sources = self.sources.write();
        if sources.contains_key(&name) {
            return Err(EiiError::AlreadyExists(format!("source {name}")));
        }
        sources.insert(
            name,
            SourceHandle {
                connector,
                link,
                wire,
                ledger: self.ledger.clone(),
                metrics: self.metrics.clone(),
                scan_ms_per_row: 0.001,
                write_listeners: self.write_listeners.clone(),
            },
        );
        Ok(())
    }

    /// Register a callback fired after every successful write through any
    /// of this federation's sources (including handles cloned out before
    /// the registration). Eager view maintenance subscribes here.
    pub fn add_write_listener(&self, listener: WriteListener) {
        self.write_listeners.write().push(listener);
    }

    /// Run `f` on the named source's handle under the write lock.
    fn with_source_mut(
        &self,
        source: &str,
        f: impl FnOnce(&mut SourceHandle),
    ) -> Result<()> {
        let mut sources = self.sources.write();
        let h = sources
            .get_mut(source)
            .ok_or_else(|| EiiError::NotFound(format!("source {source}")))?;
        f(h);
        Ok(())
    }

    /// Adjust a registered source's scan speed (experiments that model slow
    /// engines).
    pub fn set_scan_speed(&self, source: &str, ms_per_row: f64) -> Result<()> {
        self.with_source_mut(source, |h| h.scan_ms_per_row = ms_per_row)
    }

    /// Subject a registered source to a [`FaultProfile`]: every subsequent
    /// `execute`/`update` rolls seeded dice and may fail, hang, or slow
    /// down. Layer [`Federation::harden`] on top to survive the faults.
    pub fn inject_faults(&self, source: &str, profile: FaultProfile) -> Result<()> {
        let clock = self.clock.clone();
        let ledger = self.ledger.clone();
        self.with_source_mut(source, |h| {
            h.connector = Arc::new(FaultyConnector::new(
                h.connector.clone(),
                profile,
                clock,
                ledger,
            ));
        })
    }

    /// Harden a registered source with retry/backoff and a circuit breaker.
    /// Apply after [`Federation::inject_faults`] so the resilience layer
    /// wraps the faulty transport, as it would in production.
    pub fn harden(
        &self,
        source: &str,
        policy: RetryPolicy,
        breaker: CircuitBreakerConfig,
    ) -> Result<()> {
        let clock = self.clock.clone();
        let ledger = self.ledger.clone();
        let metrics = self.metrics.clone();
        self.with_source_mut(source, |h| {
            h.connector = Arc::new(
                ResilientConnector::new(h.connector.clone(), policy, breaker, clock, ledger)
                    .instrumented(metrics),
            );
        })
    }

    /// Replace a registered source's wire format (the naive-XML ablation).
    pub fn set_wire_format(&self, source: &str, wire: WireFormat) -> Result<()> {
        self.with_source_mut(source, |h| h.wire = wire)
    }

    /// Fetch a source handle. The handle is an owned, cheap clone (shared
    /// connector, ledger, and metrics), so queries through it never hold
    /// the registry lock.
    pub fn source(&self, name: &str) -> Result<SourceHandle> {
        self.sources
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| EiiError::NotFound(format!("source {name}")))
    }

    /// All source names, sorted.
    pub fn source_names(&self) -> Vec<String> {
        self.sources.read().keys().cloned().collect()
    }

    /// Resolve a `source.table` qualified name into its parts.
    ///
    /// Errors if the name has no dot or the source is unknown.
    pub fn resolve(&self, qualified: &str) -> Result<(SourceHandle, String)> {
        let (source, table) = qualified.split_once('.').ok_or_else(|| {
            EiiError::NotFound(format!(
                "table name '{qualified}' must be qualified as source.table"
            ))
        })?;
        Ok((self.source(source)?, table.to_string()))
    }

    /// Schema of `source.table`.
    pub fn table_schema(&self, qualified: &str) -> Result<SchemaRef> {
        let (h, table) = self.resolve(qualified)?;
        h.connector.table_schema(&table)
    }

    /// Statistics of `source.table`.
    pub fn table_stats(&self, qualified: &str) -> Result<TableStats> {
        let (h, table) = self.resolve(qualified)?;
        h.connector.statistics(&table)
    }

    /// Every `source.table` pair in the federation.
    pub fn all_tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (name, h) in self.sources.read().iter() {
            for t in h.connector.tables() {
                out.push(format!("{name}.{t}"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapters::relational::RelationalConnector;
    use eii_data::{row, DataType, Field, Schema, SimClock};
    use eii_storage::{Database, TableDef};

    fn federation() -> Federation {
        let db = Database::new("crm", SimClock::new());
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int).not_null(),
            Field::new("name", DataType::Str),
        ]));
        let t = db
            .create_table(TableDef::new("customers", schema).with_primary_key(0))
            .unwrap();
        for i in 0..100i64 {
            t.write().insert(row![i, format!("cust{i}")]).unwrap();
        }
        let fed = Federation::new();
        fed.register(
            Arc::new(RelationalConnector::new(db)),
            LinkProfile::wan(),
            WireFormat::Native,
        )
        .unwrap();
        fed
    }

    #[test]
    fn resolve_and_schema() {
        let fed = federation();
        let s = fed.table_schema("crm.customers").unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(fed.table_schema("crm.ghost").unwrap_err().kind(), "not_found");
        assert_eq!(
            fed.table_schema("unqualified").unwrap_err().kind(),
            "not_found"
        );
        assert_eq!(fed.all_tables(), vec!["crm.customers"]);
    }

    #[test]
    fn query_records_costs_in_ledger() {
        let fed = federation();
        let (h, table) = fed.resolve("crm.customers").unwrap();
        let (batch, cost) = h.query(&SourceQuery::full_table(table)).unwrap();
        assert_eq!(batch.num_rows(), 100);
        assert!(cost.sim_ms > LinkProfile::wan().latency_ms);
        assert_eq!(cost.bytes, batch.wire_size());
        let traffic = fed.ledger().traffic("crm");
        assert_eq!(traffic.requests, 1);
        assert_eq!(traffic.rows, 100);
    }

    #[test]
    fn xml_wire_format_ships_more_bytes() {
        let fed = federation();
        let q = SourceQuery::full_table("customers");
        let (_, native) = fed.resolve("crm.customers").unwrap().0.query(&q).unwrap();
        fed.set_wire_format("crm", WireFormat::Xml).unwrap();
        let (_, xml) = fed.resolve("crm.customers").unwrap().0.query(&q).unwrap();
        assert!(
            xml.bytes as f64 > 1.5 * native.bytes as f64,
            "xml={} native={}",
            xml.bytes,
            native.bytes
        );
        assert!(xml.sim_ms > native.sim_ms);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let fed = federation();
        let db = Database::new("crm", SimClock::new());
        let err = fed
            .register(
                Arc::new(RelationalConnector::new(db)),
                LinkProfile::lan(),
                WireFormat::Native,
            )
            .unwrap_err();
        assert_eq!(err.kind(), "already_exists");
    }

    #[test]
    fn injected_faults_fail_queries_and_are_counted() {
        let fed = federation();
        fed.inject_faults("crm", FaultProfile::failing(1.0, 5)).unwrap();
        let (h, table) = fed.resolve("crm.customers").unwrap();
        let err = h.query(&SourceQuery::full_table(table)).unwrap_err();
        assert_eq!(err.kind(), "source");
        assert_eq!(fed.ledger().traffic("crm").failures, 1);
        assert_eq!(fed.ledger().traffic("crm").requests, 0, "nothing shipped");
    }

    #[test]
    fn injected_timeouts_wait_out_the_deadline() {
        let fed = federation();
        fed.inject_faults(
            "crm",
            FaultProfile::none().with_timeouts(1.0, 500),
        )
        .unwrap();
        let (h, table) = fed.resolve("crm.customers").unwrap();
        let err = h.query(&SourceQuery::full_table(table)).unwrap_err();
        assert_eq!(
            err,
            eii_data::EiiError::Timeout {
                source: "crm".into(),
                deadline_ms: 500,
                attempts: 1,
                elapsed_ms: 500,
            }
        );
        assert_eq!(fed.clock().now_ms(), 500);
    }

    #[test]
    fn a_deadline_caps_the_wait_on_a_hung_request() {
        let fed = federation();
        fed.inject_faults("crm", FaultProfile::none().with_timeouts(1.0, 500))
            .unwrap();
        let (h, table) = fed.resolve("crm.customers").unwrap();
        // 120 ms of budget: the hung request is abandoned there, not at the
        // full 500 ms per-request deadline.
        let deadline = eii_data::Deadline::new(fed.clock().clone(), 120);
        let ctx = RequestCtx::new().with_deadline(deadline);
        let err = h.query_ctx(&SourceQuery::full_table(table), &ctx).unwrap_err();
        assert_eq!(err.kind(), "timeout");
        if let eii_data::EiiError::Timeout { elapsed_ms, .. } = err {
            assert_eq!(elapsed_ms, 120, "waited only the remaining budget");
        }
        assert_eq!(fed.clock().now_ms(), 120);
    }

    #[test]
    fn cancelled_queries_skip_the_fetch_entirely() {
        let fed = federation();
        let (h, table) = fed.resolve("crm.customers").unwrap();
        let cancel = eii_data::CancelToken::new();
        cancel.cancel("test teardown");
        let ctx = RequestCtx::new().with_cancel(cancel);
        let err = h.query_ctx(&SourceQuery::full_table(table), &ctx).unwrap_err();
        assert_eq!(err.kind(), "cancelled");
        assert_eq!(fed.ledger().traffic("crm").requests, 0, "nothing shipped");
    }

    #[test]
    fn query_ctx_charges_the_deadline_for_accounted_work() {
        let fed = federation();
        let (h, table) = fed.resolve("crm.customers").unwrap();
        let deadline = eii_data::Deadline::new(fed.clock().clone(), 10_000);
        let ctx = RequestCtx::new().with_deadline(deadline.clone());
        let (_, cost) = h.query_ctx(&SourceQuery::full_table(table), &ctx).unwrap();
        assert!(cost.sim_ms > 0.0);
        assert_eq!(deadline.elapsed_ms(), cost.sim_ms.round() as i64);
    }

    #[test]
    fn cancellation_tears_down_sibling_partition_scans() {
        let fed = federation();
        let (h, table) = fed.resolve("crm.customers").unwrap();
        let cancel = eii_data::CancelToken::new();
        cancel.cancel("sibling branch failed");
        let ctx = RequestCtx::new().with_cancel(cancel);
        let err = h
            .query_partitioned_ctx(&SourceQuery::full_table(table), 4, &ctx)
            .unwrap_err();
        assert_eq!(err.kind(), "cancelled");
        assert_eq!(
            fed.ledger().traffic("crm").bytes,
            0,
            "no partition shipped anything after the cancel"
        );
    }

    #[test]
    fn hedged_fetch_is_deterministic_and_charges_both_requests() {
        let serial = federation();
        let (h, table) = serial.resolve("crm.customers").unwrap();
        let (sb, sc) = h.query(&SourceQuery::full_table(table)).unwrap();

        let fed = federation();
        let (h, table) = fed.resolve("crm.customers").unwrap();
        let ctx = RequestCtx::new();
        let (batch, cost, out) = h
            .query_hedged(&SourceQuery::full_table(&table), &ctx, 5.0)
            .unwrap();
        assert_eq!(batch.rows(), sb.rows(), "hedged answer is bit-identical");
        assert!(out.fired);
        assert!(
            !out.backup_won,
            "identical latencies: the primary wins (backup starts later)"
        );
        assert_eq!(cost.bytes, 2 * sc.bytes, "the losing fetch still shipped");
        assert_eq!(cost.requests, 2 * sc.requests);
        assert!((cost.sim_ms - sc.sim_ms).abs() < 1e-9, "latency is the winner's");
        assert_eq!(fed.ledger().traffic("crm").hedges, 1);
        assert_eq!(fed.ledger().traffic("crm").bytes, 2 * sc.bytes);

        // Same seed, same race: replay and compare exactly.
        let fed2 = federation();
        let (h2, table2) = fed2.resolve("crm.customers").unwrap();
        let (b2, c2, o2) = h2
            .query_hedged(&SourceQuery::full_table(&table2), &ctx, 5.0)
            .unwrap();
        assert_eq!(b2.rows(), batch.rows());
        assert_eq!(c2, cost);
        assert_eq!(o2, out);
    }

    #[test]
    fn hedged_fetch_survives_a_failing_primary() {
        // Find a seed whose dice kill the primary but deliver the backup
        // (the backup is attempt #2 of the same content-addressed request,
        // so the probe below replays exactly what the hedge will roll).
        let (fed, batch, cost, out) = (0..200u64)
            .find_map(|s| {
                let fed = federation();
                fed.inject_faults("crm", FaultProfile::failing(0.5, s))
                    .unwrap();
                let (h, table) = fed.resolve("crm.customers").unwrap();
                let ctx = RequestCtx::new();
                let (batch, cost, out) = h
                    .query_hedged(&SourceQuery::full_table(&table), &ctx, 5.0)
                    .ok()?;
                (fed.ledger().traffic("crm").failures == 1)
                    .then_some((fed, batch, cost, out))
            })
            .expect("some seed rolls fail-then-deliver");
        assert_eq!(batch.num_rows(), 100, "the backup's answer saved the query");
        assert!(out.fired && out.backup_won);
        assert!(cost.sim_ms >= 5.0, "the backup's latency includes its delay");
        assert_eq!(fed.ledger().traffic("crm").failures, 1);
        assert_eq!(fed.ledger().traffic("crm").hedges, 1);
    }

    #[test]
    fn hardened_source_retries_through_a_transient_outage() {
        let fed = federation();
        fed.inject_faults("crm", FaultProfile::none().with_outage(0, 25))
            .unwrap();
        fed.harden(
            "crm",
            crate::resilience::RetryPolicy::standard().with_attempts(5),
            crate::resilience::CircuitBreakerConfig::default(),
        )
        .unwrap();
        let (h, table) = fed.resolve("crm.customers").unwrap();
        let (batch, cost) = h.query(&SourceQuery::full_table(table)).unwrap();
        assert_eq!(batch.num_rows(), 100, "outage healed, full answer");
        assert!(cost.requests >= 2, "retries are charged as round trips");
        let traffic = fed.ledger().traffic("crm");
        assert!(traffic.retries >= 1);
        assert!(traffic.failures >= 1);
        assert!(fed.clock().now_ms() >= 25, "backoff advanced past the outage");
    }

    #[test]
    fn zero_fault_profile_changes_nothing() {
        let plain = federation();
        let (h, table) = plain.resolve("crm.customers").unwrap();
        let (expect, expect_cost) = h.query(&SourceQuery::full_table(table)).unwrap();

        let fed = federation();
        fed.inject_faults("crm", FaultProfile::none()).unwrap();
        fed.harden(
            "crm",
            crate::resilience::RetryPolicy::standard(),
            crate::resilience::CircuitBreakerConfig::default(),
        )
        .unwrap();
        let (h, table) = fed.resolve("crm.customers").unwrap();
        let (got, got_cost) = h.query(&SourceQuery::full_table(table)).unwrap();
        assert_eq!(got.rows(), expect.rows());
        assert_eq!(got_cost, expect_cost);
        assert_eq!(fed.ledger().traffic("crm").retries, 0);
        assert_eq!(fed.clock().now_ms(), 0);
    }

    #[test]
    fn partitioned_scan_matches_serial_rows_and_bytes() {
        let serial = federation();
        let (h, table) = serial.resolve("crm.customers").unwrap();
        let (sb, sc) = h.query(&SourceQuery::full_table(table)).unwrap();

        let parted = federation();
        let (h, table) = parted.resolve("crm.customers").unwrap();
        let (pb, pc) = h
            .query_partitioned(&SourceQuery::full_table(table), 4)
            .unwrap();
        assert_eq!(pb.rows(), sb.rows(), "partition order preserves rows");
        assert_eq!(pc.bytes, sc.bytes, "bytes shipped identical to serial");
        assert_eq!(pc.rows_scanned, sc.rows_scanned);
        assert_eq!(
            parted.ledger().traffic("crm").bytes,
            serial.ledger().traffic("crm").bytes,
            "ledger byte accounting identical"
        );
        assert_eq!(
            parted.ledger().traffic("crm").rows,
            serial.ledger().traffic("crm").rows
        );
        assert!(
            pc.sim_ms < sc.sim_ms,
            "overlapped partitions finish sooner: {} vs {}",
            pc.sim_ms,
            sc.sim_ms
        );
    }

    #[test]
    fn write_listeners_fire_on_successful_updates_only() {
        use std::sync::Mutex;
        let fed = federation();
        let seen: Arc<Mutex<Vec<(String, String)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        fed.add_write_listener(Arc::new(move |source, table| {
            sink.lock().unwrap().push((source.to_string(), table.to_string()));
        }));
        // The handle was cloned out BEFORE more listeners could exist; a
        // second listener registered now must still fire through it.
        let (h, _) = fed.resolve("crm.customers").unwrap();
        h.update(&UpdateOp::Insert {
            table: "customers".into(),
            row: row![2000i64, "listener"],
        })
        .unwrap();
        assert_eq!(
            seen.lock().unwrap().as_slice(),
            &[("crm".to_string(), "customers".to_string())]
        );
        // Failed writes do not notify.
        h.update(&UpdateOp::Insert {
            table: "ghost".into(),
            row: row![1i64],
        })
        .unwrap_err();
        assert_eq!(seen.lock().unwrap().len(), 1);
    }

    #[test]
    fn updates_pay_a_round_trip() {
        let fed = federation();
        let (h, _) = fed.resolve("crm.customers").unwrap();
        let (res, cost) = h
            .update(&UpdateOp::Insert {
                table: "customers".into(),
                row: row![1000i64, "newbie"],
            })
            .unwrap();
        assert_eq!(res.affected, 1);
        assert!((cost.sim_ms - LinkProfile::wan().latency_ms).abs() < 1e-9);
    }
}
