//! Fault tolerance for source requests: retry with exponential backoff and
//! jitter, per-source circuit breakers, and the [`ResilientConnector`]
//! wrapper that applies both.
//!
//! All waiting happens on the simulated clock, so hardened federations stay
//! deterministic: a retried request advances time by its backoff and is
//! charged an extra round trip in the cost ledger.

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use eii_data::{EiiError, Result, SimClock};
use eii_obs::MetricsRegistry;
use serde::Serialize;

use crate::connector::{Connector, SourceAnswer, SourceQuery, UpdateOp, UpdateResult};
use crate::net::TransferLedger;

/// How a hardened source retries failed requests.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per request, including the first (1 = no retries).
    pub max_attempts: usize,
    /// Wait before the first retry, simulated ms.
    pub base_backoff_ms: i64,
    /// Backoff multiplier per subsequent retry (exponential backoff).
    pub backoff_multiplier: f64,
    /// Random jitter as a fraction of each backoff (0.0 = none). Jitter is
    /// drawn from a seeded RNG so runs replay exactly.
    pub jitter_frac: f64,
    /// Seed for the jitter RNG.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// No retries: one attempt, failures surface immediately.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 0,
            backoff_multiplier: 1.0,
            jitter_frac: 0.0,
            jitter_seed: 0,
        }
    }

    /// A sensible default: 3 attempts, 10 ms base backoff doubling each
    /// retry, 10% jitter.
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 10,
            backoff_multiplier: 2.0,
            jitter_frac: 0.1,
            jitter_seed: 17,
        }
    }

    /// Same policy with a different attempt budget.
    pub fn with_attempts(mut self, max_attempts: usize) -> Self {
        assert!(max_attempts >= 1, "at least one attempt is required");
        self.max_attempts = max_attempts;
        self
    }

    /// Backoff before retry number `retry` (1-based), before jitter.
    pub fn backoff_ms(&self, retry: usize) -> i64 {
        let factor = self.backoff_multiplier.powi(retry.saturating_sub(1) as i32);
        (self.base_backoff_ms as f64 * factor).round() as i64
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitBreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: usize,
    /// How long an open breaker rejects requests before letting a probe
    /// through (half-open), simulated ms.
    pub cooldown_ms: i64,
    /// Successful probes required to close again from half-open.
    pub success_threshold: usize,
}

impl Default for CircuitBreakerConfig {
    fn default() -> Self {
        CircuitBreakerConfig {
            failure_threshold: 5,
            cooldown_ms: 1_000,
            success_threshold: 1,
        }
    }
}

/// The three classic breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// Requests fail fast without touching the source.
    Open,
    /// A limited number of probe requests are let through.
    HalfOpen,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: usize,
    probe_successes: usize,
    /// Probes admitted (via [`CircuitBreaker::acquire`]) and not yet
    /// resolved. Half-open admits at most `success_threshold` at a time, so
    /// racing sessions cannot stampede a recovering source.
    probes_in_flight: usize,
    opened_at_ms: i64,
    to_open: u64,
    to_half_open: u64,
    to_closed: u64,
}

/// Owned snapshot of a breaker for health reports: current state plus
/// lifetime transition counts.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BreakerStatus {
    /// Current state (cooldown transitions applied).
    pub state: BreakerState,
    /// Consecutive failures observed while closed.
    pub consecutive_failures: u64,
    /// Simulated ms at which the breaker last tripped open.
    pub opened_at_ms: i64,
    /// Lifetime Closed/HalfOpen → Open transitions.
    pub to_open: u64,
    /// Lifetime Open → HalfOpen transitions.
    pub to_half_open: u64,
    /// Lifetime HalfOpen → Closed transitions.
    pub to_closed: u64,
}

/// Per-source circuit breaker on the simulated clock.
///
/// Closed → (failure_threshold consecutive failures) → Open →
/// (cooldown elapses) → HalfOpen → (success_threshold probe successes) →
/// Closed, or (any probe failure) → Open again.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: CircuitBreakerConfig,
    clock: SimClock,
    inner: Mutex<BreakerInner>,
    /// Where transition counters land (`breaker.<source>.to_open` etc.),
    /// when the federation is instrumented.
    metrics: Option<(MetricsRegistry, String)>,
}

impl CircuitBreaker {
    /// New breaker, initially closed.
    pub fn new(config: CircuitBreakerConfig, clock: SimClock) -> Self {
        CircuitBreaker {
            config,
            clock,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                probe_successes: 0,
                probes_in_flight: 0,
                opened_at_ms: 0,
                to_open: 0,
                to_half_open: 0,
                to_closed: 0,
            }),
            metrics: None,
        }
    }

    /// Emit transition counters (`breaker.<source>.to_open` / `.to_half_open`
    /// / `.to_closed`) into `metrics` from now on.
    pub fn instrumented(mut self, metrics: MetricsRegistry, source: &str) -> Self {
        self.metrics = Some((metrics, source.to_string()));
        self
    }

    fn note_transition(&self, inner: &mut BreakerInner, to: BreakerState) {
        let (count, suffix) = match to {
            BreakerState::Open => (&mut inner.to_open, "to_open"),
            BreakerState::HalfOpen => (&mut inner.to_half_open, "to_half_open"),
            BreakerState::Closed => (&mut inner.to_closed, "to_closed"),
        };
        *count += 1;
        if let Some((metrics, source)) = &self.metrics {
            metrics.inc(&format!("breaker.{source}.{suffix}"));
            // Stamp the transition into the event log, referencing the
            // owning trace when the ambient request context carries one.
            metrics.record_event(eii_obs::TelemetryEvent {
                sim_ms: self.clock.now_ms() as f64,
                kind: format!("breaker.{suffix}"),
                source: source.clone(),
                trace_id: crate::ctx::current_ctx().and_then(|c| c.trace_id),
                detail: format!("failures={}", inner.consecutive_failures),
            });
        }
    }

    /// Current state, transitioning Open → HalfOpen if the cooldown has
    /// elapsed.
    pub fn state(&self) -> BreakerState {
        let mut inner = self.inner.lock();
        if inner.state == BreakerState::Open
            && self.clock.now_ms() - inner.opened_at_ms >= self.config.cooldown_ms
        {
            inner.state = BreakerState::HalfOpen;
            inner.probe_successes = 0;
            inner.probes_in_flight = 0;
            self.note_transition(&mut inner, BreakerState::HalfOpen);
        }
        inner.state
    }

    /// May a request proceed right now?
    pub fn allow(&self) -> bool {
        self.state() != BreakerState::Open
    }

    /// Admit one request, taking a probe permit when half-open. Closed
    /// admits freely; open rejects; half-open admits at most
    /// `success_threshold` concurrent probes — the rest fail fast exactly as
    /// if the breaker were still open, so racing sessions cannot stampede a
    /// source that is barely back on its feet. The permit is returned by
    /// [`on_success`](Self::on_success) / [`on_failure`](Self::on_failure)
    /// (or [`release_probe`](Self::release_probe) when the request was
    /// abandoned without an outcome).
    pub fn acquire(&self) -> bool {
        let mut inner = self.inner.lock();
        if inner.state == BreakerState::Open
            && self.clock.now_ms() - inner.opened_at_ms >= self.config.cooldown_ms
        {
            inner.state = BreakerState::HalfOpen;
            inner.probe_successes = 0;
            inner.probes_in_flight = 0;
            self.note_transition(&mut inner, BreakerState::HalfOpen);
        }
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                let cap = self.config.success_threshold.max(1);
                if inner.probes_in_flight < cap {
                    inner.probes_in_flight += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Return a probe permit without recording an outcome (the request was
    /// cancelled before the source answered).
    pub fn release_probe(&self) {
        let mut inner = self.inner.lock();
        inner.probes_in_flight = inner.probes_in_flight.saturating_sub(1);
    }

    /// Owned snapshot for health reports (cooldown transitions applied
    /// first, so a cooled-down breaker reads half-open, not open).
    pub fn status(&self) -> BreakerStatus {
        let state = self.state();
        let inner = self.inner.lock();
        BreakerStatus {
            state,
            consecutive_failures: inner.consecutive_failures as u64,
            opened_at_ms: inner.opened_at_ms,
            to_open: inner.to_open,
            to_half_open: inner.to_half_open,
            to_closed: inner.to_closed,
        }
    }

    /// Record a successful request.
    pub fn on_success(&self) {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => inner.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                inner.probes_in_flight = inner.probes_in_flight.saturating_sub(1);
                inner.probe_successes += 1;
                if inner.probe_successes >= self.config.success_threshold {
                    inner.state = BreakerState::Closed;
                    inner.consecutive_failures = 0;
                    inner.probes_in_flight = 0;
                    self.note_transition(&mut inner, BreakerState::Closed);
                }
            }
            // A success while open can only come from a racing request that
            // was admitted before the trip; ignore it.
            BreakerState::Open => {}
        }
    }

    /// Record a failed request.
    pub fn on_failure(&self) {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.config.failure_threshold {
                    inner.state = BreakerState::Open;
                    inner.opened_at_ms = self.clock.now_ms();
                    self.note_transition(&mut inner, BreakerState::Open);
                }
            }
            // Any failure during a probe re-opens immediately.
            BreakerState::HalfOpen => {
                inner.state = BreakerState::Open;
                inner.opened_at_ms = self.clock.now_ms();
                inner.probes_in_flight = 0;
                self.note_transition(&mut inner, BreakerState::Open);
            }
            BreakerState::Open => {}
        }
    }
}

/// A connector wrapper adding retry/backoff and a circuit breaker around an
/// (often faulty) inner connector.
///
/// Each retry advances the simulated clock by its backoff and bumps the
/// answer's `calls` count, so the registry charges the extra round trips to
/// the cost ledger; retries are also counted per source in the
/// [`TransferLedger`].
pub struct ResilientConnector {
    inner: Arc<dyn Connector>,
    policy: RetryPolicy,
    breaker: CircuitBreaker,
    clock: SimClock,
    ledger: TransferLedger,
    jitter_rng: Mutex<StdRng>,
    last_error: Mutex<Option<String>>,
    metrics: Option<MetricsRegistry>,
}

impl ResilientConnector {
    /// Harden `inner` with the given retry policy and breaker config.
    pub fn new(
        inner: Arc<dyn Connector>,
        policy: RetryPolicy,
        breaker_config: CircuitBreakerConfig,
        clock: SimClock,
        ledger: TransferLedger,
    ) -> Self {
        let jitter_rng = Mutex::new(StdRng::seed_from_u64(policy.jitter_seed));
        ResilientConnector {
            breaker: CircuitBreaker::new(breaker_config, clock.clone()),
            policy,
            clock,
            ledger,
            jitter_rng,
            last_error: Mutex::new(None),
            metrics: None,
            inner,
        }
    }

    /// Emit retry/failure counters (`source.<name>.retries`,
    /// `source.<name>.failures`) and breaker transition counters into
    /// `metrics` from now on.
    pub fn instrumented(mut self, metrics: MetricsRegistry) -> Self {
        let source = self.inner.name().to_string();
        self.breaker = self.breaker.instrumented(metrics.clone(), &source);
        self.metrics = Some(metrics);
        self
    }

    /// The breaker (observability and tests).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// The wrapped connector.
    pub fn inner(&self) -> &Arc<dyn Connector> {
        &self.inner
    }

    /// Backoff for retry number `retry` (1-based) with jitter applied.
    fn jittered_backoff_ms(&self, retry: usize) -> i64 {
        let base = self.policy.backoff_ms(retry);
        if self.policy.jitter_frac <= 0.0 || base == 0 {
            return base;
        }
        let frac = self.policy.jitter_frac.min(1.0);
        let jitter: f64 = self.jitter_rng.lock().gen_range(-frac..frac);
        (base as f64 * (1.0 + jitter)).round().max(0.0) as i64
    }

    /// Run `attempt` with retry + breaker bookkeeping. Returns the result
    /// of the first successful attempt plus the number of retries used.
    fn with_retries<T>(
        &self,
        mut attempt: impl FnMut() -> Result<T>,
    ) -> Result<(T, usize)> {
        let start_ms = self.clock.now_ms();
        let ctx = crate::ctx::current_ctx();
        if let Some(ctx) = &ctx {
            // A cancelled or out-of-budget query is a caller decision, not
            // a source failure: no breaker bookkeeping, no attempt.
            ctx.check()?;
        }
        if !self.breaker.acquire() {
            let err = EiiError::SourceUnavailable {
                source: self.inner.name().to_string(),
                attempts: 0,
                elapsed_ms: 0,
            };
            self.note_failure(&err, true);
            return Err(err);
        }
        let mut retries = 0usize;
        loop {
            match attempt() {
                Ok(v) => {
                    self.breaker.on_success();
                    return Ok((v, retries));
                }
                Err(err) if matches!(err.kind(), "cancelled" | "deadline") => {
                    // Surfaced from a ctx check inside the attempt: the
                    // source did not fail, the query gave up. Return the
                    // probe permit (if any) untallied.
                    self.breaker.release_probe();
                    return Err(err);
                }
                Err(err) => {
                    self.breaker.on_failure();
                    self.note_failure(&err, false);
                    let attempts = retries + 1;
                    let elapsed_ms = self.clock.now_ms() - start_ms;
                    if attempts >= self.policy.max_attempts {
                        // Exhausted: collapse into the structured error
                        // unless the inner error is already structural
                        // (planner misuse etc. should not be masked).
                        return Err(if err.is_transport() {
                            EiiError::SourceUnavailable {
                                source: self.inner.name().to_string(),
                                attempts,
                                elapsed_ms,
                            }
                        } else {
                            err
                        });
                    }
                    if !err.is_transport() {
                        // Non-transport errors (bad query, missing table)
                        // will not heal with retries.
                        return Err(err);
                    }
                    if !self.breaker.allow() {
                        return Err(EiiError::SourceUnavailable {
                            source: self.inner.name().to_string(),
                            attempts,
                            elapsed_ms,
                        });
                    }
                    let backoff = self.jittered_backoff_ms(attempts);
                    if let Some(deadline) = ctx.as_ref().and_then(|c| c.deadline.as_ref()) {
                        // Not enough budget to back off and try again:
                        // surface the deadline instead of a doomed retry.
                        if deadline.remaining_ms() <= backoff {
                            return Err(EiiError::DeadlineExceeded {
                                budget_ms: deadline.budget_ms(),
                                elapsed_ms: deadline.elapsed_ms(),
                            });
                        }
                    }
                    retries += 1;
                    self.ledger.record_retry(self.inner.name());
                    if let Some(metrics) = &self.metrics {
                        metrics.inc(&format!("source.{}.retries", self.inner.name()));
                    }
                    self.clock.advance_ms(backoff);
                }
            }
        }
    }

    /// Remember the latest error for health reports and count it. Fail-fast
    /// rejections from an open breaker are counted separately — the source
    /// itself was never consulted.
    fn note_failure(&self, err: &EiiError, rejected: bool) {
        *self.last_error.lock() = Some(err.message());
        if let Some(metrics) = &self.metrics {
            let suffix = if rejected { "rejected" } else { "failures" };
            metrics.inc(&format!("source.{}.{suffix}", self.inner.name()));
        }
    }
}

impl Connector for ResilientConnector {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn tables(&self) -> Vec<String> {
        self.inner.tables()
    }

    fn table_schema(&self, table: &str) -> Result<eii_data::SchemaRef> {
        self.inner.table_schema(table)
    }

    fn capabilities(&self) -> crate::capability::SourceCapabilities {
        self.inner.capabilities()
    }

    fn dialect(&self) -> crate::dialect::Dialect {
        self.inner.dialect()
    }

    fn statistics(&self, table: &str) -> Result<eii_storage::TableStats> {
        self.inner.statistics(table)
    }

    fn execute(&self, query: &SourceQuery) -> Result<SourceAnswer> {
        let (mut ans, retries) = self.with_retries(|| self.inner.execute(query))?;
        // Every retry was a real round trip the cost model must charge.
        ans.calls += retries;
        Ok(ans)
    }

    fn update(&self, op: &UpdateOp) -> Result<UpdateResult> {
        let (res, _retries) = self.with_retries(|| self.inner.update(op))?;
        Ok(res)
    }

    fn changes_since(
        &self,
        table: &str,
        after_seq: u64,
    ) -> Result<(Vec<eii_storage::Change>, u64)> {
        let (res, _retries) = self.with_retries(|| self.inner.changes_since(table, after_seq))?;
        Ok(res)
    }

    fn breaker_status(&self) -> Option<BreakerStatus> {
        Some(self.breaker.status())
    }

    fn last_error(&self) -> Option<String> {
        self.last_error.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A connector that fails its first `fail_first` requests, then
    /// succeeds forever.
    struct FlakyConnector {
        fail_first: usize,
        served: AtomicUsize,
    }

    impl FlakyConnector {
        fn new(fail_first: usize) -> Self {
            FlakyConnector {
                fail_first,
                served: AtomicUsize::new(0),
            }
        }
    }

    impl Connector for FlakyConnector {
        fn name(&self) -> &str {
            "flaky"
        }

        fn tables(&self) -> Vec<String> {
            vec!["t".into()]
        }

        fn table_schema(&self, _table: &str) -> Result<eii_data::SchemaRef> {
            Ok(std::sync::Arc::new(eii_data::Schema::new(vec![
                eii_data::Field::new("x", eii_data::DataType::Int),
            ])))
        }

        fn capabilities(&self) -> crate::capability::SourceCapabilities {
            crate::capability::SourceCapabilities::relational()
        }

        fn dialect(&self) -> crate::dialect::Dialect {
            crate::dialect::Dialect::ansi_full()
        }

        fn execute(&self, _query: &SourceQuery) -> Result<SourceAnswer> {
            let n = self.served.fetch_add(1, Ordering::SeqCst);
            if n < self.fail_first {
                Err(EiiError::Source("flaky: refused".into()))
            } else {
                let schema = self.table_schema("t")?;
                Ok(SourceAnswer::one_shot(
                    eii_data::Batch::new(schema, vec![eii_data::row![1i64]]),
                    1,
                ))
            }
        }
    }

    fn hardened(fail_first: usize, policy: RetryPolicy) -> (ResilientConnector, SimClock) {
        let clock = SimClock::new();
        let conn = ResilientConnector::new(
            Arc::new(FlakyConnector::new(fail_first)),
            policy,
            CircuitBreakerConfig::default(),
            clock.clone(),
            TransferLedger::new(),
        );
        (conn, clock)
    }

    #[test]
    fn retries_heal_transient_failures_and_charge_round_trips() {
        let (conn, clock) = hardened(2, RetryPolicy::standard());
        let ans = conn.execute(&SourceQuery::full_table("t")).unwrap();
        assert_eq!(ans.batch.num_rows(), 1);
        assert_eq!(ans.calls, 3, "1 answer + 2 retries");
        // Backoffs advanced the simulated clock: 10ms + 20ms, +/- 10% jitter.
        assert!((27..=33).contains(&clock.now_ms()), "now={}", clock.now_ms());
    }

    #[test]
    fn exhausted_retries_surface_source_unavailable() {
        let (conn, clock) = hardened(100, RetryPolicy::standard());
        let err = conn.execute(&SourceQuery::full_table("t")).unwrap_err();
        assert_eq!(err.kind(), "source_unavailable");
        let EiiError::SourceUnavailable {
            source,
            attempts,
            elapsed_ms,
        } = err
        else {
            panic!("wrong variant: {err}");
        };
        assert_eq!(source, "flaky");
        assert_eq!(attempts, 3);
        // The two backoffs (10 + 20 ms, ±10% jitter) are the elapsed time.
        assert_eq!(elapsed_ms, clock.now_ms());
        assert!((27..=33).contains(&elapsed_ms), "elapsed={elapsed_ms}");
    }

    #[test]
    fn non_transport_errors_do_not_retry() {
        struct BadQuery;
        impl Connector for BadQuery {
            fn name(&self) -> &str {
                "bad"
            }
            fn tables(&self) -> Vec<String> {
                vec![]
            }
            fn table_schema(&self, _t: &str) -> Result<eii_data::SchemaRef> {
                Err(EiiError::NotFound("t".into()))
            }
            fn capabilities(&self) -> crate::capability::SourceCapabilities {
                crate::capability::SourceCapabilities::relational()
            }
            fn dialect(&self) -> crate::dialect::Dialect {
                crate::dialect::Dialect::ansi_full()
            }
            fn execute(&self, _q: &SourceQuery) -> Result<SourceAnswer> {
                Err(EiiError::NotFound("no such table".into()))
            }
        }
        let ledger = TransferLedger::new();
        let conn = ResilientConnector::new(
            Arc::new(BadQuery),
            RetryPolicy::standard(),
            CircuitBreakerConfig::default(),
            SimClock::new(),
            ledger.clone(),
        );
        let err = conn.execute(&SourceQuery::full_table("t")).unwrap_err();
        assert_eq!(err.kind(), "not_found");
        assert_eq!(ledger.traffic("bad").retries, 0);
    }

    #[test]
    fn breaker_walks_closed_open_halfopen_closed() {
        let clock = SimClock::new();
        let breaker = CircuitBreaker::new(
            CircuitBreakerConfig {
                failure_threshold: 3,
                cooldown_ms: 100,
                success_threshold: 2,
            },
            clock.clone(),
        );
        assert_eq!(breaker.state(), BreakerState::Closed);
        // Two failures + a success reset the streak.
        breaker.on_failure();
        breaker.on_failure();
        breaker.on_success();
        assert_eq!(breaker.state(), BreakerState::Closed);
        // Three consecutive failures trip it.
        breaker.on_failure();
        breaker.on_failure();
        breaker.on_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        assert!(!breaker.allow());
        // Cooldown not yet elapsed.
        clock.advance_ms(99);
        assert_eq!(breaker.state(), BreakerState::Open);
        // Cooldown elapses: half-open lets probes through.
        clock.advance_ms(1);
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        assert!(breaker.allow());
        // First probe succeeds but threshold is 2: still half-open.
        breaker.on_success();
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        breaker.on_success();
        assert_eq!(breaker.state(), BreakerState::Closed);
    }

    #[test]
    fn breaker_transitions_emit_exact_metric_counts() {
        let clock = SimClock::new();
        let metrics = eii_obs::MetricsRegistry::new();
        let breaker = CircuitBreaker::new(
            CircuitBreakerConfig {
                failure_threshold: 2,
                cooldown_ms: 100,
                success_threshold: 1,
            },
            clock.clone(),
        )
        .instrumented(metrics.clone(), "crm");
        // One full closed -> open -> half-open -> closed walk.
        breaker.on_failure();
        breaker.on_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        clock.advance_ms(100);
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        breaker.on_success();
        assert_eq!(breaker.state(), BreakerState::Closed);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("breaker.crm.to_open"), 1);
        assert_eq!(snap.counter("breaker.crm.to_half_open"), 1);
        assert_eq!(snap.counter("breaker.crm.to_closed"), 1);
        // The status view carries the same counts.
        let status = breaker.status();
        assert_eq!(status.state, BreakerState::Closed);
        assert_eq!((status.to_open, status.to_half_open, status.to_closed), (1, 1, 1));
        // A second trip increments only the open counter.
        breaker.on_failure();
        breaker.on_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("breaker.crm.to_open"), 2);
        assert_eq!(snap.counter("breaker.crm.to_half_open"), 1);
        assert_eq!(snap.counter("breaker.crm.to_closed"), 1);
    }

    #[test]
    fn halfopen_probe_failure_reopens() {
        let clock = SimClock::new();
        let breaker = CircuitBreaker::new(
            CircuitBreakerConfig {
                failure_threshold: 1,
                cooldown_ms: 50,
                success_threshold: 1,
            },
            clock.clone(),
        );
        breaker.on_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        clock.advance_ms(50);
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        breaker.on_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        // The cooldown restarts from the re-open.
        clock.advance_ms(49);
        assert_eq!(breaker.state(), BreakerState::Open);
        clock.advance_ms(1);
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn open_breaker_fails_fast_without_touching_the_source() {
        let clock = SimClock::new();
        let inner = Arc::new(FlakyConnector::new(usize::MAX));
        let conn = ResilientConnector::new(
            inner.clone(),
            RetryPolicy::none(),
            CircuitBreakerConfig {
                failure_threshold: 2,
                cooldown_ms: 1_000,
                success_threshold: 1,
            },
            clock.clone(),
            TransferLedger::new(),
        );
        let q = SourceQuery::full_table("t");
        assert!(conn.execute(&q).is_err());
        assert!(conn.execute(&q).is_err());
        let before = inner.served.load(Ordering::SeqCst);
        // Breaker is now open: requests are rejected without reaching the
        // inner connector, with attempts = 0.
        let err = conn.execute(&q).unwrap_err();
        assert_eq!(
            err,
            EiiError::SourceUnavailable {
                source: "flaky".into(),
                attempts: 0,
                elapsed_ms: 0,
            }
        );
        assert_eq!(inner.served.load(Ordering::SeqCst), before);
    }

    /// A connector whose first request fails and whose later requests block
    /// until released — so half-open probes from racing threads overlap.
    struct GatedConnector {
        served: AtomicUsize,
        entered: AtomicUsize,
        release: std::sync::atomic::AtomicBool,
    }

    impl GatedConnector {
        fn new() -> Self {
            GatedConnector {
                served: AtomicUsize::new(0),
                entered: AtomicUsize::new(0),
                release: std::sync::atomic::AtomicBool::new(false),
            }
        }
    }

    impl Connector for GatedConnector {
        fn name(&self) -> &str {
            "gated"
        }
        fn tables(&self) -> Vec<String> {
            vec!["t".into()]
        }
        fn table_schema(&self, _t: &str) -> Result<eii_data::SchemaRef> {
            Ok(std::sync::Arc::new(eii_data::Schema::new(vec![
                eii_data::Field::new("x", eii_data::DataType::Int),
            ])))
        }
        fn capabilities(&self) -> crate::capability::SourceCapabilities {
            crate::capability::SourceCapabilities::relational()
        }
        fn dialect(&self) -> crate::dialect::Dialect {
            crate::dialect::Dialect::ansi_full()
        }
        fn execute(&self, _q: &SourceQuery) -> Result<SourceAnswer> {
            if self.served.fetch_add(1, Ordering::SeqCst) == 0 {
                return Err(EiiError::Source("gated: down".into()));
            }
            self.entered.fetch_add(1, Ordering::SeqCst);
            while !self.release.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            let schema = self.table_schema("t")?;
            Ok(SourceAnswer::one_shot(
                eii_data::Batch::new(schema, vec![eii_data::row![1i64]]),
                1,
            ))
        }
    }

    #[test]
    fn halfopen_admits_exactly_the_configured_probe_count_under_races() {
        const PROBES: usize = 2;
        const RACERS: usize = 6;
        let clock = SimClock::new();
        let inner = Arc::new(GatedConnector::new());
        let conn = Arc::new(ResilientConnector::new(
            inner.clone(),
            RetryPolicy::none(),
            CircuitBreakerConfig {
                failure_threshold: 1,
                cooldown_ms: 50,
                success_threshold: PROBES,
            },
            clock.clone(),
            TransferLedger::new(),
        ));
        // Trip the breaker, then let the cooldown elapse.
        assert!(conn.execute(&SourceQuery::full_table("t")).is_err());
        assert_eq!(conn.breaker().state(), BreakerState::Open);
        clock.advance_ms(50);

        // Race the recovering source from many sessions at once. The
        // admitted probes block inside the connector until released, so the
        // rest of the pack decides while the permits are genuinely held.
        let results: Vec<Result<SourceAnswer>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..RACERS)
                .map(|_| {
                    let conn = conn.clone();
                    s.spawn(move || conn.execute(&SourceQuery::full_table("t")))
                })
                .collect();
            // Wait until both probes are inside the source, then make sure
            // nobody else sneaks in before releasing them.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            while inner.entered.load(Ordering::SeqCst) < PROBES {
                assert!(std::time::Instant::now() < deadline, "probes never arrived");
                std::thread::yield_now();
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(
                inner.entered.load(Ordering::SeqCst),
                PROBES,
                "only the configured probe count may reach the source"
            );
            inner.release.store(true, Ordering::SeqCst);
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let ok = results.iter().filter(|r| r.is_ok()).count();
        assert_eq!(ok, PROBES, "exactly the admitted probes succeed");
        for err in results.iter().filter_map(|r| r.as_ref().err()) {
            assert_eq!(
                *err,
                EiiError::SourceUnavailable {
                    source: "gated".into(),
                    attempts: 0,
                    elapsed_ms: 0,
                },
                "losers fail fast without touching the source"
            );
        }
        // Both probes succeeded, so the breaker closed again.
        assert_eq!(conn.breaker().state(), BreakerState::Closed);
    }

    #[test]
    fn retries_stop_when_the_deadline_cannot_afford_the_backoff() {
        let (conn, clock) = hardened(100, RetryPolicy::standard());
        // Budget covers the first backoff (~10 ms) but not the second
        // (~20 ms): the loop surfaces the deadline instead of retry #2.
        let deadline = eii_data::Deadline::new(clock.clone(), 25);
        let ctx = crate::ctx::RequestCtx::new().with_deadline(deadline);
        let err = crate::ctx::with_request_ctx(&ctx, || {
            conn.execute(&SourceQuery::full_table("t"))
        })
        .unwrap_err();
        assert_eq!(err.kind(), "deadline");
        assert!(clock.now_ms() < 25, "the doomed backoff was never taken");
    }

    #[test]
    fn cancelled_queries_never_touch_the_source() {
        let (conn, _clock) = hardened(0, RetryPolicy::standard());
        let cancel = eii_data::CancelToken::new();
        cancel.cancel("caller hung up");
        let ctx = crate::ctx::RequestCtx::new().with_cancel(cancel);
        let err = crate::ctx::with_request_ctx(&ctx, || {
            conn.execute(&SourceQuery::full_table("t"))
        })
        .unwrap_err();
        assert_eq!(err.kind(), "cancelled");
    }
}
